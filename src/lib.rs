#![warn(missing_docs)]

//! # seqfm-repro
//!
//! Umbrella crate for the SeqFM reproduction workspace (ICDE 2020,
//! *Sequence-Aware Factorization Machines for Temporal Predictive
//! Analytics*). It re-exports the member crates so downstream users can
//! depend on a single crate, and hosts the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Crate map:
//!
//! * [`parallel`] — the parallelism subsystem: work-stealing thread pool,
//!   `par_for`/`par_map_reduce`, sharded work queues, reusable oneshots
//! * [`tensor`] — dense f32 tensors and kernels (matmul/bmm/softmax/…),
//!   auto-parallel above a size threshold
//! * [`autograd`] — tape-based reverse-mode autodiff
//! * [`nn`] — layers, optimizers, initializers, checkpoints
//! * [`data`] — synthetic chronological datasets + evaluation protocol
//! * [`metrics`] — HR/NDCG, AUC/RMSE, MAE/RRSE
//! * [`core`] — **SeqFM** (the paper's model), trainers, evaluators, and the
//!   graph-free `Scorer`/`FrozenSeqFm` inference API
//! * [`baselines`] — all 11 comparison models
//! * [`retrieval`] — full-catalog top-K: blocked catalog scans with a
//!   sound upper-bound prune, bit-identical to brute force
//! * [`serve`] — request-level serving: candidate expansion, top-K ranking,
//!   and the multi-threaded scoring engine
//! * [`bench_harness`] — the table/figure regeneration harness

pub use seqfm_autograd as autograd;
pub use seqfm_baselines as baselines;
pub use seqfm_bench as bench_harness;
pub use seqfm_core as core;
pub use seqfm_data as data;
pub use seqfm_metrics as metrics;
pub use seqfm_nn as nn;
pub use seqfm_parallel as parallel;
pub use seqfm_retrieval as retrieval;
pub use seqfm_serve as serve;
pub use seqfm_tensor as tensor;
