//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored shim provides the exact subset of the `rand` 0.8 API the
//! workspace uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`,
//! `choose`).
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64 — deterministic,
//! well-distributed, and more than adequate for seeding experiments and
//! tests. It does **not** match upstream `StdRng`'s stream, which is fine:
//! upstream documents `StdRng` as non-portable across versions, so nothing
//! may rely on its exact sequence.

/// A source of random `u32`/`u64` values. Mirrors `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their "standard" distribution
/// (`rng.gen::<T>()`): floats in `[0, 1)`, full range for integers, fair
/// coin for `bool`.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random value methods. Blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of RNGs from seeds. Mirrors
/// `rand::SeedableRng`, restricted to `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Drop-in for `rand::rngs::StdRng`: a SplitMix64 generator.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014) — passes BigCrush when
            // used as a 64-bit stream.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed ^ 0x517C_C1B7_2722_0A95 };
            // Burn a few outputs so small seeds decorrelate immediately.
            for _ in 0..4 {
                rng.next_u64();
            }
            rng
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling and sampling. Mirrors `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_unit_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
