//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, covering the two facilities this workspace uses:
//!
//! * [`channel`] — multi-producer **multi-consumer** unbounded channels
//!   (std's `mpsc` receiver is not clonable, so this is a small
//!   `Mutex<VecDeque>` + `Condvar` queue);
//! * [`thread`] — scoped threads with crossbeam's closure signature
//!   (`|scope| …` handed to each spawn), built on `std::thread::scope`.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (any one receiver gets each message).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone. The
    /// unsent message is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without a `T: Debug` bound, eliding the payload.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).expect("channel poisoned");
            }
        }

        /// Returns a message if one is queued right now.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.state.lock().expect("channel poisoned").queue.pop_front()
        }

        /// Iterates until the channel is empty and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

/// Scoped threads with crossbeam's API shape.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a [`scope`] call or a join: `Err` carries the panic payload
    /// of a panicking child thread.
    pub type Result<T> = std::thread::Result<T>;

    /// Handle to threads spawned inside a [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Runs `f` with a scope whose spawned threads may borrow from the
    /// enclosing environment; joins them all before returning. Returns
    /// `Err` with the panic payload if any unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    use super::{channel, thread};

    #[test]
    fn mpmc_channel_fans_out_all_items() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let (out_tx, out_rx) = channel::unbounded::<usize>();
        thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let out_tx = out_tx.clone();
                s.spawn(move |_| {
                    while let Ok(i) = rx.recv() {
                        out_tx.send(i).unwrap();
                    }
                });
            }
            drop(out_tx);
        })
        .unwrap();
        let mut got: Vec<usize> = out_rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(channel::SendError(1)));
    }
}
