//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Provides the subset used by this workspace's binary checkpoint format:
//! [`BytesMut`] as a growable builder, [`Bytes`] as a frozen immutable blob,
//! [`BufMut`] little-endian writers, and [`Buf`] little-endian readers
//! implemented for `&[u8]`.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte blob.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty blob.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copies a slice into a new blob.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian write access to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Little-endian read access to a shrinking byte cursor.
///
/// All `get_*` methods panic if fewer than the required bytes remain, same
/// as upstream `bytes`; callers are expected to check [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR!");
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f32_le(-1.5);
        let blob = w.freeze();

        let mut r: &[u8] = &blob;
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_and_index() {
        let blob = Bytes::copy_from_slice(b"abcdef");
        let mut r: &[u8] = &blob;
        assert_eq!(&r[..2], b"ab");
        r.advance(2);
        assert_eq!(r.chunk(), b"cdef");
        assert_eq!(blob.len(), 6);
    }
}
