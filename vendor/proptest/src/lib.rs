//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], range and collection strategies
//! ([`collection::vec`], [`collection::btree_set`]), [`arbitrary::any`], and
//! [`strategy::Strategy::prop_map`].
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! reported with their deterministic case index but are **not shrunk**. Each
//! case's inputs are drawn from a seeded [`rand::rngs::StdRng`], so every
//! run of a test explores the same sequence of inputs and failures
//! reproduce exactly.

/// Re-export used by the [`proptest!`] macro expansion; not part of the
/// upstream API.
pub use rand;

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates values of an associated type from an RNG.
    ///
    /// Upstream proptest separates strategies from value trees to support
    /// shrinking; this shim collapses the two into direct sampling.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);
}

/// Strategies for standard collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Inclusive bounds on a generated collection's length. Converted from
    /// a fixed `usize` or a `Range<usize>` at call sites.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size drawn from
    /// `size`; like upstream, the set may come up smaller when the element
    /// strategy cannot produce enough distinct values.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 10 + 16 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, StandardSample};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: StandardSample {}

    impl<T: StandardSample> Arbitrary for T {}

    /// Strategy over the full domain of `T`.
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    /// Canonical strategy for `T` (uniform over the domain).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy { _marker: PhantomData }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen::<T>()
        }
    }
}

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    use std::fmt;

    /// How a `proptest!` block runs its cases.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property, carried out of the test body by
    /// `prop_assert!`-family macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a boolean property inside [`proptest!`], failing the current
/// case (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Discards the current case when the precondition does not hold. Unlike
/// upstream there is no rejection budget: discarded cases simply pass.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `cases` random inputs.
/// Failures report the deterministic case index; inputs are not shrunk.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                            0xA076_1D64_78BD_642Fu64.wrapping_mul(u64::from(case) + 1),
                        );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);
                    )*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!("proptest `{}` failed at case {case}: {err}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_respects_size_bounds(v in crate::collection::vec(0u32..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn map_applies_function(x in (0usize..5).prop_map(|x| x * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 10);
        }

        #[test]
        fn btree_set_is_distinct(s in crate::collection::btree_set(0u32..40, 0..30)) {
            prop_assert!(s.len() < 30);
            let v: Vec<u32> = s.iter().copied().collect();
            let mut dedup = v.clone();
            dedup.dedup();
            prop_assert_eq!(v, dedup);
        }

        #[test]
        fn any_bool_and_just(b in any::<bool>(), j in Just(41usize)) {
            let encoded = u8::from(b);
            prop_assert!(encoded <= 1);
            prop_assert_eq!(j, 41);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 1000, "x was {x}");
            }
        }
        always_fails();
    }
}
