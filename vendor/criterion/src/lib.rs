//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API surface this workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::from_parameter`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with a deliberately simple measurement loop: each sample times a
//! fixed iteration count with `std::time::Instant` and the harness reports
//! min / median / max per-iteration latency on stdout. No plots, no saved
//! baselines, no statistical regression analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    samples: usize,
    iters_per_sample: u64,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and calibration of how many iterations fit a sample.
        let warm = Instant::now();
        std::hint::black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.recorded.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.recorded.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b =
            Bencher { samples: self.sample_size, iters_per_sample: 1, recorded: Vec::new() };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark without a distinguished input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { samples: self.sample_size, iters_per_sample: 1, recorded: Vec::new() };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    fn report(&mut self, id: &str, b: &Bencher) {
        if b.recorded.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id);
            return;
        }
        let mut sorted = b.recorded.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        println!(
            "{}/{}: median {:?} (min {:?}, max {:?}; {} samples x {} iters)",
            self.name,
            id,
            median,
            sorted[0],
            sorted[sorted.len() - 1],
            sorted.len(),
            b.iters_per_sample,
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup { criterion: self, name, sample_size: 20 }
    }

    /// Number of benchmarks executed so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }

    /// Prints a closing summary.
    pub fn final_summary(&self) {
        println!("ran {} benchmark(s)", self.benchmarks_run);
    }
}

/// Prevents the optimizer from deleting a value. Re-exported for parity with
/// criterion's API; prefer `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a single runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`), mirroring
/// criterion's macro of the same name. Harness CLI flags passed by `cargo
/// bench`/`cargo test` are accepted and ignored, except `--list` (printed
/// for tooling) and test-mode runs, which execute nothing.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                $( println!("{}: bench", stringify!($group)); )+
                return;
            }
            // `cargo test` runs bench targets with `--test`; compiling and
            // loading is the smoke test, skip the timed loops.
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<u64>()
            });
        });
        group.finish();
        assert!(calls > 0);
        assert_eq!(c.benchmarks_run(), 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
