//! The stateful half of the serving layer: a sharded, concurrent
//! [`HistoryStore`] that owns every user's interaction sequence, and a
//! bounded [`ViewCache`] memoising each user's history-side forward work
//! ([`HistoryView`](seqfm_core::HistoryView)) across requests.
//!
//! With the store in place a request no longer ships its own history — it
//! arrives as `(user, candidates)`
//! ([`HistorySource::Stored`](crate::HistorySource)), the engine snapshots
//! the user's window under a shard read lock, and the frozen scorer reuses
//! the cached panel instead of recomputing it. Appends
//! ([`HistoryStore::append`]) bump a per-user **version**; the cache keys
//! entries by `(user, version, model epoch)`, so both an append *and* a
//! hot-swapped model revision invalidate lazily — the next lookup simply
//! misses and rebuilds, with no eager cross-shard coordination.
//!
//! Concurrency model: users are struck across `n_shards` shards
//! (`user % n_shards`), each behind its own `RwLock` — reads (snapshot into
//! a caller buffer) take the shard shared, appends take it exclusive. The
//! per-user window is a fixed-capacity **ring**: an append past capacity
//! overwrites the oldest event in place, so the store's memory is
//! `O(n_users × capacity)` forever, regardless of traffic.

use seqfm_core::{HistoryView, ModelEpoch};
use seqfm_data::Dataset;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Fixed shard fan-out. Sixteen shards keep write contention negligible for
/// any realistic worker count while costing a handful of locks; the store's
/// hot path (snapshot reads) takes shards shared anyway.
const N_SHARDS: usize = 16;

/// One user's bounded history window: a ring of the most recent `capacity`
/// item ids plus a monotonically increasing version.
#[derive(Clone, Debug, Default)]
struct UserRing {
    /// Ring storage; logically the window `[head-len, head)` mod capacity.
    items: Vec<u32>,
    /// Next write position.
    head: usize,
    /// Valid entries (`<= capacity`).
    len: usize,
    /// Bumped on every append; `0` means "never written".
    version: u64,
}

impl UserRing {
    fn push(&mut self, item: u32, capacity: usize) -> u64 {
        if self.items.is_empty() {
            // Lazily sized: cold users cost a `Vec` header, nothing more.
            self.items = vec![0; capacity];
        }
        self.items[self.head] = item;
        self.head = (self.head + 1) % capacity;
        self.len = (self.len + 1).min(capacity);
        self.version += 1;
        self.version
    }

    /// Appends the window, oldest first, to `buf`.
    fn snapshot_into(&self, buf: &mut Vec<u32>) {
        let cap = self.items.len();
        for k in 0..self.len {
            buf.push(self.items[(self.head + cap - self.len + k) % cap]);
        }
    }
}

/// Sharded, concurrent in-process store of every user's recent history.
/// See the module docs for the locking and bounding model.
pub struct HistoryStore {
    /// Shard `s` holds user `u` (where `u % N_SHARDS == s`) at local index
    /// `u / N_SHARDS`.
    shards: Vec<RwLock<Vec<UserRing>>>,
    n_users: usize,
    capacity: usize,
}

impl HistoryStore {
    /// A store for `n_users` users, each keeping their most recent
    /// `capacity` events. `capacity` must be ≥ 1 (the engine defaults it to
    /// the model's `max_seq`).
    pub fn new(n_users: usize, capacity: usize) -> Self {
        assert!(capacity >= 1, "history capacity must be >= 1");
        let shards = (0..N_SHARDS)
            .map(|s| {
                let local = n_users / N_SHARDS + usize::from(s < n_users % N_SHARDS);
                RwLock::new(vec![UserRing::default(); local])
            })
            .collect();
        HistoryStore { shards, n_users, capacity }
    }

    /// Number of users the store covers.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Per-user window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn locate(&self, user: u32) -> (usize, usize) {
        let u = user as usize;
        (u % N_SHARDS, u / N_SHARDS)
    }

    /// Records one interaction at the end of `user`'s sequence, evicting
    /// the oldest event once the window is full. Returns the user's new
    /// history version. Item validation is the caller's job (the engine
    /// checks ids against its [`FeatureLayout`](seqfm_data::FeatureLayout)
    /// before they reach the store).
    ///
    /// # Panics
    /// Panics if `user >= n_users` (the engine validates first).
    pub fn append(&self, user: u32, item: u32) -> u64 {
        let (shard, idx) = self.locate(user);
        let mut rings = self.shards[shard].write().expect("store shard poisoned");
        rings[idx].push(item, self.capacity)
    }

    /// Copies `user`'s current window (chronological, oldest first) into
    /// `buf` — cleared first — and returns the matching version. One shard
    /// read lock; the `(items, version)` pair is atomic with respect to
    /// concurrent appends.
    ///
    /// # Panics
    /// Panics if `user >= n_users`.
    pub fn snapshot_into(&self, user: u32, buf: &mut Vec<u32>) -> u64 {
        buf.clear();
        let (shard, idx) = self.locate(user);
        let rings = self.shards[shard].read().expect("store shard poisoned");
        rings[idx].snapshot_into(buf);
        rings[idx].version
    }

    /// Allocating convenience over [`HistoryStore::snapshot_into`].
    pub fn snapshot(&self, user: u32) -> (Vec<u32>, u64) {
        let mut buf = Vec::new();
        let version = self.snapshot_into(user, &mut buf);
        (buf, version)
    }

    /// `user`'s current history version (`0` = never written).
    pub fn version(&self, user: u32) -> u64 {
        let (shard, idx) = self.locate(user);
        self.shards[shard].read().expect("store shard poisoned")[idx].version
    }

    /// Bulk-loads a dataset's per-user sequences (warm-up): each user's
    /// events are appended in chronological order, so the store ends up
    /// holding the last `capacity` of them. Returns the number of events
    /// loaded. Users beyond `n_users` are ignored (the caller sized the
    /// store from the layout that also sized the model).
    pub fn load_dataset(&self, ds: &Dataset) -> usize {
        let mut loaded = 0usize;
        for (u, events) in ds.per_user.iter().enumerate().take(self.n_users) {
            // Only the window tail can survive; skip the rest of the walk.
            let tail = events.len().saturating_sub(self.capacity);
            let (shard, idx) = self.locate(u as u32);
            let mut rings = self.shards[shard].write().expect("store shard poisoned");
            for e in &events[tail..] {
                rings[idx].push(e.item, self.capacity);
            }
            // Versions count *all* events, so warm-up then live appends
            // stay monotone even for users whose prefix was skipped.
            rings[idx].version = events.len() as u64;
            loaded += events.len();
        }
        loaded
    }
}

/// Cache hit/miss counters and current occupancy of a [`ViewCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a current-version view.
    pub hits: u64,
    /// Lookups that found nothing (or a stale version).
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    /// History version the view was built at.
    version: u64,
    /// Model epoch of the scorer that built the view. A history-side panel
    /// bakes in model parameters, so after a hot swap an entry stamped with
    /// the retired epoch must read as stale even though the user's history
    /// never moved — pre-fix the cache keyed on `(user, version)` alone and
    /// would have replayed old-model panels under the new model.
    epoch: ModelEpoch,
    view: Arc<HistoryView>,
    /// CLOCK reference bit: set by a hit, cleared (in exchange for a second
    /// chance) when the eviction sweep passes over the entry.
    referenced: bool,
}

struct CacheShard {
    map: HashMap<u32, CacheEntry>,
    /// Sweep order for second-chance (CLOCK) eviction.
    queue: VecDeque<u32>,
}

/// Bounded, sharded cache of [`HistoryView`]s keyed by
/// `(user, version, model epoch)`.
///
/// Invalidation is **lazy** along both key axes:
/// [`HistoryStore::append`] bumps the user's version, and a hot model swap
/// advances the serving [`ModelEpoch`], so the next [`ViewCache::get`] with
/// the fresh version or epoch misses (and counts as a miss) without the
/// appender — or the publisher — ever touching the cache.
/// Eviction is per-shard **second-chance CLOCK** once `max_entries` is
/// reached: a hit sets the entry's reference bit; the sweep pops the oldest
/// entry and, if its bit is set, clears it and requeues the entry instead of
/// evicting — so repeatedly-hit users survive bursts of one-shot traffic
/// that plain FIFO would let flush the whole shard. Freshly inserted (and
/// refreshed) entries start with the bit clear: an entry earns its second
/// chance only through an actual hit.
pub struct ViewCache {
    shards: Vec<Mutex<CacheShard>>,
    /// Per-shard entry bound (total bound split evenly, min 1).
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ViewCache {
    /// A cache holding at most `max_entries` views (must be ≥ 1).
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 1, "view cache must hold at least one entry");
        let shards = (0..N_SHARDS)
            .map(|_| Mutex::new(CacheShard { map: HashMap::new(), queue: VecDeque::new() }))
            .collect();
        ViewCache {
            shards,
            per_shard: max_entries.div_ceil(N_SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cached view for `user` **iff** it was built at exactly
    /// `version` under exactly the model `epoch`; a stale or absent entry —
    /// stale history *or* stale model — is a miss.
    pub fn get(&self, user: u32, version: u64, epoch: ModelEpoch) -> Option<Arc<HistoryView>> {
        let mut shard = self.shards[user as usize % N_SHARDS].lock().expect("view cache poisoned");
        match shard.map.get_mut(&user) {
            Some(e) if e.version == version && e.epoch == epoch => {
                e.referenced = true; // CLOCK: a hit earns a second chance
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.view))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Installs (or refreshes) `user`'s view for `version` under model
    /// `epoch`, running the second-chance sweep if the shard is over
    /// capacity. Concurrent duplicate builds are benign — the views are
    /// bit-identical by construction under one `(version, epoch)` key, so
    /// last write wins.
    pub fn insert(&self, user: u32, version: u64, epoch: ModelEpoch, view: Arc<HistoryView>) {
        let mut shard = self.shards[user as usize % N_SHARDS].lock().expect("view cache poisoned");
        if shard.map.insert(user, CacheEntry { version, epoch, view, referenced: false }).is_none()
        {
            shard.queue.push_back(user);
            while shard.map.len() > self.per_shard {
                let Some(cand) = shard.queue.pop_front() else { break };
                match shard.map.get_mut(&cand) {
                    Some(e) if e.referenced => {
                        // Second chance: trade the reference bit for
                        // another lap of the queue. Terminates — every
                        // requeue clears a bit and nothing sets bits while
                        // the shard lock is held.
                        e.referenced = false;
                        shard.queue.push_back(cand);
                    }
                    _ => {
                        shard.map.remove(&cand);
                    }
                }
            }
        }
    }

    /// Drops `user`'s entry (eager invalidation; appends don't need it —
    /// version checks already fence staleness — but tests and explicit
    /// resets do).
    pub fn invalidate(&self, user: u32) {
        let mut shard = self.shards[user as usize % N_SHARDS].lock().expect("view cache poisoned");
        if shard.map.remove(&user).is_some() {
            shard.queue.retain(|&u| u != user);
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("view cache poisoned").map.len())
                .sum(),
        }
    }
}

/// The history-resolution context of the stateful scoring path
/// ([`crate::score_requests_stateful`]): the store that
/// [`HistorySource::Stored`](crate::HistorySource) requests snapshot from,
/// plus an optional view cache for the scorer's history-side panels.
#[derive(Clone, Copy)]
pub struct HistoryBackend<'a> {
    /// Where stored histories live.
    pub store: &'a HistoryStore,
    /// Incremental view cache; `None` disables caching (views are then
    /// built per drain and dropped).
    pub cache: Option<&'a ViewCache>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_windows_are_bounded_and_chronological() {
        let store = HistoryStore::new(3, 4);
        assert_eq!(store.capacity(), 4);
        assert_eq!(store.n_users(), 3);
        assert_eq!(store.snapshot(1), (vec![], 0));
        for item in 0..6u32 {
            store.append(1, item * 10);
        }
        // Six appends into a 4-window: only the last four survive.
        let (items, version) = store.snapshot(1);
        assert_eq!(items, vec![20, 30, 40, 50]);
        assert_eq!(version, 6);
        // Other users untouched.
        assert_eq!(store.snapshot(0), (vec![], 0));
        assert_eq!(store.version(2), 0);
    }

    #[test]
    fn snapshot_into_reuses_the_buffer() {
        let store = HistoryStore::new(20, 3);
        store.append(17, 5);
        store.append(17, 6);
        let mut buf = vec![99, 99, 99, 99];
        let v = store.snapshot_into(17, &mut buf);
        assert_eq!((buf.as_slice(), v), ([5, 6].as_slice(), 2));
    }

    #[test]
    fn dataset_bulk_load_fills_window_tails() {
        use seqfm_data::{ranking::RankingConfig, Scale};
        let mut cfg = RankingConfig::gowalla(Scale::Small);
        cfg.n_users = 10;
        cfg.n_items = 40;
        cfg.min_len = 3;
        cfg.max_len = 9;
        let ds = seqfm_data::ranking::generate(&cfg).unwrap();
        let store = HistoryStore::new(ds.n_users, 5);
        let loaded = store.load_dataset(&ds);
        assert_eq!(loaded, ds.n_instances());
        for (u, events) in ds.per_user.iter().enumerate() {
            let (items, version) = store.snapshot(u as u32);
            let tail: Vec<u32> =
                events[events.len().saturating_sub(5)..].iter().map(|e| e.item).collect();
            assert_eq!(items, tail, "user {u} window is not the sequence tail");
            assert_eq!(version as usize, events.len(), "user {u} version");
        }
        // Appending after warm-up keeps versions strictly monotone.
        let before = store.version(0);
        assert_eq!(store.append(0, 1), before + 1);
    }

    #[test]
    fn cache_is_versioned_bounded_and_counted() {
        let e0 = ModelEpoch::ZERO;
        let cache = ViewCache::new(N_SHARDS); // one entry per shard
        let view = Arc::new(HistoryView::default());
        assert!(cache.get(3, 1, e0).is_none()); // miss: absent
        cache.insert(3, 1, e0, Arc::clone(&view));
        assert!(cache.get(3, 1, e0).is_some()); // hit
        assert!(cache.get(3, 2, e0).is_none()); // miss: stale version
        cache.insert(3, 2, e0, Arc::clone(&view));
        assert!(cache.get(3, 2, e0).is_some()); // refreshed in place, now referenced
                                                // Same shard (user 3 + N_SHARDS), capacity 1: user 3 was hit
                                                // since its refresh, so CLOCK gives it a second chance and the
                                                // unreferenced newcomer is the sweep's victim instead.
        cache.insert(3 + N_SHARDS as u32, 1, e0, Arc::clone(&view));
        assert!(cache.get(3, 2, e0).is_some());
        assert!(cache.get(3 + N_SHARDS as u32, 1, e0).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (3, 3, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        cache.invalidate(3);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn a_hot_swapped_model_epoch_invalidates_like_an_append() {
        let cache = ViewCache::new(8);
        let view = Arc::new(HistoryView::default());
        cache.insert(5, 7, ModelEpoch(1), Arc::clone(&view));
        assert!(cache.get(5, 7, ModelEpoch(1)).is_some(), "exact key hits");
        // Same user, same history version, newer model: the entry's panel
        // bakes in retired parameters and must not be served.
        assert!(cache.get(5, 7, ModelEpoch(2)).is_none(), "stale epoch must miss");
        // A rollback republishing the *original* epoch stamp makes the old
        // entry bitwise-valid again — the key is identity, not recency.
        cache.insert(5, 7, ModelEpoch(2), Arc::clone(&view));
        assert!(cache.get(5, 7, ModelEpoch(2)).is_some());
        assert!(cache.get(5, 7, ModelEpoch(1)).is_none(), "refresh replaced the old epoch");
    }

    #[test]
    fn clock_keeps_repeatedly_hit_entries_over_cold_ones() {
        let e0 = ModelEpoch::ZERO;
        let cache = ViewCache::new(2 * N_SHARDS); // two entries per shard
        let view = Arc::new(HistoryView::default());
        // Three users on the same shard.
        let (hot, cold, newcomer) = (3u32, 3 + N_SHARDS as u32, 3 + 2 * N_SHARDS as u32);
        cache.insert(hot, 1, e0, Arc::clone(&view));
        cache.insert(cold, 1, e0, Arc::clone(&view));
        // Hit `hot` so its reference bit is set; `cold` is never touched.
        assert!(cache.get(hot, 1, e0).is_some());
        // At capacity 2 the third insert forces a sweep. `hot` is first in
        // queue order — plain FIFO would evict it — but its reference bit
        // buys a second chance and the sweep falls through to `cold`.
        cache.insert(newcomer, 1, e0, Arc::clone(&view));
        assert!(cache.get(hot, 1, e0).is_some(), "hit entry must survive the sweep");
        assert!(cache.get(cold, 1, e0).is_none(), "cold entry is the eviction victim");
        assert!(cache.get(newcomer, 1, e0).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn concurrent_appends_and_snapshots_stay_consistent() {
        // Hammer one store from many threads: every snapshot must be a
        // window of one user's own items, bounded by capacity, with a
        // version that matches the items seen (the per-item encoding below
        // makes torn or cross-user reads detectable).
        const USERS: u32 = 8;
        const APPENDS: u32 = 200;
        const CAP: usize = 7;
        let store = Arc::new(HistoryStore::new(USERS as usize, CAP));
        std::thread::scope(|s| {
            for u in 0..USERS {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for k in 0..APPENDS {
                        // Encode (user, sequence number) into the item id.
                        let v = store.append(u, u * APPENDS + k);
                        assert_eq!(v, (k + 1) as u64, "versions must be per-user monotone");
                    }
                });
            }
            for u in 0..USERS {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let mut buf = Vec::new();
                    let mut last_version = 0u64;
                    for _ in 0..500 {
                        let version = store.snapshot_into(u, &mut buf);
                        assert!(version >= last_version, "version went backwards");
                        assert!(buf.len() <= CAP, "window exceeded capacity");
                        assert!(buf.len() as u64 <= version.max(CAP as u64));
                        for w in buf.windows(2) {
                            assert_eq!(w[1], w[0] + 1, "snapshot not contiguous: {buf:?}");
                        }
                        for &item in &buf {
                            assert_eq!(item / APPENDS, u, "cross-user contamination");
                        }
                        if version > 0 {
                            // The newest item pins the version: item k is
                            // written by append k+1.
                            assert_eq!(
                                u64::from(buf[buf.len() - 1] % APPENDS) + 1,
                                version,
                                "snapshot items and version are torn"
                            );
                        }
                        last_version = version;
                    }
                });
            }
        });
        // Final state: every user holds exactly the last CAP items.
        for u in 0..USERS {
            let (items, version) = store.snapshot(u);
            assert_eq!(version, u64::from(APPENDS));
            let want: Vec<u32> = (APPENDS - CAP as u32..APPENDS).map(|k| u * APPENDS + k).collect();
            assert_eq!(items, want);
        }
    }
}
