//! Serving-layer errors.

use std::fmt;

/// Why a score request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A request must carry at least one candidate item to score.
    NoCandidates,
    /// The user id is outside the model's feature layout.
    UnknownUser {
        /// Requested user id.
        user: u32,
        /// Number of users the model was trained for.
        n_users: usize,
    },
    /// A candidate or history item id is outside the model's feature layout.
    UnknownItem {
        /// Offending item id.
        item: u32,
        /// Number of items the model was trained for.
        n_items: usize,
    },
    /// The engine's workers are gone (the engine was dropped while the
    /// request was in flight).
    ShutDown,
    /// The worker thread panicked while scoring this request. The panic
    /// payload is drained into `message`; the worker itself survives and
    /// keeps serving other requests.
    WorkerPanicked {
        /// Text of the caught panic payload.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoCandidates => write!(f, "score request carries no candidate items"),
            Self::UnknownUser { user, n_users } => {
                write!(f, "unknown user {user} (model has {n_users} users)")
            }
            Self::UnknownItem { item, n_items } => {
                write!(f, "unknown item {item} (model has {n_items} items)")
            }
            Self::ShutDown => write!(f, "scoring engine shut down"),
            Self::WorkerPanicked { message } => {
                write!(f, "scoring worker panicked mid-request: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}
