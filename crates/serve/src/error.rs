//! Serving-layer errors.

use crate::request::ScoreRequest;
use std::fmt;

/// Why a score request could not be served.
///
/// `#[non_exhaustive]`: the serving layer grows failure modes (the stored-
/// history store added [`ServeError::NoHistoryStore`]); downstream matches
/// must keep a wildcard arm so new variants are not a breaking change.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// A request must carry at least one candidate item to score.
    NoCandidates,
    /// The request asked for [`HistorySource::Stored`](crate::HistorySource)
    /// resolution, but this scoring path has no [`crate::HistoryStore`]
    /// attached (e.g. the standalone [`crate::score_requests`] helpers).
    /// Route stored-history requests through an [`Engine`](crate::Engine),
    /// which always owns a store.
    NoHistoryStore,
    /// The user id is outside the model's feature layout.
    UnknownUser {
        /// Requested user id.
        user: u32,
        /// Number of users the model was trained for.
        n_users: usize,
    },
    /// A candidate or history item id is outside the model's feature layout.
    UnknownItem {
        /// Offending item id.
        item: u32,
        /// Number of items the model was trained for.
        n_items: usize,
    },
    /// The engine (or a [`crate::score_requests`] caller) was configured
    /// with an impossible parameter — e.g. `max_seq == 0`, which would
    /// build zero-width dynamic blocks the attention kernels were never
    /// trained for. Raised at construction so misconfiguration cannot
    /// surface as scrambled scores on the first request.
    BadConfig {
        /// Human-readable description of the rejected parameter.
        reason: String,
    },
    /// A full-catalog retrieval was requested but the engine was built
    /// without a [`CatalogIndex`](seqfm_retrieval::CatalogIndex) — attach
    /// one with [`Engine::with_catalog_index`](crate::Engine::with_catalog_index).
    NoCatalogIndex,
    /// The engine's bounded admission queue is full — the non-blocking
    /// [`Engine::submit`](crate::Engine::submit) backpressure signal. The
    /// caller decides: shed the request, retry after a beat, or park on
    /// capacity via [`Engine::submit_wait`](crate::Engine::submit_wait).
    Overloaded {
        /// The engine's admission-queue capacity
        /// ([`EngineConfig::queue_capacity`](crate::EngineConfig)).
        capacity: usize,
        /// The shed request, handed back untouched (like
        /// `std::sync::mpsc::TrySendError`) — retrying or falling back to
        /// `submit_wait` costs nothing on the admitted path.
        req: Box<ScoreRequest>,
    },
    /// The engine's workers are gone (the engine was dropped while the
    /// request was in flight).
    ShutDown,
    /// The worker thread panicked while scoring this request. The panic
    /// payload is drained into `message`; the worker itself survives and
    /// keeps serving other requests.
    WorkerPanicked {
        /// Text of the caught panic payload.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoCandidates => write!(f, "score request carries no candidate items"),
            Self::NoHistoryStore => {
                write!(f, "stored-history request on a scoring path without a history store")
            }
            Self::UnknownUser { user, n_users } => {
                write!(f, "unknown user {user} (model has {n_users} users)")
            }
            Self::UnknownItem { item, n_items } => {
                write!(f, "unknown item {item} (model has {n_items} items)")
            }
            Self::BadConfig { reason } => {
                write!(f, "invalid serving configuration: {reason}")
            }
            Self::NoCatalogIndex => {
                write!(f, "full-catalog retrieval requires a CatalogIndex attached to the engine")
            }
            Self::Overloaded { capacity, .. } => {
                write!(f, "admission queue full ({capacity} requests queued); request shed")
            }
            Self::ShutDown => write!(f, "scoring engine shut down"),
            Self::WorkerPanicked { message } => {
                write!(f, "scoring worker panicked mid-request: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}
