//! The multi-threaded scoring engine.
//!
//! An [`Engine`] owns a pool of worker threads fed by a
//! [`WorkQueue`](seqfm_parallel::WorkQueue): requests are submitted
//! round-robin onto **per-worker sharded queues**, and an idle worker steals
//! from its siblings, so dispatch never funnels through a single lock.
//! Every worker holds its own [`Scratch`] workspace (warm buffers, no
//! cross-thread locks on the hot path) and a shared `Arc` of the scorer —
//! which is why the [`Scorer`] contract requires `&self`-only scoring and
//! why `FrozenSeqFm: Send + Sync` is load-bearing.
//!
//! Replies travel through **reusable oneshot slots**
//! ([`seqfm_parallel::Oneshot`]): after a response is consumed the slot is
//! parked in a free list and re-armed by the next submit, so steady-state
//! serving allocates nothing on the reply path.
//!
//! Worker panics are contained: a panic while scoring one request is
//! drained into [`ServeError::WorkerPanicked`] for that request's caller,
//! and the worker keeps serving subsequent requests.

use crate::error::ServeError;
use crate::request::{score_request, ScoreRequest, ScoreResponse};
use seqfm_core::{Scorer, Scratch};
use seqfm_data::FeatureLayout;
use seqfm_parallel::{Oneshot, WorkQueue};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Engine sizing and ranking policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Dynamic window n˙ the serving model was trained with.
    pub max_seq: usize,
    /// Responses keep only the best `top_k` candidates; `0` keeps all.
    pub top_k: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // `max_seq` matches `SeqFmConfig::default`; single-threaded until the
        // caller opts into more.
        EngineConfig { threads: 1, max_seq: 20, top_k: 0 }
    }
}

type Reply = Result<ScoreResponse, ServeError>;
type Slot = Arc<Oneshot<Reply>>;

/// Parked reply slots awaiting reuse; bounded so a burst of one-off callers
/// cannot pin memory forever.
const MAX_PARKED_SLOTS: usize = 1024;

struct Job {
    req: ScoreRequest,
    slot: Slot,
    /// Set once a reply has been delivered; the `Drop` guard below then
    /// stays silent.
    answered: bool,
}

impl Drop for Job {
    fn drop(&mut self) {
        if !self.answered {
            // The job is dying unanswered: either its queue was destroyed
            // with the job still inside (engine torn down with dead
            // workers), or a worker is unwinding past its catch. Tell the
            // waiting caller which.
            self.slot.close(std::thread::panicking());
        }
    }
}

/// A handle to a submitted request; resolve it with
/// [`PendingResponse::wait`].
pub struct PendingResponse {
    slot: Slot,
    free: Arc<Mutex<Vec<Slot>>>,
}

impl PendingResponse {
    /// Blocks until the engine has scored the request.
    ///
    /// # Errors
    /// The request's own [`ServeError`];
    /// [`ServeError::WorkerPanicked`] if the worker thread panicked while
    /// scoring this request (the panic message is drained into the error,
    /// and the worker survives to serve other requests);
    /// [`ServeError::ShutDown`] if the engine was torn down before
    /// answering.
    pub fn wait(self) -> Result<ScoreResponse, ServeError> {
        match self.slot.recv() {
            Ok(reply) => {
                // recv() left the slot empty (armed); park it for reuse.
                let mut free = self.free.lock().expect("slot free list poisoned");
                if free.len() < MAX_PARKED_SLOTS {
                    free.push(self.slot);
                }
                reply
            }
            // Dropped without an answer — see the `Job` drop guard.
            Err(d) if d.panicked => Err(ServeError::WorkerPanicked {
                message: "worker thread panicked before replying".into(),
            }),
            Err(_) => Err(ServeError::ShutDown),
        }
    }
}

/// Multi-threaded scoring engine. See the module docs.
pub struct Engine {
    queue: Option<WorkQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    free: Arc<Mutex<Vec<Slot>>>,
}

impl Engine {
    /// Spawns `cfg.threads` workers sharing `scorer`.
    ///
    /// The scorer is typically a
    /// [`FrozenSeqFm`](seqfm_core::FrozenSeqFm) (graph-free fast path) or a
    /// [`GraphScorer`](seqfm_core::GraphScorer) over any baseline
    /// (compatibility path) — anything `Scorer + Send + Sync` works.
    ///
    /// # Panics
    /// Panics if `cfg.max_seq == 0` — a misconfigured window would otherwise
    /// surface as dead worker threads on the first request, like
    /// [`SeqFmConfig::validate`](seqfm_core::SeqFmConfig::validate) this
    /// fails fast at construction.
    pub fn new<S: Scorer + Send + Sync + 'static>(
        scorer: Arc<S>,
        layout: FeatureLayout,
        cfg: EngineConfig,
    ) -> Self {
        assert!(cfg.max_seq > 0, "EngineConfig::max_seq must be positive");
        let (queue, handles) = WorkQueue::<Job>::new(cfg.threads.max(1));
        let workers = handles
            .into_iter()
            .map(|handle| {
                let scorer = Arc::clone(&scorer);
                std::thread::spawn(move || {
                    let mut scratch = Scratch::new();
                    while let Some(mut job) = handle.recv() {
                        // Contain per-request panics: the caller gets the
                        // drained panic text, the worker keeps serving.
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            score_request(
                                &*scorer,
                                &layout,
                                cfg.max_seq,
                                cfg.top_k,
                                &job.req,
                                &mut scratch,
                            )
                        }));
                        let reply = match result {
                            Ok(r) => r,
                            Err(payload) => Err(ServeError::WorkerPanicked {
                                message: panic_message(payload.as_ref()),
                            }),
                        };
                        // A dropped reply receiver just means the caller gave
                        // up on this request; keep serving.
                        let _ = job.slot.send(reply);
                        job.answered = true;
                    }
                })
            })
            .collect();
        Engine { queue: Some(queue), workers, free: Arc::new(Mutex::new(Vec::new())) }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a request and returns immediately; the next worker in
    /// round-robin order (or a stealing sibling) picks it up. Pair with
    /// [`PendingResponse::wait`], or use [`Engine::score`] for the blocking
    /// round trip. The reply slot comes from the engine's free list — no
    /// allocation once the engine is warm.
    pub fn submit(&self, req: ScoreRequest) -> PendingResponse {
        let slot: Slot = self
            .free
            .lock()
            .expect("slot free list poisoned")
            .pop()
            .unwrap_or_else(|| Arc::new(Oneshot::new()));
        slot.reset(); // re-arm (clears any stale close marker)
        match &self.queue {
            Some(q) => q.push(Job { req, slot: Arc::clone(&slot), answered: false }),
            // Unreachable while the engine is alive; keep `wait` total.
            None => slot.close(false),
        }
        PendingResponse { slot, free: Arc::clone(&self.free) }
    }

    /// Scores one request, blocking until the response is ready.
    ///
    /// # Errors
    /// See [`PendingResponse::wait`].
    pub fn score(&self, req: ScoreRequest) -> Result<ScoreResponse, ServeError> {
        self.submit(req).wait()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the queue lets every worker drain the backlog and exit;
        // in-flight requests are answered, not dropped.
        drop(self.queue.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Renders a caught panic payload for [`ServeError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::ParamStore;
    use seqfm_core::{FrozenSeqFm, SeqFm, SeqFmConfig};
    use seqfm_data::Batch;

    fn frozen_model(layout: &FeatureLayout) -> FrozenSeqFm {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = SeqFmConfig { d: 8, max_seq: 6, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, layout, cfg);
        FrozenSeqFm::freeze(&model, &ps)
    }

    #[test]
    fn engine_matches_direct_scoring_across_many_requests() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let frozen = Arc::new(frozen_model(&layout));
        let cfg = EngineConfig { threads: 3, max_seq: 6, top_k: 5 };
        let engine = Engine::new(Arc::clone(&frozen), layout, cfg);
        assert_eq!(engine.threads(), 3);

        let requests: Vec<ScoreRequest> = (0..24)
            .map(|i| ScoreRequest {
                user: (i % 8) as u32,
                history: (0..(i % 5)).map(|j| ((i + j) % 20) as u32).collect(),
                candidates: (0..20).map(|c| ((c + i) % 20) as u32).collect(),
            })
            .collect();

        // Fan out everything first, then collect — exercises concurrency.
        let pending: Vec<PendingResponse> =
            requests.iter().map(|r| engine.submit(r.clone())).collect();
        let mut scratch = Scratch::new();
        for (req, p) in requests.iter().zip(pending) {
            let got = p.wait().expect("valid request");
            let want =
                score_request(&*frozen, &layout, 6, 5, req, &mut scratch).expect("valid request");
            assert_eq!(got, want, "engine answer diverges for {req:?}");
        }
    }

    #[test]
    fn engine_reports_request_errors_not_panics() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine = Engine::new(
            Arc::new(frozen_model(&layout)),
            layout,
            EngineConfig { threads: 1, max_seq: 6, top_k: 0 },
        );
        let bad = ScoreRequest { user: 99, history: vec![], candidates: vec![1] };
        assert_eq!(engine.score(bad), Err(ServeError::UnknownUser { user: 99, n_users: 8 }));
        // The worker survives a bad request.
        let ok = ScoreRequest { user: 1, history: vec![2], candidates: vec![1, 2, 3] };
        assert_eq!(engine.score(ok).expect("valid").ranked.len(), 3);
    }

    /// A scorer that panics on a poison candidate — for panic containment
    /// tests.
    struct Grenade(FrozenSeqFm);

    impl Scorer for Grenade {
        fn name(&self) -> &str {
            "grenade"
        }

        fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
            if batch.targets.len() == 13 {
                panic!("grenade went off");
            }
            self.0.score(batch, scratch)
        }
    }

    #[test]
    fn worker_panic_is_drained_into_the_error_and_worker_survives() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine = Engine::new(
            Arc::new(Grenade(frozen_model(&layout))),
            layout,
            EngineConfig { threads: 1, max_seq: 6, top_k: 0 },
        );
        // 13 candidates → the scorer panics mid-request.
        let boom = ScoreRequest { user: 1, history: vec![2], candidates: (0..13).collect() };
        match engine.score(boom) {
            Err(ServeError::WorkerPanicked { message }) => {
                assert!(message.contains("grenade went off"), "panic text not drained: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The same (sole) worker keeps serving afterwards.
        let ok = ScoreRequest { user: 1, history: vec![2], candidates: vec![1, 2, 3] };
        assert_eq!(engine.score(ok).expect("valid").ranked.len(), 3);
    }

    #[test]
    fn reply_slots_are_reused_across_sequential_requests() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine = Engine::new(
            Arc::new(frozen_model(&layout)),
            layout,
            EngineConfig { threads: 2, max_seq: 6, top_k: 2 },
        );
        let req = ScoreRequest { user: 0, history: vec![1], candidates: vec![2, 3, 4] };
        let first = engine.score(req.clone()).expect("valid");
        for _ in 0..50 {
            let again = engine.score(req.clone()).expect("valid");
            assert_eq!(again, first, "reused slot corrupted a response");
        }
        // Sequential round trips always reuse the single parked slot.
        assert_eq!(engine.free.lock().unwrap().len(), 1, "free list should hold one parked slot");
    }

    #[test]
    #[should_panic(expected = "max_seq must be positive")]
    fn zero_max_seq_fails_fast_at_construction() {
        let layout = FeatureLayout { n_users: 4, n_items: 10 };
        let _ = Engine::new(
            Arc::new(frozen_model(&layout)),
            layout,
            EngineConfig { threads: 1, max_seq: 0, top_k: 0 },
        );
    }

    #[test]
    fn dropping_the_engine_joins_workers_cleanly() {
        let layout = FeatureLayout { n_users: 4, n_items: 10 };
        let engine = Engine::new(
            Arc::new(frozen_model(&layout)),
            layout,
            EngineConfig { threads: 2, max_seq: 6, top_k: 1 },
        );
        let req = ScoreRequest { user: 0, history: vec![1], candidates: vec![2, 3] };
        let _ = engine.score(req).expect("valid");
        drop(engine); // must not hang or panic

        // In-flight work submitted before the drop is answered, not lost:
        // covered implicitly — the queue drains before workers exit.
    }
}
