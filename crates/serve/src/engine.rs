//! The multi-threaded, batch-coalescing, **stateful** scoring engine.
//!
//! An [`Engine`] owns a pool of worker threads fed by a **bounded**
//! [`WorkQueue`](seqfm_parallel::WorkQueue): requests are admitted
//! round-robin onto per-worker sharded queues, an idle worker steals from
//! its siblings, and — the throughput lever — each worker wakeup **drains up
//! to [`EngineConfig::coalesce_max`] queued requests at once**, groups the
//! ones sharing a canonical history window (regardless of user), and scores
//! every group as one super-batch through
//! [`score_requests_stateful`](crate::score_requests_stateful). The frozen
//! scorer's shared-history fast path then fires *across* requests and
//! *across users*, so throughput rises with load, not only with threads.
//!
//! Since the stateful-serving redesign the engine also **owns the
//! sequences**: a sharded [`HistoryStore`](crate::HistoryStore) sized
//! `layout.n_users × history_capacity`, warmed from a dataset
//! ([`Engine::warm_histories`]) and kept current by
//! [`Engine::append_event`]. A [`HistorySource::Stored`](crate::HistorySource)
//! request is just `(user, candidates)`; workers snapshot the window under
//! one shard read lock and — when [`EngineConfig::cache_entries`] > 0 —
//! memoise the scorer's history-side panel in a versioned
//! [`ViewCache`](crate::ViewCache), so a cache hit skips the history half
//! of the forward entirely. All of it is bit-identical to inline scoring.
//!
//! Admission is explicit: the non-blocking [`Engine::submit`] sheds load
//! with [`ServeError::Overloaded`] once
//! [`EngineConfig::queue_capacity`] requests are queued, while
//! [`Engine::submit_wait`] parks the caller until capacity frees up. Every
//! worker holds its own [`Scratch`] workspace (warm buffers, no cross-thread
//! locks on the hot path) and a shared `Arc` of the scorer — which is why
//! the [`Scorer`] contract requires `&self`-only scoring and why
//! `FrozenSeqFm: Send + Sync` is load-bearing.
//!
//! Replies travel through **reusable oneshot slots**
//! ([`seqfm_parallel::Oneshot`]) parked **per caller thread**: consuming a
//! response parks its slot in the calling thread's own stack, and the next
//! submit from that thread re-arms it. There is no shared free list and no
//! lock anywhere on the reply path (beyond the oneshot's own rendezvous),
//! and steady-state serving allocates nothing for replies. A
//! [`PendingResponse`] dropped without [`wait`](PendingResponse::wait)
//! recycles its slot too, provided the reply already arrived.
//!
//! Worker panics are contained: a panic while scoring is drained into
//! [`ServeError::WorkerPanicked`] for every request of that coalesced
//! drain, and the worker keeps serving subsequent requests.

use crate::error::ServeError;
use crate::request::{score_requests_stateful, CoalesceScratch, ScoreRequest, ScoreResponse};
use crate::store::{CacheStats, HistoryBackend, HistoryStore, ViewCache};
use seqfm_core::{FrozenSeqFm, ModelEpoch, Scorer, ScorerPrecision, Scratch};
use seqfm_data::{Dataset, FeatureLayout};
use seqfm_parallel::{ArcSlot, Oneshot, WorkQueue};
use seqfm_retrieval::{CatalogIndex, Retrieval, RetrievalError};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine sizing, admission, ranking, and history-store policy.
///
/// `#[non_exhaustive]`: construct it with [`EngineConfig::builder`] (new
/// knobs must not break downstream builds). Inside this crate, struct
/// literals remain available to tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Dynamic window n˙ the serving model was trained with. Must be ≥ 1.
    pub max_seq: usize,
    /// Responses keep only the best `top_k` candidates; `0` keeps all.
    pub top_k: usize,
    /// Admission bound: at most this many requests queued across all
    /// workers before [`Engine::submit`] sheds load with
    /// [`ServeError::Overloaded`]. Must be ≥ 1.
    pub queue_capacity: usize,
    /// Requests a worker drains per wakeup and scores as coalesced
    /// same-history super-batches. `1` disables coalescing; larger values
    /// trade per-request latency for throughput under load. Must be ≥ 1.
    pub coalesce_max: usize,
    /// Deadline-aware coalescing: a worker whose drain came up short of
    /// [`coalesce_max`](EngineConfig::coalesce_max) polls the queue for up
    /// to this many **microseconds** before scoring, letting near-simultaneous
    /// requests land in the same super-batch instead of just missing it.
    /// `0` (the default) scores immediately — the latency-first behaviour;
    /// small values (tens of µs) buy batch depth under bursty load at a
    /// bounded, explicit latency cost. The linger never waits on an empty
    /// queue and never stalls a full batch.
    pub linger_us: u64,
    /// Per-user [`HistoryStore`](crate::HistoryStore) ring capacity; `0`
    /// (the default) means "use `max_seq`" — the window the model can see
    /// anyway.
    pub history_capacity: usize,
    /// Bound on the [`ViewCache`](crate::ViewCache) memoising history-side
    /// panels for stored-history requests; `0` disables caching.
    pub cache_entries: usize,
    /// Serving arithmetic profile, applied to the model by
    /// [`Engine::new_frozen`]: [`ScorerPrecision::Exact`] replays the
    /// training graph bit for bit; [`ScorerPrecision::Fast`] serves from
    /// quantized parameters with fused-FMA kernels (deterministic, with a
    /// documented per-logit ε — see `seqfm_core::precision`). The generic
    /// [`Engine::new`] ignores this knob: an arbitrary scorer cannot be
    /// re-quantized, so callers choosing `Fast` there must pass a scorer
    /// already converted via `FrozenSeqFm::with_precision`.
    pub precision: ScorerPrecision,
    /// Rebuild an attached [`CatalogIndex`] on a dedicated builder thread
    /// (the default): [`Engine::publish_frozen`] returns in slot-swap time
    /// and [`Engine::retrieve_top_k`] serves brute-force scans under the
    /// *new* model until the rebuilt index lands. `false` restores the
    /// synchronous rebuild on the publishing thread — publish blocks for
    /// the rebuild, but the index is current the moment it returns.
    pub background_rebuild: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // `max_seq` matches `SeqFmConfig::default`; single-threaded until the
        // caller opts into more. The admission queue absorbs a healthy burst
        // before shedding; modest coalescing is on by default — it only
        // batches requests that are *already* waiting, so an unloaded engine
        // keeps single-request latency. The view cache defaults on: a cached
        // panel is bit-identical to a rebuilt one, so it is purely a
        // throughput lever.
        EngineConfig {
            threads: 1,
            max_seq: 20,
            top_k: 0,
            queue_capacity: 1024,
            coalesce_max: 16,
            linger_us: 0,
            history_capacity: 0,
            cache_entries: 1024,
            precision: ScorerPrecision::Exact,
            background_rebuild: true,
        }
    }
}

impl EngineConfig {
    /// A builder starting from [`EngineConfig::default`] — the only way to
    /// construct an `EngineConfig` outside this crate (the struct is
    /// `#[non_exhaustive]`).
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder { cfg: EngineConfig::default() }
    }

    /// Checks the configuration, mirroring
    /// [`SeqFmConfig::validate`](seqfm_core::SeqFmConfig::validate) but as a
    /// value instead of a panic — a misconfigured window would otherwise
    /// surface as scrambled scores or dead workers on the first request.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |reason: &str| Err(ServeError::BadConfig { reason: reason.into() });
        if self.max_seq == 0 {
            return bad("max_seq must be >= 1 (a zero-width dynamic block cannot be scored)");
        }
        if self.queue_capacity == 0 {
            return bad("queue_capacity must be >= 1 (an engine that admits nothing cannot serve)");
        }
        if self.coalesce_max == 0 {
            return bad("coalesce_max must be >= 1 (each worker wakeup must drain a request)");
        }
        Ok(())
    }

    /// The resolved per-user store capacity (`history_capacity`, defaulting
    /// to `max_seq` when 0).
    fn resolved_history_capacity(&self) -> usize {
        if self.history_capacity == 0 {
            self.max_seq
        } else {
            self.history_capacity
        }
    }
}

/// Fluent constructor for [`EngineConfig`] (which is `#[non_exhaustive]`).
///
/// ```
/// use seqfm_serve::EngineConfig;
/// let cfg = EngineConfig::builder()
///     .threads(2)
///     .max_seq(5)
///     .top_k(3)
///     .build()
///     .expect("valid config");
/// assert_eq!((cfg.threads, cfg.top_k), (2, 3));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Worker threads. See [`EngineConfig::threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Dynamic window width. See [`EngineConfig::max_seq`].
    pub fn max_seq(mut self, max_seq: usize) -> Self {
        self.cfg.max_seq = max_seq;
        self
    }

    /// Ranking truncation. See [`EngineConfig::top_k`].
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.cfg.top_k = top_k;
        self
    }

    /// Admission bound. See [`EngineConfig::queue_capacity`].
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.cfg.queue_capacity = queue_capacity;
        self
    }

    /// Per-wakeup drain bound. See [`EngineConfig::coalesce_max`].
    pub fn coalesce_max(mut self, coalesce_max: usize) -> Self {
        self.cfg.coalesce_max = coalesce_max;
        self
    }

    /// Short-drain linger deadline in microseconds. See
    /// [`EngineConfig::linger_us`].
    pub fn linger_us(mut self, linger_us: u64) -> Self {
        self.cfg.linger_us = linger_us;
        self
    }

    /// Per-user history ring capacity. See
    /// [`EngineConfig::history_capacity`].
    pub fn history_capacity(mut self, history_capacity: usize) -> Self {
        self.cfg.history_capacity = history_capacity;
        self
    }

    /// View-cache bound. See [`EngineConfig::cache_entries`].
    pub fn cache_entries(mut self, cache_entries: usize) -> Self {
        self.cfg.cache_entries = cache_entries;
        self
    }

    /// Serving arithmetic profile. See [`EngineConfig::precision`].
    pub fn precision(mut self, precision: ScorerPrecision) -> Self {
        self.cfg.precision = precision;
        self
    }

    /// Off-thread index rebuilds. See [`EngineConfig::background_rebuild`].
    pub fn background_rebuild(mut self, background_rebuild: bool) -> Self {
        self.cfg.background_rebuild = background_rebuild;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] — see [`EngineConfig::validate`].
    pub fn build(self) -> Result<EngineConfig, ServeError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

type Reply = Result<ScoreResponse, ServeError>;
type Slot = Arc<Oneshot<Reply>>;

/// Parked reply slots awaiting reuse, **per caller thread** — the
/// ROADMAP's "per-caller reply-slot reuse". The previous design parked
/// slots in an engine-wide `Arc<Mutex<Vec<Slot>>>` touched twice per round
/// trip; keeping them with the caller makes arming and parking plain
/// thread-local pushes/pops, lock-free end to end. A caller that fans out
/// `k` submits before waiting simply parks `k` slots here.
///
/// Bounded so a burst of one-off callers cannot pin memory forever; a
/// caller thread's slots are freed when the thread exits.
const MAX_PARKED_SLOTS: usize = 256;

thread_local! {
    static PARKED_SLOTS: RefCell<Vec<Slot>> = const { RefCell::new(Vec::new()) };
}

/// Pops this thread's most recently parked slot (or allocates the first
/// time) and re-arms it.
fn arm_slot() -> Slot {
    let slot =
        PARKED_SLOTS.with(|p| p.borrow_mut().pop()).unwrap_or_else(|| Arc::new(Oneshot::new()));
    slot.reset(); // re-arm (clears any stale close marker)
    slot
}

/// Parks a slot on the current thread for reuse by a later submit.
fn park_slot(slot: Slot) {
    PARKED_SLOTS.with(|p| {
        let mut parked = p.borrow_mut();
        if parked.len() < MAX_PARKED_SLOTS {
            parked.push(slot);
        }
    });
}

/// Number of slots parked on the current thread (test observability).
#[cfg(test)]
fn parked_slots() -> usize {
    PARKED_SLOTS.with(|p| p.borrow().len())
}

struct Job {
    req: ScoreRequest,
    slot: Slot,
    /// Set once a reply has been delivered; the `Drop` guard below then
    /// stays silent.
    answered: bool,
}

impl Drop for Job {
    fn drop(&mut self) {
        if !self.answered {
            // The job is dying unanswered: either its queue was destroyed
            // with the job still inside (engine torn down with dead
            // workers), or a worker is unwinding past its catch. Tell the
            // waiting caller which.
            self.slot.close(std::thread::panicking());
        }
    }
}

/// A handle to a submitted request; resolve it with
/// [`PendingResponse::wait`].
///
/// The handle *is* the parked-slot carrier of the per-caller reuse scheme:
/// waiting (or dropping after the reply arrived) parks the slot on the
/// consuming thread for that thread's next submit, so abandoned handles
/// cannot leak the zero-allocation steady state away.
pub struct PendingResponse {
    /// `Some` until `wait` or `Drop` consumes the slot.
    slot: Option<Slot>,
}

impl PendingResponse {
    /// Blocks until the engine has scored the request.
    ///
    /// # Errors
    /// The request's own [`ServeError`];
    /// [`ServeError::WorkerPanicked`] if the worker thread panicked while
    /// scoring this request (the panic message is drained into the error,
    /// and the worker survives to serve other requests);
    /// [`ServeError::ShutDown`] if the engine was torn down before
    /// answering.
    pub fn wait(mut self) -> Result<ScoreResponse, ServeError> {
        let slot = self.slot.take().expect("slot present until wait/drop");
        let reply = match slot.recv() {
            Ok(reply) => reply,
            // Dropped without an answer — see the `Job` drop guard.
            Err(d) if d.panicked => Err(ServeError::WorkerPanicked {
                message: "worker thread panicked before replying".into(),
            }),
            Err(_) => Err(ServeError::ShutDown),
        };
        // The producer is done with the slot on every branch (value taken,
        // or sticky close — cleared by the next re-arm); park it for reuse.
        park_slot(slot);
        reply
    }
}

impl Drop for PendingResponse {
    fn drop(&mut self) {
        let Some(slot) = self.slot.take() else {
            return; // consumed by wait()
        };
        // Recycle only if the producer is done with the slot (reply or
        // close already arrived). An unanswered slot may still receive a
        // worker's send — re-arming it for another request would cross the
        // two replies, so that slot is simply dropped (the worker's send
        // lands in an Arc nobody reads, then the memory is freed).
        if slot.try_recv().is_some() {
            slot.reset(); // clear any sticky close marker before reuse
            park_slot(slot);
        }
    }
}

/// One published model revision: the type-erased scorer the workers run,
/// stamped with the [`ModelEpoch`] it serves, plus (for frozen-SeqFM
/// revisions) the concrete frozen model that retrieval fallbacks and index
/// rebuilds need.
///
/// Revisions live in the engine's lock-free [`ArcSlot`]; each worker loads
/// the slot **once per drain**, so every request in a coalesced super-batch
/// — and every cache entry it installs — is pinned to a single epoch even
/// while [`Engine::publish_frozen`] swaps underneath it.
pub struct ModelRev {
    epoch: ModelEpoch,
    scorer: Arc<dyn Scorer + Send + Sync>,
    frozen: Option<Arc<FrozenSeqFm>>,
}

/// Conversion into the engine's type-erased scorer handle. Implemented for
/// any sized `Arc<S: Scorer + Send + Sync>` (the unsizing coercion) and for
/// an already-erased `Arc<dyn Scorer + Send + Sync>`, so both spell
/// `Engine::new(scorer, ..)` / `Engine::publish(scorer)` the same way.
pub trait IntoScorer {
    /// Type-erases the handle.
    fn into_scorer(self) -> Arc<dyn Scorer + Send + Sync>;
}

impl IntoScorer for Arc<dyn Scorer + Send + Sync> {
    fn into_scorer(self) -> Arc<dyn Scorer + Send + Sync> {
        self
    }
}

impl<S: Scorer + Send + Sync + 'static> IntoScorer for Arc<S> {
    fn into_scorer(self) -> Arc<dyn Scorer + Send + Sync> {
        self
    }
}

impl ModelRev {
    fn of_scorer(scorer: Arc<dyn Scorer + Send + Sync>) -> Self {
        ModelRev { epoch: scorer.model_epoch(), scorer, frozen: None }
    }

    fn of_frozen(model: Arc<FrozenSeqFm>) -> Self {
        ModelRev {
            epoch: model.epoch(),
            scorer: Arc::clone(&model) as Arc<dyn Scorer + Send + Sync>,
            frozen: Some(model),
        }
    }

    /// The epoch this revision serves.
    pub fn epoch(&self) -> ModelEpoch {
        self.epoch
    }

    /// The scorer this revision serves.
    pub fn scorer(&self) -> &Arc<dyn Scorer + Send + Sync> {
        &self.scorer
    }

    /// The concrete frozen model behind this revision, when it has one
    /// (revisions published via [`Engine::publish_frozen`] or
    /// [`Engine::new_frozen`] do; type-erased [`Engine::publish`] revisions
    /// don't).
    pub fn frozen(&self) -> Option<&Arc<FrozenSeqFm>> {
        self.frozen.as_ref()
    }
}

/// Drainable append-event stream — the bridge from the serving engine to an
/// online trainer. When attached ([`Engine::with_event_log`]), every
/// successful [`Engine::append_event`] also records `(user, item)` here, in
/// order; a trainer periodically [`drain`](EventLog::drain_into)s the log,
/// folds the events into its optimizer state, and publishes fresh epochs
/// back via [`Engine::publish_frozen`]. Because the log preserves append
/// order, the trainer's state is a pure function of the event stream — the
/// root of the offline-replay parity guarantee.
#[derive(Default)]
pub struct EventLog {
    events: Mutex<Vec<(u32, u32)>>,
}

impl EventLog {
    /// Moves all recorded events (in append order) onto the end of `out`
    /// and returns how many were moved. The log is left empty.
    pub fn drain_into(&self, out: &mut Vec<(u32, u32)>) -> usize {
        let mut events = self.events.lock().expect("event log poisoned");
        let n = events.len();
        out.append(&mut events);
        n
    }

    /// Events currently buffered (recorded but not yet drained).
    pub fn len(&self) -> usize {
        self.events.lock().expect("event log poisoned").len()
    }

    /// Whether the log is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn record(&self, user: u32, item: u32) {
        self.events.lock().expect("event log poisoned").push((user, item));
    }
}

/// Latest-wins handoff between [`Engine::publish_frozen`] and the index
/// builder thread. Depth-one by design: a publish overwrites any rebuild
/// job still waiting — only the newest model is worth an index, and the
/// builder's post-rebuild epoch check discards work that a faster publisher
/// obsoleted mid-rebuild. `busy` tracks a rebuild in flight so
/// [`Engine::wait_for_index`] can wait for a genuinely settled index, not
/// just an empty mailbox.
struct RebuildMailbox {
    state: Mutex<RebuildState>,
    cv: Condvar,
}

struct RebuildState {
    /// The model awaiting an index rebuild (newest only).
    job: Option<Arc<FrozenSeqFm>>,
    /// A rebuild is running right now.
    busy: bool,
    /// Engine teardown: the builder exits instead of sleeping.
    shutdown: bool,
}

impl RebuildMailbox {
    fn new() -> Self {
        RebuildMailbox {
            state: Mutex::new(RebuildState { job: None, busy: false, shutdown: false }),
            cv: Condvar::new(),
        }
    }

    /// Posts a rebuild job, replacing any job not yet picked up.
    fn post(&self, model: Arc<FrozenSeqFm>) {
        self.state.lock().expect("rebuild mailbox poisoned").job = Some(model);
        self.cv.notify_all();
    }
}

/// The engine's index builder thread: mailbox plus join handle.
struct Rebuilder {
    mailbox: Arc<RebuildMailbox>,
    handle: Option<JoinHandle<()>>,
}

/// Multi-threaded batch-coalescing scoring engine that owns the user
/// histories. See the module docs.
pub struct Engine {
    queue: Option<WorkQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    layout: FeatureLayout,
    cfg: EngineConfig,
    store: Arc<HistoryStore>,
    cache: Option<Arc<ViewCache>>,
    model: Arc<ArcSlot<ModelRev>>,
    index: Option<Arc<ArcSlot<CatalogIndex>>>,
    rebuilder: Option<Rebuilder>,
    events: Option<Arc<EventLog>>,
}

impl Engine {
    /// Spawns `cfg.threads` workers sharing `scorer`, plus a
    /// [`HistoryStore`](crate::HistoryStore) sized
    /// `layout.n_users × history_capacity` and (when
    /// `cfg.cache_entries > 0`) a [`ViewCache`](crate::ViewCache).
    ///
    /// The scorer is typically a
    /// [`FrozenSeqFm`](seqfm_core::FrozenSeqFm) (graph-free fast path) or a
    /// [`GraphScorer`](seqfm_core::GraphScorer) over any baseline
    /// (compatibility path) — anything `Scorer + Send + Sync` works.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] when [`EngineConfig::validate`] rejects
    /// `cfg` — failing fast here instead of on the first request.
    pub fn new<S: IntoScorer>(
        scorer: S,
        layout: FeatureLayout,
        cfg: EngineConfig,
    ) -> Result<Self, ServeError> {
        Self::from_rev(ModelRev::of_scorer(scorer.into_scorer()), layout, cfg)
    }

    fn from_rev(
        rev: ModelRev,
        layout: FeatureLayout,
        cfg: EngineConfig,
    ) -> Result<Self, ServeError> {
        cfg.validate()?;
        let store = Arc::new(HistoryStore::new(layout.n_users, cfg.resolved_history_capacity()));
        let cache = (cfg.cache_entries > 0).then(|| Arc::new(ViewCache::new(cfg.cache_entries)));
        let model = Arc::new(ArcSlot::new(Arc::new(rev)));
        let (queue, handles) = WorkQueue::<Job>::bounded(cfg.threads.max(1), cfg.queue_capacity);
        let workers = handles
            .into_iter()
            .map(|handle| {
                let model = Arc::clone(&model);
                let store = Arc::clone(&store);
                let cache = cache.clone();
                std::thread::spawn(move || {
                    let mut scratch = Scratch::new();
                    let mut coalesce = CoalesceScratch::new();
                    let mut jobs: Vec<Job> = Vec::new();
                    let mut reqs: Vec<ScoreRequest> = Vec::new();
                    let mut replies: Vec<Reply> = Vec::new();
                    let backend = HistoryBackend { store: &store, cache: cache.as_deref() };
                    // The coalescer: drain up to `coalesce_max` queued
                    // requests per wakeup and score them as grouped
                    // super-batches. Under light load the drain holds one
                    // request and this degenerates to per-request scoring.
                    // Every buffer here (the drain, the request staging, the
                    // coalesce scratch, the replies) is worker-owned and
                    // reused across wakeups.
                    while handle.recv_many(cfg.coalesce_max, &mut jobs) {
                        // Deadline-aware coalescing: a short drain may poll
                        // briefly for stragglers. Never waits when the batch
                        // is already full, and a zero deadline (the default)
                        // skips the clock read entirely.
                        if cfg.linger_us > 0 && jobs.len() < cfg.coalesce_max {
                            let deadline = Instant::now() + Duration::from_micros(cfg.linger_us);
                            while jobs.len() < cfg.coalesce_max && Instant::now() < deadline {
                                if handle.try_recv_many(cfg.coalesce_max - jobs.len(), &mut jobs)
                                    == 0
                                {
                                    std::thread::yield_now();
                                }
                            }
                        }
                        // Pin the model revision for this whole drain: one
                        // slot load, so a concurrent publish never splits a
                        // coalesced super-batch across epochs.
                        let rev = model.load();
                        // Move the requests out of the jobs (the `Drop`
                        // guard forbids destructuring) into the reused
                        // staging buffer — no per-wakeup reference array.
                        reqs.clear();
                        for job in jobs.iter_mut() {
                            reqs.push(std::mem::take(&mut job.req));
                        }
                        // Contain panics: every caller in this drain gets
                        // the drained panic text, the worker keeps serving.
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            score_requests_stateful(
                                &*rev.scorer,
                                &layout,
                                cfg.max_seq,
                                cfg.top_k,
                                &reqs,
                                Some(&backend),
                                &mut scratch,
                                &mut coalesce,
                                &mut replies,
                            )
                        }));
                        if let Err(payload) = result {
                            let message = panic_message(payload.as_ref());
                            replies.clear();
                            replies.extend(jobs.iter().map(|_| {
                                Err(ServeError::WorkerPanicked { message: message.clone() })
                            }));
                        }
                        for (job, reply) in jobs.iter_mut().zip(replies.drain(..)) {
                            // A dropped reply receiver just means the caller
                            // gave up on this request; keep serving.
                            let _ = job.slot.send(reply);
                            job.answered = true;
                        }
                        jobs.clear();
                    }
                })
            })
            .collect();
        Ok(Engine {
            queue: Some(queue),
            workers,
            layout,
            cfg,
            store,
            cache,
            model,
            index: None,
            rebuilder: None,
            events: None,
        })
    }

    /// Spawns an engine over a frozen SeqFM, first switching the model to
    /// `cfg.precision` (see [`EngineConfig::precision`]). This is the
    /// profile-aware front door: `.precision(ScorerPrecision::Fast)` on the
    /// config builder is all it takes to serve the reduced-precision
    /// profile, with every worker sharing the one quantized parameter
    /// bundle.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] when [`EngineConfig::validate`] rejects
    /// `cfg`.
    pub fn new_frozen(
        model: FrozenSeqFm,
        layout: FeatureLayout,
        cfg: EngineConfig,
    ) -> Result<Self, ServeError> {
        let model = Arc::new(model.with_precision(cfg.precision));
        Self::from_rev(ModelRev::of_frozen(model), layout, cfg)
    }

    /// Attaches a full-catalog [`CatalogIndex`] so [`Engine::retrieve_top_k`]
    /// can answer "best k items of the *whole* catalog" queries. The index
    /// must be built over the same frozen model and feature layout the
    /// engine serves — retrieval scores come from the index's model.
    ///
    /// The index lives in its own hot-swap slot: [`Engine::publish_frozen`]
    /// rebuilds it for each new epoch off the serving path (on a dedicated
    /// builder thread unless [`EngineConfig::background_rebuild`] is off),
    /// and [`Engine::retrieve_top_k`] falls back to a brute-force scan with
    /// the fresh model during the window where the index still carries the
    /// previous epoch.
    ///
    /// # Panics
    /// Panics if the index's layout disagrees with the engine's.
    #[must_use]
    pub fn with_catalog_index(mut self, index: Arc<CatalogIndex>) -> Self {
        assert_eq!(
            (index.layout().n_users, index.layout().n_items),
            (self.layout.n_users, self.layout.n_items),
            "catalog index layout must match the engine's"
        );
        let slot = Arc::new(ArcSlot::new(index));
        if self.cfg.background_rebuild {
            let mailbox = Arc::new(RebuildMailbox::new());
            let handle = {
                let mailbox = Arc::clone(&mailbox);
                let slot = Arc::clone(&slot);
                let model = Arc::clone(&self.model);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut st = mailbox.state.lock().expect("rebuild mailbox poisoned");
                        loop {
                            if st.shutdown {
                                return;
                            }
                            if let Some(m) = st.job.take() {
                                st.busy = true;
                                break m;
                            }
                            st = mailbox.cv.wait(st).expect("rebuild mailbox poisoned");
                        }
                    };
                    // The delta rebuild runs outside the lock — publishers
                    // keep posting (and overwriting) jobs meanwhile.
                    let rebuilt = slot.load().rebuild_for(Arc::clone(&job));
                    let mut st = mailbox.state.lock().expect("rebuild mailbox poisoned");
                    // Latest-wins: land the rebuilt index only while its
                    // model is still the one being served and no newer job
                    // is queued — a stale index would undo a newer publish's
                    // fallback-to-fresh-model behaviour.
                    if st.job.is_none() && model.load().epoch == job.epoch() {
                        slot.store(Arc::new(rebuilt));
                    }
                    st.busy = false;
                    mailbox.cv.notify_all();
                })
            };
            self.rebuilder = Some(Rebuilder { mailbox, handle: Some(handle) });
        }
        self.index = Some(slot);
        self
    }

    /// Opts the engine into event logging: every successful
    /// [`Engine::append_event`] is also recorded in an [`EventLog`] for an
    /// online trainer to drain. Off by default (appends stay lock-free of
    /// the log).
    #[must_use]
    pub fn with_event_log(mut self) -> Self {
        self.events = Some(Arc::new(EventLog::default()));
        self
    }

    /// The currently attached catalog index, if any (the slot's live value
    /// — a publish may retire it at any time; holding the `Arc` keeps this
    /// snapshot valid regardless).
    pub fn catalog_index(&self) -> Option<Arc<CatalogIndex>> {
        self.index.as_ref().map(|slot| slot.load())
    }

    /// The attached append-event log, if [`Engine::with_event_log`] was
    /// called.
    pub fn event_log(&self) -> Option<&Arc<EventLog>> {
        self.events.as_ref()
    }

    /// The model revision new drains are picking up right now.
    pub fn current_rev(&self) -> Arc<ModelRev> {
        self.model.load()
    }

    /// The [`ModelEpoch`] new drains are scoring under right now.
    pub fn current_epoch(&self) -> ModelEpoch {
        self.model.load().epoch
    }

    /// Atomically publishes a new type-erased scorer. Workers pick it up at
    /// their next drain; in-flight super-batches finish on the revision they
    /// pinned. Returns the epoch now being served.
    ///
    /// This variant cannot refresh an attached catalog index (it has no
    /// concrete frozen model to rebuild with) — frozen-SeqFM engines should
    /// publish through [`Engine::publish_frozen`].
    pub fn publish<S: IntoScorer>(&self, scorer: S) -> ModelEpoch {
        let rev = ModelRev::of_scorer(scorer.into_scorer());
        let epoch = rev.epoch;
        self.model.store(Arc::new(rev));
        epoch
    }

    /// Atomically hot-swaps the engine onto a new frozen model — the
    /// serving half of the online-learning loop. Returns the epoch now
    /// being served. The whole sequence runs on the *calling* thread
    /// (typically the trainer); scoring workers never block:
    ///
    /// 1. the engine's serving profile is applied
    ///    ([`ScorerPrecision::Fast`] re-quantizes **here**, off the hot
    ///    path — workers keep serving the old quantized bundle meanwhile);
    /// 2. the model slot is swapped — new drains score under the new
    ///    epoch, in-flight drains finish on the one they pinned, and the
    ///    epoch-keyed [`ViewCache`] lazily invalidates old-epoch panels;
    /// 3. any attached catalog index is rebuilt for the new model
    ///    ([`CatalogIndex::rebuild_for`] — a *delta* rebuild that reuses
    ///    every block whose envelope provably barely moved) and its slot
    ///    swapped. Under [`EngineConfig::background_rebuild`] (the default)
    ///    the rebuild runs on the engine's builder thread and this call
    ///    returns at slot-swap latency; consecutive publishes coalesce —
    ///    the builder only ever works toward the newest epoch. Until the
    ///    rebuilt index lands, [`Engine::retrieve_top_k`] serves
    ///    brute-force scans with the *new* model — fresh results,
    ///    temporarily without the pruning speedup, never a stale-epoch
    ///    answer. [`Engine::wait_for_index`] blocks until the index has
    ///    caught up (tests and benchmarks that need a settled index).
    pub fn publish_frozen(&self, model: FrozenSeqFm) -> ModelEpoch {
        let model = Arc::new(model.with_precision(self.cfg.precision));
        let epoch = model.epoch();
        self.model.store(Arc::new(ModelRev::of_frozen(Arc::clone(&model))));
        if let Some(slot) = &self.index {
            match &self.rebuilder {
                Some(r) => r.mailbox.post(model),
                None => {
                    let rebuilt = slot.load().rebuild_for(model);
                    slot.store(Arc::new(rebuilt));
                }
            }
        }
        epoch
    }

    /// Blocks until the background index builder is idle — no rebuild
    /// running, no job waiting — and returns the attached index's live
    /// value (current for the last published frozen model). Returns
    /// immediately with the live index when rebuilds are synchronous, and
    /// `None` when no index is attached.
    ///
    /// This is the settle point for callers that must observe the rebuilt
    /// index rather than the brute-force window: tests asserting on index
    /// epochs, benchmarks measuring steady-state retrieval.
    pub fn wait_for_index(&self) -> Option<Arc<CatalogIndex>> {
        let slot = self.index.as_ref()?;
        if let Some(r) = &self.rebuilder {
            let mut st = r.mailbox.state.lock().expect("rebuild mailbox poisoned");
            while st.busy || st.job.is_some() {
                st = r.mailbox.cv.wait(st).expect("rebuild mailbox poisoned");
            }
        }
        Some(slot.load())
    }

    /// Retrieves the best `k` items of the **entire catalog** for `user`'s
    /// current stored history, using the attached [`CatalogIndex`]'s
    /// upper-bound-pruned blocked scan.
    ///
    /// Runs on the calling thread (the scan parallelises internally over
    /// the global thread pool) rather than through the admission queue —
    /// a catalog sweep is orders of magnitude heavier than a candidate
    /// request and would starve the latency path. The history view is
    /// shared with the scoring path: the engine's [`ViewCache`] is
    /// consulted first and a freshly built view is installed back, so a
    /// retrieval immediately after [`Engine::append_event`] sees the new
    /// window (the version bump misses the stale entry), and interleaved
    /// `score_stored` calls reuse the same panel bit-identically.
    ///
    /// # Errors
    /// [`ServeError::NoCatalogIndex`] without an attached index;
    /// [`ServeError::UnknownUser`] for a user outside the layout;
    /// [`ServeError::BadConfig`] for `k == 0`.
    pub fn retrieve_top_k(&self, user: u32, k: usize) -> Result<Retrieval, ServeError> {
        let slot = self.index.as_ref().ok_or(ServeError::NoCatalogIndex)?;
        if user as usize >= self.layout.n_users {
            return Err(ServeError::UnknownUser { user, n_users: self.layout.n_users });
        }
        let index = slot.load();
        let rev = self.model.load();
        // Pick the scoring model. Normally the index already serves the
        // published epoch and the pruned scan applies. Mid-swap — the model
        // slot advanced but the index rebuild hasn't landed — score with
        // the *new* frozen model via the index's brute-force fallback:
        // fresh results, temporarily without pruning, never a stale epoch.
        let (model, index_current) = match rev.frozen.as_ref() {
            Some(m) if m.epoch() != index.model().epoch() => (m, false),
            _ => (index.model(), true),
        };
        let epoch = model.epoch();
        let mut snap = Vec::new();
        let version = self.store.snapshot_into(user, &mut snap);
        let view = match self.cache.as_ref().and_then(|c| c.get(user, version, epoch)) {
            Some(view) => view,
            None => {
                // Same canonical row the scoring path builds: the last
                // `max_seq` events, left-padded with PAD — so the view (and
                // its cache entry) is bit-identical to the scoring path's.
                let max_seq = self.cfg.max_seq;
                let window = &snap[snap.len() - snap.len().min(max_seq)..];
                let mut row: Vec<i64> = Vec::with_capacity(max_seq);
                row.resize(max_seq - window.len(), seqfm_data::PAD);
                row.extend(window.iter().map(|&it| it as i64));
                let view = Arc::new(model.history_view(&row, &mut Scratch::new()));
                if let Some(cache) = &self.cache {
                    cache.insert(user, version, epoch, Arc::clone(&view));
                }
                view
            }
        };
        let result = if index_current {
            index.retrieve(user, &view, k)
        } else {
            index.retrieve_brute_with(model, user, &view, k)
        };
        result.map_err(|e| match e {
            RetrievalError::BadConfig { reason } => ServeError::BadConfig { reason },
            other => ServeError::BadConfig { reason: other.to_string() },
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The engine's history store (e.g. for direct snapshot reads or load
    /// tooling). Appends should go through [`Engine::append_event`], which
    /// validates item ids first.
    pub fn store(&self) -> &HistoryStore {
        &self.store
    }

    /// Records one interaction at the end of `user`'s stored history and
    /// returns the new history version. The next
    /// [`HistorySource::Stored`](crate::HistorySource) request for `user`
    /// sees the updated window — the version bump lazily invalidates any
    /// cached history view.
    ///
    /// # Errors
    /// [`ServeError::UnknownUser`] / [`ServeError::UnknownItem`] when the
    /// ids fall outside the model's feature layout. (Pre-fix, unvalidated
    /// appends let out-of-vocabulary items into the store and the
    /// embedding gather panicked at *scoring* time, far from the bad
    /// write.)
    pub fn append_event(&self, user: u32, item: u32) -> Result<u64, ServeError> {
        if user as usize >= self.layout.n_users {
            return Err(ServeError::UnknownUser { user, n_users: self.layout.n_users });
        }
        if item as usize >= self.layout.n_items {
            return Err(ServeError::UnknownItem { item, n_items: self.layout.n_items });
        }
        let version = self.store.append(user, item);
        if let Some(log) = &self.events {
            log.record(user, item);
        }
        Ok(version)
    }

    /// Bulk-loads a dataset's per-user sequences into the history store
    /// (warm-up before serving). Returns the number of events loaded.
    ///
    /// # Errors
    /// [`ServeError::UnknownItem`] if the dataset mentions an item outside
    /// the model's layout (nothing is loaded in that case).
    pub fn warm_histories(&self, ds: &Dataset) -> Result<usize, ServeError> {
        for events in ds.per_user.iter().take(self.layout.n_users) {
            for e in events {
                if e.item as usize >= self.layout.n_items {
                    return Err(ServeError::UnknownItem {
                        item: e.item,
                        n_items: self.layout.n_items,
                    });
                }
            }
        }
        Ok(self.store.load_dataset(ds))
    }

    /// `user`'s current stored window (chronological, oldest first).
    ///
    /// # Errors
    /// [`ServeError::UnknownUser`] when `user` is outside the layout.
    pub fn history(&self, user: u32) -> Result<Vec<u32>, ServeError> {
        if user as usize >= self.layout.n_users {
            return Err(ServeError::UnknownUser { user, n_users: self.layout.n_users });
        }
        Ok(self.store.snapshot(user).0)
    }

    /// View-cache counters (all zero when `cache_entries == 0`).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Non-blocking admission: enqueues the request and returns immediately,
    /// or sheds it when [`EngineConfig::queue_capacity`] requests are
    /// already queued — the backpressure signal an async front door (network
    /// acceptor, stream consumer) turns into "503 / retry later". Pair the
    /// handle with [`PendingResponse::wait`].
    ///
    /// The reply slot comes from the calling thread's parked stack — no
    /// allocation and no lock once the caller is warm, including on the
    /// shed path.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the admission queue is full; the
    /// shed request is handed back inside the error, so retrying (or
    /// falling back to [`Engine::submit_wait`]) needs no defensive clone.
    pub fn submit(&self, req: ScoreRequest) -> Result<PendingResponse, ServeError> {
        let slot = arm_slot();
        match &self.queue {
            Some(q) => {
                if let Err(mut job) =
                    q.try_push(Job { req, slot: Arc::clone(&slot), answered: false })
                {
                    // Take the request back out of the bounced job (swap —
                    // the `Drop` guard forbids destructuring), disarm the
                    // guard (nobody is waiting on this slot), and park the
                    // slot for the next submit.
                    let req = std::mem::take(&mut job.req);
                    job.answered = true;
                    drop(job);
                    park_slot(slot);
                    return Err(ServeError::Overloaded {
                        capacity: q.capacity(),
                        req: Box::new(req),
                    });
                }
            }
            // Unreachable while the engine is alive; keep `wait` total.
            None => slot.close(false),
        }
        Ok(PendingResponse { slot: Some(slot) })
    }

    /// [`Engine::submit`] for a stored-history request: just
    /// `(user, candidates)` — the workers resolve the history from the
    /// engine's store.
    ///
    /// # Errors
    /// See [`Engine::submit`].
    pub fn submit_stored(
        &self,
        user: u32,
        candidates: impl Into<Vec<u32>>,
    ) -> Result<PendingResponse, ServeError> {
        self.submit(ScoreRequest::stored(user, candidates))
    }

    /// Blocking admission: like [`Engine::submit`], but parks the calling
    /// thread while the queue is at capacity instead of shedding — natural
    /// backpressure for batch producers that should slow down rather than
    /// drop work.
    pub fn submit_wait(&self, req: ScoreRequest) -> PendingResponse {
        let slot = arm_slot();
        match &self.queue {
            Some(q) => q.push_wait(Job { req, slot: Arc::clone(&slot), answered: false }),
            None => slot.close(false),
        }
        PendingResponse { slot: Some(slot) }
    }

    /// Scores one request, blocking until the response is ready (parking on
    /// admission capacity if necessary).
    ///
    /// # Errors
    /// See [`PendingResponse::wait`].
    pub fn score(&self, req: ScoreRequest) -> Result<ScoreResponse, ServeError> {
        self.submit_wait(req).wait()
    }

    /// [`Engine::score`] for a stored-history request.
    ///
    /// # Errors
    /// See [`PendingResponse::wait`].
    pub fn score_stored(
        &self,
        user: u32,
        candidates: impl Into<Vec<u32>>,
    ) -> Result<ScoreResponse, ServeError> {
        self.score(ScoreRequest::stored(user, candidates))
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the queue lets every worker drain the backlog and exit;
        // in-flight requests are answered, not dropped.
        drop(self.queue.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Then the index builder: raise shutdown and join. A rebuild in
        // flight finishes its (now pointless) pass and exits at the next
        // mailbox check; a job never picked up is simply abandoned — the
        // engine is dying with it.
        if let Some(r) = self.rebuilder.take() {
            r.mailbox.state.lock().expect("rebuild mailbox poisoned").shutdown = true;
            r.mailbox.cv.notify_all();
            if let Some(handle) = r.handle {
                let _ = handle.join();
            }
        }
    }
}

/// Renders a caught panic payload for [`ServeError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::score_request;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::ParamStore;
    use seqfm_core::{FrozenSeqFm, SeqFm, SeqFmConfig};
    use seqfm_data::{Batch, Event};
    use std::sync::{Condvar, Mutex};

    fn frozen_model(layout: &FeatureLayout) -> FrozenSeqFm {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = SeqFmConfig { d: 8, max_seq: 6, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, layout, cfg);
        FrozenSeqFm::freeze(&model, &ps)
    }

    fn engine_cfg(threads: usize, top_k: usize) -> EngineConfig {
        EngineConfig { threads, max_seq: 6, top_k, ..Default::default() }
    }

    #[test]
    fn engine_matches_direct_scoring_across_many_requests() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let frozen = Arc::new(frozen_model(&layout));
        let engine = Engine::new(Arc::clone(&frozen), layout, engine_cfg(3, 5)).expect("valid cfg");
        assert_eq!(engine.threads(), 3);

        let requests: Vec<ScoreRequest> = (0..24)
            .map(|i| {
                ScoreRequest::inline(
                    (i % 8) as u32,
                    (0..(i % 5)).map(|j| ((i + j) % 20) as u32).collect::<Vec<u32>>(),
                    (0..20).map(|c| ((c + i) % 20) as u32).collect::<Vec<u32>>(),
                )
            })
            .collect();

        // Fan out everything first, then collect — exercises concurrency
        // and (since several requests share a history) the coalescer.
        let pending: Vec<PendingResponse> =
            requests.iter().map(|r| engine.submit(r.clone()).expect("under capacity")).collect();
        let mut scratch = Scratch::new();
        for (req, p) in requests.iter().zip(pending) {
            let got = p.wait().expect("valid request");
            let want =
                score_request(&*frozen, &layout, 6, 5, req, &mut scratch).expect("valid request");
            assert_eq!(got, want, "engine answer diverges for {req:?}");
        }
    }

    #[test]
    fn engine_reports_request_errors_not_panics() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine =
            Engine::new(Arc::new(frozen_model(&layout)), layout, engine_cfg(1, 0)).expect("valid");
        let bad = ScoreRequest::inline(99, vec![], vec![1]);
        assert_eq!(engine.score(bad), Err(ServeError::UnknownUser { user: 99, n_users: 8 }));
        // The worker survives a bad request.
        let ok = ScoreRequest::inline(1, vec![2], vec![1, 2, 3]);
        assert_eq!(engine.score(ok).expect("valid").ranked.len(), 3);
    }

    #[test]
    fn stored_requests_resolve_from_the_engines_store_bit_identically() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let frozen = Arc::new(frozen_model(&layout));
        let engine = Engine::new(Arc::clone(&frozen), layout, engine_cfg(2, 0)).expect("valid cfg");
        for item in [3u32, 9, 14] {
            engine.append_event(5, item).expect("valid ids");
        }
        assert_eq!(engine.history(5).expect("known user"), vec![3, 9, 14]);
        let got = engine.score_stored(5, vec![0, 7, 19, 2]).expect("valid");
        let mut scratch = Scratch::new();
        let want = score_request(
            &*frozen,
            &layout,
            6,
            0,
            &ScoreRequest::inline(5, vec![3, 9, 14], vec![0, 7, 19, 2]),
            &mut scratch,
        )
        .expect("valid");
        assert_eq!(got.ranked.len(), want.ranked.len());
        for (g, w) in got.ranked.iter().zip(&want.ranked) {
            assert_eq!(
                (g.item, g.score.to_bits()),
                (w.item, w.score.to_bits()),
                "stored-history engine path must be bit-identical to inline"
            );
        }
        // A second identical request hits the view cache; same bits.
        let again = engine.score_stored(5, vec![0, 7, 19, 2]).expect("valid");
        assert_eq!(again, got);
        let stats = engine.cache_stats();
        assert!(stats.hits >= 1, "second stored request must hit the view cache: {stats:?}");
    }

    #[test]
    fn retrieve_top_k_uses_the_stored_history_and_shares_the_view_cache() {
        let layout = FeatureLayout { n_users: 8, n_items: 30 };
        let frozen = Arc::new(frozen_model(&layout));
        let index = Arc::new(CatalogIndex::build(Arc::clone(&frozen), layout, 7));
        let engine = Engine::new(Arc::clone(&frozen), layout, engine_cfg(2, 0))
            .expect("valid cfg")
            .with_catalog_index(Arc::clone(&index));
        assert!(engine.catalog_index().is_some());
        for item in [4u32, 19, 2] {
            engine.append_event(6, item).expect("valid ids");
        }
        let got = engine.retrieve_top_k(6, 5).expect("valid");
        assert_eq!(got.items.len(), 5);
        // Reference: the same view built by hand straight on the index.
        let mut scratch = Scratch::new();
        let row: Vec<i64> = [seqfm_data::PAD; 3].into_iter().chain([4i64, 19, 2]).collect();
        let view = frozen.history_view(&row, &mut scratch);
        let want = index.retrieve(6, &view, 5).expect("valid");
        for (g, w) in got.items.iter().zip(&want.items) {
            assert_eq!(g.item, w.item);
            assert_eq!(g.score.to_bits(), w.score.to_bits());
        }
        // The retrieval installed the view; scoring and a second retrieval
        // both hit the cache now.
        let misses_before = engine.cache_stats().misses;
        engine.retrieve_top_k(6, 5).expect("valid");
        engine.score_stored(6, vec![1, 2, 3]).expect("valid");
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, misses_before, "view must be shared, not rebuilt");
        assert!(stats.hits >= 2);
        // An append invalidates (version bump): retrieval right after sees
        // the new window and stays exact vs a hand-built fresh view.
        engine.append_event(6, 11).expect("valid ids");
        let fresh = engine.retrieve_top_k(6, 5).expect("valid");
        let row: Vec<i64> = [seqfm_data::PAD; 2].into_iter().chain([4i64, 19, 2, 11]).collect();
        let view = frozen.history_view(&row, &mut scratch);
        let want = index.retrieve(6, &view, 5).expect("valid");
        for (g, w) in fresh.items.iter().zip(&want.items) {
            assert_eq!(g.item, w.item);
            assert_eq!(g.score.to_bits(), w.score.to_bits());
        }
    }

    #[test]
    fn retrieve_top_k_without_an_index_is_a_typed_error() {
        let layout = FeatureLayout { n_users: 4, n_items: 10 };
        let engine =
            Engine::new(Arc::new(frozen_model(&layout)), layout, engine_cfg(1, 0)).expect("valid");
        assert_eq!(engine.retrieve_top_k(1, 5), Err(ServeError::NoCatalogIndex));
        let frozen = Arc::new(frozen_model(&layout));
        let index = Arc::new(CatalogIndex::build(Arc::clone(&frozen), layout, 4));
        let engine =
            Engine::new(frozen, layout, engine_cfg(1, 0)).expect("valid").with_catalog_index(index);
        assert_eq!(
            engine.retrieve_top_k(9, 5),
            Err(ServeError::UnknownUser { user: 9, n_users: 4 })
        );
        assert!(matches!(engine.retrieve_top_k(1, 0), Err(ServeError::BadConfig { .. })));
        // k >= catalog: every item, ranked.
        assert_eq!(engine.retrieve_top_k(1, 500).expect("valid").items.len(), 10);
    }

    #[test]
    fn append_event_validates_ids_before_touching_the_store() {
        let layout = FeatureLayout { n_users: 4, n_items: 10 };
        let engine =
            Engine::new(Arc::new(frozen_model(&layout)), layout, engine_cfg(1, 0)).expect("valid");
        assert_eq!(engine.append_event(4, 1), Err(ServeError::UnknownUser { user: 4, n_users: 4 }));
        assert_eq!(
            engine.append_event(1, 10),
            Err(ServeError::UnknownItem { item: 10, n_items: 10 })
        );
        assert_eq!(engine.history(1).expect("known user"), Vec::<u32>::new());
        assert_eq!(engine.history(9), Err(ServeError::UnknownUser { user: 9, n_users: 4 }));
        assert_eq!(engine.append_event(1, 9), Ok(1));
        assert_eq!(engine.append_event(1, 3), Ok(2));
        assert_eq!(engine.history(1).expect("known user"), vec![9, 3]);
    }

    #[test]
    fn warm_histories_bulk_loads_and_validates() {
        let layout = FeatureLayout { n_users: 4, n_items: 10 };
        let engine = Engine::new(
            Arc::new(frozen_model(&layout)),
            layout,
            EngineConfig { threads: 1, max_seq: 6, history_capacity: 3, ..Default::default() },
        )
        .expect("valid");
        let ev = |item: u32, time: u32| Event { item, time, rating: 1.0 };
        let mut ds = Dataset {
            name: "warmup".into(),
            n_users: 2,
            n_items: 10,
            item_cluster: vec![0; 10],
            per_user: vec![vec![ev(1, 0), ev(2, 1), ev(3, 2), ev(4, 3), ev(5, 4)], vec![ev(7, 0)]],
        };
        assert_eq!(engine.warm_histories(&ds).expect("in-layout items"), 6);
        // Ring capacity 3: only the tail survives.
        assert_eq!(engine.history(0).expect("known"), vec![3, 4, 5]);
        assert_eq!(engine.history(1).expect("known"), vec![7]);
        // Live appends continue the warmed sequence.
        engine.append_event(0, 9).expect("valid");
        assert_eq!(engine.history(0).expect("known"), vec![4, 5, 9]);
        // An out-of-vocabulary item anywhere rejects the load.
        ds.per_user[1].push(ev(10, 1));
        assert!(matches!(
            engine.warm_histories(&ds),
            Err(ServeError::UnknownItem { item: 10, n_items: 10 })
        ));
    }

    /// A scorer that panics on a poison candidate — for panic containment
    /// tests.
    struct Grenade(FrozenSeqFm);

    impl Scorer for Grenade {
        fn name(&self) -> &str {
            "grenade"
        }

        fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
            if batch.targets.len() == 13 {
                panic!("grenade went off");
            }
            self.0.score(batch, scratch)
        }
    }

    #[test]
    fn worker_panic_is_drained_into_the_error_and_worker_survives() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine =
            Engine::new(Arc::new(Grenade(frozen_model(&layout))), layout, engine_cfg(1, 0))
                .expect("valid");
        // 13 candidates → the scorer panics mid-request.
        let boom = ScoreRequest::inline(1, vec![2], (0..13).collect::<Vec<u32>>());
        match engine.score(boom) {
            Err(ServeError::WorkerPanicked { message }) => {
                assert!(message.contains("grenade went off"), "panic text not drained: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The same (sole) worker keeps serving afterwards.
        let ok = ScoreRequest::inline(1, vec![2], vec![1, 2, 3]);
        assert_eq!(engine.score(ok).expect("valid").ranked.len(), 3);
    }

    #[test]
    fn reply_slots_are_reused_across_sequential_requests() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine =
            Engine::new(Arc::new(frozen_model(&layout)), layout, engine_cfg(2, 2)).expect("valid");
        let req = ScoreRequest::inline(0, vec![1], vec![2, 3, 4]);
        let first = engine.score(req.clone()).expect("valid");
        for _ in 0..50 {
            let again = engine.score(req.clone()).expect("valid");
            assert_eq!(again, first, "reused slot corrupted a response");
        }
        // Sequential round trips always reuse the caller's single parked
        // slot (each test runs on its own thread, so the count is exact).
        assert_eq!(parked_slots(), 1, "caller thread should hold one parked slot");
    }

    #[test]
    fn bad_configs_are_rejected_at_construction() {
        let layout = FeatureLayout { n_users: 4, n_items: 10 };
        let frozen = Arc::new(frozen_model(&layout));
        for cfg in [
            EngineConfig { max_seq: 0, ..Default::default() },
            EngineConfig { queue_capacity: 0, ..Default::default() },
            EngineConfig { coalesce_max: 0, ..Default::default() },
        ] {
            assert!(cfg.validate().is_err());
            match Engine::new(Arc::clone(&frozen), layout, cfg) {
                Err(ServeError::BadConfig { reason }) => {
                    assert!(!reason.is_empty(), "BadConfig must explain itself");
                }
                other => panic!("expected BadConfig for {cfg:?}, got {:?}", other.map(|_| ())),
            }
        }
        // The default configuration itself must of course be valid.
        EngineConfig::default().validate().expect("default config valid");
    }

    #[test]
    fn builder_mirrors_literal_construction_and_validates() {
        let built = EngineConfig::builder()
            .threads(3)
            .max_seq(7)
            .top_k(5)
            .queue_capacity(99)
            .coalesce_max(4)
            .linger_us(25)
            .history_capacity(50)
            .cache_entries(0)
            .background_rebuild(false)
            .build()
            .expect("valid");
        let literal = EngineConfig {
            threads: 3,
            max_seq: 7,
            top_k: 5,
            queue_capacity: 99,
            coalesce_max: 4,
            linger_us: 25,
            history_capacity: 50,
            cache_entries: 0,
            precision: ScorerPrecision::Exact,
            background_rebuild: false,
        };
        assert_eq!(built, literal);
        assert_eq!(built.resolved_history_capacity(), 50);
        assert_eq!(EngineConfig::default().resolved_history_capacity(), 20);
        assert!(matches!(
            EngineConfig::builder().max_seq(0).build(),
            Err(ServeError::BadConfig { .. })
        ));
        // cache_entries == 0 disables the cache rather than breaking it.
        let layout = FeatureLayout { n_users: 4, n_items: 10 };
        let cfg = EngineConfig { max_seq: 6, cache_entries: 0, ..Default::default() };
        let engine = Engine::new(Arc::new(frozen_model(&layout)), layout, cfg).expect("valid");
        engine.append_event(1, 2).expect("valid");
        engine.score_stored(1, vec![0, 3]).expect("valid");
        engine.score_stored(1, vec![0, 3]).expect("valid");
        assert_eq!(engine.cache_stats(), CacheStats::default());
    }

    /// Shared gate state: (worker entered, gate open).
    type Gate = Arc<(Mutex<(bool, bool)>, Condvar)>;

    /// A scorer whose first call parks until released — lets tests fill the
    /// admission queue deterministically while the worker is busy.
    struct Gated {
        inner: FrozenSeqFm,
        gate: Gate,
    }

    impl Gated {
        fn new(inner: FrozenSeqFm) -> (Self, Gate) {
            let gate = Arc::new((Mutex::new((false, false)), Condvar::new()));
            (Gated { inner, gate: Arc::clone(&gate) }, gate)
        }
    }

    /// Blocks until the gated worker has entered its first score call.
    fn await_entered(gate: &Gate) {
        let (lock, cv) = &**gate;
        let mut st = lock.lock().unwrap();
        while !st.0 {
            st = cv.wait(st).unwrap();
        }
    }

    /// Opens the gate, releasing the parked worker.
    fn open_gate(gate: &Gate) {
        let (lock, cv) = &**gate;
        lock.lock().unwrap().1 = true;
        cv.notify_all();
    }

    impl Scorer for Gated {
        fn name(&self) -> &str {
            "gated"
        }

        fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
            let (lock, cv) = &*self.gate;
            let mut st = lock.lock().unwrap();
            st.0 = true;
            cv.notify_all();
            while !st.1 {
                st = cv.wait(st).unwrap();
            }
            drop(st);
            self.inner.score(batch, scratch)
        }
    }

    #[test]
    fn submit_sheds_load_with_overloaded_once_the_queue_is_full() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let (gated, gate) = Gated::new(frozen_model(&layout));
        let cfg = EngineConfig { threads: 1, max_seq: 6, queue_capacity: 2, ..Default::default() };
        let engine = Engine::new(Arc::new(gated), layout, cfg).expect("valid");
        let req = |u: u32| ScoreRequest::inline(u, vec![2], vec![1, 3]);

        // The worker picks up the first request and parks inside the scorer,
        // leaving the admission queue empty...
        let blocker = engine.submit(req(0)).expect("queue empty");
        await_entered(&gate);
        // ...so exactly `queue_capacity` more are admitted...
        let queued: Vec<_> =
            (1..=2).map(|u| engine.submit(req(u)).expect("under capacity")).collect();
        // ...and the next submit is shed with the explicit signal, handing
        // the request back untouched.
        match engine.submit(req(3)) {
            Err(ServeError::Overloaded { capacity, req: shed }) => {
                assert_eq!(capacity, 2);
                assert_eq!(*shed, req(3), "shed request must come back intact");
            }
            other => panic!("expected Overloaded, got {:?}", other.map(|_| ())),
        }
        // Backpressure clears once the worker drains the backlog.
        open_gate(&gate);
        blocker.wait().expect("valid");
        for p in queued {
            p.wait().expect("valid");
        }
        engine.score(req(4)).expect("engine healthy after shedding");
    }

    #[test]
    fn submit_wait_parks_on_capacity_instead_of_shedding() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let (gated, gate) = Gated::new(frozen_model(&layout));
        let cfg = EngineConfig { threads: 1, max_seq: 6, queue_capacity: 1, ..Default::default() };
        let engine = Engine::new(Arc::new(gated), layout, cfg).expect("valid");
        let req = |u: u32| ScoreRequest::inline(u, vec![2], vec![1, 3]);

        let blocker = engine.submit(req(0)).expect("queue empty");
        await_entered(&gate);
        let filler = engine.submit(req(1)).expect("fills the queue");
        assert!(matches!(engine.submit(req(2)), Err(ServeError::Overloaded { .. })));
        // submit_wait must park (not shed) and complete once the gate opens.
        std::thread::scope(|s| {
            let parked = s.spawn(|| engine.submit_wait(req(3)).wait());
            open_gate(&gate);
            assert_eq!(parked.join().unwrap().expect("valid").ranked.len(), 2);
        });
        blocker.wait().expect("valid");
        filler.wait().expect("valid");
    }

    #[test]
    fn queued_requests_coalesce_and_match_serial_scoring_bit_for_bit() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let reference = frozen_model(&layout);
        let (gated, gate) = Gated::new(frozen_model(&layout));
        let cfg = EngineConfig {
            threads: 1,
            max_seq: 6,
            top_k: 0,
            queue_capacity: 64,
            coalesce_max: 8,
            ..Default::default()
        };
        let engine = Engine::new(Arc::new(gated), layout, cfg).expect("valid");
        // Park the worker, then pile up a mixed backlog: several share a
        // canonical history (including across users), others don't — one
        // wakeup drains and groups all.
        let blocker =
            engine.submit(ScoreRequest::inline(7, vec![1], vec![2])).expect("queue empty");
        await_entered(&gate);
        let backlog: Vec<ScoreRequest> = vec![
            ScoreRequest::inline(1, vec![2, 5], vec![0, 3, 9]),
            ScoreRequest::inline(1, vec![2, 5], vec![4]),
            ScoreRequest::inline(2, vec![], vec![7, 8]),
            ScoreRequest::inline(1, vec![5, 2], vec![0]),
            // Different user, same history — coalesces cross-user now.
            ScoreRequest::inline(3, vec![2, 5], vec![11, 0]),
        ];
        let pending: Vec<_> =
            backlog.iter().map(|r| engine.submit(r.clone()).expect("under capacity")).collect();
        open_gate(&gate);
        blocker.wait().expect("valid");
        let mut scratch = Scratch::new();
        for (req, p) in backlog.iter().zip(pending) {
            let got = p.wait().expect("valid");
            let want = score_request(&reference, &layout, 6, 0, req, &mut scratch).expect("valid");
            assert_eq!(got.ranked.len(), want.ranked.len());
            for (g, w) in got.ranked.iter().zip(&want.ranked) {
                assert_eq!(g.item, w.item, "coalesced ranking diverges for {req:?}");
                assert_eq!(
                    g.score.to_bits(),
                    w.score.to_bits(),
                    "coalesced score not bit-identical for {req:?}"
                );
            }
        }
    }

    #[test]
    fn dropped_pending_responses_recycle_their_slots() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine =
            Engine::new(Arc::new(frozen_model(&layout)), layout, engine_cfg(1, 0)).expect("valid");
        let req = ScoreRequest::inline(0, vec![1], vec![2, 3]);
        // With one FIFO worker, waiting on a *later* request guarantees the
        // earlier replies have been delivered into their slots.
        let abandoned: Vec<PendingResponse> =
            (0..4).map(|_| engine.submit(req.clone()).expect("under capacity")).collect();
        engine.score(req.clone()).expect("valid");
        // Pre-fix (PR 4), only `wait()` parked slots, so dropping these
        // leaked all four permanently; they now recycle onto the dropping
        // thread's parked stack.
        drop(abandoned);
        assert_eq!(parked_slots(), 5, "dropped pendings must park their slots for reuse");
        // The recycled slots serve fresh requests correctly.
        let want = engine.score(req.clone()).expect("valid");
        for _ in 0..8 {
            assert_eq!(engine.score(req.clone()).expect("valid"), want);
        }
        assert!(parked_slots() <= 5, "steady state must reuse, not grow, the parked stack");
    }

    #[test]
    fn overloaded_submits_do_not_leak_slots_either() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let (gated, gate) = Gated::new(frozen_model(&layout));
        let cfg = EngineConfig { threads: 1, max_seq: 6, queue_capacity: 1, ..Default::default() };
        let engine = Engine::new(Arc::new(gated), layout, cfg).expect("valid");
        let req = |u: u32| ScoreRequest::inline(u, vec![2], vec![1]);
        let blocker = engine.submit(req(0)).expect("queue empty");
        await_entered(&gate);
        let filler = engine.submit(req(1)).expect("fills the queue");
        for _ in 0..16 {
            assert!(matches!(engine.submit(req(2)), Err(ServeError::Overloaded { .. })));
        }
        // All shed submits recycled their slot: at most one was allocated
        // for the shed path, and it sits parked on this thread.
        assert!(parked_slots() <= 1);
        open_gate(&gate);
        blocker.wait().expect("valid");
        filler.wait().expect("valid");
    }

    #[test]
    fn dropping_the_engine_answers_in_flight_requests() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let (gated, gate) = Gated::new(frozen_model(&layout));
        let cfg = EngineConfig { threads: 2, max_seq: 6, ..Default::default() };
        let engine = Engine::new(Arc::new(gated), layout, cfg).expect("valid");
        let req = |u: u32| ScoreRequest::inline(u, vec![1], vec![2, 3]);
        let blocker = engine.submit(req(0)).expect("queue empty");
        await_entered(&gate);
        // Queue a backlog behind the parked worker, then tear down while
        // all of it is in flight.
        let pending: Vec<_> =
            (1..6).map(|u| engine.submit(req(u)).expect("under capacity")).collect();
        open_gate(&gate);
        drop(engine); // closes the queue; workers drain the backlog and exit
        assert_eq!(blocker.wait().expect("answered").ranked.len(), 2);
        for p in pending {
            // Drain semantics: in-flight requests are answered, not dropped.
            assert_eq!(p.wait().expect("answered on teardown").ranked.len(), 2);
        }
    }

    #[test]
    fn a_job_destroyed_unanswered_surfaces_shutdown_to_its_caller() {
        // The ShutDown path end-to-end at the slot level: a queue destroyed
        // with jobs still inside (e.g. torn down with dead workers) drops
        // the jobs unanswered, and each waiting caller gets ShutDown — not
        // a hang and not a phantom response.
        let slot: Slot = Arc::new(Oneshot::new());
        let job = Job {
            req: ScoreRequest::inline(0, vec![], vec![1]),
            slot: Arc::clone(&slot),
            answered: false,
        };
        let pending = PendingResponse { slot: Some(slot) };
        drop(job); // queue destruction drops the job without a reply
        assert_eq!(pending.wait(), Err(ServeError::ShutDown));
        // The closed slot was parked on this thread — ShutDown does not
        // leak it.
        assert_eq!(parked_slots(), 1);
    }
}
