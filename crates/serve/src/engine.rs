//! The multi-threaded, batch-coalescing scoring engine.
//!
//! An [`Engine`] owns a pool of worker threads fed by a **bounded**
//! [`WorkQueue`](seqfm_parallel::WorkQueue): requests are admitted
//! round-robin onto per-worker sharded queues, an idle worker steals from
//! its siblings, and — the throughput lever — each worker wakeup **drains up
//! to [`EngineConfig::coalesce_max`] queued requests at once**, groups the
//! ones sharing a `(user, history)` pair, and scores every group as one
//! super-batch through [`score_requests`](crate::score_requests). The frozen
//! scorer's shared-history fast path then fires *across* requests, so
//! throughput rises with load, not only with threads.
//!
//! Admission is explicit: the non-blocking [`Engine::submit`] sheds load
//! with [`ServeError::Overloaded`] once
//! [`EngineConfig::queue_capacity`] requests are queued, while
//! [`Engine::submit_wait`] parks the caller until capacity frees up. Every
//! worker holds its own [`Scratch`] workspace (warm buffers, no cross-thread
//! locks on the hot path) and a shared `Arc` of the scorer — which is why
//! the [`Scorer`] contract requires `&self`-only scoring and why
//! `FrozenSeqFm: Send + Sync` is load-bearing.
//!
//! Replies travel through **reusable oneshot slots**
//! ([`seqfm_parallel::Oneshot`]) parked **per caller thread**: consuming a
//! response parks its slot in the calling thread's own stack, and the next
//! submit from that thread re-arms it. There is no shared free list and no
//! lock anywhere on the reply path (beyond the oneshot's own rendezvous),
//! and steady-state serving allocates nothing for replies. A
//! [`PendingResponse`] dropped without [`wait`](PendingResponse::wait)
//! recycles its slot too, provided the reply already arrived.
//!
//! Worker panics are contained: a panic while scoring is drained into
//! [`ServeError::WorkerPanicked`] for every request of that coalesced
//! drain, and the worker keeps serving subsequent requests.

use crate::error::ServeError;
use crate::request::{score_requests_with, CoalesceScratch, ScoreRequest, ScoreResponse};
use seqfm_core::{Scorer, Scratch};
use seqfm_data::FeatureLayout;
use seqfm_parallel::{Oneshot, WorkQueue};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Engine sizing, admission, and ranking policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Dynamic window n˙ the serving model was trained with. Must be ≥ 1.
    pub max_seq: usize,
    /// Responses keep only the best `top_k` candidates; `0` keeps all.
    pub top_k: usize,
    /// Admission bound: at most this many requests queued across all
    /// workers before [`Engine::submit`] sheds load with
    /// [`ServeError::Overloaded`]. Must be ≥ 1.
    pub queue_capacity: usize,
    /// Requests a worker drains per wakeup and scores as coalesced
    /// same-`(user, history)` super-batches. `1` disables coalescing;
    /// larger values trade per-request latency for throughput under load.
    /// Must be ≥ 1.
    pub coalesce_max: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // `max_seq` matches `SeqFmConfig::default`; single-threaded until the
        // caller opts into more. The admission queue absorbs a healthy burst
        // before shedding; modest coalescing is on by default — it only
        // batches requests that are *already* waiting, so an unloaded engine
        // keeps single-request latency.
        EngineConfig { threads: 1, max_seq: 20, top_k: 0, queue_capacity: 1024, coalesce_max: 16 }
    }
}

impl EngineConfig {
    /// Checks the configuration, mirroring
    /// [`SeqFmConfig::validate`](seqfm_core::SeqFmConfig::validate) but as a
    /// value instead of a panic — a misconfigured window would otherwise
    /// surface as scrambled scores or dead workers on the first request.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        let bad = |reason: &str| Err(ServeError::BadConfig { reason: reason.into() });
        if self.max_seq == 0 {
            return bad("max_seq must be >= 1 (a zero-width dynamic block cannot be scored)");
        }
        if self.queue_capacity == 0 {
            return bad("queue_capacity must be >= 1 (an engine that admits nothing cannot serve)");
        }
        if self.coalesce_max == 0 {
            return bad("coalesce_max must be >= 1 (each worker wakeup must drain a request)");
        }
        Ok(())
    }
}

type Reply = Result<ScoreResponse, ServeError>;
type Slot = Arc<Oneshot<Reply>>;

/// Parked reply slots awaiting reuse, **per caller thread** — the
/// ROADMAP's "per-caller reply-slot reuse". The previous design parked
/// slots in an engine-wide `Arc<Mutex<Vec<Slot>>>` touched twice per round
/// trip; keeping them with the caller makes arming and parking plain
/// thread-local pushes/pops, lock-free end to end. A caller that fans out
/// `k` submits before waiting simply parks `k` slots here.
///
/// Bounded so a burst of one-off callers cannot pin memory forever; a
/// caller thread's slots are freed when the thread exits.
const MAX_PARKED_SLOTS: usize = 256;

thread_local! {
    static PARKED_SLOTS: RefCell<Vec<Slot>> = const { RefCell::new(Vec::new()) };
}

/// Pops this thread's most recently parked slot (or allocates the first
/// time) and re-arms it.
fn arm_slot() -> Slot {
    let slot =
        PARKED_SLOTS.with(|p| p.borrow_mut().pop()).unwrap_or_else(|| Arc::new(Oneshot::new()));
    slot.reset(); // re-arm (clears any stale close marker)
    slot
}

/// Parks a slot on the current thread for reuse by a later submit.
fn park_slot(slot: Slot) {
    PARKED_SLOTS.with(|p| {
        let mut parked = p.borrow_mut();
        if parked.len() < MAX_PARKED_SLOTS {
            parked.push(slot);
        }
    });
}

/// Number of slots parked on the current thread (test observability).
#[cfg(test)]
fn parked_slots() -> usize {
    PARKED_SLOTS.with(|p| p.borrow().len())
}

struct Job {
    req: ScoreRequest,
    slot: Slot,
    /// Set once a reply has been delivered; the `Drop` guard below then
    /// stays silent.
    answered: bool,
}

impl Drop for Job {
    fn drop(&mut self) {
        if !self.answered {
            // The job is dying unanswered: either its queue was destroyed
            // with the job still inside (engine torn down with dead
            // workers), or a worker is unwinding past its catch. Tell the
            // waiting caller which.
            self.slot.close(std::thread::panicking());
        }
    }
}

/// A handle to a submitted request; resolve it with
/// [`PendingResponse::wait`].
///
/// The handle *is* the parked-slot carrier of the per-caller reuse scheme:
/// waiting (or dropping after the reply arrived) parks the slot on the
/// consuming thread for that thread's next submit, so abandoned handles
/// cannot leak the zero-allocation steady state away.
pub struct PendingResponse {
    /// `Some` until `wait` or `Drop` consumes the slot.
    slot: Option<Slot>,
}

impl PendingResponse {
    /// Blocks until the engine has scored the request.
    ///
    /// # Errors
    /// The request's own [`ServeError`];
    /// [`ServeError::WorkerPanicked`] if the worker thread panicked while
    /// scoring this request (the panic message is drained into the error,
    /// and the worker survives to serve other requests);
    /// [`ServeError::ShutDown`] if the engine was torn down before
    /// answering.
    pub fn wait(mut self) -> Result<ScoreResponse, ServeError> {
        let slot = self.slot.take().expect("slot present until wait/drop");
        let reply = match slot.recv() {
            Ok(reply) => reply,
            // Dropped without an answer — see the `Job` drop guard.
            Err(d) if d.panicked => Err(ServeError::WorkerPanicked {
                message: "worker thread panicked before replying".into(),
            }),
            Err(_) => Err(ServeError::ShutDown),
        };
        // The producer is done with the slot on every branch (value taken,
        // or sticky close — cleared by the next re-arm); park it for reuse.
        park_slot(slot);
        reply
    }
}

impl Drop for PendingResponse {
    fn drop(&mut self) {
        let Some(slot) = self.slot.take() else {
            return; // consumed by wait()
        };
        // Recycle only if the producer is done with the slot (reply or
        // close already arrived). An unanswered slot may still receive a
        // worker's send — re-arming it for another request would cross the
        // two replies, so that slot is simply dropped (the worker's send
        // lands in an Arc nobody reads, then the memory is freed).
        if slot.try_recv().is_some() {
            slot.reset(); // clear any sticky close marker before reuse
            park_slot(slot);
        }
    }
}

/// Multi-threaded batch-coalescing scoring engine. See the module docs.
pub struct Engine {
    queue: Option<WorkQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawns `cfg.threads` workers sharing `scorer`.
    ///
    /// The scorer is typically a
    /// [`FrozenSeqFm`](seqfm_core::FrozenSeqFm) (graph-free fast path) or a
    /// [`GraphScorer`](seqfm_core::GraphScorer) over any baseline
    /// (compatibility path) — anything `Scorer + Send + Sync` works.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] when [`EngineConfig::validate`] rejects
    /// `cfg` — failing fast here instead of on the first request.
    pub fn new<S: Scorer + Send + Sync + 'static>(
        scorer: Arc<S>,
        layout: FeatureLayout,
        cfg: EngineConfig,
    ) -> Result<Self, ServeError> {
        cfg.validate()?;
        let (queue, handles) = WorkQueue::<Job>::bounded(cfg.threads.max(1), cfg.queue_capacity);
        let workers = handles
            .into_iter()
            .map(|handle| {
                let scorer = Arc::clone(&scorer);
                std::thread::spawn(move || {
                    let mut scratch = Scratch::new();
                    let mut coalesce = CoalesceScratch::new();
                    let mut jobs: Vec<Job> = Vec::new();
                    let mut reqs: Vec<ScoreRequest> = Vec::new();
                    let mut replies: Vec<Reply> = Vec::new();
                    // The coalescer: drain up to `coalesce_max` queued
                    // requests per wakeup and score them as grouped
                    // super-batches. Under light load the drain holds one
                    // request and this degenerates to per-request scoring.
                    // Every buffer here (the drain, the request staging, the
                    // coalesce scratch, the replies) is worker-owned and
                    // reused across wakeups.
                    while handle.recv_many(cfg.coalesce_max, &mut jobs) {
                        // Move the requests out of the jobs (the `Drop`
                        // guard forbids destructuring) into the reused
                        // staging buffer — no per-wakeup reference array.
                        reqs.clear();
                        for job in jobs.iter_mut() {
                            reqs.push(std::mem::replace(
                                &mut job.req,
                                ScoreRequest {
                                    user: 0,
                                    history: Vec::new(),
                                    candidates: Vec::new(),
                                },
                            ));
                        }
                        // Contain panics: every caller in this drain gets
                        // the drained panic text, the worker keeps serving.
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            score_requests_with(
                                &*scorer,
                                &layout,
                                cfg.max_seq,
                                cfg.top_k,
                                &reqs,
                                &mut scratch,
                                &mut coalesce,
                                &mut replies,
                            )
                        }));
                        if let Err(payload) = result {
                            let message = panic_message(payload.as_ref());
                            replies.clear();
                            replies.extend(jobs.iter().map(|_| {
                                Err(ServeError::WorkerPanicked { message: message.clone() })
                            }));
                        }
                        for (job, reply) in jobs.iter_mut().zip(replies.drain(..)) {
                            // A dropped reply receiver just means the caller
                            // gave up on this request; keep serving.
                            let _ = job.slot.send(reply);
                            job.answered = true;
                        }
                        jobs.clear();
                    }
                })
            })
            .collect();
        Ok(Engine { queue: Some(queue), workers })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Non-blocking admission: enqueues the request and returns immediately,
    /// or sheds it when [`EngineConfig::queue_capacity`] requests are
    /// already queued — the backpressure signal an async front door (network
    /// acceptor, stream consumer) turns into "503 / retry later". Pair the
    /// handle with [`PendingResponse::wait`].
    ///
    /// The reply slot comes from the calling thread's parked stack — no
    /// allocation and no lock once the caller is warm, including on the
    /// shed path.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the admission queue is full; the
    /// shed request is handed back inside the error, so retrying (or
    /// falling back to [`Engine::submit_wait`]) needs no defensive clone.
    pub fn submit(&self, req: ScoreRequest) -> Result<PendingResponse, ServeError> {
        let slot = arm_slot();
        match &self.queue {
            Some(q) => {
                if let Err(mut job) =
                    q.try_push(Job { req, slot: Arc::clone(&slot), answered: false })
                {
                    // Take the request back out of the bounced job (swap —
                    // the `Drop` guard forbids destructuring), disarm the
                    // guard (nobody is waiting on this slot), and park the
                    // slot for the next submit.
                    let req = std::mem::replace(
                        &mut job.req,
                        ScoreRequest { user: 0, history: Vec::new(), candidates: Vec::new() },
                    );
                    job.answered = true;
                    drop(job);
                    park_slot(slot);
                    return Err(ServeError::Overloaded {
                        capacity: q.capacity(),
                        req: Box::new(req),
                    });
                }
            }
            // Unreachable while the engine is alive; keep `wait` total.
            None => slot.close(false),
        }
        Ok(PendingResponse { slot: Some(slot) })
    }

    /// Blocking admission: like [`Engine::submit`], but parks the calling
    /// thread while the queue is at capacity instead of shedding — natural
    /// backpressure for batch producers that should slow down rather than
    /// drop work.
    pub fn submit_wait(&self, req: ScoreRequest) -> PendingResponse {
        let slot = arm_slot();
        match &self.queue {
            Some(q) => q.push_wait(Job { req, slot: Arc::clone(&slot), answered: false }),
            None => slot.close(false),
        }
        PendingResponse { slot: Some(slot) }
    }

    /// Scores one request, blocking until the response is ready (parking on
    /// admission capacity if necessary).
    ///
    /// # Errors
    /// See [`PendingResponse::wait`].
    pub fn score(&self, req: ScoreRequest) -> Result<ScoreResponse, ServeError> {
        self.submit_wait(req).wait()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the queue lets every worker drain the backlog and exit;
        // in-flight requests are answered, not dropped.
        drop(self.queue.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Renders a caught panic payload for [`ServeError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::score_request;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::ParamStore;
    use seqfm_core::{FrozenSeqFm, SeqFm, SeqFmConfig};
    use seqfm_data::Batch;
    use std::sync::{Condvar, Mutex};

    fn frozen_model(layout: &FeatureLayout) -> FrozenSeqFm {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = SeqFmConfig { d: 8, max_seq: 6, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, layout, cfg);
        FrozenSeqFm::freeze(&model, &ps)
    }

    fn engine_cfg(threads: usize, top_k: usize) -> EngineConfig {
        EngineConfig { threads, max_seq: 6, top_k, ..Default::default() }
    }

    #[test]
    fn engine_matches_direct_scoring_across_many_requests() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let frozen = Arc::new(frozen_model(&layout));
        let engine = Engine::new(Arc::clone(&frozen), layout, engine_cfg(3, 5)).expect("valid cfg");
        assert_eq!(engine.threads(), 3);

        let requests: Vec<ScoreRequest> = (0..24)
            .map(|i| ScoreRequest {
                user: (i % 8) as u32,
                history: (0..(i % 5)).map(|j| ((i + j) % 20) as u32).collect(),
                candidates: (0..20).map(|c| ((c + i) % 20) as u32).collect(),
            })
            .collect();

        // Fan out everything first, then collect — exercises concurrency
        // and (since several requests share a history) the coalescer.
        let pending: Vec<PendingResponse> =
            requests.iter().map(|r| engine.submit(r.clone()).expect("under capacity")).collect();
        let mut scratch = Scratch::new();
        for (req, p) in requests.iter().zip(pending) {
            let got = p.wait().expect("valid request");
            let want =
                score_request(&*frozen, &layout, 6, 5, req, &mut scratch).expect("valid request");
            assert_eq!(got, want, "engine answer diverges for {req:?}");
        }
    }

    #[test]
    fn engine_reports_request_errors_not_panics() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine =
            Engine::new(Arc::new(frozen_model(&layout)), layout, engine_cfg(1, 0)).expect("valid");
        let bad = ScoreRequest { user: 99, history: vec![], candidates: vec![1] };
        assert_eq!(engine.score(bad), Err(ServeError::UnknownUser { user: 99, n_users: 8 }));
        // The worker survives a bad request.
        let ok = ScoreRequest { user: 1, history: vec![2], candidates: vec![1, 2, 3] };
        assert_eq!(engine.score(ok).expect("valid").ranked.len(), 3);
    }

    /// A scorer that panics on a poison candidate — for panic containment
    /// tests.
    struct Grenade(FrozenSeqFm);

    impl Scorer for Grenade {
        fn name(&self) -> &str {
            "grenade"
        }

        fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
            if batch.targets.len() == 13 {
                panic!("grenade went off");
            }
            self.0.score(batch, scratch)
        }
    }

    #[test]
    fn worker_panic_is_drained_into_the_error_and_worker_survives() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine =
            Engine::new(Arc::new(Grenade(frozen_model(&layout))), layout, engine_cfg(1, 0))
                .expect("valid");
        // 13 candidates → the scorer panics mid-request.
        let boom = ScoreRequest { user: 1, history: vec![2], candidates: (0..13).collect() };
        match engine.score(boom) {
            Err(ServeError::WorkerPanicked { message }) => {
                assert!(message.contains("grenade went off"), "panic text not drained: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The same (sole) worker keeps serving afterwards.
        let ok = ScoreRequest { user: 1, history: vec![2], candidates: vec![1, 2, 3] };
        assert_eq!(engine.score(ok).expect("valid").ranked.len(), 3);
    }

    #[test]
    fn reply_slots_are_reused_across_sequential_requests() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine =
            Engine::new(Arc::new(frozen_model(&layout)), layout, engine_cfg(2, 2)).expect("valid");
        let req = ScoreRequest { user: 0, history: vec![1], candidates: vec![2, 3, 4] };
        let first = engine.score(req.clone()).expect("valid");
        for _ in 0..50 {
            let again = engine.score(req.clone()).expect("valid");
            assert_eq!(again, first, "reused slot corrupted a response");
        }
        // Sequential round trips always reuse the caller's single parked
        // slot (each test runs on its own thread, so the count is exact).
        assert_eq!(parked_slots(), 1, "caller thread should hold one parked slot");
    }

    #[test]
    fn bad_configs_are_rejected_at_construction() {
        let layout = FeatureLayout { n_users: 4, n_items: 10 };
        let frozen = Arc::new(frozen_model(&layout));
        for cfg in [
            EngineConfig { max_seq: 0, ..Default::default() },
            EngineConfig { queue_capacity: 0, ..Default::default() },
            EngineConfig { coalesce_max: 0, ..Default::default() },
        ] {
            assert!(cfg.validate().is_err());
            match Engine::new(Arc::clone(&frozen), layout, cfg) {
                Err(ServeError::BadConfig { reason }) => {
                    assert!(!reason.is_empty(), "BadConfig must explain itself");
                }
                other => panic!("expected BadConfig for {cfg:?}, got {:?}", other.map(|_| ())),
            }
        }
        // The default configuration itself must of course be valid.
        EngineConfig::default().validate().expect("default config valid");
    }

    /// Shared gate state: (worker entered, gate open).
    type Gate = Arc<(Mutex<(bool, bool)>, Condvar)>;

    /// A scorer whose first call parks until released — lets tests fill the
    /// admission queue deterministically while the worker is busy.
    struct Gated {
        inner: FrozenSeqFm,
        gate: Gate,
    }

    impl Gated {
        fn new(inner: FrozenSeqFm) -> (Self, Gate) {
            let gate = Arc::new((Mutex::new((false, false)), Condvar::new()));
            (Gated { inner, gate: Arc::clone(&gate) }, gate)
        }
    }

    /// Blocks until the gated worker has entered its first score call.
    fn await_entered(gate: &Gate) {
        let (lock, cv) = &**gate;
        let mut st = lock.lock().unwrap();
        while !st.0 {
            st = cv.wait(st).unwrap();
        }
    }

    /// Opens the gate, releasing the parked worker.
    fn open_gate(gate: &Gate) {
        let (lock, cv) = &**gate;
        lock.lock().unwrap().1 = true;
        cv.notify_all();
    }

    impl Scorer for Gated {
        fn name(&self) -> &str {
            "gated"
        }

        fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
            let (lock, cv) = &*self.gate;
            let mut st = lock.lock().unwrap();
            st.0 = true;
            cv.notify_all();
            while !st.1 {
                st = cv.wait(st).unwrap();
            }
            drop(st);
            self.inner.score(batch, scratch)
        }
    }

    #[test]
    fn submit_sheds_load_with_overloaded_once_the_queue_is_full() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let (gated, gate) = Gated::new(frozen_model(&layout));
        let cfg = EngineConfig { threads: 1, max_seq: 6, queue_capacity: 2, ..Default::default() };
        let engine = Engine::new(Arc::new(gated), layout, cfg).expect("valid");
        let req = |u: u32| ScoreRequest { user: u, history: vec![2], candidates: vec![1, 3] };

        // The worker picks up the first request and parks inside the scorer,
        // leaving the admission queue empty...
        let blocker = engine.submit(req(0)).expect("queue empty");
        await_entered(&gate);
        // ...so exactly `queue_capacity` more are admitted...
        let queued: Vec<_> =
            (1..=2).map(|u| engine.submit(req(u)).expect("under capacity")).collect();
        // ...and the next submit is shed with the explicit signal, handing
        // the request back untouched.
        match engine.submit(req(3)) {
            Err(ServeError::Overloaded { capacity, req: shed }) => {
                assert_eq!(capacity, 2);
                assert_eq!(*shed, req(3), "shed request must come back intact");
            }
            other => panic!("expected Overloaded, got {:?}", other.map(|_| ())),
        }
        // Backpressure clears once the worker drains the backlog.
        open_gate(&gate);
        blocker.wait().expect("valid");
        for p in queued {
            p.wait().expect("valid");
        }
        engine.score(req(4)).expect("engine healthy after shedding");
    }

    #[test]
    fn submit_wait_parks_on_capacity_instead_of_shedding() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let (gated, gate) = Gated::new(frozen_model(&layout));
        let cfg = EngineConfig { threads: 1, max_seq: 6, queue_capacity: 1, ..Default::default() };
        let engine = Engine::new(Arc::new(gated), layout, cfg).expect("valid");
        let req = |u: u32| ScoreRequest { user: u, history: vec![2], candidates: vec![1, 3] };

        let blocker = engine.submit(req(0)).expect("queue empty");
        await_entered(&gate);
        let filler = engine.submit(req(1)).expect("fills the queue");
        assert!(matches!(engine.submit(req(2)), Err(ServeError::Overloaded { .. })));
        // submit_wait must park (not shed) and complete once the gate opens.
        std::thread::scope(|s| {
            let parked = s.spawn(|| engine.submit_wait(req(3)).wait());
            open_gate(&gate);
            assert_eq!(parked.join().unwrap().expect("valid").ranked.len(), 2);
        });
        blocker.wait().expect("valid");
        filler.wait().expect("valid");
    }

    #[test]
    fn queued_requests_coalesce_and_match_serial_scoring_bit_for_bit() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let reference = frozen_model(&layout);
        let (gated, gate) = Gated::new(frozen_model(&layout));
        let cfg =
            EngineConfig { threads: 1, max_seq: 6, top_k: 0, queue_capacity: 64, coalesce_max: 8 };
        let engine = Engine::new(Arc::new(gated), layout, cfg).expect("valid");
        // Park the worker, then pile up a mixed backlog: two share a
        // (user, history), others don't — one wakeup drains and groups all.
        let blocker = engine
            .submit(ScoreRequest { user: 7, history: vec![1], candidates: vec![2] })
            .expect("queue empty");
        await_entered(&gate);
        let backlog: Vec<ScoreRequest> = vec![
            ScoreRequest { user: 1, history: vec![2, 5], candidates: vec![0, 3, 9] },
            ScoreRequest { user: 1, history: vec![2, 5], candidates: vec![4] },
            ScoreRequest { user: 2, history: vec![], candidates: vec![7, 8] },
            ScoreRequest { user: 1, history: vec![5, 2], candidates: vec![0] },
            ScoreRequest { user: 1, history: vec![2, 5], candidates: vec![11, 0] },
        ];
        let pending: Vec<_> =
            backlog.iter().map(|r| engine.submit(r.clone()).expect("under capacity")).collect();
        open_gate(&gate);
        blocker.wait().expect("valid");
        let mut scratch = Scratch::new();
        for (req, p) in backlog.iter().zip(pending) {
            let got = p.wait().expect("valid");
            let want = score_request(&reference, &layout, 6, 0, req, &mut scratch).expect("valid");
            assert_eq!(got.ranked.len(), want.ranked.len());
            for (g, w) in got.ranked.iter().zip(&want.ranked) {
                assert_eq!(g.item, w.item, "coalesced ranking diverges for {req:?}");
                assert_eq!(
                    g.score.to_bits(),
                    w.score.to_bits(),
                    "coalesced score not bit-identical for {req:?}"
                );
            }
        }
    }

    #[test]
    fn dropped_pending_responses_recycle_their_slots() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine =
            Engine::new(Arc::new(frozen_model(&layout)), layout, engine_cfg(1, 0)).expect("valid");
        let req = ScoreRequest { user: 0, history: vec![1], candidates: vec![2, 3] };
        // With one FIFO worker, waiting on a *later* request guarantees the
        // earlier replies have been delivered into their slots.
        let abandoned: Vec<PendingResponse> =
            (0..4).map(|_| engine.submit(req.clone()).expect("under capacity")).collect();
        engine.score(req.clone()).expect("valid");
        // Pre-fix (PR 4), only `wait()` parked slots, so dropping these
        // leaked all four permanently; they now recycle onto the dropping
        // thread's parked stack.
        drop(abandoned);
        assert_eq!(parked_slots(), 5, "dropped pendings must park their slots for reuse");
        // The recycled slots serve fresh requests correctly.
        let want = engine.score(req.clone()).expect("valid");
        for _ in 0..8 {
            assert_eq!(engine.score(req.clone()).expect("valid"), want);
        }
        assert!(parked_slots() <= 5, "steady state must reuse, not grow, the parked stack");
    }

    #[test]
    fn overloaded_submits_do_not_leak_slots_either() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let (gated, gate) = Gated::new(frozen_model(&layout));
        let cfg = EngineConfig { threads: 1, max_seq: 6, queue_capacity: 1, ..Default::default() };
        let engine = Engine::new(Arc::new(gated), layout, cfg).expect("valid");
        let req = |u: u32| ScoreRequest { user: u, history: vec![2], candidates: vec![1] };
        let blocker = engine.submit(req(0)).expect("queue empty");
        await_entered(&gate);
        let filler = engine.submit(req(1)).expect("fills the queue");
        for _ in 0..16 {
            assert!(matches!(engine.submit(req(2)), Err(ServeError::Overloaded { .. })));
        }
        // All shed submits recycled their slot: at most one was allocated
        // for the shed path, and it sits parked on this thread.
        assert!(parked_slots() <= 1);
        open_gate(&gate);
        blocker.wait().expect("valid");
        filler.wait().expect("valid");
    }

    #[test]
    fn dropping_the_engine_answers_in_flight_requests() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let (gated, gate) = Gated::new(frozen_model(&layout));
        let cfg = EngineConfig { threads: 2, max_seq: 6, ..Default::default() };
        let engine = Engine::new(Arc::new(gated), layout, cfg).expect("valid");
        let req = |u: u32| ScoreRequest { user: u, history: vec![1], candidates: vec![2, 3] };
        let blocker = engine.submit(req(0)).expect("queue empty");
        await_entered(&gate);
        // Queue a backlog behind the parked worker, then tear down while
        // all of it is in flight.
        let pending: Vec<_> =
            (1..6).map(|u| engine.submit(req(u)).expect("under capacity")).collect();
        open_gate(&gate);
        drop(engine); // closes the queue; workers drain the backlog and exit
        assert_eq!(blocker.wait().expect("answered").ranked.len(), 2);
        for p in pending {
            // Drain semantics: in-flight requests are answered, not dropped.
            assert_eq!(p.wait().expect("answered on teardown").ranked.len(), 2);
        }
    }

    #[test]
    fn a_job_destroyed_unanswered_surfaces_shutdown_to_its_caller() {
        // The ShutDown path end-to-end at the slot level: a queue destroyed
        // with jobs still inside (e.g. torn down with dead workers) drops
        // the jobs unanswered, and each waiting caller gets ShutDown — not
        // a hang and not a phantom response.
        let slot: Slot = Arc::new(Oneshot::new());
        let job = Job {
            req: ScoreRequest { user: 0, history: vec![], candidates: vec![1] },
            slot: Arc::clone(&slot),
            answered: false,
        };
        let pending = PendingResponse { slot: Some(slot) };
        drop(job); // queue destruction drops the job without a reply
        assert_eq!(pending.wait(), Err(ServeError::ShutDown));
        // The closed slot was parked on this thread — ShutDown does not
        // leak it.
        assert_eq!(parked_slots(), 1);
    }
}
