//! The multi-threaded scoring engine.
//!
//! An [`Engine`] owns a pool of worker threads fed over one crossbeam MPMC
//! channel. Every worker holds its own [`Scratch`] workspace (warm buffers,
//! no cross-thread locks on the hot path) and a shared `Arc` of the scorer —
//! which is why the [`Scorer`] contract requires `&self`-only scoring and
//! why `FrozenSeqFm: Send + Sync` is load-bearing.

use crate::error::ServeError;
use crate::request::{score_request, ScoreRequest, ScoreResponse};
use crossbeam::channel::{self, Receiver, Sender};
use seqfm_core::{Scorer, Scratch};
use seqfm_data::FeatureLayout;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Engine sizing and ranking policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Dynamic window n˙ the serving model was trained with.
    pub max_seq: usize,
    /// Responses keep only the best `top_k` candidates; `0` keeps all.
    pub top_k: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // `max_seq` matches `SeqFmConfig::default`; single-threaded until the
        // caller opts into more.
        EngineConfig { threads: 1, max_seq: 20, top_k: 0 }
    }
}

type Reply = Sender<Result<ScoreResponse, ServeError>>;

struct Job {
    req: ScoreRequest,
    reply: Reply,
}

/// A handle to a submitted request; resolve it with
/// [`PendingResponse::wait`].
pub struct PendingResponse {
    rx: Receiver<Result<ScoreResponse, ServeError>>,
}

impl PendingResponse {
    /// Blocks until the engine has scored the request.
    ///
    /// # Errors
    /// The request's own [`ServeError`], or [`ServeError::ShutDown`] if the
    /// engine died before answering.
    pub fn wait(self) -> Result<ScoreResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShutDown))
    }
}

/// Multi-threaded scoring engine. See the module docs.
pub struct Engine {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spawns `cfg.threads` workers sharing `scorer`.
    ///
    /// The scorer is typically a
    /// [`FrozenSeqFm`](seqfm_core::FrozenSeqFm) (graph-free fast path) or a
    /// [`GraphScorer`](seqfm_core::GraphScorer) over any baseline
    /// (compatibility path) — anything `Scorer + Send + Sync` works.
    ///
    /// # Panics
    /// Panics if `cfg.max_seq == 0` — a misconfigured window would otherwise
    /// surface as dead worker threads on the first request, like
    /// [`SeqFmConfig::validate`](seqfm_core::SeqFmConfig::validate) this
    /// fails fast at construction.
    pub fn new<S: Scorer + Send + Sync + 'static>(
        scorer: Arc<S>,
        layout: FeatureLayout,
        cfg: EngineConfig,
    ) -> Self {
        assert!(cfg.max_seq > 0, "EngineConfig::max_seq must be positive");
        let (tx, rx) = channel::unbounded::<Job>();
        let workers = (0..cfg.threads.max(1))
            .map(|_| {
                let rx = rx.clone();
                let scorer = Arc::clone(&scorer);
                std::thread::spawn(move || {
                    let mut scratch = Scratch::new();
                    while let Ok(job) = rx.recv() {
                        let res = score_request(
                            &*scorer,
                            &layout,
                            cfg.max_seq,
                            cfg.top_k,
                            &job.req,
                            &mut scratch,
                        );
                        // A dropped reply receiver just means the caller gave
                        // up on this request; keep serving.
                        let _ = job.reply.send(res);
                    }
                })
            })
            .collect();
        Engine { tx: Some(tx), workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a request and returns immediately; any worker may pick it
    /// up. Pair with [`PendingResponse::wait`], or use [`Engine::score`] for
    /// the blocking round trip.
    pub fn submit(&self, req: ScoreRequest) -> PendingResponse {
        let (reply, rx) = channel::unbounded();
        if let Some(tx) = &self.tx {
            // A failed send means every worker exited; `wait` then reports
            // ShutDown via the dropped reply sender.
            let _ = tx.send(Job { req, reply });
        }
        PendingResponse { rx }
    }

    /// Scores one request, blocking until the response is ready.
    ///
    /// # Errors
    /// See [`PendingResponse::wait`].
    pub fn score(&self, req: ScoreRequest) -> Result<ScoreResponse, ServeError> {
        self.submit(req).wait()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the job channel lets every worker drain and exit.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::ParamStore;
    use seqfm_core::{FrozenSeqFm, SeqFm, SeqFmConfig};

    fn frozen_model(layout: &FeatureLayout) -> FrozenSeqFm {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = SeqFmConfig { d: 8, max_seq: 6, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, layout, cfg);
        FrozenSeqFm::freeze(&model, &ps)
    }

    #[test]
    fn engine_matches_direct_scoring_across_many_requests() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let frozen = Arc::new(frozen_model(&layout));
        let cfg = EngineConfig { threads: 3, max_seq: 6, top_k: 5 };
        let engine = Engine::new(Arc::clone(&frozen), layout, cfg);
        assert_eq!(engine.threads(), 3);

        let requests: Vec<ScoreRequest> = (0..24)
            .map(|i| ScoreRequest {
                user: (i % 8) as u32,
                history: (0..(i % 5)).map(|j| ((i + j) % 20) as u32).collect(),
                candidates: (0..20).map(|c| ((c + i) % 20) as u32).collect(),
            })
            .collect();

        // Fan out everything first, then collect — exercises concurrency.
        let pending: Vec<PendingResponse> =
            requests.iter().map(|r| engine.submit(r.clone())).collect();
        let mut scratch = Scratch::new();
        for (req, p) in requests.iter().zip(pending) {
            let got = p.wait().expect("valid request");
            let want =
                score_request(&*frozen, &layout, 6, 5, req, &mut scratch).expect("valid request");
            assert_eq!(got, want, "engine answer diverges for {req:?}");
        }
    }

    #[test]
    fn engine_reports_request_errors_not_panics() {
        let layout = FeatureLayout { n_users: 8, n_items: 20 };
        let engine = Engine::new(
            Arc::new(frozen_model(&layout)),
            layout,
            EngineConfig { threads: 1, max_seq: 6, top_k: 0 },
        );
        let bad = ScoreRequest { user: 99, history: vec![], candidates: vec![1] };
        assert_eq!(engine.score(bad), Err(ServeError::UnknownUser { user: 99, n_users: 8 }));
        // The worker survives a bad request.
        let ok = ScoreRequest { user: 1, history: vec![2], candidates: vec![1, 2, 3] };
        assert_eq!(engine.score(ok).expect("valid").ranked.len(), 3);
    }

    #[test]
    #[should_panic(expected = "max_seq must be positive")]
    fn zero_max_seq_fails_fast_at_construction() {
        let layout = FeatureLayout { n_users: 4, n_items: 10 };
        let _ = Engine::new(
            Arc::new(frozen_model(&layout)),
            layout,
            EngineConfig { threads: 1, max_seq: 0, top_k: 0 },
        );
    }

    #[test]
    fn dropping_the_engine_joins_workers_cleanly() {
        let layout = FeatureLayout { n_users: 4, n_items: 10 };
        let engine = Engine::new(
            Arc::new(frozen_model(&layout)),
            layout,
            EngineConfig { threads: 2, max_seq: 6, top_k: 1 },
        );
        let req = ScoreRequest { user: 0, history: vec![1], candidates: vec![2, 3] };
        let _ = engine.score(req).expect("valid");
        drop(engine); // must not hang or panic
    }
}
