//! Typed score requests, candidate expansion, top-K ranking — and the
//! coalesced multi-request scoring path the batching engine is built on.

use crate::error::ServeError;
use seqfm_core::{Scorer, Scratch};
use seqfm_data::{Batch, FeatureLayout, PAD};

/// "Score these candidate items for this user, given their history" — the
/// canonical serving request of a sequence-aware recommender.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScoreRequest {
    /// User id in `0..n_users`.
    pub user: u32,
    /// The user's interaction history, chronological, oldest first. May be
    /// empty (cold start): the dynamic block is then all padding.
    pub history: Vec<u32>,
    /// Candidate items to score, each in `0..n_items`.
    pub candidates: Vec<u32>,
}

/// One candidate with its model score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredCandidate {
    /// Item id.
    pub item: u32,
    /// Raw model logit (higher = more likely to interact).
    pub score: f32,
}

/// Candidates ranked by descending score, truncated to the engine's top-K.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreResponse {
    /// Best-first candidates. Ties keep request order (stable sort); NaN
    /// scores rank strictly last.
    pub ranked: Vec<ScoredCandidate>,
}

impl ScoreResponse {
    /// The highest-scoring candidate.
    pub fn best(&self) -> Option<ScoredCandidate> {
        self.ranked.first().copied()
    }
}

/// Checks one request against the model's layout and window.
///
/// # Errors
/// [`ServeError::BadConfig`] for `max_seq == 0` (a zero-width dynamic block
/// the attention kernels were never trained for),
/// [`ServeError::NoCandidates`], [`ServeError::UnknownUser`], or
/// [`ServeError::UnknownItem`].
fn validate_request(
    req: &ScoreRequest,
    layout: &FeatureLayout,
    max_seq: usize,
) -> Result<(), ServeError> {
    if max_seq == 0 {
        return Err(ServeError::BadConfig {
            reason: "max_seq must be >= 1 (a zero-width dynamic block cannot be scored)".into(),
        });
    }
    if req.candidates.is_empty() {
        return Err(ServeError::NoCandidates);
    }
    if req.user as usize >= layout.n_users {
        return Err(ServeError::UnknownUser { user: req.user, n_users: layout.n_users });
    }
    for &item in req.history.iter().chain(&req.candidates) {
        if item as usize >= layout.n_items {
            return Err(ServeError::UnknownItem { item, n_items: layout.n_items });
        }
    }
    Ok(())
}

/// The window of `req.history` that actually enters the dynamic block: the
/// most recent `max_seq` items. Two requests with equal effective histories
/// expand to identical dynamic rows and can share one super-batch.
fn effective_history(req: &ScoreRequest, max_seq: usize) -> &[u32] {
    let take = req.history.len().min(max_seq);
    &req.history[req.history.len() - take..]
}

/// Writes the candidate-expansion rows of `group` (indices into `reqs`,
/// all sharing one effective history) into `batch`, reusing its buffers.
/// Row layout is identical to [`expand_request`]'s: every row carries
/// `[user, candidate]` static features and the shared left-padded history.
fn expand_group_into_impl<R: std::borrow::Borrow<ScoreRequest>>(
    reqs: &[R],
    group: &[usize],
    layout: &FeatureLayout,
    max_seq: usize,
    batch: &mut Batch,
) {
    let hist = effective_history(reqs[group[0]].borrow(), max_seq);
    let total: usize = group.iter().map(|&i| reqs[i].borrow().candidates.len()).sum();
    batch.len = total;
    batch.n_static = 2;
    batch.n_dynamic = max_seq;
    batch.static_idx.clear();
    batch.static_idx.reserve(total * 2);
    for &i in group {
        let req = reqs[i].borrow();
        let user_feat = layout.user_feature(req.user);
        for &cand in &req.candidates {
            batch.static_idx.push(user_feat);
            batch.static_idx.push(layout.item_feature(cand));
        }
    }
    // The shared dynamic block: built once, then repeated per row with a
    // buffer-internal copy (no scratch allocation).
    batch.dyn_idx.clear();
    batch.dyn_idx.reserve(total * max_seq);
    batch.dyn_idx.resize(max_seq - hist.len(), PAD);
    batch.dyn_idx.extend(hist.iter().map(|&it| it as i64));
    for _ in 1..total {
        batch.dyn_idx.extend_from_within(0..max_seq);
    }
    batch.targets.clear();
    batch.targets.resize(total, 0.0);
}

/// The candidate-expansion layer: turns one request into a scoring batch of
/// `candidates.len()` rows that all share the user and history features and
/// differ only in the candidate column — the layout every caching/batching
/// optimisation builds on.
///
/// # Errors
/// [`ServeError::BadConfig`] (for `max_seq == 0`),
/// [`ServeError::NoCandidates`], [`ServeError::UnknownUser`], or
/// [`ServeError::UnknownItem`] when the request does not fit the layout.
pub fn expand_request(
    req: &ScoreRequest,
    layout: &FeatureLayout,
    max_seq: usize,
) -> Result<Batch, ServeError> {
    validate_request(req, layout, max_seq)?;
    let mut batch = Batch {
        len: 0,
        n_static: 2,
        n_dynamic: max_seq,
        static_idx: Vec::new(),
        dyn_idx: Vec::new(),
        targets: Vec::new(),
    };
    expand_group_into_impl(&[req], &[0], layout, max_seq, &mut batch);
    Ok(batch)
}

/// Ranks `candidates` by descending score. The sort is total
/// (`f32::total_cmp`) with NaN logits pinned strictly last, so a numerical
/// blow-up in one candidate's score cannot scramble the rest of the
/// ranking — and the result is deterministic for any input. Ties keep
/// request order (stable sort). `top_k == 0` keeps everything.
fn rank_candidates(candidates: &[u32], scores: &[f32], top_k: usize) -> Vec<ScoredCandidate> {
    let mut ranked: Vec<ScoredCandidate> = candidates
        .iter()
        .zip(scores)
        .map(|(&item, &score)| ScoredCandidate { item, score })
        .collect();
    ranked.sort_by(|a, b| match (a.score.is_nan(), b.score.is_nan()) {
        (false, false) => b.score.total_cmp(&a.score),
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
    });
    if top_k > 0 {
        ranked.truncate(top_k);
    }
    ranked
}

/// Serves one request synchronously: expand, score, rank, truncate.
///
/// `top_k == 0` returns every candidate ranked. Calling it directly (with a
/// caller-owned [`Scratch`]) is the single-threaded serving path; the
/// [`Engine`](crate::Engine) workers run the coalesced sibling
/// [`score_requests`], which is bit-identical per request.
///
/// # Errors
/// See [`expand_request`].
pub fn score_request<S: Scorer + ?Sized>(
    scorer: &S,
    layout: &FeatureLayout,
    max_seq: usize,
    top_k: usize,
    req: &ScoreRequest,
    scratch: &mut Scratch,
) -> Result<ScoreResponse, ServeError> {
    let batch = expand_request(req, layout, max_seq)?;
    let scores = scorer.score(&batch, scratch);
    Ok(ScoreResponse { ranked: rank_candidates(&req.candidates, scores, top_k) })
}

/// Reusable buffers of the coalesced scoring path: group index lists, the
/// expansion batch, the score accumulator, and the per-request result
/// staging area. One `CoalesceScratch` belongs to one engine worker (or
/// any other caller of [`score_requests_with`]); after a few drains every
/// buffer has grown to its high-water mark and the grouping/expansion
/// machinery performs no further heap allocation.
pub struct CoalesceScratch {
    /// Active groups (indices into the current request slice).
    groups: Vec<Vec<usize>>,
    /// Parked group index lists awaiting reuse.
    spare_groups: Vec<Vec<usize>>,
    /// Result staging, index-aligned with the request slice.
    slots: Vec<Option<Result<ScoreResponse, ServeError>>>,
    /// Reused candidate-expansion batch.
    batch: Batch,
    /// Reused per-group score accumulator.
    scores: Vec<f32>,
}

impl Default for CoalesceScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl CoalesceScratch {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        CoalesceScratch {
            groups: Vec::new(),
            spare_groups: Vec::new(),
            slots: Vec::new(),
            batch: Batch {
                len: 0,
                n_static: 2,
                n_dynamic: 0,
                static_idx: Vec::new(),
                dyn_idx: Vec::new(),
                targets: Vec::new(),
            },
            scores: Vec::new(),
        }
    }

    /// Parks every active group list for reuse and clears the staging area.
    fn reset(&mut self, n: usize) {
        for mut g in self.groups.drain(..) {
            g.clear();
            self.spare_groups.push(g);
        }
        self.slots.clear();
        self.slots.resize_with(n, || None);
    }

    /// A cleared group list (recycled when possible).
    fn fresh_group(&mut self) -> Vec<usize> {
        self.spare_groups.pop().unwrap_or_default()
    }
}

/// Serves many requests as coalesced super-batches: requests with the same
/// `(user, effective history)` are grouped and scored through **one** batch
/// whose rows all share the dynamic block — exactly the candidate-expansion
/// shape the frozen scorer's shared-history fast path accelerates, now
/// firing *across* requests instead of only within one.
///
/// Grouping is by first occurrence, scores are split back per request, and
/// each response is ranked exactly like [`score_request`] — per-request
/// results are **bit-identical** to the serial path (per-row arithmetic is
/// untouched; the fast path's reuse is itself bit-exact). Invalid requests
/// get their own [`ServeError`] without poisoning the rest. The returned
/// vector is index-aligned with `reqs`.
///
/// This is a convenience wrapper over [`score_requests_with`] that builds
/// throwaway buffers; repeat callers (the engine's workers) hold a
/// [`CoalesceScratch`] instead.
pub fn score_requests<S: Scorer + ?Sized>(
    scorer: &S,
    layout: &FeatureLayout,
    max_seq: usize,
    top_k: usize,
    reqs: &[&ScoreRequest],
    scratch: &mut Scratch,
) -> Vec<Result<ScoreResponse, ServeError>> {
    let mut cs = CoalesceScratch::new();
    let mut out = Vec::with_capacity(reqs.len());
    score_requests_with(scorer, layout, max_seq, top_k, reqs, scratch, &mut cs, &mut out);
    out
}

/// [`score_requests`] over caller-owned buffers: the grouping lists, the
/// expansion batch, and the score accumulator all live in `cs` and are
/// reused across calls; results are appended to `out` (cleared first),
/// index-aligned with `reqs`. `reqs` may hold requests by value or by
/// reference — the engine's workers hand over drained requests directly
/// without building a reference side-array per wakeup.
#[allow(clippy::too_many_arguments)]
pub fn score_requests_with<S: Scorer + ?Sized, R: std::borrow::Borrow<ScoreRequest>>(
    scorer: &S,
    layout: &FeatureLayout,
    max_seq: usize,
    top_k: usize,
    reqs: &[R],
    scratch: &mut Scratch,
    cs: &mut CoalesceScratch,
    out: &mut Vec<Result<ScoreResponse, ServeError>>,
) {
    cs.reset(reqs.len());
    // Group valid requests by (user, effective history), preserving first-
    // occurrence order. Linear key search: coalesced batches are small
    // (`coalesce_max`), so a hash map would cost more than it saves.
    for (i, req) in reqs.iter().enumerate() {
        let req = req.borrow();
        if let Err(e) = validate_request(req, layout, max_seq) {
            cs.slots[i] = Some(Err(e));
            continue;
        }
        match cs.groups.iter_mut().find(|g| {
            let head = reqs[g[0]].borrow();
            head.user == req.user
                && effective_history(head, max_seq) == effective_history(req, max_seq)
        }) {
            Some(g) => g.push(i),
            None => {
                let mut g = cs.fresh_group();
                g.push(i);
                cs.groups.push(g);
            }
        }
    }

    // One reusable expansion batch + score accumulator across all groups.
    for group in &cs.groups {
        expand_group_into_impl(reqs, group, layout, max_seq, &mut cs.batch);
        cs.scores.clear();
        scorer.score_into(&cs.batch, scratch, &mut cs.scores);
        let mut offset = 0usize;
        for &i in group {
            let req = reqs[i].borrow();
            let k = req.candidates.len();
            cs.slots[i] = Some(Ok(ScoreResponse {
                ranked: rank_candidates(&req.candidates, &cs.scores[offset..offset + k], top_k),
            }));
            offset += k;
        }
    }
    out.clear();
    out.extend(
        cs.slots.drain(..).map(|r| {
            r.expect("every request is either rejected by validation or scored in a group")
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::ParamStore;
    use seqfm_core::{FrozenSeqFm, SeqFm, SeqFmConfig};

    fn layout() -> FeatureLayout {
        FeatureLayout { n_users: 4, n_items: 12 }
    }

    fn frozen(seed: u64) -> FrozenSeqFm {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SeqFmConfig { d: 8, max_seq: 5, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
        FrozenSeqFm::freeze(&model, &ps)
    }

    #[test]
    fn expansion_shares_history_and_varies_candidates() {
        let req = ScoreRequest { user: 2, history: vec![1, 5, 3], candidates: vec![7, 0, 9] };
        let b = expand_request(&req, &layout(), 5).expect("valid");
        assert_eq!((b.len, b.n_static, b.n_dynamic), (3, 2, 5));
        let l = layout();
        for i in 0..3 {
            // Same user and the same left-padded history in every row.
            assert_eq!(b.static_idx[i * 2], l.user_feature(2));
            assert_eq!(b.dyn_idx[i * 5..(i + 1) * 5], [PAD, PAD, 1, 5, 3]);
            assert_eq!(b.candidate_item(&l, i), req.candidates[i]);
        }
    }

    #[test]
    fn expansion_truncates_long_histories_like_build_instance() {
        let req = ScoreRequest { user: 0, history: vec![0, 1, 2, 3, 4, 5], candidates: vec![1] };
        let b = expand_request(&req, &layout(), 4).expect("valid");
        let direct = Batch::try_from_instances(&[seqfm_data::build_instance(
            &layout(),
            0,
            1,
            &req.history,
            4,
            0.0,
        )])
        .expect("valid batch");
        assert_eq!(b.dyn_idx, direct.dyn_idx);
        assert_eq!(b.static_idx, direct.static_idx);
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let l = layout();
        let base = ScoreRequest { user: 0, history: vec![], candidates: vec![1] };
        assert_eq!(
            expand_request(&ScoreRequest { candidates: vec![], ..base.clone() }, &l, 5),
            Err(ServeError::NoCandidates)
        );
        assert_eq!(
            expand_request(&ScoreRequest { user: 4, ..base.clone() }, &l, 5),
            Err(ServeError::UnknownUser { user: 4, n_users: 4 })
        );
        assert_eq!(
            expand_request(&ScoreRequest { history: vec![12], ..base.clone() }, &l, 5),
            Err(ServeError::UnknownItem { item: 12, n_items: 12 })
        );
        assert_eq!(
            expand_request(&ScoreRequest { candidates: vec![1, 99], ..base }, &l, 5),
            Err(ServeError::UnknownItem { item: 99, n_items: 12 })
        );
    }

    #[test]
    fn zero_max_seq_is_a_config_error_not_a_zero_width_batch() {
        let l = layout();
        let req = ScoreRequest { user: 0, history: vec![1], candidates: vec![2] };
        // Pre-fix, this built a Batch with n_dynamic == 0 and let the
        // attention kernels run on a shape the model was never trained for.
        let err = expand_request(&req, &l, 0).expect_err("must reject");
        assert!(matches!(err, ServeError::BadConfig { .. }), "got {err:?}");
        let mut scratch = Scratch::new();
        let err = score_request(&frozen(3), &l, 0, 0, &req, &mut scratch).expect_err("must reject");
        assert!(matches!(err, ServeError::BadConfig { .. }));
        let got = score_requests(&frozen(3), &l, 0, 0, &[&req], &mut scratch);
        assert!(matches!(&got[0], Err(ServeError::BadConfig { .. })));
    }

    #[test]
    fn ranking_is_descending_and_top_k_truncates() {
        let l = layout();
        let frozen = frozen(11);
        let mut scratch = Scratch::new();
        let req = ScoreRequest { user: 1, history: vec![2, 8], candidates: (0..12).collect() };
        let all = score_request(&frozen, &l, 5, 0, &req, &mut scratch).expect("valid");
        assert_eq!(all.ranked.len(), 12);
        for w in all.ranked.windows(2) {
            assert!(w[0].score >= w[1].score, "ranking not descending");
        }
        let top3 = score_request(&frozen, &l, 5, 3, &req, &mut scratch).expect("valid");
        assert_eq!(top3.ranked.len(), 3);
        assert_eq!(top3.ranked, all.ranked[..3].to_vec());
        assert_eq!(all.best().unwrap().item, all.ranked[0].item);
    }

    /// Stub scorer returning preset scores (NaN-injection regression rig).
    struct Preset(Vec<f32>);

    impl Scorer for Preset {
        fn name(&self) -> &str {
            "preset"
        }

        fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
            scratch.publish_scores(&self.0[..batch.len])
        }
    }

    #[test]
    fn nan_scores_rank_last_and_deterministically() {
        let l = layout();
        let stub = Preset(vec![1.0, f32::NAN, 0.5, f32::NAN, 2.0]);
        let req = ScoreRequest { user: 0, history: vec![1], candidates: vec![10, 11, 2, 3, 4] };
        let mut scratch = Scratch::new();
        let first = score_request(&stub, &l, 5, 0, &req, &mut scratch).expect("valid");
        // Finite scores descending, then the NaN-scored candidates in
        // request order — never interleaved into the ranking.
        let items: Vec<u32> = first.ranked.iter().map(|c| c.item).collect();
        assert_eq!(items, vec![4, 10, 2, 11, 3]);
        assert!(first.ranked[3].score.is_nan() && first.ranked[4].score.is_nan());
        // Pre-fix, `partial_cmp(..).unwrap_or(Equal)` made NaN compare Equal
        // to everything and the result depended on sort internals. Now every
        // rerun must agree.
        for _ in 0..20 {
            let again = score_request(&stub, &l, 5, 0, &req, &mut scratch).expect("valid");
            let again_items: Vec<u32> = again.ranked.iter().map(|c| c.item).collect();
            assert_eq!(again_items, items, "NaN ranking must be deterministic");
        }
        // top_k truncation happens after NaN demotion: NaNs can't crowd out
        // finite scores.
        let top3 = score_request(&stub, &l, 5, 3, &req, &mut scratch).expect("valid");
        let top3_items: Vec<u32> = top3.ranked.iter().map(|c| c.item).collect();
        assert_eq!(top3_items, vec![4, 10, 2]);
    }

    #[test]
    fn coalesced_scoring_is_bit_identical_to_serial_per_request() {
        let l = layout();
        let model = frozen(21);
        // A deliberately messy mix: shared (user, history) pairs, a history
        // equal only after truncation, different candidate counts, a cold
        // start, and two invalid requests in the middle.
        let reqs = [
            ScoreRequest { user: 1, history: vec![2, 8, 3], candidates: vec![0, 5, 7] },
            ScoreRequest { user: 0, history: vec![], candidates: vec![1] },
            ScoreRequest { user: 1, history: vec![2, 8, 3], candidates: vec![9] },
            ScoreRequest { user: 9, history: vec![], candidates: vec![1] }, // unknown user
            // Truncation-equivalent to the user-1 history above (max_seq 3).
            ScoreRequest { user: 1, history: vec![11, 2, 8, 3], candidates: vec![4, 4, 6] },
            ScoreRequest { user: 2, history: vec![2, 8, 3], candidates: vec![0, 5] },
            ScoreRequest { user: 1, history: vec![3, 2], candidates: vec![] }, // no candidates
            ScoreRequest { user: 3, history: vec![1, 1, 1], candidates: (0..12).collect() },
        ];
        let refs: Vec<&ScoreRequest> = reqs.iter().collect();
        for (max_seq, top_k) in [(3usize, 0usize), (3, 2), (5, 4)] {
            let mut scratch = Scratch::new();
            let coalesced = score_requests(&model, &l, max_seq, top_k, &refs, &mut scratch);
            assert_eq!(coalesced.len(), reqs.len());
            let mut serial_scratch = Scratch::new();
            for (i, req) in reqs.iter().enumerate() {
                let serial = score_request(&model, &l, max_seq, top_k, req, &mut serial_scratch);
                match (&coalesced[i], &serial) {
                    (Ok(c), Ok(s)) => {
                        assert_eq!(c.ranked.len(), s.ranked.len(), "request {i}");
                        for (cc, sc) in c.ranked.iter().zip(&s.ranked) {
                            assert_eq!(cc.item, sc.item, "request {i}: item order diverges");
                            assert_eq!(
                                cc.score.to_bits(),
                                sc.score.to_bits(),
                                "request {i}: score not bit-identical ({} vs {})",
                                cc.score,
                                sc.score
                            );
                        }
                    }
                    (c, s) => assert_eq!(c, s, "request {i}: error mismatch"),
                }
            }
        }
    }

    #[test]
    fn coalesced_groups_form_by_user_and_effective_history() {
        // Observable through a counting scorer: each group is one score
        // call with all member candidates in one batch.
        use std::cell::Cell;
        struct Counting {
            calls: Cell<usize>,
            rows: Cell<usize>,
        }
        impl Scorer for Counting {
            fn name(&self) -> &str {
                "counting"
            }
            fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
                self.calls.set(self.calls.get() + 1);
                self.rows.set(self.rows.get() + batch.len);
                scratch.publish_scores(&vec![0.0; batch.len])
            }
        }
        let l = layout();
        let reqs = [
            ScoreRequest { user: 1, history: vec![2, 8], candidates: vec![0, 5] },
            ScoreRequest { user: 1, history: vec![2, 8], candidates: vec![7] },
            ScoreRequest { user: 2, history: vec![2, 8], candidates: vec![1] }, // other user
            ScoreRequest { user: 1, history: vec![8, 2], candidates: vec![1] }, // other order
            ScoreRequest { user: 1, history: vec![2, 8], candidates: vec![3] },
        ];
        let refs: Vec<&ScoreRequest> = reqs.iter().collect();
        let counter = Counting { calls: Cell::new(0), rows: Cell::new(0) };
        let mut scratch = Scratch::new();
        let out = score_requests(&counter, &l, 5, 0, &refs, &mut scratch);
        assert!(out.iter().all(Result::is_ok));
        // Three groups: {0, 1, 4} (same user+history), {2}, {3}.
        assert_eq!(counter.calls.get(), 3, "expected 3 coalesced groups");
        assert_eq!(counter.rows.get(), 6, "all candidate rows scored exactly once");
    }
}
