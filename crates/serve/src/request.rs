//! Typed score requests, candidate expansion, and top-K ranking.

use crate::error::ServeError;
use seqfm_core::{Scorer, Scratch};
use seqfm_data::{Batch, FeatureLayout, PAD};

/// "Score these candidate items for this user, given their history" — the
/// canonical serving request of a sequence-aware recommender.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScoreRequest {
    /// User id in `0..n_users`.
    pub user: u32,
    /// The user's interaction history, chronological, oldest first. May be
    /// empty (cold start): the dynamic block is then all padding.
    pub history: Vec<u32>,
    /// Candidate items to score, each in `0..n_items`.
    pub candidates: Vec<u32>,
}

/// One candidate with its model score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredCandidate {
    /// Item id.
    pub item: u32,
    /// Raw model logit (higher = more likely to interact).
    pub score: f32,
}

/// Candidates ranked by descending score, truncated to the engine's top-K.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreResponse {
    /// Best-first candidates. Ties keep request order (stable sort).
    pub ranked: Vec<ScoredCandidate>,
}

impl ScoreResponse {
    /// The highest-scoring candidate.
    pub fn best(&self) -> Option<ScoredCandidate> {
        self.ranked.first().copied()
    }
}

/// The candidate-expansion layer: turns one request into a scoring batch of
/// `candidates.len()` rows that all share the user and history features and
/// differ only in the candidate column — the layout every caching/batching
/// optimisation builds on.
///
/// # Errors
/// [`ServeError::NoCandidates`], [`ServeError::UnknownUser`], or
/// [`ServeError::UnknownItem`] when the request does not fit the layout.
pub fn expand_request(
    req: &ScoreRequest,
    layout: &FeatureLayout,
    max_seq: usize,
) -> Result<Batch, ServeError> {
    if req.candidates.is_empty() {
        return Err(ServeError::NoCandidates);
    }
    if req.user as usize >= layout.n_users {
        return Err(ServeError::UnknownUser { user: req.user, n_users: layout.n_users });
    }
    let check_item = |item: u32| {
        if (item as usize) < layout.n_items {
            Ok(())
        } else {
            Err(ServeError::UnknownItem { item, n_items: layout.n_items })
        }
    };
    for &it in req.history.iter().chain(&req.candidates) {
        check_item(it)?;
    }

    // The shared dynamic block: most recent `max_seq` items, left-padded —
    // built once, reused for every candidate row.
    let take = req.history.len().min(max_seq);
    let recent = &req.history[req.history.len() - take..];
    let mut dyn_row = vec![PAD; max_seq - take];
    dyn_row.extend(recent.iter().map(|&it| it as i64));

    let k = req.candidates.len();
    let user_feat = layout.user_feature(req.user);
    let mut static_idx = Vec::with_capacity(k * 2);
    let mut dyn_idx = Vec::with_capacity(k * max_seq);
    for &cand in &req.candidates {
        static_idx.push(user_feat);
        static_idx.push(layout.item_feature(cand));
        dyn_idx.extend_from_slice(&dyn_row);
    }
    Ok(Batch {
        len: k,
        n_static: 2,
        n_dynamic: max_seq,
        static_idx,
        dyn_idx,
        targets: vec![0.0; k],
    })
}

/// Serves one request synchronously: expand, score, rank, truncate.
///
/// `top_k == 0` returns every candidate ranked. This is exactly what each
/// [`Engine`](crate::Engine) worker runs per request; calling it directly
/// (with a caller-owned [`Scratch`]) is the single-threaded serving path.
///
/// # Errors
/// See [`expand_request`].
pub fn score_request<S: Scorer + ?Sized>(
    scorer: &S,
    layout: &FeatureLayout,
    max_seq: usize,
    top_k: usize,
    req: &ScoreRequest,
    scratch: &mut Scratch,
) -> Result<ScoreResponse, ServeError> {
    let batch = expand_request(req, layout, max_seq)?;
    let scores = scorer.score(&batch, scratch);
    let mut ranked: Vec<ScoredCandidate> = req
        .candidates
        .iter()
        .zip(scores)
        .map(|(&item, &score)| ScoredCandidate { item, score })
        .collect();
    ranked.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    if top_k > 0 {
        ranked.truncate(top_k);
    }
    Ok(ScoreResponse { ranked })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::ParamStore;
    use seqfm_core::{FrozenSeqFm, SeqFm, SeqFmConfig};

    fn layout() -> FeatureLayout {
        FeatureLayout { n_users: 4, n_items: 12 }
    }

    #[test]
    fn expansion_shares_history_and_varies_candidates() {
        let req = ScoreRequest { user: 2, history: vec![1, 5, 3], candidates: vec![7, 0, 9] };
        let b = expand_request(&req, &layout(), 5).expect("valid");
        assert_eq!((b.len, b.n_static, b.n_dynamic), (3, 2, 5));
        let l = layout();
        for i in 0..3 {
            // Same user and the same left-padded history in every row.
            assert_eq!(b.static_idx[i * 2], l.user_feature(2));
            assert_eq!(b.dyn_idx[i * 5..(i + 1) * 5], [PAD, PAD, 1, 5, 3]);
            assert_eq!(b.candidate_item(&l, i), req.candidates[i]);
        }
    }

    #[test]
    fn expansion_truncates_long_histories_like_build_instance() {
        let req = ScoreRequest { user: 0, history: vec![0, 1, 2, 3, 4, 5], candidates: vec![1] };
        let b = expand_request(&req, &layout(), 4).expect("valid");
        let direct = Batch::try_from_instances(&[seqfm_data::build_instance(
            &layout(),
            0,
            1,
            &req.history,
            4,
            0.0,
        )])
        .expect("valid batch");
        assert_eq!(b.dyn_idx, direct.dyn_idx);
        assert_eq!(b.static_idx, direct.static_idx);
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let l = layout();
        let base = ScoreRequest { user: 0, history: vec![], candidates: vec![1] };
        assert_eq!(
            expand_request(&ScoreRequest { candidates: vec![], ..base.clone() }, &l, 5),
            Err(ServeError::NoCandidates)
        );
        assert_eq!(
            expand_request(&ScoreRequest { user: 4, ..base.clone() }, &l, 5),
            Err(ServeError::UnknownUser { user: 4, n_users: 4 })
        );
        assert_eq!(
            expand_request(&ScoreRequest { history: vec![12], ..base.clone() }, &l, 5),
            Err(ServeError::UnknownItem { item: 12, n_items: 12 })
        );
        assert_eq!(
            expand_request(&ScoreRequest { candidates: vec![1, 99], ..base }, &l, 5),
            Err(ServeError::UnknownItem { item: 99, n_items: 12 })
        );
    }

    #[test]
    fn ranking_is_descending_and_top_k_truncates() {
        let l = layout();
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = SeqFmConfig { d: 8, max_seq: 5, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, &l, cfg);
        let frozen = FrozenSeqFm::freeze(&model, &ps);
        let mut scratch = Scratch::new();
        let req = ScoreRequest { user: 1, history: vec![2, 8], candidates: (0..12).collect() };
        let all = score_request(&frozen, &l, 5, 0, &req, &mut scratch).expect("valid");
        assert_eq!(all.ranked.len(), 12);
        for w in all.ranked.windows(2) {
            assert!(w[0].score >= w[1].score, "ranking not descending");
        }
        let top3 = score_request(&frozen, &l, 5, 3, &req, &mut scratch).expect("valid");
        assert_eq!(top3.ranked.len(), 3);
        assert_eq!(top3.ranked, all.ranked[..3].to_vec());
        assert_eq!(all.best().unwrap().item, all.ranked[0].item);
    }
}
