//! Typed score requests, candidate expansion, top-K ranking — and the
//! coalesced multi-request scoring path the batching engine is built on.
//!
//! Since the stateful-serving redesign a request names its history through
//! a [`HistorySource`]: carried inline (the classic shape) or resolved
//! from the engine's [`HistoryStore`](crate::HistoryStore) (`(user,
//! candidates)` requests). The coalescer groups requests by **canonical
//! history content alone** — not `(user, history)` — so identical
//! trending/anonymous traffic coalesces *across users*, bit-identically to
//! serial scoring.

use crate::error::ServeError;
use crate::store::HistoryBackend;
use seqfm_core::{HistoryView, ModelEpoch, Scorer, Scratch};
use seqfm_data::{Batch, FeatureLayout, PAD};
use std::sync::Arc;

/// Where a request's interaction history comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistorySource {
    /// The request carries its own history, chronological, oldest first.
    /// May be empty (cold start): the dynamic block is then all padding.
    /// `Vec<u32>` converts [`Into`] this variant, so existing literals
    /// migrate as `history: vec![1, 2].into()`.
    Inline(Vec<u32>),
    /// The engine resolves the history from its
    /// [`HistoryStore`](crate::HistoryStore) — the request is just
    /// `(user, candidates)`, and appends via
    /// [`Engine::append_event`](crate::Engine::append_event) keep the
    /// stored sequence current between requests.
    Stored,
}

impl Default for HistorySource {
    fn default() -> Self {
        HistorySource::Inline(Vec::new())
    }
}

impl From<Vec<u32>> for HistorySource {
    fn from(history: Vec<u32>) -> Self {
        HistorySource::Inline(history)
    }
}

impl From<&[u32]> for HistorySource {
    fn from(history: &[u32]) -> Self {
        HistorySource::Inline(history.to_vec())
    }
}

/// "Score these candidate items for this user" — the canonical serving
/// request of a sequence-aware recommender, with the history either
/// attached ([`HistorySource::Inline`]) or owned by the engine
/// ([`HistorySource::Stored`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScoreRequest {
    /// User id in `0..n_users`.
    pub user: u32,
    /// Where the user's interaction history comes from.
    pub history: HistorySource,
    /// Candidate items to score, each in `0..n_items`.
    pub candidates: Vec<u32>,
}

impl ScoreRequest {
    /// A request carrying its own history (the pre-store request shape).
    pub fn inline(
        user: u32,
        history: impl Into<Vec<u32>>,
        candidates: impl Into<Vec<u32>>,
    ) -> Self {
        ScoreRequest {
            user,
            history: HistorySource::Inline(history.into()),
            candidates: candidates.into(),
        }
    }

    /// A `(user, candidates)` request whose history lives in the engine's
    /// [`HistoryStore`](crate::HistoryStore).
    pub fn stored(user: u32, candidates: impl Into<Vec<u32>>) -> Self {
        ScoreRequest { user, history: HistorySource::Stored, candidates: candidates.into() }
    }

    /// Pre-redesign constructor shim: `history` was a plain `Vec<u32>`.
    #[deprecated(
        since = "0.2.0",
        note = "history is now a `HistorySource`; use `ScoreRequest::inline` (or \
                `ScoreRequest::stored` for engine-resolved histories)"
    )]
    pub fn new(user: u32, history: Vec<u32>, candidates: Vec<u32>) -> Self {
        Self::inline(user, history, candidates)
    }

    /// The inline history, if this request carries one.
    pub fn inline_history(&self) -> Option<&[u32]> {
        match &self.history {
            HistorySource::Inline(h) => Some(h),
            HistorySource::Stored => None,
        }
    }
}

/// One candidate with its model score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredCandidate {
    /// Item id.
    pub item: u32,
    /// Raw model logit (higher = more likely to interact).
    pub score: f32,
}

/// Candidates ranked by descending score, truncated to the engine's top-K.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScoreResponse {
    /// Best-first candidates. Ties keep request order (stable sort); NaN
    /// scores rank strictly last.
    pub ranked: Vec<ScoredCandidate>,
    /// The [`ModelEpoch`] of the scorer that produced these logits. Under
    /// online learning a request races model publishes; this stamp names the
    /// revision the whole response was scored under (a coalesced super-batch
    /// never mixes epochs), so re-scoring the request against that pinned
    /// revision reproduces every bit.
    pub epoch: ModelEpoch,
}

impl ScoreResponse {
    /// The highest-scoring candidate.
    pub fn best(&self) -> Option<ScoredCandidate> {
        self.ranked.first().copied()
    }
}

/// The most recent `max_seq` items of a history — the window that actually
/// enters the dynamic block. Two requests with equal canonical windows
/// expand to identical dynamic rows and can share one super-batch.
fn effective_window(history: &[u32], max_seq: usize) -> &[u32] {
    let take = history.len().min(max_seq);
    &history[history.len() - take..]
}

/// Per-request outcome of history resolution: where the canonical window
/// sits in [`CoalesceScratch::hist_buf`], plus (for stored requests) the
/// cache identity and any cached view found for it.
#[derive(Default)]
struct ResolvedSlot {
    start: usize,
    end: usize,
    /// Cached history-side panel, when the view cache held a current one.
    view: Option<Arc<HistoryView>>,
    /// `(user, version)` under which a freshly built view may be cached
    /// (the model-epoch half of the cache key is uniform across the drain —
    /// one scorer scores the whole super-batch).
    cache_key: Option<(u32, u64)>,
}

/// Shape/range checks shared by every path, in the fixed error order the
/// tests pin: window config, candidates present, user known, items known.
fn validate_common(
    req: &ScoreRequest,
    layout: &FeatureLayout,
    max_seq: usize,
) -> Result<(), ServeError> {
    if max_seq == 0 {
        return Err(ServeError::BadConfig {
            reason: "max_seq must be >= 1 (a zero-width dynamic block cannot be scored)".into(),
        });
    }
    if req.candidates.is_empty() {
        return Err(ServeError::NoCandidates);
    }
    if req.user as usize >= layout.n_users {
        return Err(ServeError::UnknownUser { user: req.user, n_users: layout.n_users });
    }
    let inline = req.inline_history().unwrap_or(&[]);
    for &item in inline.iter().chain(&req.candidates) {
        if item as usize >= layout.n_items {
            return Err(ServeError::UnknownItem { item, n_items: layout.n_items });
        }
    }
    Ok(())
}

/// Validates `req` and appends its canonical history window to `hist_buf`,
/// resolving [`HistorySource::Stored`] through `backend` (snapshot under
/// one shard read lock + versioned view-cache lookup).
#[allow(clippy::too_many_arguments)]
fn resolve_request(
    req: &ScoreRequest,
    layout: &FeatureLayout,
    max_seq: usize,
    backend: Option<&HistoryBackend<'_>>,
    epoch: ModelEpoch,
    snap_buf: &mut Vec<u32>,
    hist_buf: &mut Vec<u32>,
    slot: &mut ResolvedSlot,
) -> Result<(), ServeError> {
    validate_common(req, layout, max_seq)?;
    match &req.history {
        HistorySource::Inline(h) => {
            hist_buf.extend_from_slice(effective_window(h, max_seq));
        }
        HistorySource::Stored => {
            let Some(be) = backend else {
                return Err(ServeError::NoHistoryStore);
            };
            // Store items were validated on append; the snapshot and its
            // version are atomic w.r.t. concurrent appends.
            let version = be.store.snapshot_into(req.user, snap_buf);
            hist_buf.extend_from_slice(effective_window(snap_buf, max_seq));
            slot.cache_key = Some((req.user, version));
            if let Some(cache) = be.cache {
                slot.view = cache.get(req.user, version, epoch);
            }
        }
    }
    Ok(())
}

/// Writes the candidate-expansion rows of `group` (indices into `reqs`,
/// all sharing the canonical window `hist`) into `batch`, reusing its
/// buffers. Row layout is identical to [`expand_request`]'s: every row
/// carries `[user, candidate]` static features and the shared left-padded
/// history.
fn expand_group_into_impl<R: std::borrow::Borrow<ScoreRequest>>(
    reqs: &[R],
    group: &[usize],
    hist: &[u32],
    layout: &FeatureLayout,
    max_seq: usize,
    batch: &mut Batch,
) {
    let total: usize = group.iter().map(|&i| reqs[i].borrow().candidates.len()).sum();
    batch.len = total;
    batch.n_static = 2;
    batch.n_dynamic = max_seq;
    batch.static_idx.clear();
    batch.static_idx.reserve(total * 2);
    for &i in group {
        let req = reqs[i].borrow();
        let user_feat = layout.user_feature(req.user);
        for &cand in &req.candidates {
            batch.static_idx.push(user_feat);
            batch.static_idx.push(layout.item_feature(cand));
        }
    }
    // The shared dynamic block: built once, then repeated per row with a
    // buffer-internal copy (no scratch allocation).
    batch.dyn_idx.clear();
    batch.dyn_idx.reserve(total * max_seq);
    batch.dyn_idx.resize(max_seq - hist.len(), PAD);
    batch.dyn_idx.extend(hist.iter().map(|&it| it as i64));
    for _ in 1..total {
        batch.dyn_idx.extend_from_within(0..max_seq);
    }
    batch.targets.clear();
    batch.targets.resize(total, 0.0);
}

/// The candidate-expansion layer: turns one request into a scoring batch of
/// `candidates.len()` rows that all share the user and history features and
/// differ only in the candidate column — the layout every caching/batching
/// optimisation builds on.
///
/// # Errors
/// [`ServeError::BadConfig`] (for `max_seq == 0`),
/// [`ServeError::NoCandidates`], [`ServeError::UnknownUser`],
/// [`ServeError::UnknownItem`] when the request does not fit the layout, or
/// [`ServeError::NoHistoryStore`] for a [`HistorySource::Stored`] request
/// (this store-less helper cannot resolve it — use the
/// [`Engine`](crate::Engine)).
pub fn expand_request(
    req: &ScoreRequest,
    layout: &FeatureLayout,
    max_seq: usize,
) -> Result<Batch, ServeError> {
    validate_common(req, layout, max_seq)?;
    let Some(history) = req.inline_history() else {
        return Err(ServeError::NoHistoryStore);
    };
    let mut batch = Batch {
        len: 0,
        n_static: 2,
        n_dynamic: max_seq,
        static_idx: Vec::new(),
        dyn_idx: Vec::new(),
        targets: Vec::new(),
    };
    expand_group_into_impl(
        &[req],
        &[0],
        effective_window(history, max_seq),
        layout,
        max_seq,
        &mut batch,
    );
    Ok(batch)
}

/// Ranks `candidates` by descending score. The sort is total
/// (`f32::total_cmp`) with NaN logits pinned strictly last, so a numerical
/// blow-up in one candidate's score cannot scramble the rest of the
/// ranking — and the result is deterministic for any input. Ties keep
/// request order (stable sort). `top_k == 0` keeps everything.
fn rank_candidates(candidates: &[u32], scores: &[f32], top_k: usize) -> Vec<ScoredCandidate> {
    let mut ranked: Vec<ScoredCandidate> = candidates
        .iter()
        .zip(scores)
        .map(|(&item, &score)| ScoredCandidate { item, score })
        .collect();
    ranked.sort_by(|a, b| match (a.score.is_nan(), b.score.is_nan()) {
        (false, false) => b.score.total_cmp(&a.score),
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
    });
    if top_k > 0 {
        ranked.truncate(top_k);
    }
    ranked
}

/// Serves one request synchronously: expand, score, rank, truncate.
///
/// `top_k == 0` returns every candidate ranked. Calling it directly (with a
/// caller-owned [`Scratch`]) is the single-threaded serving path; the
/// [`Engine`](crate::Engine) workers run the coalesced sibling
/// [`score_requests`], which is bit-identical per request.
///
/// # Errors
/// See [`expand_request`].
pub fn score_request<S: Scorer + ?Sized>(
    scorer: &S,
    layout: &FeatureLayout,
    max_seq: usize,
    top_k: usize,
    req: &ScoreRequest,
    scratch: &mut Scratch,
) -> Result<ScoreResponse, ServeError> {
    let batch = expand_request(req, layout, max_seq)?;
    let scores = scorer.score(&batch, scratch);
    Ok(ScoreResponse {
        ranked: rank_candidates(&req.candidates, scores, top_k),
        epoch: scorer.model_epoch(),
    })
}

/// Reusable buffers of the coalesced scoring path: group index lists,
/// resolved canonical histories, the expansion batch, the score
/// accumulator, and the per-request result staging area. One
/// `CoalesceScratch` belongs to one engine worker (or any other caller of
/// [`score_requests_with`]); after a few drains every buffer has grown to
/// its high-water mark and the grouping/expansion machinery performs no
/// further heap allocation.
pub struct CoalesceScratch {
    /// Active groups (indices into the current request slice).
    groups: Vec<Vec<usize>>,
    /// Parked group index lists awaiting reuse.
    spare_groups: Vec<Vec<usize>>,
    /// Result staging, index-aligned with the request slice.
    slots: Vec<Option<Result<ScoreResponse, ServeError>>>,
    /// Per-request resolution results, index-aligned with the request
    /// slice.
    resolved: Vec<ResolvedSlot>,
    /// Concatenated canonical history windows (sliced by `resolved`).
    hist_buf: Vec<u32>,
    /// Store snapshot staging for stored-history resolution.
    snap_buf: Vec<u32>,
    /// Reused candidate-expansion batch.
    batch: Batch,
    /// Reused per-group score accumulator.
    scores: Vec<f32>,
}

impl Default for CoalesceScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl CoalesceScratch {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        CoalesceScratch {
            groups: Vec::new(),
            spare_groups: Vec::new(),
            slots: Vec::new(),
            resolved: Vec::new(),
            hist_buf: Vec::new(),
            snap_buf: Vec::new(),
            batch: Batch {
                len: 0,
                n_static: 2,
                n_dynamic: 0,
                static_idx: Vec::new(),
                dyn_idx: Vec::new(),
                targets: Vec::new(),
            },
            scores: Vec::new(),
        }
    }

    /// Parks every active group list for reuse and clears the staging area.
    fn reset(&mut self, n: usize) {
        for mut g in self.groups.drain(..) {
            g.clear();
            self.spare_groups.push(g);
        }
        self.slots.clear();
        self.slots.resize_with(n, || None);
        self.resolved.clear();
        self.hist_buf.clear();
    }
}

/// Serves many requests as coalesced super-batches: requests with the same
/// **canonical history window** — regardless of user — are grouped and
/// scored through **one** batch whose rows all share the dynamic block,
/// exactly the candidate-expansion shape the frozen scorer's
/// shared-history fast path accelerates, now firing *across* requests and
/// *across users* instead of only within one request.
///
/// Grouping is by first occurrence, scores are split back per request, and
/// each response is ranked exactly like [`score_request`] — per-request
/// results are **bit-identical** to the serial path (per-row arithmetic is
/// untouched; the fast path's reuse is itself bit-exact, and the user only
/// enters through each row's own static features). Invalid requests get
/// their own [`ServeError`] without poisoning the rest. The returned
/// vector is index-aligned with `reqs`.
///
/// This is a convenience wrapper over [`score_requests_with`] that builds
/// throwaway buffers; repeat callers (the engine's workers) hold a
/// [`CoalesceScratch`] instead. [`HistorySource::Stored`] requests error
/// with [`ServeError::NoHistoryStore`] here — resolution needs a store,
/// which the [`Engine`](crate::Engine) owns
/// (or pass a [`HistoryBackend`] to [`score_requests_stateful`]).
pub fn score_requests<S: Scorer + ?Sized>(
    scorer: &S,
    layout: &FeatureLayout,
    max_seq: usize,
    top_k: usize,
    reqs: &[&ScoreRequest],
    scratch: &mut Scratch,
) -> Vec<Result<ScoreResponse, ServeError>> {
    let mut cs = CoalesceScratch::new();
    let mut out = Vec::with_capacity(reqs.len());
    score_requests_with(scorer, layout, max_seq, top_k, reqs, scratch, &mut cs, &mut out);
    out
}

/// [`score_requests`] over caller-owned buffers: the grouping lists, the
/// expansion batch, and the score accumulator all live in `cs` and are
/// reused across calls; results are appended to `out` (cleared first),
/// index-aligned with `reqs`. `reqs` may hold requests by value or by
/// reference — the engine's workers hand over drained requests directly
/// without building a reference side-array per wakeup.
#[allow(clippy::too_many_arguments)]
pub fn score_requests_with<S: Scorer + ?Sized, R: std::borrow::Borrow<ScoreRequest>>(
    scorer: &S,
    layout: &FeatureLayout,
    max_seq: usize,
    top_k: usize,
    reqs: &[R],
    scratch: &mut Scratch,
    cs: &mut CoalesceScratch,
    out: &mut Vec<Result<ScoreResponse, ServeError>>,
) {
    score_requests_stateful(scorer, layout, max_seq, top_k, reqs, None, scratch, cs, out);
}

/// The full stateful scoring path: [`score_requests_with`] plus
/// stored-history resolution and incremental view caching through a
/// [`HistoryBackend`]. This is what [`Engine`](crate::Engine) workers run
/// per drain.
///
/// Per group (one canonical history window), the scorer's history-side
/// panel comes from, in order: a member's cached
/// [`HistoryView`](seqfm_core::HistoryView) (current-version hit), a view
/// built **once** for the group when the scorer supports it and a stored
/// member can cache it (installed for every such member), or — for purely
/// inline groups or view-less scorers — the plain scoring path. All three
/// produce bit-identical logits
/// (`score_with_view` ≡ `score`, proven at the core layer), so caching is
/// purely a throughput lever.
#[allow(clippy::too_many_arguments)]
pub fn score_requests_stateful<S: Scorer + ?Sized, R: std::borrow::Borrow<ScoreRequest>>(
    scorer: &S,
    layout: &FeatureLayout,
    max_seq: usize,
    top_k: usize,
    reqs: &[R],
    backend: Option<&HistoryBackend<'_>>,
    scratch: &mut Scratch,
    cs: &mut CoalesceScratch,
    out: &mut Vec<Result<ScoreResponse, ServeError>>,
) {
    cs.reset(reqs.len());
    // The whole drain is scored by one scorer, so one model epoch stamps
    // every cache lookup, install, and response of this call — a coalesced
    // super-batch can never mix revisions.
    let epoch = scorer.model_epoch();
    // Resolve every request to its canonical history window (validating on
    // the way), then group by window content, preserving first-occurrence
    // order. Linear key search: coalesced batches are small
    // (`coalesce_max`), so a hash map would cost more than it saves.
    let CoalesceScratch {
        groups,
        spare_groups,
        slots,
        resolved,
        hist_buf,
        snap_buf,
        batch,
        scores,
    } = cs;
    for (i, req) in reqs.iter().enumerate() {
        let req = req.borrow();
        let start = hist_buf.len();
        let mut slot = ResolvedSlot { start, end: start, ..ResolvedSlot::default() };
        match resolve_request(req, layout, max_seq, backend, epoch, snap_buf, hist_buf, &mut slot) {
            Ok(()) => {
                slot.end = hist_buf.len();
                let key = &hist_buf[slot.start..slot.end];
                match groups
                    .iter_mut()
                    .find(|g| &hist_buf[resolved[g[0]].start..resolved[g[0]].end] == key)
                {
                    Some(g) => g.push(i),
                    None => {
                        let mut g = spare_groups.pop().unwrap_or_default();
                        g.push(i);
                        groups.push(g);
                    }
                }
            }
            Err(e) => {
                hist_buf.truncate(start);
                slots[i] = Some(Err(e));
            }
        }
        resolved.push(slot);
    }

    // One reusable expansion batch + score accumulator across all groups.
    for group in groups.iter() {
        let head = &resolved[group[0]];
        expand_group_into_impl(
            reqs,
            group,
            &hist_buf[head.start..head.end],
            layout,
            max_seq,
            batch,
        );

        // The group's history-side panel: any member's cached view works
        // (the group key *is* the view's identity — history content), and
        // a freshly built one is installed for every stored member so the
        // next request from any of them hits.
        let mut view = group.iter().find_map(|&i| resolved[i].view.clone());
        if view.is_none()
            && scorer.supports_history_view()
            && group.iter().any(|&i| resolved[i].cache_key.is_some())
        {
            view = scorer.build_history_view(&batch.dyn_idx[..max_seq], scratch).map(Arc::new);
        }
        if let (Some(v), Some(cache)) = (&view, backend.and_then(|b| b.cache)) {
            for &i in group.iter() {
                if resolved[i].view.is_none() {
                    if let Some((user, version)) = resolved[i].cache_key {
                        cache.insert(user, version, epoch, Arc::clone(v));
                    }
                }
            }
        }

        scores.clear();
        match &view {
            Some(v) => scorer.score_with_view_into(batch, v, scratch, scores),
            None => scorer.score_into(batch, scratch, scores),
        }
        let mut offset = 0usize;
        for &i in group.iter() {
            let req = reqs[i].borrow();
            let k = req.candidates.len();
            slots[i] = Some(Ok(ScoreResponse {
                ranked: rank_candidates(&req.candidates, &scores[offset..offset + k], top_k),
                epoch,
            }));
            offset += k;
        }
    }
    out.clear();
    out.extend(
        slots.drain(..).map(|r| {
            r.expect("every request is either rejected by validation or scored in a group")
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{HistoryStore, ViewCache};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::ParamStore;
    use seqfm_core::{FrozenSeqFm, SeqFm, SeqFmConfig};

    fn layout() -> FeatureLayout {
        FeatureLayout { n_users: 4, n_items: 12 }
    }

    fn frozen(seed: u64) -> FrozenSeqFm {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SeqFmConfig { d: 8, max_seq: 5, ..Default::default() };
        let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
        FrozenSeqFm::freeze(&model, &ps)
    }

    #[test]
    fn expansion_shares_history_and_varies_candidates() {
        let req = ScoreRequest::inline(2, vec![1, 5, 3], vec![7, 0, 9]);
        let b = expand_request(&req, &layout(), 5).expect("valid");
        assert_eq!((b.len, b.n_static, b.n_dynamic), (3, 2, 5));
        let l = layout();
        for i in 0..3 {
            // Same user and the same left-padded history in every row.
            assert_eq!(b.static_idx[i * 2], l.user_feature(2));
            assert_eq!(b.dyn_idx[i * 5..(i + 1) * 5], [PAD, PAD, 1, 5, 3]);
            assert_eq!(b.candidate_item(&l, i), req.candidates[i]);
        }
    }

    #[test]
    fn expansion_truncates_long_histories_like_build_instance() {
        let req = ScoreRequest::inline(0, vec![0, 1, 2, 3, 4, 5], vec![1]);
        let b = expand_request(&req, &layout(), 4).expect("valid");
        let direct = Batch::try_from_instances(&[seqfm_data::build_instance(
            &layout(),
            0,
            1,
            req.inline_history().unwrap(),
            4,
            0.0,
        )])
        .expect("valid batch");
        assert_eq!(b.dyn_idx, direct.dyn_idx);
        assert_eq!(b.static_idx, direct.static_idx);
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let l = layout();
        let base = ScoreRequest::inline(0, vec![], vec![1]);
        assert_eq!(
            expand_request(&ScoreRequest { candidates: vec![], ..base.clone() }, &l, 5),
            Err(ServeError::NoCandidates)
        );
        assert_eq!(
            expand_request(&ScoreRequest { user: 4, ..base.clone() }, &l, 5),
            Err(ServeError::UnknownUser { user: 4, n_users: 4 })
        );
        assert_eq!(
            expand_request(&ScoreRequest { history: vec![12].into(), ..base.clone() }, &l, 5),
            Err(ServeError::UnknownItem { item: 12, n_items: 12 })
        );
        assert_eq!(
            expand_request(&ScoreRequest { candidates: vec![1, 99], ..base }, &l, 5),
            Err(ServeError::UnknownItem { item: 99, n_items: 12 })
        );
    }

    #[test]
    fn stored_requests_error_without_a_backend() {
        let l = layout();
        let req = ScoreRequest::stored(1, vec![2, 3]);
        assert_eq!(expand_request(&req, &l, 5), Err(ServeError::NoHistoryStore));
        let mut scratch = Scratch::new();
        assert_eq!(
            score_request(&frozen(3), &l, 5, 0, &req, &mut scratch),
            Err(ServeError::NoHistoryStore)
        );
        let got = score_requests(&frozen(3), &l, 5, 0, &[&req], &mut scratch);
        assert_eq!(got, vec![Err(ServeError::NoHistoryStore)]);
    }

    #[test]
    fn request_constructors_and_deprecated_shim_agree() {
        let a = ScoreRequest::inline(1, vec![2, 3], vec![4]);
        #[allow(deprecated)]
        let b = ScoreRequest::new(1, vec![2, 3], vec![4]);
        assert_eq!(a, b);
        assert_eq!(a.inline_history(), Some([2, 3].as_slice()));
        assert_eq!(ScoreRequest::stored(1, vec![4]).inline_history(), None);
        // `Vec<u32>` still slots straight into the literal field.
        let c = ScoreRequest { user: 1, history: vec![2, 3].into(), candidates: vec![4] };
        assert_eq!(a, c);
        assert_eq!(ScoreRequest::default().history, HistorySource::Inline(vec![]));
    }

    #[test]
    fn zero_max_seq_is_a_config_error_not_a_zero_width_batch() {
        let l = layout();
        let req = ScoreRequest::inline(0, vec![1], vec![2]);
        // Pre-fix, this built a Batch with n_dynamic == 0 and let the
        // attention kernels run on a shape the model was never trained for.
        let err = expand_request(&req, &l, 0).expect_err("must reject");
        assert!(matches!(err, ServeError::BadConfig { .. }), "got {err:?}");
        let mut scratch = Scratch::new();
        let err = score_request(&frozen(3), &l, 0, 0, &req, &mut scratch).expect_err("must reject");
        assert!(matches!(err, ServeError::BadConfig { .. }));
        let got = score_requests(&frozen(3), &l, 0, 0, &[&req], &mut scratch);
        assert!(matches!(&got[0], Err(ServeError::BadConfig { .. })));
    }

    #[test]
    fn ranking_is_descending_and_top_k_truncates() {
        let l = layout();
        let frozen = frozen(11);
        let mut scratch = Scratch::new();
        let req = ScoreRequest::inline(1, vec![2, 8], (0..12).collect::<Vec<u32>>());
        let all = score_request(&frozen, &l, 5, 0, &req, &mut scratch).expect("valid");
        assert_eq!(all.ranked.len(), 12);
        for w in all.ranked.windows(2) {
            assert!(w[0].score >= w[1].score, "ranking not descending");
        }
        let top3 = score_request(&frozen, &l, 5, 3, &req, &mut scratch).expect("valid");
        assert_eq!(top3.ranked.len(), 3);
        assert_eq!(top3.ranked, all.ranked[..3].to_vec());
        assert_eq!(all.best().unwrap().item, all.ranked[0].item);
    }

    /// Stub scorer returning preset scores (NaN-injection regression rig).
    struct Preset(Vec<f32>);

    impl Scorer for Preset {
        fn name(&self) -> &str {
            "preset"
        }

        fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
            scratch.publish_scores(&self.0[..batch.len])
        }
    }

    #[test]
    fn nan_scores_rank_last_and_deterministically() {
        let l = layout();
        let stub = Preset(vec![1.0, f32::NAN, 0.5, f32::NAN, 2.0]);
        let req = ScoreRequest::inline(0, vec![1], vec![10, 11, 2, 3, 4]);
        let mut scratch = Scratch::new();
        let first = score_request(&stub, &l, 5, 0, &req, &mut scratch).expect("valid");
        // Finite scores descending, then the NaN-scored candidates in
        // request order — never interleaved into the ranking.
        let items: Vec<u32> = first.ranked.iter().map(|c| c.item).collect();
        assert_eq!(items, vec![4, 10, 2, 11, 3]);
        assert!(first.ranked[3].score.is_nan() && first.ranked[4].score.is_nan());
        // Pre-fix, `partial_cmp(..).unwrap_or(Equal)` made NaN compare Equal
        // to everything and the result depended on sort internals. Now every
        // rerun must agree.
        for _ in 0..20 {
            let again = score_request(&stub, &l, 5, 0, &req, &mut scratch).expect("valid");
            let again_items: Vec<u32> = again.ranked.iter().map(|c| c.item).collect();
            assert_eq!(again_items, items, "NaN ranking must be deterministic");
        }
        // top_k truncation happens after NaN demotion: NaNs can't crowd out
        // finite scores.
        let top3 = score_request(&stub, &l, 5, 3, &req, &mut scratch).expect("valid");
        let top3_items: Vec<u32> = top3.ranked.iter().map(|c| c.item).collect();
        assert_eq!(top3_items, vec![4, 10, 2]);
    }

    #[test]
    fn coalesced_scoring_is_bit_identical_to_serial_per_request() {
        let l = layout();
        let model = frozen(21);
        // A deliberately messy mix: shared histories (including across
        // users), a history equal only after truncation, different
        // candidate counts, a cold start, and two invalid requests in the
        // middle.
        let reqs = [
            ScoreRequest::inline(1, vec![2, 8, 3], vec![0, 5, 7]),
            ScoreRequest::inline(0, vec![], vec![1]),
            ScoreRequest::inline(1, vec![2, 8, 3], vec![9]),
            ScoreRequest::inline(9, vec![], vec![1]), // unknown user
            // Truncation-equivalent to the history above (max_seq 3).
            ScoreRequest::inline(1, vec![11, 2, 8, 3], vec![4, 4, 6]),
            ScoreRequest::inline(2, vec![2, 8, 3], vec![0, 5]), // other user, same hist
            ScoreRequest::inline(1, vec![3, 2], vec![]),        // no candidates
            ScoreRequest::inline(3, vec![1, 1, 1], (0..12).collect::<Vec<u32>>()),
        ];
        let refs: Vec<&ScoreRequest> = reqs.iter().collect();
        for (max_seq, top_k) in [(3usize, 0usize), (3, 2), (5, 4)] {
            let mut scratch = Scratch::new();
            let coalesced = score_requests(&model, &l, max_seq, top_k, &refs, &mut scratch);
            assert_eq!(coalesced.len(), reqs.len());
            let mut serial_scratch = Scratch::new();
            for (i, req) in reqs.iter().enumerate() {
                let serial = score_request(&model, &l, max_seq, top_k, req, &mut serial_scratch);
                match (&coalesced[i], &serial) {
                    (Ok(c), Ok(s)) => {
                        assert_eq!(c.ranked.len(), s.ranked.len(), "request {i}");
                        for (cc, sc) in c.ranked.iter().zip(&s.ranked) {
                            assert_eq!(cc.item, sc.item, "request {i}: item order diverges");
                            assert_eq!(
                                cc.score.to_bits(),
                                sc.score.to_bits(),
                                "request {i}: score not bit-identical ({} vs {})",
                                cc.score,
                                sc.score
                            );
                        }
                    }
                    (c, s) => assert_eq!(c, s, "request {i}: error mismatch"),
                }
            }
        }
    }

    #[test]
    fn coalesced_groups_form_by_canonical_history_across_users() {
        // Observable through a counting scorer: each group is one score
        // call with all member candidates in one batch.
        use std::cell::Cell;
        struct Counting {
            calls: Cell<usize>,
            rows: Cell<usize>,
        }
        impl Scorer for Counting {
            fn name(&self) -> &str {
                "counting"
            }
            fn score<'s>(&self, batch: &Batch, scratch: &'s mut Scratch) -> &'s [f32] {
                self.calls.set(self.calls.get() + 1);
                self.rows.set(self.rows.get() + batch.len);
                scratch.publish_scores(&vec![0.0; batch.len])
            }
        }
        let l = layout();
        let reqs = [
            ScoreRequest::inline(1, vec![2, 8], vec![0, 5]),
            ScoreRequest::inline(1, vec![2, 8], vec![7]),
            // Different user, same history: coalesces since the key is the
            // canonical history alone (pre-redesign this was its own
            // group).
            ScoreRequest::inline(2, vec![2, 8], vec![1]),
            ScoreRequest::inline(1, vec![8, 2], vec![1]), // other order
            ScoreRequest::inline(1, vec![2, 8], vec![3]),
        ];
        let refs: Vec<&ScoreRequest> = reqs.iter().collect();
        let counter = Counting { calls: Cell::new(0), rows: Cell::new(0) };
        let mut scratch = Scratch::new();
        let out = score_requests(&counter, &l, 5, 0, &refs, &mut scratch);
        assert!(out.iter().all(Result::is_ok));
        // Two groups: {0, 1, 2, 4} (same canonical history) and {3}.
        assert_eq!(counter.calls.get(), 2, "expected 2 cross-user coalesced groups");
        assert_eq!(counter.rows.get(), 6, "all candidate rows scored exactly once");
    }

    #[test]
    fn stateful_path_resolves_stores_and_caches_bit_identically() {
        let l = layout();
        let model = frozen(33);
        let store = HistoryStore::new(l.n_users, 5);
        let cache = ViewCache::new(64);
        let backend = HistoryBackend { store: &store, cache: Some(&cache) };
        for &item in &[2u32, 8, 3] {
            store.append(1, item);
        }
        let stored = ScoreRequest::stored(1, vec![0, 5, 7]);
        let inline = ScoreRequest::inline(1, vec![2, 8, 3], vec![0, 5, 7]);
        let mut scratch = Scratch::new();
        let mut cs = CoalesceScratch::new();
        let mut out = Vec::new();
        // First pass: cache cold (miss), view built and installed.
        score_requests_stateful(
            &model,
            &l,
            5,
            0,
            &[&stored],
            Some(&backend),
            &mut scratch,
            &mut cs,
            &mut out,
        );
        let first = out[0].clone().expect("valid");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));
        // Second pass: cache hit, same bits.
        score_requests_stateful(
            &model,
            &l,
            5,
            0,
            &[&stored],
            Some(&backend),
            &mut scratch,
            &mut cs,
            &mut out,
        );
        let second = out[0].clone().expect("valid");
        assert_eq!(cache.stats().hits, 1);
        // Reference: the same request scored inline, serially.
        let want = score_request(&model, &l, 5, 0, &inline, &mut scratch).expect("valid");
        for got in [&first, &second] {
            assert_eq!(got.ranked.len(), want.ranked.len());
            for (g, w) in got.ranked.iter().zip(&want.ranked) {
                assert_eq!(g.item, w.item);
                assert_eq!(g.score.to_bits(), w.score.to_bits(), "stored path not bit-identical");
            }
        }
        // Append → version bump → lazy invalidation: next lookup misses,
        // and the re-scored result matches a fresh inline request exactly.
        store.append(1, 6);
        score_requests_stateful(
            &model,
            &l,
            5,
            0,
            &[&stored],
            Some(&backend),
            &mut scratch,
            &mut cs,
            &mut out,
        );
        let after = out[0].clone().expect("valid");
        let inline_after = ScoreRequest::inline(1, vec![2, 8, 3, 6], vec![0, 5, 7]);
        let want_after =
            score_request(&model, &l, 5, 0, &inline_after, &mut scratch).expect("valid");
        for (g, w) in after.ranked.iter().zip(&want_after.ranked) {
            assert_eq!(g.item, w.item);
            assert_eq!(g.score.to_bits(), w.score.to_bits(), "post-append score stale");
        }
        assert_eq!(cache.stats().misses, 2, "append must invalidate (stale-version miss)");
    }

    #[test]
    fn stored_and_inline_requests_coalesce_into_one_group() {
        let l = layout();
        let model = frozen(39);
        let store = HistoryStore::new(l.n_users, 5);
        for &item in &[2u32, 8] {
            store.append(3, item);
        }
        let backend = HistoryBackend { store: &store, cache: None };
        // User 3's stored history equals user 1's inline history: one group.
        let reqs =
            [ScoreRequest::stored(3, vec![0, 5]), ScoreRequest::inline(1, vec![2, 8], vec![7])];
        let refs: Vec<&ScoreRequest> = reqs.iter().collect();
        let mut scratch = Scratch::new();
        let mut cs = CoalesceScratch::new();
        let mut out = Vec::new();
        score_requests_stateful(
            &model,
            &l,
            5,
            0,
            &refs,
            Some(&backend),
            &mut scratch,
            &mut cs,
            &mut out,
        );
        assert_eq!(cs.groups.len(), 1, "stored + inline with equal windows must share a group");
        let mut serial = Scratch::new();
        let want0 = score_request(
            &model,
            &l,
            5,
            0,
            &ScoreRequest::inline(3, vec![2, 8], vec![0, 5]),
            &mut serial,
        )
        .expect("valid");
        let got0 = out[0].as_ref().expect("valid");
        for (g, w) in got0.ranked.iter().zip(&want0.ranked) {
            assert_eq!((g.item, g.score.to_bits()), (w.item, w.score.to_bits()));
        }
    }
}
