#![warn(missing_docs)]

//! # seqfm-serve
//!
//! The request-level serving layer on top of `seqfm_core`'s graph-free
//! [`Scorer`](seqfm_core::Scorer) API — the deployment half of the
//! train-with-`forward` / serve-with-`score` split.
//!
//! Sequence-aware recommenders are overwhelmingly served as *"score K
//! candidate items for one user"*, so that request shape is first-class
//! here:
//!
//! * [`ScoreRequest`] — `{ user, history, candidates }`, validated against
//!   the model's [`FeatureLayout`](seqfm_data::FeatureLayout). The history
//!   is a [`HistorySource`]: carried [`Inline`](HistorySource::Inline), or
//!   [`Stored`](HistorySource::Stored) — the engine owns the sequence and
//!   the request is just `(user, candidates)`;
//! * [`HistoryStore`] — the stateful half: a sharded, concurrent,
//!   bounded-per-user ring store of every user's recent events, warmed from
//!   a dataset ([`Engine::warm_histories`]) and kept current by
//!   [`Engine::append_event`]. A [`ViewCache`] memoises the scorer's
//!   history-side panel ([`HistoryView`](seqfm_core::HistoryView)) per
//!   `(user, version)`, so repeat stored-history requests skip the history
//!   half of the forward — bit-identically;
//! * [`expand_request`] — the candidate-expansion layer: one request becomes
//!   one scoring [`Batch`](seqfm_data::Batch) in which every row shares the
//!   user/history features and only the candidate column varies;
//! * [`score_request`] — expansion + scoring + NaN-safe top-K ranking in one
//!   synchronous call;
//! * [`score_requests`] — the **coalesced** path: many requests scored at
//!   once, with requests sharing a canonical history window — regardless of
//!   user — grouped into one super-batch so the frozen scorer's
//!   shared-history fast path fires *across* requests and *across users*
//!   (bit-identical to the serial path, per request);
//! * [`Engine`] — a multi-threaded, batch-coalescing scoring engine with
//!   **bounded admission**: the non-blocking [`Engine::submit`] sheds load
//!   with [`ServeError::Overloaded`] once the queue is full (the signal an
//!   async network front door turns into "retry later"), while
//!   [`Engine::submit_wait`] parks on capacity. Each worker wakeup drains
//!   up to `coalesce_max` queued requests and scores them as grouped
//!   super-batches through worker-owned [`CoalesceScratch`] buffers;
//!   replies ride reusable oneshot slots parked **per caller thread** (no
//!   shared free list, no lock on the reply path), so steady-state
//!   submit/wait round trips allocate nothing.
//! * [`Engine::retrieve_top_k`] — full-catalog retrieval: with a
//!   [`CatalogIndex`] attached ([`Engine::with_catalog_index`]), the engine
//!   answers "best k items of the *entire* catalog" for a user's stored
//!   history via `seqfm_retrieval`'s blocked, upper-bound-pruned scan,
//!   sharing the [`ViewCache`] with the scoring path;
//! * **online learning & hot-swap** — the model is a *versioned* resource:
//!   [`Engine::publish_frozen`] atomically swaps in a freshly trained
//!   [`FrozenSeqFm`](seqfm_core::FrozenSeqFm) (a [`ModelRev`] stamped with
//!   its [`ModelEpoch`](seqfm_core::ModelEpoch)) without pausing serving —
//!   in-flight super-batches finish on the epoch they pinned, the
//!   [`ViewCache`] keys on `(user, version, epoch)` so stale-model panels
//!   lazily invalidate, the catalog index is rebuilt per epoch with a
//!   brute-force fallback mid-swap, and an optional [`EventLog`]
//!   ([`Engine::with_event_log`]) streams appended events to an online
//!   trainer.
//!
//! ## Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use seqfm_autograd::ParamStore;
//! use seqfm_core::{FrozenSeqFm, SeqFm, SeqFmConfig};
//! use seqfm_data::FeatureLayout;
//! use seqfm_serve::{Engine, EngineConfig, ScoreRequest, ServeError};
//! use std::sync::Arc;
//!
//! let layout = FeatureLayout { n_users: 10, n_items: 20 };
//! let mut ps = ParamStore::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = SeqFmConfig { d: 8, max_seq: 5, ..Default::default() };
//! let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
//!
//! // Freeze for serving, then stand up a 2-thread engine with a small
//! // admission queue and coalescing enabled (the defaults).
//! let frozen = Arc::new(FrozenSeqFm::freeze(&model, &ps));
//! let engine = Engine::new(
//!     frozen,
//!     layout,
//!     EngineConfig::builder().threads(2).max_seq(5).top_k(3).build().expect("valid config"),
//! )
//! .expect("valid engine config");
//!
//! // The engine owns the histories: feed it events, then requests are just
//! // (user, candidates).
//! engine.append_event(3, 1).expect("known ids");
//! engine.append_event(3, 4).expect("known ids");
//! engine.append_event(3, 2).expect("known ids");
//! let resp = engine.score_stored(3, vec![7, 9, 11, 0]).expect("valid request");
//! assert_eq!(resp.ranked.len(), 3); // top-3 of 4 candidates
//!
//! // Inline histories still work (stateless callers, replay tooling) and
//! // score bit-identically to the stored path:
//! let inline = engine
//!     .score(ScoreRequest::inline(3, vec![1, 4, 2], vec![7, 9, 11, 0]))
//!     .expect("valid request");
//! assert_eq!(inline, resp);
//!
//! // The non-blocking front door either admits or sheds explicitly:
//! match engine.submit(ScoreRequest::inline(1, vec![2], vec![5, 6])) {
//!     Ok(pending) => {
//!         let resp = pending.wait().expect("valid request");
//!         assert_eq!(resp.ranked.len(), 2);
//!     }
//!     Err(ServeError::Overloaded { capacity, req }) => {
//!         // queue full — the request comes back untouched; shed it,
//!         // retry later, or fall back to engine.submit_wait(*req)
//!         let _ = (capacity, req);
//!     }
//!     Err(other) => panic!("unexpected: {other}"),
//! }
//! ```

mod engine;
mod error;
mod request;
mod store;

pub use engine::{
    Engine, EngineConfig, EngineConfigBuilder, EventLog, IntoScorer, ModelRev, PendingResponse,
};
pub use error::ServeError;
pub use request::{
    expand_request, score_request, score_requests, score_requests_stateful, score_requests_with,
    CoalesceScratch, HistorySource, ScoreRequest, ScoreResponse, ScoredCandidate,
};
pub use store::{CacheStats, HistoryBackend, HistoryStore, ViewCache};
// Full-catalog retrieval rides the serving layer's history state: attach a
// `CatalogIndex` with `Engine::with_catalog_index`, then
// `Engine::retrieve_top_k` answers "best k of the whole catalog" over the
// user's stored history. Re-exported so engine callers need not name
// `seqfm_retrieval` separately.
pub use seqfm_retrieval::{CatalogIndex, Retrieval, ScoredItem as RetrievedItem};
