//! Bit-for-bit parity of the cache-blocked packed matmul kernels against
//! the naive references, at adversarial shapes.
//!
//! The tiled kernels promise *exact* equality with the naive loops for any
//! input (see the matmul module docs): tiling reorders which output element
//! is computed when, never the per-element accumulation sequence. These
//! property tests drive shapes around every tile boundary — `m`/`k`/`n`
//! odd, smaller than one register tile, exactly one, and zero — plus the
//! widths the Table-V model variants and the serving path actually use, and
//! assert equality to the bit on random data with embedded zeros (the
//! padding-row skip) and non-zero initial accumulators (the `+=` contract).

use proptest::prelude::*;
use seqfm_tensor::kernels::matmul::{naive, tiled};
use seqfm_tensor::workspace;

/// Deterministic pseudo-random fill with exact zeros sprinkled in so the
/// padding-row skip paths execute (a zero lhs entry is *skipped*, not
/// multiplied — parity would catch a kernel that multiplies instead).
fn fill(seed: &mut u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|_| {
            *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let bits = (*seed >> 33) as u32;
            if bits.is_multiple_of(7) {
                0.0
            } else {
                (bits % 2000) as f32 / 300.0 - 3.3
            }
        })
        .collect()
}

/// Asserts all three tiled flavours equal their naive references bitwise at
/// `[m, k, n]`, starting from a non-trivial initial `c`.
fn assert_parity(m: usize, k: usize, n: usize, seed: &mut u64) {
    let a = fill(seed, m * k);
    let b = fill(seed, k * n);
    let bt = fill(seed, n * k);
    let at = fill(seed, k * m);
    let c0 = fill(seed, m * n);

    let (mut got, mut want) = (c0.clone(), c0.clone());
    tiled::matmul_nn_into(&a, &b, &mut got, m, k, n);
    naive::matmul_nn_into(&a, &b, &mut want, m, k, n);
    assert_eq!(got, want, "nn diverges at {m}x{k}x{n}");

    got.copy_from_slice(&c0);
    want.copy_from_slice(&c0);
    tiled::matmul_nt_into(&a, &bt, &mut got, m, k, n);
    naive::matmul_nt_into(&a, &bt, &mut want, m, k, n);
    assert_eq!(got, want, "nt diverges at {m}x{k}x{n}");

    got.copy_from_slice(&c0);
    want.copy_from_slice(&c0);
    tiled::matmul_tn_into(&at, &b, &mut got, m, k, n);
    naive::matmul_tn_into(&at, &b, &mut want, m, k, n);
    assert_eq!(got, want, "tn diverges at {m}x{k}x{n}");
}

proptest! {
    /// Random shapes across every tile-boundary regime: dims from 0 (empty)
    /// through 1, sub-tile, and several full tiles plus odd remainders.
    #[test]
    fn tiled_matches_naive_at_random_shapes(
        m in 0usize..41,
        k in 0usize..35,
        n in 0usize..53,
        salt in 0u64..u64::MAX,
    ) {
        let mut seed = salt | 1;
        assert_parity(m, k, n, &mut seed);
    }
}

#[test]
fn tiled_matches_naive_at_model_and_serving_widths() {
    // Table-V variant widths (the ablation suite trains at d = 8; the
    // sensitivity sweep and serving shapes use 16/32/64) with m spanning
    // one-row, attention-sized (n° + n˙ rows), and candidate-expansion
    // batches; n both equal to d (projections) and to the position count
    // (score matrices).
    let mut seed = 0xBEEF;
    for &d in &[8usize, 16, 32, 64] {
        for &m in &[1usize, 5, 22, 100, 257] {
            assert_parity(m, d, d, &mut seed); // Q/K/V + FFN projections
            assert_parity(m, d, 22, &mut seed); // score-matrix shape
            assert_parity(m, d, 1, &mut seed); // output head hagg·p
        }
    }
}

#[test]
fn tiled_edge_shapes_cover_exact_tile_multiples() {
    // Exactly one tile, one short of a tile, one past it — in both m and n.
    let mut seed = 0xC0DE;
    for &m in &[5usize, 6, 7, 12, 13] {
        for &n in &[15usize, 16, 17, 32, 33] {
            for &k in &[1usize, 2, 31] {
                assert_parity(m, k, n, &mut seed);
            }
        }
    }
}

#[test]
fn tiled_k_blocking_boundaries_stay_bit_exact() {
    // The nn/tn kernels split the reduction depth into KC = 256 chunks,
    // round-tripping the c tile through memory between chunks. Drive k
    // right around that boundary — one short, exact, one past, a ragged
    // mid-chunk tail, and several full chunks — so both the single-chunk
    // fast case and the multi-chunk store/load chaining are proven
    // bit-identical to the naive full-depth loops (nt packs full depth and
    // must also stay exact at these k).
    let mut seed = 0xFEED;
    for &k in &[255usize, 256, 257, 300, 512, 1000] {
        assert_parity(13, k, 33, &mut seed);
        assert_parity(6, k, 16, &mut seed); // exactly one register tile
    }
}

#[test]
fn workspace_panels_do_not_leak_between_differently_sized_ops() {
    // A big op warms the thread-local arena with a large poisoned panel;
    // a smaller op afterwards must see freshly zeroed scratch and produce
    // exactly the naive result. This is the kernel-level version of the
    // workspace reset test: `take` zero-fills, so stale panel contents from
    // the larger op can never bleed into the smaller one.
    let mut seed = 7;
    assert_parity(64, 64, 64, &mut seed);
    workspace::with_thread(|ws| {
        // Poison a buffer at least as large as any panel the small op takes.
        let mut buf = ws.take(64 * 64);
        buf.fill(f32::NAN);
    });
    assert_parity(6, 3, 17, &mut seed);
    assert_parity(1, 1, 16, &mut seed);
    // And the arena is balanced: every kernel scope returned its buffer.
    workspace::with_thread(|ws| assert_eq!(ws.live(), 0, "kernel leaked a workspace buffer"));
}

#[test]
fn steady_state_tiled_kernels_do_not_allocate() {
    let (m, k, n) = (48usize, 32, 32);
    let mut seed = 11;
    let a = fill(&mut seed, m * k);
    let b = fill(&mut seed, k * n);
    let mut c = vec![0.0f32; m * n];
    // Warm the thread-local arena.
    for _ in 0..3 {
        tiled::matmul_nn_into(&a, &b, &mut c, m, k, n);
        tiled::matmul_nt_into(&a, &b, &mut c, m, k, n);
    }
    let warm = workspace::with_thread(|ws| ws.heap_events());
    for _ in 0..50 {
        tiled::matmul_nn_into(&a, &b, &mut c, m, k, n);
        tiled::matmul_nt_into(&a, &b, &mut c, m, k, n);
        tiled::matmul_tn_into(&a, &b, &mut c, m, k, n);
    }
    let after = workspace::with_thread(|ws| ws.heap_events());
    assert_eq!(warm, after, "steady-state kernels hit the heap");
}

/// Both runtime dispatch arms of the exact tiled kernels must produce the
/// same bits: the AVX2 micro bodies deliberately use separate multiply and
/// add vector ops so every element sees the scalar rounding sequence.
/// Gated on hardware support; the forced-scalar CI arm (`SEQFM_SIMD=scalar`)
/// covers the other side of the dispatch.
#[test]
fn avx2_and_scalar_arms_are_bit_identical_for_exact_kernels() {
    use seqfm_tensor::{avx2_available, SimdArm};
    if !avx2_available() {
        return;
    }
    let mut seed = 0xA5A5;
    for (m, k, n) in [(1usize, 1usize, 1usize), (5, 3, 17), (12, 32, 16), (40, 33, 50), (64, 8, 32)]
    {
        let a = fill(&mut seed, m * k);
        let b = fill(&mut seed, k * n);
        let bt = fill(&mut seed, n * k);
        let c0 = fill(&mut seed, m * n);

        let (mut gv, mut gs) = (c0.clone(), c0.clone());
        tiled::matmul_nn_into_arm(SimdArm::Avx2, &a, &b, &mut gv, m, k, n);
        tiled::matmul_nn_into_arm(SimdArm::Scalar, &a, &b, &mut gs, m, k, n);
        assert_eq!(gv, gs, "nn arms diverge at {m}x{k}x{n}");

        gv.copy_from_slice(&c0);
        gs.copy_from_slice(&c0);
        tiled::matmul_nt_into_arm(SimdArm::Avx2, &a, &bt, &mut gv, m, k, n);
        tiled::matmul_nt_into_arm(SimdArm::Scalar, &a, &bt, &mut gs, m, k, n);
        assert_eq!(gv, gs, "nt arms diverge at {m}x{k}x{n}");

        let at = fill(&mut seed, k * m);
        gv.copy_from_slice(&c0);
        gs.copy_from_slice(&c0);
        tiled::matmul_tn_rows_into_arm(SimdArm::Avx2, &at, &b, &mut gv, 0, m, m, k, n);
        tiled::matmul_tn_rows_into_arm(SimdArm::Scalar, &at, &b, &mut gs, 0, m, m, k, n);
        assert_eq!(gv, gs, "tn arms diverge at {m}x{k}x{n}");
    }
}

/// The fast-profile kernels use *fused* ops on both arms (`vfmadd` /
/// `f32::mul_add`), which are correctly rounded — so the fast arms must be
/// bit-identical to each other too (fast ≠ nondeterministic).
#[test]
fn avx2_and_scalar_arms_are_bit_identical_for_fast_kernels() {
    use seqfm_tensor::kernels::matmul::fast;
    use seqfm_tensor::{avx2_available, SimdArm};
    if !avx2_available() {
        return;
    }
    let mut seed = 0x5A5A;
    for (m, k, n) in [(1usize, 2usize, 1usize), (7, 5, 19), (16, 32, 16), (40, 33, 50)] {
        let a = fill(&mut seed, m * k);
        let b = fill(&mut seed, k * n);
        let bt = fill(&mut seed, n * k);
        let c0 = fill(&mut seed, m * n);

        let (mut gv, mut gs) = (c0.clone(), c0.clone());
        fast::matmul_nn_fast_into_arm(SimdArm::Avx2, &a, &b, &mut gv, m, k, n);
        fast::matmul_nn_fast_into_arm(SimdArm::Scalar, &a, &b, &mut gs, m, k, n);
        assert_eq!(gv, gs, "fast nn arms diverge at {m}x{k}x{n}");

        gv.copy_from_slice(&c0);
        gs.copy_from_slice(&c0);
        fast::matmul_nt_fast_into_arm(SimdArm::Avx2, &a, &bt, &mut gv, m, k, n);
        fast::matmul_nt_fast_into_arm(SimdArm::Scalar, &a, &bt, &mut gs, m, k, n);
        assert_eq!(gv, gs, "fast nt arms diverge at {m}x{k}x{n}");
    }
}

/// The shared-panel `nt` path (one pre-pack serving every parallel row
/// chunk) must stay bit-identical to the per-call-packing tiled kernel and
/// to the naive reference — the panels it shares are byte-identical to the
/// ones each chunk would have packed itself.
#[test]
fn prepacked_nt_panels_match_unpacked_and_naive_bitwise() {
    use seqfm_tensor::kernels::simd::active_arm;
    let mut seed = 0xBEEF;
    const NR: usize = 16;
    for (m, k, n) in [(9usize, 7usize, 16usize), (24, 32, 48), (33, 20, 53), (5, 3, 15)] {
        let a = fill(&mut seed, m * k);
        let bt = fill(&mut seed, n * k);
        let c0 = fill(&mut seed, m * n);

        let mut panels = vec![0.0f32; (n / NR) * k * NR];
        tiled::pack_nt_panels(&bt, &mut panels, k, n);

        let mut got = c0.clone();
        tiled::matmul_nt_packed_into(active_arm(), &a, &bt, &panels, &mut got, m, k, n);

        let mut want = c0.clone();
        naive::matmul_nt_into(&a, &bt, &mut want, m, k, n);
        assert_eq!(got, want, "packed nt vs naive diverges at {m}x{k}x{n}");

        let mut want2 = c0.clone();
        tiled::matmul_nt_into(&a, &bt, &mut want2, m, k, n);
        assert_eq!(got, want2, "packed nt vs tiled diverges at {m}x{k}x{n}");
    }
}
