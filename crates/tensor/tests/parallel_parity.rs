//! Bit-for-bit parity of the parallel kernel paths.
//!
//! This binary forces a 4-worker global pool (the env var is read once,
//! before any kernel dispatch) and drives every auto-dispatching kernel at
//! shapes large enough to clear the fan-out threshold, comparing against
//! naive reference loops with the **same per-element accumulation order**.
//! Equality is exact: row/slice partitioning must not change a single bit.
//!
//! Since the kernels grew their cache-blocked tiled paths, these shapes do
//! double duty: every row-partitioned chunk below is large enough (rows ≥ 2,
//! `n` ≥ one register tile, work over the tile threshold) that each parallel
//! task runs the **tiled** kernel with its packed workspace panels — so the
//! assertions prove naive == tiled == parallel-tiled, all to the bit. The
//! serial tiled-vs-naive sweep at adversarial shapes lives in
//! `tests/tiled_parity.rs`.

use seqfm_tensor::testutil::rand_tensor;
use seqfm_tensor::{
    attention_into, bmm_nn, bmm_nt, matmul_nn, matmul_nt, matmul_tn, softmax_lastdim_masked,
    softmax_rows_into, AttnMask, Shape, Tensor,
};

/// Large enough that m·k·n clears the 96 Ki-op dispatch threshold.
const M: usize = 48;
const K: usize = 64;
const N: usize = 56;

fn refer_nn(a: &Tensor, b: &Tensor, m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let a_ip = a.data()[i * k + p];
            for j in 0..n {
                c[i * n + j] += a_ip * b.data()[p * n + j];
            }
        }
    }
    c
}

#[test]
fn parallel_kernel_paths_match_serial_references_bitwise() {
    // Must happen before the first kernel dispatch in this process: the
    // global pool reads the variable exactly once.
    std::env::set_var("SEQFM_WORKERS", "4");
    let mut seed = 41;

    // matmul_nn: ikj kernel == naive ikj loop, bit for bit.
    let a = rand_tensor(Shape::d2(M, K), &mut seed);
    let b = rand_tensor(Shape::d2(K, N), &mut seed);
    assert_eq!(matmul_nn(&a, &b).data(), refer_nn(&a, &b, M, K, N), "matmul_nn diverges");

    // matmul_nt: dot-product rows against explicit transpose.
    let bt = rand_tensor(Shape::d2(N, K), &mut seed);
    let mut want = vec![0.0f32; M * N];
    for i in 0..M {
        for j in 0..N {
            let mut acc = 0.0f32;
            for p in 0..K {
                acc += a.data()[i * K + p] * bt.data()[j * K + p];
            }
            want[i * N + j] = acc;
        }
    }
    assert_eq!(matmul_nt(&a, &bt).data(), want, "matmul_nt diverges");

    // matmul_tn: p-outer accumulation order.
    let at = rand_tensor(Shape::d2(K, M), &mut seed);
    let bb = rand_tensor(Shape::d2(K, N), &mut seed);
    let mut want = vec![0.0f32; M * N];
    for p in 0..K {
        for i in 0..M {
            let a_pi = at.data()[p * M + i];
            for j in 0..N {
                want[i * N + j] += a_pi * bb.data()[p * N + j];
            }
        }
    }
    assert_eq!(matmul_tn(&at, &bb).data(), want, "matmul_tn diverges");

    // bmm_nn / bmm_nt: slice-partitioned path vs. per-slice 2-D kernels run
    // at sub-threshold size (i.e. guaranteed-serial references).
    // bs·m·k·n = 20·16·24·20 = 153,600 > the 96 Ki-op threshold, so the bmm
    // fan-out genuinely runs; each 16·24·20 ≈ 7.7k-op slice stays serial.
    let (bs, sm, sk, sn) = (20, 16, 24, 20);
    let a3 = rand_tensor(Shape::d3(bs, sm, sk), &mut seed);
    let b3 = rand_tensor(Shape::d3(bs, sk, sn), &mut seed);
    let got = bmm_nn(&a3, &b3);
    for i in 0..bs {
        let ai =
            Tensor::from_vec(Shape::d2(sm, sk), a3.data()[i * sm * sk..(i + 1) * sm * sk].to_vec());
        let bi =
            Tensor::from_vec(Shape::d2(sk, sn), b3.data()[i * sk * sn..(i + 1) * sk * sn].to_vec());
        let want = matmul_nn(&ai, &bi); // sub-threshold → serial
        assert_eq!(
            &got.data()[i * sm * sn..(i + 1) * sm * sn],
            want.data(),
            "bmm_nn slice {i} diverges"
        );
    }
    let b3t = rand_tensor(Shape::d3(bs, sn, sk), &mut seed);
    let got = bmm_nt(&a3, &b3t);
    for i in 0..bs {
        let ai =
            Tensor::from_vec(Shape::d2(sm, sk), a3.data()[i * sm * sk..(i + 1) * sm * sk].to_vec());
        let bi = Tensor::from_vec(
            Shape::d2(sn, sk),
            b3t.data()[i * sn * sk..(i + 1) * sn * sk].to_vec(),
        );
        let want = matmul_nt(&ai, &bi);
        assert_eq!(
            &got.data()[i * sm * sn..(i + 1) * sm * sn],
            want.data(),
            "bmm_nt slice {i} diverges"
        );
    }

    // softmax over enough rows to clear the (exp-weighted) threshold; the
    // reference is the per-row formula with identical op order.
    let rows = 96;
    let width = 80;
    let x = rand_tensor(Shape::d2(rows, width), &mut seed);
    let mask = AttnMask::causal(width);
    let mask_rect = AttnMask::allow_all(rows, width); // all-open: exercises the mask plumbing
    let got = softmax_lastdim_masked(
        &rand_tensor(Shape::d2(width, width), &mut seed),
        &mask, // square case exercises the masked parallel path
    );
    for r in 0..width {
        let row: Vec<f32> = got.row(r).to_vec();
        let live = r + 1; // causal row r allows columns 0..=r
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "row {r} not a distribution");
        assert!(row[live..].iter().all(|&v| v == 0.0), "mask leak in row {r}");
    }
    // Unmasked parallel softmax vs. naive reference, bitwise.
    let mut got = vec![0.0f32; rows * width];
    softmax_rows_into(x.data(), width, rows, Some(&mask_rect), &mut got);
    for r in 0..rows {
        let xin = &x.data()[r * width..(r + 1) * width];
        let mut max = f32::NEG_INFINITY;
        for &v in xin {
            if v > max {
                max = v;
            }
        }
        let mut want = vec![0.0f32; width];
        let mut sum = 0.0f32;
        for (o, &v) in want.iter_mut().zip(xin) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in want.iter_mut() {
            *o *= inv;
        }
        assert_eq!(&got[r * width..(r + 1) * width], want, "softmax row {r} diverges");
    }

    // attention_into: slice-partitioned fused kernel vs. the unfused tensor
    // ops at the same shape (whose own kernels are bit-identical serial or
    // parallel, as proven above).
    let (abs, an, ad) = (16, 24, 16);
    let q = rand_tensor(Shape::d3(abs, an, ad), &mut seed);
    let kk = rand_tensor(Shape::d3(abs, an, ad), &mut seed);
    let v = rand_tensor(Shape::d3(abs, an, ad), &mut seed);
    let scale = 1.0 / (ad as f32).sqrt();
    let amask = AttnMask::causal(an);
    let scores = seqfm_tensor::ew::scale(&bmm_nt(&q, &kk), scale);
    let attn = softmax_lastdim_masked(&scores, &amask);
    let want = bmm_nn(&attn, &v);
    let mut scratch = vec![0.0f32; abs * an * an];
    let mut out = vec![0.0f32; abs * an * ad];
    attention_into(
        q.data(),
        kk.data(),
        v.data(),
        Some(&amask),
        scale,
        abs,
        an,
        ad,
        &mut scratch,
        &mut out,
    );
    assert_eq!(out, want.data(), "fused parallel attention diverges");

    // Per-worker workspace arenas: the fan-outs above ran tiled kernels on
    // pool workers, each packing panels into its own thread-local arena.
    // The caller's own arena must be balanced (no scope leaked), and the
    // same parallel+tiled dispatch re-run must stay allocation-free on this
    // thread once warm.
    seqfm_tensor::workspace::with_thread(|ws| {
        assert_eq!(ws.live(), 0, "a kernel leaked a workspace scope");
    });
    let warm = seqfm_tensor::workspace::with_thread(|ws| ws.heap_events());
    let again = matmul_nn(&a, &b);
    assert_eq!(again.data(), refer_nn(&a, &b, M, K, N), "tiled re-run diverges");
    seqfm_tensor::workspace::with_thread(|ws| {
        assert_eq!(ws.heap_events(), warm, "warm tiled dispatch allocated on the caller thread");
    });
}
