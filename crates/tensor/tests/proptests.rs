//! Property-based tests for the tensor kernels.

use proptest::prelude::*;
use seqfm_tensor::{
    bmm_nn, ew, matmul_nn, matmul_nt, matmul_tn, reduce, softmax_lastdim, softmax_lastdim_masked,
    AttnMask, Shape, Tensor,
};

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(Shape::d2(rows, cols), v))
}

proptest! {
    /// A·(B + C) == A·B + A·C (distributivity, up to f32 noise).
    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(4, 3),
        b in tensor_strategy(3, 5),
        c in tensor_strategy(3, 5),
    ) {
        let lhs = matmul_nn(&a, &ew::add(&b, &c));
        let rhs = ew::add(&matmul_nn(&a, &b), &matmul_nn(&a, &c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// matmul_nt(A, B) == A·Bᵀ and matmul_tn(C, D) == Cᵀ·D, checked via the
    /// nn kernel with explicit transposes.
    #[test]
    fn transpose_flavours_agree(
        a in tensor_strategy(4, 3),
        b in tensor_strategy(5, 3),
        c in tensor_strategy(3, 4),
        d in tensor_strategy(3, 2),
    ) {
        let transpose = |t: &Tensor| -> Tensor {
            let (r, cc) = (t.shape().dim(0), t.shape().dim(1));
            let mut out = Tensor::zeros(Shape::d2(cc, r));
            for i in 0..r {
                for j in 0..cc {
                    out.data_mut()[j * r + i] = t.data()[i * cc + j];
                }
            }
            out
        };
        // nt: A[4,3]·(B[5,3])ᵀ == A·Bᵀ[3,5]
        let via_nt = matmul_nt(&a, &b);
        let via_nn = matmul_nn(&a, &transpose(&b));
        for (x, y) in via_nt.data().iter().zip(via_nn.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        // tn: (C[3,4])ᵀ·D[3,2] == Cᵀ[4,3]·D
        let via_tn = matmul_tn(&c, &d);
        let via_nn2 = matmul_nn(&transpose(&c), &d);
        for (x, y) in via_tn.data().iter().zip(via_nn2.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// bmm over a single batch slice equals plain matmul.
    #[test]
    fn bmm_batch1_equals_matmul(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
    ) {
        let a3 = a.reshaped(Shape::d3(1, 3, 4));
        let b3 = b.reshaped(Shape::d3(1, 4, 2));
        let batched = bmm_nn(&a3, &b3);
        let plain = matmul_nn(&a, &b);
        prop_assert_eq!(batched.data(), plain.data());
    }

    /// Softmax rows are a probability distribution, masked or not.
    #[test]
    fn softmax_rows_are_distributions(x in tensor_strategy(5, 5)) {
        for y in [softmax_lastdim(&x), softmax_lastdim_masked(&x, &AttnMask::causal(5))] {
            for r in 0..5 {
                let row = y.row(r);
                prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
                let s: f32 = row.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
            }
        }
    }

    /// Causal softmax at row i never assigns weight to columns > i.
    #[test]
    fn causal_softmax_respects_mask(x in tensor_strategy(6, 6)) {
        let y = softmax_lastdim_masked(&x, &AttnMask::causal(6));
        for i in 0..6 {
            for j in (i + 1)..6 {
                prop_assert_eq!(y.at2(i, j), 0.0);
            }
        }
    }

    /// sum_axis1 ∘ broadcast_axis1 scales by n (adjoint consistency).
    #[test]
    fn broadcast_then_sum_scales(dy in tensor_strategy(3, 4)) {
        let up = reduce::broadcast_axis1(&dy, 5, 1.0);
        let back = reduce::sum_axis1(&up);
        for (x, y) in back.data().iter().zip(dy.data()) {
            prop_assert!((x - y * 5.0).abs() < 1e-4);
        }
    }

    /// Reshape round-trips exactly.
    #[test]
    fn reshape_roundtrip(a in tensor_strategy(6, 4)) {
        let r = a.reshaped(Shape::d3(2, 3, 4)).reshaped(Shape::d2(6, 4));
        prop_assert_eq!(a.data(), r.data());
    }
}
