//! Thread-local workspace arenas for kernel temporaries.
//!
//! Every hot kernel call used to bottom out in a `Tensor::zeros` (or a bare
//! `vec![0.0; ..]`) for its temporaries — packed matrix panels, attention
//! score blocks, softmax rows. A [`Workspace`] replaces those with a pool of
//! reusable `f32` buffers handed out as RAII [`WsBuf`] scopes: taking a
//! buffer pops the most-recently-returned one (LIFO, so a steady-state call
//! sequence gets back exactly the buffers it used last time), dropping the
//! guard parks it again. After a short warm-up every buffer has grown to its
//! high-water capacity and **steady-state kernel calls perform zero heap
//! allocations** — the property the serving path's counting-allocator test
//! pins down.
//!
//! Scoping model: a [`WsBuf`] *is* a checkpoint/reset scope. Taking it marks
//! the arena position; dropping it resets the arena to that mark (the buffer
//! returns to the pool for the next taker). Scopes nest freely — any number
//! of guards can be live at once, and an inner guard returning out of order
//! is harmless because each guard owns its storage. Buffers are **always
//! zero-filled on take**, so a reset scope can never leak stale values from
//! a larger earlier op into a smaller later one (see the tests).
//!
//! One `Workspace` belongs to one thread (`RefCell`/`Cell` inside — it is
//! `Send` but not `Sync`). Kernels that need scratch without a caller-
//! provided workspace use [`with_thread`], which hands out the calling
//! thread's own arena: each pool worker therefore packs its panels into its
//! own thread-local arena, with no sharing and no locks.

use std::cell::{Cell, RefCell};

/// A pool of reusable `f32` scratch buffers. See the module docs.
#[derive(Default)]
pub struct Workspace {
    /// Parked buffers, most recently returned last (LIFO reuse).
    pool: RefCell<Vec<Vec<f32>>>,
    /// Buffers currently checked out.
    live: Cell<usize>,
    /// Heap events observed: a buffer created from nothing or grown past
    /// its capacity. Stays flat once the arena is warm.
    heap_events: Cell<u64>,
}

impl Workspace {
    /// An empty arena. Buffers are created on demand and kept forever
    /// (until [`reset`](Self::reset)), so creation is free.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zero-filled buffer of exactly `len` elements.
    ///
    /// The returned guard derefs to `[f32]` and parks its storage back in
    /// the arena on drop. The contents are **always** all-zero, regardless
    /// of what the previous user of the storage wrote — the workspace
    /// equivalent of `Tensor::zeros`, minus the allocation.
    pub fn take(&self, len: usize) -> WsBuf<'_> {
        WsBuf { buf: self.take_vec(len), ws: self }
    }

    /// Detached variant of [`take`](Self::take): a zero-filled `Vec<f32>` of
    /// length `len` whose storage the caller must eventually hand back via
    /// [`put_vec`](Self::put_vec) (or keep — leaking it to the global
    /// allocator is safe, just wasteful). This is the hook for consumers
    /// like the autograd tape whose buffers outlive any single scope.
    pub fn take_vec(&self, len: usize) -> Vec<f32> {
        // A zero-length take must not pop a pooled buffer: conditional
        // empty takes (a view buffer only some batch kinds need) would
        // otherwise shift the LIFO alignment and make unrelated slots grow
        // to each other's high-water marks.
        if len == 0 {
            self.live.set(self.live.get() + 1);
            return Vec::new();
        }
        let mut buf = self.pool.borrow_mut().pop().unwrap_or_default();
        if buf.capacity() < len {
            self.heap_events.set(self.heap_events.get() + 1);
        }
        // clear + resize = one memset over exactly `len` slots; stale data
        // beyond `len` stays in capacity and is never observable.
        buf.clear();
        buf.resize(len, 0.0);
        self.live.set(self.live.get() + 1);
        buf
    }

    /// Like [`take_vec`](Self::take_vec), but initialised as a copy of
    /// `src` instead of zeros (skipping the intermediate zero-fill; every
    /// element is still fully defined, so the no-stale-leak guarantee
    /// holds). The pooled replacement for `Tensor::clone` on hot paths.
    pub fn take_vec_copy(&self, src: &[f32]) -> Vec<f32> {
        if src.is_empty() {
            self.live.set(self.live.get() + 1);
            return Vec::new();
        }
        let mut buf = self.pool.borrow_mut().pop().unwrap_or_default();
        if buf.capacity() < src.len() {
            self.heap_events.set(self.heap_events.get() + 1);
        }
        buf.clear();
        buf.extend_from_slice(src);
        self.live.set(self.live.get() + 1);
        buf
    }

    /// Returns a buffer previously obtained with
    /// [`take_vec`](Self::take_vec) to the pool.
    pub fn put_vec(&self, buf: Vec<f32>) {
        self.live.set(self.live.get().saturating_sub(1));
        if buf.capacity() > 0 {
            self.pool.borrow_mut().push(buf);
        }
    }

    /// Number of buffers currently checked out (live scopes).
    pub fn live(&self) -> usize {
        self.live.get()
    }

    /// Heap allocations this arena has had to perform (buffer creations and
    /// capacity growths). Flat across calls once warm — the assertion hook
    /// for zero-allocation tests and the kernels bench.
    pub fn heap_events(&self) -> u64 {
        self.heap_events.get()
    }

    /// Drops every parked buffer, returning the arena to its freshly-built
    /// state (memory released to the allocator, counters kept).
    pub fn reset(&mut self) {
        self.pool.get_mut().clear();
    }
}

/// RAII scope over one workspace buffer; derefs to `[f32]` and parks the
/// storage back into its [`Workspace`] on drop.
pub struct WsBuf<'ws> {
    buf: Vec<f32>,
    ws: &'ws Workspace,
}

impl std::ops::Deref for WsBuf<'_> {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl std::ops::DerefMut for WsBuf<'_> {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for WsBuf<'_> {
    fn drop(&mut self) {
        self.ws.put_vec(std::mem::take(&mut self.buf));
    }
}

thread_local! {
    static THREAD_WS: Workspace = Workspace::new();
}

/// Runs `f` with the calling thread's own [`Workspace`].
///
/// This is how kernels reach scratch space without threading a workspace
/// parameter through every signature: the serving thread, each engine
/// worker, and each kernel-pool worker all get their own arena, warmed by
/// their own traffic.
pub fn with_thread<R>(f: impl FnOnce(&Workspace) -> R) -> R {
    THREAD_WS.with(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_lifo_without_reallocating() {
        let ws = Workspace::new();
        {
            let a = ws.take(64);
            let b = ws.take(32);
            assert_eq!(ws.live(), 2);
            assert_eq!((a.len(), b.len()), (64, 32));
        }
        assert_eq!(ws.live(), 0);
        let warm = ws.heap_events();
        // The scope dropped `b` then `a`, so LIFO hands `a`'s 64-capacity
        // buffer back first: the same take sequence re-runs with zero heap
        // traffic.
        for _ in 0..10 {
            let a = ws.take(64);
            let b = ws.take(32);
            assert_eq!((a.len(), b.len()), (64, 32));
        }
        assert_eq!(ws.heap_events(), warm, "steady state must not allocate");
    }

    #[test]
    fn reset_scope_never_leaks_stale_values_into_a_smaller_take() {
        let ws = Workspace::new();
        {
            let mut big = ws.take(128);
            big.fill(7.5); // poison the storage
        }
        // The smaller follow-up take may reuse the poisoned storage; every
        // visible element must still be zero.
        let small = ws.take(9);
        assert!(small.iter().all(|&v| v == 0.0), "stale values leaked: {:?}", &small[..]);
        // And a *larger* take than ever before is zeroed too.
        let huge = ws.take(256);
        assert!(huge.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn take_vec_round_trip_counts_live_and_heap_events() {
        let ws = Workspace::new();
        let v = ws.take_vec(16);
        assert_eq!(ws.live(), 1);
        assert_eq!(ws.heap_events(), 1);
        ws.put_vec(v);
        assert_eq!(ws.live(), 0);
        let v2 = ws.take_vec(16);
        assert_eq!(ws.heap_events(), 1, "reused capacity is not a heap event");
        // Growth past capacity is one.
        ws.put_vec(v2);
        let _v3 = ws.take_vec(1024);
        assert_eq!(ws.heap_events(), 2);
    }

    #[test]
    fn zero_length_takes_are_fine_and_do_not_disturb_the_pool() {
        let ws = Workspace::new();
        let b = ws.take(0);
        assert!(b.is_empty());
        assert_eq!(ws.live(), 1);
        drop(b);
        assert_eq!(ws.live(), 0);
        // A conditional empty take between two sized takes must not steal
        // the pooled buffer meant for the following take.
        drop(ws.take(64));
        let warm = ws.heap_events();
        let empty = ws.take(0);
        let sized = ws.take(64); // must reuse the 64-cap buffer
        assert_eq!((empty.len(), sized.len()), (0, 64));
        assert_eq!(ws.heap_events(), warm, "empty take shifted LIFO reuse");
    }

    #[test]
    fn reset_releases_parked_buffers() {
        let mut ws = Workspace::new();
        drop(ws.take(512));
        ws.reset();
        let before = ws.heap_events();
        drop(ws.take(512)); // must re-create after reset
        assert_eq!(ws.heap_events(), before + 1);
    }

    #[test]
    fn thread_local_arena_is_per_thread() {
        with_thread(|ws| drop(ws.take(32)));
        let warm = with_thread(|ws| ws.heap_events());
        with_thread(|ws| drop(ws.take(32)));
        assert_eq!(with_thread(|ws| ws.heap_events()), warm);
        // A different thread has its own arena starting cold.
        std::thread::spawn(|| {
            let fresh = with_thread(|ws| ws.heap_events());
            with_thread(|ws| drop(ws.take(32)));
            assert_eq!(with_thread(|ws| ws.heap_events()), fresh + 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn workspace_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Workspace>();
    }
}
