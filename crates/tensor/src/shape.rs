//! Tensor shapes (rank 1–3).

use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension sizes.
///
/// Only ranks 1 through 3 are constructible, matching everything the SeqFM
/// models need (vectors, matrices, and batched matrices). The inner storage is
/// a fixed-size array to keep `Shape` `Copy` and allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; 3],
    rank: u8,
}

impl Shape {
    /// Rank-1 shape `[n]`.
    pub fn d1(n: usize) -> Self {
        Shape { dims: [n, 1, 1], rank: 1 }
    }

    /// Rank-2 shape `[r, c]`.
    pub fn d2(r: usize, c: usize) -> Self {
        Shape { dims: [r, c, 1], rank: 2 }
    }

    /// Rank-3 shape `[b, r, c]`.
    pub fn d3(b: usize, r: usize, c: usize) -> Self {
        Shape { dims: [b, r, c], rank: 3 }
    }

    /// Builds a shape from a slice of dimensions.
    ///
    /// # Panics
    /// Panics if `dims` is empty or has more than 3 entries.
    pub fn from_slice(dims: &[usize]) -> Self {
        match dims {
            [n] => Self::d1(*n),
            [r, c] => Self::d2(*r, *c),
            [b, r, c] => Self::d3(*b, *r, *c),
            _ => panic!("Shape supports rank 1..=3, got rank {}", dims.len()),
        }
    }

    /// Number of dimensions (1, 2, or 3).
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Dimension sizes as a slice of length `rank()`.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        assert!(i < self.rank(), "dim index {i} out of range for {self}");
        self.dims[i]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Size of the last dimension.
    pub fn last_dim(&self) -> usize {
        self.dims[self.rank as usize - 1]
    }

    /// Number of contiguous rows of length [`Self::last_dim`] — i.e. the
    /// product of all dimensions except the last. Softmax/LayerNorm-style
    /// kernels iterate over these rows.
    pub fn outer_rows(&self) -> usize {
        self.numel() / self.last_dim().max(1)
    }

    /// `true` if `self` and `other` describe the same dims (same rank, same
    /// sizes).
    pub fn same(&self, other: &Shape) -> bool {
        self == other
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_dims() {
        let s = Shape::d1(7);
        assert_eq!(s.rank(), 1);
        assert_eq!(s.dims(), &[7]);
        assert_eq!(s.numel(), 7);

        let s = Shape::d2(3, 4);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.dims(), &[3, 4]);
        assert_eq!(s.numel(), 12);
        assert_eq!(s.last_dim(), 4);
        assert_eq!(s.outer_rows(), 3);

        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.outer_rows(), 6);
    }

    #[test]
    fn from_slice_roundtrip() {
        assert_eq!(Shape::from_slice(&[5]), Shape::d1(5));
        assert_eq!(Shape::from_slice(&[5, 6]), Shape::d2(5, 6));
        assert_eq!(Shape::from_slice(&[5, 6, 7]), Shape::d3(5, 6, 7));
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn from_slice_rejects_rank4() {
        let _ = Shape::from_slice(&[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dim_out_of_range_panics() {
        let _ = Shape::d2(2, 2).dim(2);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Shape::d3(2, 3, 4)), "[2x3x4]");
        assert_eq!(format!("{}", Shape::d1(9)), "[9]");
    }

    #[test]
    fn equality_distinguishes_rank() {
        // [4] vs [4,1] must differ even though numel matches.
        assert_ne!(Shape::d1(4), Shape::d2(4, 1));
    }
}
