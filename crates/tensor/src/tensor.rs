//! The dense `f32` tensor type.

use crate::Shape;
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor of rank 1–3.
///
/// `Tensor` is a plain value type: cloning copies the buffer. All model code
/// in the workspace funnels its numerical state through this type, so the
/// invariant `data.len() == shape.numel()` is enforced by every constructor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Builds a tensor from raw data.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { data, shape }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: Shape) -> Self {
        Tensor { data: vec![0.0; shape.numel()], shape }
    }

    /// All-ones tensor.
    pub fn ones(shape: Shape) -> Self {
        Self::full(shape, 1.0)
    }

    /// Tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        Tensor { data: vec![value; shape.numel()], shape }
    }

    /// Rank-1 tensor wrapping `data`.
    pub fn vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::from_vec(Shape::d1(n), data)
    }

    /// A single-element rank-1 tensor (used for scalar losses).
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(Shape::d1(1), vec![v])
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `[r, c]` of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2 or indices are out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.shape.rank(), 2, "at2 on rank-{} tensor", self.shape.rank());
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        assert!(r < rows && c < cols, "index ({r},{c}) out of bounds for {}", self.shape);
        self.data[r * cols + c]
    }

    /// Element at `[b, r, c]` of a rank-3 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 3 or indices are out of bounds.
    pub fn at3(&self, b: usize, r: usize, c: usize) -> f32 {
        assert_eq!(self.shape.rank(), 3, "at3 on rank-{} tensor", self.shape.rank());
        let (bs, rows, cols) = (self.shape.dim(0), self.shape.dim(1), self.shape.dim(2));
        assert!(
            b < bs && r < rows && c < cols,
            "index ({b},{r},{c}) out of bounds for {}",
            self.shape
        );
        self.data[(b * rows + r) * cols + c]
    }

    /// Returns a tensor with the same data but a different shape.
    ///
    /// # Panics
    /// Panics if `numel` differs.
    pub fn reshaped(&self, shape: Shape) -> Tensor {
        assert_eq!(self.numel(), shape.numel(), "cannot reshape {} into {shape}", self.shape);
        Tensor { data: self.data.clone(), shape }
    }

    /// In-place reshape (no data movement).
    ///
    /// # Panics
    /// Panics if `numel` differs.
    pub fn reshape_in_place(&mut self, shape: Shape) {
        assert_eq!(self.numel(), shape.numel(), "cannot reshape {} into {shape}", self.shape);
        self.shape = shape;
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert!(
            self.shape.same(&other.shape),
            "zip shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        Tensor {
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape,
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Row `r` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    /// Panics if the tensor is not rank 2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() on rank-{} tensor", self.shape.rank());
        let cols = self.shape.dim(1);
        assert!(r < self.shape.dim(0), "row {r} out of bounds for {}", self.shape);
        &self.data[r * cols..(r + 1) * cols]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        const LIMIT: usize = 8;
        if self.data.len() <= LIMIT {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "{:?}…", &self.data[..LIMIT])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_invariants() {
        let t = Tensor::zeros(Shape::d2(2, 3));
        assert_eq!(t.numel(), 6);
        assert!(t.data().iter().all(|&x| x == 0.0));
        let t = Tensor::full(Shape::d1(4), 2.5);
        assert!(t.data().iter().all(|&x| x == 2.5));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 3]);
    }

    #[test]
    fn indexing() {
        let t = Tensor::from_vec(Shape::d2(2, 3), (0..6).map(|x| x as f32).collect());
        assert_eq!(t.at2(0, 0), 0.0);
        assert_eq!(t.at2(1, 2), 5.0);
        let t = Tensor::from_vec(Shape::d3(2, 2, 2), (0..8).map(|x| x as f32).collect());
        assert_eq!(t.at3(1, 1, 0), 6.0);
        assert_eq!(t.at3(0, 1, 1), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::d2(2, 3), (0..6).map(|x| x as f32).collect());
        let r = t.reshaped(Shape::d3(1, 2, 3));
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), Shape::d3(1, 2, 3));
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_numel_mismatch() {
        let _ = Tensor::zeros(Shape::d1(5)).reshaped(Shape::d2(2, 3));
    }

    #[test]
    fn map_zip_sum_mean() {
        let a = Tensor::vector(vec![1.0, 2.0, 3.0]);
        let b = Tensor::vector(vec![10.0, 20.0, 30.0]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[11.0, 22.0, 33.0]);
        assert_eq!(a.sum(), 6.0);
        assert!((a.mean() - 2.0).abs() < 1e-6);
        assert_eq!(b.max_abs(), 30.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(Shape::d1(3));
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn row_slices() {
        let t = Tensor::from_vec(Shape::d2(2, 3), (0..6).map(|x| x as f32).collect());
        assert_eq!(t.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }
}
