#![warn(missing_docs)]

//! # seqfm-tensor
//!
//! Dense `f32` tensor library underpinning the SeqFM reproduction.
//!
//! The paper's models only ever need rank-1/2/3 row-major tensors, so this
//! crate deliberately implements a small, fast, predictable subset of a
//! general tensor library instead of an n-dimensional strided one:
//!
//! * [`Tensor`] — contiguous row-major `f32` storage plus a [`Shape`].
//! * 2-D matrix multiply kernels in all transpose flavours
//!   ([`matmul_nn`], [`matmul_nt`], [`matmul_tn`]) with cache-friendly loop
//!   ordering.
//! * Batched (rank-3) matrix multiplies ([`bmm_nn`], [`bmm_nt`], [`bmm_tn`]).
//! * Numerically-stable masked softmax over the last dimension
//!   ([`softmax_lastdim`], [`softmax_lastdim_masked`]) — the core primitive of
//!   the paper's multi-view self-attention (Eq. 8, 9, 11).
//! * Reductions over axis 1 and the last axis (intra-view pooling, Eq. 14).
//! * Allocation-free `_into` variants of the hot kernels plus a fused
//!   [`attention_into`] — the building blocks of the graph-free inference
//!   path (`seqfm_core`'s `Scorer`/`FrozenSeqFm`).
//! * A thread-local [`workspace`] arena ([`Workspace`]) owning all kernel
//!   temporaries, and cache-blocked packed matmul kernels
//!   ([`kernels::matmul::tiled`]) that are **bit-identical** to the naive
//!   references ([`kernels::matmul::naive`]) — see the matmul module docs.
//! * Explicit AVX2/FMA micro-kernel bodies behind runtime dispatch
//!   ([`kernels::simd`]): SIMD-exact arms that stay bit-identical to the
//!   scalar kernels, plus a fused-FMA **fast profile**
//!   ([`kernels::matmul::fast`], [`attention_fast_into`], `exp_fast`, `f16`
//!   storage) for reduced-precision serving.
//!
//! All shape errors are programming errors and panic with a descriptive
//! message; the panic contract is documented on each function.

mod shape;
mod tensor;

pub mod kernels;
pub mod testutil;
pub mod workspace;

pub use kernels::attention::{
    attention_cross_fast_into, attention_cross_shared_fast_into, attention_fast_into,
    attention_into, attention_pair_fast_into,
};
pub use kernels::bmm::{
    bmm_nn, bmm_nn_fast_into, bmm_nn_into, bmm_nt, bmm_nt_fast_into, bmm_nt_into, bmm_tn,
    bmm_tn_into,
};
pub use kernels::elementwise as ew;
pub use kernels::matmul::fast::{matmul_nn_fast_into, matmul_nt_fast_into};
pub use kernels::matmul::{
    matmul_nn, matmul_nn_into, matmul_nt, matmul_nt_into, matmul_tn, matmul_tn_into,
};
pub use kernels::reduce;
pub use kernels::simd::{
    active_arm, avx2_available, exp_fast, f16_from_f32, f32_from_f16, widen_f16, SimdArm,
};
pub use kernels::softmax::{
    softmax_backward_into, softmax_backward_lastdim, softmax_lastdim, softmax_lastdim_masked,
    softmax_rows_into, AttnMask,
};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::{Workspace, WsBuf};
