//! Numerical kernels operating on [`crate::Tensor`] values.
//!
//! Kernels are free functions rather than methods so the autograd layer can
//! call them on both values and gradients without borrow gymnastics. Every
//! kernel allocates its output (there is no aliasing) except the explicitly
//! `_into` / `accumulate` variants used on hot paths.

pub mod attention;
pub mod bmm;
pub mod elementwise;
pub mod matmul;
pub mod reduce;
pub mod softmax;
