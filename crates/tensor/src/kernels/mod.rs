//! Numerical kernels operating on [`crate::Tensor`] values.
//!
//! Kernels are free functions rather than methods so the autograd layer can
//! call them on both values and gradients without borrow gymnastics. Every
//! kernel allocates its output (there is no aliasing) except the explicitly
//! `_into` / `accumulate` variants used on hot paths.

pub mod attention;
pub mod bmm;
pub mod elementwise;
pub mod matmul;
pub mod reduce;
pub mod simd;
pub mod softmax;

/// Parallel-dispatch policy shared by the hot kernels.
///
/// A kernel fans out to the [`seqfm_parallel::global`] pool only when the
/// estimated scalar-op count clears [`PAR_THRESHOLD`], it has at least two
/// independent work units (rows / batch slices) to hand out, the configured
/// pool is wider than one worker, and the caller is not itself a pool task
/// (nested fan-out adds queueing without adding concurrency). Partitioning
/// is always by whole unit, and each unit's arithmetic is identical to the
/// serial kernel's — element order within a unit never changes — so
/// parallel results are **bit-for-bit** equal to serial ones.
pub(crate) mod dispatch {
    /// Minimum estimated scalar ops before fanning out. Chosen so the
    /// per-task overhead (~1–2 µs of queueing) stays well under 5% of the
    /// chunk's compute at typical serving/training shapes.
    pub(crate) const PAR_THRESHOLD: usize = 96 * 1024;

    /// `true` when a kernel with `work` scalar ops across `units`
    /// independent units should use the global pool.
    pub(crate) fn should_par(work: usize, units: usize) -> bool {
        units >= 2
            && work >= PAR_THRESHOLD
            && !seqfm_parallel::in_parallel_task()
            && seqfm_parallel::configured_workers() > 1
    }
}
