//! Rank-2 matrix multiplication kernels.
//!
//! Three transpose flavours are provided because reverse-mode autodiff needs
//! all of them: for `C = A·B`, the backward pass computes `dA = dC·Bᵀ`
//! ([`matmul_nt`]) and `dB = Aᵀ·dC` ([`matmul_tn`]).
//!
//! The `nn` and `tn` kernels use the `ikj` loop order so the innermost loop
//! walks both `B` and `C` contiguously (auto-vectorises well); `nt` uses a
//! dot-product inner loop since both operands are then walked contiguously.
//!
//! All three `_into` kernels are **row-partitioned** across the global
//! thread pool above a size threshold (see `kernels::dispatch`): output rows
//! are independent, each row's accumulation order is unchanged, so parallel
//! results are bit-for-bit identical to serial ones.

use super::dispatch::should_par;
use crate::{Shape, Tensor};

/// `C[m,n] = A[m,k] · B[k,n]`.
///
/// # Panics
/// Panics if either operand is not rank 2 or the inner dimensions disagree.
pub fn matmul_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nn lhs");
    let (k2, n) = dims2(b, "matmul_nn rhs");
    assert_eq!(k, k2, "matmul_nn inner dim mismatch: {} vs {}", a.shape(), b.shape());
    let mut out = Tensor::zeros(Shape::d2(m, n));
    matmul_nn_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ`.
///
/// # Panics
/// Panics if either operand is not rank 2 or the inner dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, k2) = dims2(b, "matmul_nt rhs");
    assert_eq!(k, k2, "matmul_nt inner dim mismatch: {} vs {}", a.shape(), b.shape());
    let mut out = Tensor::zeros(Shape::d2(m, n));
    matmul_nt_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// `C[m,n] = A[k,m]ᵀ · B[k,n]`.
///
/// # Panics
/// Panics if either operand is not rank 2 or the inner dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (k2, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(k, k2, "matmul_tn inner dim mismatch: {} vs {}", a.shape(), b.shape());
    let mut out = Tensor::zeros(Shape::d2(m, n));
    matmul_tn_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// Raw slice kernel: `c[m,n] += a[m,k] · b[k,n]`. Accumulates into `c`.
/// Row-partitioned across the global pool above the dispatch threshold;
/// results are bit-identical to the serial loop.
pub fn matmul_nn_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if should_par(m * k * n, m) {
        par_rows(a, c, k, n, |a_rows, c_rows, rows| matmul_nn_rows(a_rows, b, c_rows, rows, k, n));
    } else {
        matmul_nn_rows(a, b, c, m, k, n);
    }
}

fn matmul_nn_rows(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue; // embeddings of padding rows are exactly zero
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_el, &b_el) in c_row.iter_mut().zip(b_row) {
                *c_el += a_ip * b_el;
            }
        }
    }
}

/// Raw slice kernel: `c[m,n] += a[m,k] · b[n,k]ᵀ`. Accumulates into `c`.
/// Row-partitioned like [`matmul_nn_into`].
pub fn matmul_nt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if should_par(m * k * n, m) {
        par_rows(a, c, k, n, |a_rows, c_rows, rows| matmul_nt_rows(a_rows, b, c_rows, rows, k, n));
    } else {
        matmul_nt_rows(a, b, c, m, k, n);
    }
}

fn matmul_nt_rows(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, c_el) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *c_el += acc;
        }
    }
}

/// Raw slice kernel: `c[m,n] += a[k,m]ᵀ · b[k,n]`. Accumulates into `c`.
/// Partitioned over **output** rows (the lhs is walked column-wise, so each
/// task re-scans `a` but owns a disjoint block of `c`); per-element
/// accumulation order over `p` is unchanged, keeping results bit-identical.
pub fn matmul_tn_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if should_par(m * k * n, m) {
        seqfm_parallel::par_units(seqfm_parallel::global(), c, n, |i0, c_rows| {
            matmul_tn_rows(a, b, c_rows, i0, c_rows.len() / n, m, k, n)
        });
    } else {
        matmul_tn_rows(a, b, c, 0, m, m, k, n);
    }
}

/// `tn` over output rows `[i0, i0 + rows)` only; `c` holds exactly those
/// rows. The `p`-outer loop order of the full kernel is preserved.
#[allow(clippy::too_many_arguments)]
fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (ri, &a_pi) in a_row[i0..i0 + rows].iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[ri * n..(ri + 1) * n];
            for (c_el, &b_el) in c_row.iter_mut().zip(b_row) {
                *c_el += a_pi * b_el;
            }
        }
    }
}

/// Fans `m` rows of `a`/`c` out over the global pool via
/// [`seqfm_parallel::par_units`], calling `f(a_rows, c_rows, rows)` per
/// contiguous block.
fn par_rows(
    a: &[f32],
    c: &mut [f32],
    k: usize,
    n: usize,
    f: impl Fn(&[f32], &mut [f32], usize) + Sync,
) {
    seqfm_parallel::par_units(seqfm_parallel::global(), c, n, |i0, c_rows| {
        let rows = c_rows.len() / n;
        f(&a[i0 * k..(i0 + rows) * k], c_rows, rows)
    });
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be rank 2, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_close;

    fn t2(r: usize, c: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::d2(r, c), v.to_vec())
    }

    #[test]
    fn nn_hand_checked() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t2(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = matmul_nn(&a, &b);
        assert_close(c.data(), &[19.0, 22.0, 43.0, 50.0], 1e-6);
    }

    #[test]
    fn nn_rectangular() {
        let a = t2(2, 3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let b = t2(3, 2, &[3.0, 1.0, 2.0, 1.0, 1.0, 0.0]);
        let c = matmul_nn(&a, &b);
        assert_close(c.data(), &[5.0, 1.0, 4.0, 2.0], 1e-6);
        assert_eq!(c.shape(), Shape::d2(2, 2));
    }

    #[test]
    fn nt_equals_nn_with_transposed_rhs() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 4, &(0..12).map(|x| x as f32 * 0.5).collect::<Vec<_>>());
        // Manually transpose b -> bt [4,3]
        let mut bt = vec![0.0; 12];
        for r in 0..3 {
            for c in 0..4 {
                bt[c * 3 + r] = b.data()[r * 4 + c];
            }
        }
        let bt = t2(4, 3, &bt);
        let via_nn = matmul_nn(&a, &b);
        let via_nt = matmul_nt(&a, &bt);
        assert_close(via_nn.data(), via_nt.data(), 1e-5);
    }

    #[test]
    fn tn_equals_nn_with_transposed_lhs() {
        let a = t2(3, 2, &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]); // aᵀ = [1 2 3; 4 5 6]
        let b = t2(3, 2, &[1.0, -1.0, 0.5, 2.0, 3.0, 0.0]);
        let at = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let via_tn = matmul_tn(&a, &b);
        let via_nn = matmul_nn(&at, &b);
        assert_close(via_tn.data(), via_nn.data(), 1e-5);
    }

    #[test]
    fn identity_is_noop() {
        let a = t2(3, 3, &(0..9).map(|x| x as f32).collect::<Vec<_>>());
        let mut eye = Tensor::zeros(Shape::d2(3, 3));
        for i in 0..3 {
            eye.data_mut()[i * 3 + i] = 1.0;
        }
        assert_close(matmul_nn(&a, &eye).data(), a.data(), 1e-6);
        assert_close(matmul_nn(&eye, &a).data(), a.data(), 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn nn_rejects_mismatch() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(2, 2));
        let _ = matmul_nn(&a, &b);
    }

    #[test]
    #[should_panic(expected = "must be rank 2")]
    fn nn_rejects_rank3() {
        let a = Tensor::zeros(Shape::d3(1, 2, 3));
        let b = Tensor::zeros(Shape::d2(3, 2));
        let _ = matmul_nn(&a, &b);
    }
}
