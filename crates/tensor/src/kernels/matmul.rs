//! Rank-2 matrix multiplication kernels.
//!
//! Three transpose flavours are provided because reverse-mode autodiff needs
//! all of them: for `C = A·B`, the backward pass computes `dA = dC·Bᵀ`
//! ([`matmul_nt`]) and `dB = Aᵀ·dC` ([`matmul_tn`]).
//!
//! ## Two implementations, one bit pattern
//!
//! Each flavour exists twice: a [`naive`] reference kernel (simple loops,
//! the semantic oracle) and a cache-blocked [`tiled`] kernel that packs a
//! `k × NR` panel of `B` into the thread-local workspace arena
//! ([`crate::workspace`]) and walks the output in `MR × NR` register tiles.
//! The tiled kernels hold each output element in a register across the
//! whole `k` loop instead of streaming it through memory once per `k` step,
//! and the packed panel makes the inner loop a contiguous, branch-free
//! multiply-add over `NR` lanes — that is where the single-core speedup
//! comes from.
//!
//! **Bit-identity invariant**: for every output element `c[i,j]`, both
//! implementations perform *exactly* the same sequence of f32 operations —
//! the `k`-accumulation order is ascending `p`, the padding-row skip
//! (`a == 0.0` in the `nn`/`tn` flavours) is preserved, and tiling only
//! changes *which element is worked on when*, never the per-element op
//! sequence. The `nn`/`tn` flavours additionally cache-block the reduction
//! depth at `KC` — bit-safe there because their micro-kernels round-trip
//! the `c` tile through memory between chunks (see the `KC` docs for why
//! `nt` is excluded). Tiled results are therefore bit-for-bit equal to naive ones
//! for any input (asserted exhaustively in `tests/tiled_parity.rs`), which
//! lets the dispatchers pick freely by shape without perturbing a single
//! logit.
//!
//! The `_into` entry points are additionally **row-partitioned** across the
//! global thread pool above a size threshold (see `kernels::dispatch`):
//! output rows are independent and each row's accumulation order is
//! unchanged, so parallel results are bit-for-bit identical to serial ones.

use super::dispatch::should_par;
use super::simd::{self, SimdArm};
use crate::{Shape, Tensor};

/// Register-tile height: output rows processed per micro-kernel call.
pub(crate) const MR: usize = 6;
/// Register-tile width: output columns held in accumulators per call (also
/// the packed panel width).
pub(crate) const NR: usize = 16;
/// Cache-block depth: the `nn`/`tn` tiled kernels split the `k` loop into
/// chunks of at most `KC`, so a packed panel never exceeds `KC × NR` floats
/// (16 KiB — L1-resident) no matter how deep the reduction is. Bit-safe for
/// those two flavours only: their micro-kernels *load* the `c` tile into
/// registers, accumulate ascending `p`, and *store* it back, so splitting
/// the `p` loop at a store/load boundary replays exactly the same
/// per-element f32 op sequence (an f32 round-trip through memory is exact).
/// The `nt` micro-kernel zero-initialises its accumulators and adds into
/// `c` once at the end — k-splitting it would turn one dot product into a
/// sum of partials with a different rounding order — so `nt` deliberately
/// packs its full-depth panel and is excluded from k-blocking.
const KC: usize = 256;

/// `true` when the packed/tiled path is worth its panel-packing overhead:
/// at least one full register tile of columns and enough total work to
/// amortise the pack. Purely a performance heuristic — both paths produce
/// identical bits.
fn tiled_worthwhile(m: usize, k: usize, n: usize) -> bool {
    n >= NR && m >= 2 && m * k * n >= 2048
}

/// `C[m,n] = A[m,k] · B[k,n]`.
///
/// # Panics
/// Panics if either operand is not rank 2 or the inner dimensions disagree.
pub fn matmul_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nn lhs");
    let (k2, n) = dims2(b, "matmul_nn rhs");
    assert_eq!(k, k2, "matmul_nn inner dim mismatch: {} vs {}", a.shape(), b.shape());
    let mut out = Tensor::zeros(Shape::d2(m, n));
    matmul_nn_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ`.
///
/// # Panics
/// Panics if either operand is not rank 2 or the inner dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, k2) = dims2(b, "matmul_nt rhs");
    assert_eq!(k, k2, "matmul_nt inner dim mismatch: {} vs {}", a.shape(), b.shape());
    let mut out = Tensor::zeros(Shape::d2(m, n));
    matmul_nt_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// `C[m,n] = A[k,m]ᵀ · B[k,n]`.
///
/// # Panics
/// Panics if either operand is not rank 2 or the inner dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (k2, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(k, k2, "matmul_tn inner dim mismatch: {} vs {}", a.shape(), b.shape());
    let mut out = Tensor::zeros(Shape::d2(m, n));
    matmul_tn_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// Raw slice kernel: `c[m,n] += a[m,k] · b[k,n]`. Accumulates into `c`.
/// Row-partitioned across the global pool above the dispatch threshold and
/// cache-blocked above the tile threshold; results are bit-identical to the
/// serial naive loop either way.
pub fn matmul_nn_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if should_par(m * k * n, m) {
        par_rows(a, c, k, n, |a_rows, c_rows, rows| nn_block(a_rows, b, c_rows, rows, k, n));
    } else {
        nn_block(a, b, c, m, k, n);
    }
}

/// Raw slice kernel: `c[m,n] += a[m,k] · b[n,k]ᵀ`. Accumulates into `c`.
/// Partitioned and blocked like [`matmul_nn_into`].
///
/// The parallel tiled path packs every full-width K-panel **once** in the
/// caller's workspace and shares the pack read-only across the row-chunk
/// tasks, instead of letting each chunk re-pack the whole of `b`. Panel
/// contents are byte-identical to the per-chunk packs, so results stay
/// bit-for-bit equal to the serial kernel.
pub fn matmul_nt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if should_par(m * k * n, m) {
        if tiled_worthwhile(m, k, n) {
            let arm = simd::active_arm();
            crate::workspace::with_thread(|ws| {
                let mut panels = ws.take((n / NR) * k * NR);
                tiled::pack_nt_panels(b, &mut panels, k, n);
                let panels: &[f32] = &panels;
                par_rows(a, c, k, n, |a_rows, c_rows, rows| {
                    tiled::matmul_nt_packed_into(arm, a_rows, b, panels, c_rows, rows, k, n)
                });
            });
        } else {
            par_rows(a, c, k, n, |a_rows, c_rows, rows| nt_block(a_rows, b, c_rows, rows, k, n));
        }
    } else {
        nt_block(a, b, c, m, k, n);
    }
}

/// Raw slice kernel: `c[m,n] += a[k,m]ᵀ · b[k,n]`. Accumulates into `c`.
/// Partitioned over **output** rows (the lhs is walked column-wise, so each
/// task re-scans `a` but owns a disjoint block of `c`); per-element
/// accumulation order over `p` is unchanged, keeping results bit-identical.
pub fn matmul_tn_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if should_par(m * k * n, m) {
        seqfm_parallel::par_units(seqfm_parallel::global(), c, n, |i0, c_rows| {
            tn_block(a, b, c_rows, i0, c_rows.len() / n, m, k, n)
        });
    } else {
        tn_block(a, b, c, 0, m, m, k, n);
    }
}

/// Serial `nn` over a row block: tiled when worthwhile, else naive.
fn nn_block(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    if tiled_worthwhile(m, k, n) {
        tiled::matmul_nn_into(a, b, c, m, k, n);
    } else {
        naive::matmul_nn_into(a, b, c, m, k, n);
    }
}

/// Serial `nt` over a row block: tiled when worthwhile, else naive.
fn nt_block(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    if tiled_worthwhile(m, k, n) {
        tiled::matmul_nt_into(a, b, c, m, k, n);
    } else {
        naive::matmul_nt_into(a, b, c, m, k, n);
    }
}

/// Serial `tn` over output rows `[i0, i0 + rows)` (with `c` holding exactly
/// those rows): tiled when worthwhile, else naive.
#[allow(clippy::too_many_arguments)]
fn tn_block(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if tiled_worthwhile(rows, k, n) {
        tiled::matmul_tn_rows_into(a, b, c, i0, rows, m, k, n);
    } else {
        naive::matmul_tn_rows_into(a, b, c, i0, rows, m, k, n);
    }
}

/// Naive reference kernels: the straight loops that define the bit-exact
/// semantics of every matmul in this crate. The tiled kernels (and the
/// parallel partitioning) must — and do — reproduce these bit for bit; the
/// kernels bench measures the tiled speedup against them.
pub mod naive {
    /// Reference `c[m,n] += a[m,k] · b[k,n]` — `ikj` loop order with the
    /// padding-row skip (`a == 0.0` contributes nothing and is skipped).
    pub fn matmul_nn_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        nn_cols(a, b, c, m, k, n, 0);
    }

    /// [`matmul_nn_into`] restricted to output columns `[j_lo, n)` — the
    /// tiled kernel's column-tail path. Per-element op order is identical
    /// to the full kernel's.
    pub(super) fn nn_cols(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        j_lo: usize,
    ) {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n + j_lo..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue; // embeddings of padding rows are exactly zero
                }
                let b_row = &b[p * n + j_lo..(p + 1) * n];
                for (c_el, &b_el) in c_row.iter_mut().zip(b_row) {
                    *c_el += a_ip * b_el;
                }
            }
        }
    }

    /// Reference `c[m,n] += a[m,k] · b[n,k]ᵀ` — a register dot product per
    /// output element, added into `c` once.
    pub fn matmul_nt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        nt_cols(a, b, c, m, k, n, 0);
    }

    /// [`matmul_nt_into`] restricted to output columns `[j_lo, n)`.
    pub(super) fn nt_cols(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        j_lo: usize,
    ) {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n + j_lo..(i + 1) * n];
            for (jt, c_el) in c_row.iter_mut().enumerate() {
                let j = j_lo + jt;
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *c_el += acc;
            }
        }
    }

    /// Reference `c[m,n] += a[k,m]ᵀ · b[k,n]` — `p`-outer loop order with
    /// the `a == 0.0` skip.
    pub fn matmul_tn_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_tn_rows_into(a, b, c, 0, m, m, k, n);
    }

    /// Reference `tn` over output rows `[i0, i0 + rows)` only; `c` holds
    /// exactly those rows. The `p`-outer loop order of the full kernel is
    /// preserved.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_tn_rows_into(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        i0: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        tn_cols(a, b, c, i0, rows, m, k, n, 0);
    }

    /// [`matmul_tn_rows_into`] restricted to output columns `[j_lo, n)`.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn tn_cols(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        i0: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
        j_lo: usize,
    ) {
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n + j_lo..(p + 1) * n];
            for (ri, &a_pi) in a_row[i0..i0 + rows].iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let c_row = &mut c[ri * n + j_lo..(ri + 1) * n];
                for (c_el, &b_el) in c_row.iter_mut().zip(b_row) {
                    *c_el += a_pi * b_el;
                }
            }
        }
    }
}

/// Cache-blocked, register-tiled kernels with `B` panels packed into the
/// thread-local workspace arena. Bit-identical to [`naive`] — see the
/// module docs for the invariant and `tests/tiled_parity.rs` for the proof.
pub mod tiled {
    use super::{naive, simd, SimdArm, KC, MR, NR};
    use crate::workspace;

    /// Packs columns `[j0, j0 + NR)` of rows `[p0, p0 + kc)` of the
    /// row-major `[k, n]` matrix `b` into `panel` in `p`-major order:
    /// `panel[p·NR + t] = b[(p0 + p)·n + j0 + t]`.
    pub(super) fn pack_panel_cols(
        b: &[f32],
        panel: &mut [f32],
        p0: usize,
        kc: usize,
        n: usize,
        j0: usize,
    ) {
        for p in 0..kc {
            let src = (p0 + p) * n + j0;
            panel[p * NR..(p + 1) * NR].copy_from_slice(&b[src..src + NR]);
        }
    }

    /// Packs rows `[j0, j0 + NR)` of the row-major `[n, k]` matrix `b`
    /// (i.e. columns of `bᵀ`) into `panel` in `p`-major order:
    /// `panel[p·NR + t] = b[(j0 + t)·k + p]`.
    pub(super) fn pack_panel_rows(b: &[f32], panel: &mut [f32], k: usize, j0: usize) {
        for t in 0..NR {
            let src = &b[(j0 + t) * k..(j0 + t + 1) * k];
            for (p, &v) in src.iter().enumerate() {
                panel[p * NR + t] = v;
            }
        }
    }

    /// Tiled `c[m,n] += a[m,k] · b[k,n]`, k-blocked at `KC`, on the
    /// process-wide dispatch arm.
    pub fn matmul_nn_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_nn_into_arm(simd::active_arm(), a, b, c, m, k, n);
    }

    /// [`matmul_nn_into`] on an explicit dispatch arm — the test/bench hook
    /// that lets both arms run in one process. Both arms are bit-identical.
    pub fn matmul_nn_into_arm(
        arm: SimdArm,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        workspace::with_thread(|ws| {
            let mut panel = ws.take(k.min(KC) * NR);
            let mut j0 = 0;
            while j0 + NR <= n {
                let mut p0 = 0;
                loop {
                    let kc = (k - p0).min(KC);
                    pack_panel_cols(b, &mut panel, p0, kc, n, j0);
                    let mut i0 = 0;
                    while i0 < m {
                        let rows = (m - i0).min(MR);
                        nn_micro_arm(arm, a, &panel, c, i0, rows, j0, p0, kc, k, n);
                        i0 += rows;
                    }
                    p0 += kc;
                    if p0 >= k {
                        break;
                    }
                }
                j0 += NR;
            }
            if j0 < n {
                naive::nn_cols(a, b, c, m, k, n, j0);
            }
        });
    }

    /// Dispatches one `nn` register tile to the selected arm. The AVX2 body
    /// replays the identical per-element op sequence, so the choice never
    /// changes a bit of output.
    #[allow(clippy::too_many_arguments)]
    fn nn_micro_arm(
        arm: SimdArm,
        a: &[f32],
        panel: &[f32],
        c: &mut [f32],
        i0: usize,
        rows: usize,
        j0: usize,
        p0: usize,
        kc: usize,
        k: usize,
        n: usize,
    ) {
        match arm {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the Avx2 arm is only handed out when runtime detection
            // reported AVX2 support (see `simd::active_arm`), and tests gate
            // explicit Avx2 requests on `simd::avx2_available`.
            SimdArm::Avx2 => unsafe {
                simd::nn_micro_avx2(a, panel, c, i0, rows, j0, p0, kc, k, n)
            },
            _ => nn_micro(a, panel, c, i0, rows, j0, p0, kc, k, n),
        }
    }

    /// `MR × NR` register tile of the `nn` kernel over the k-chunk
    /// `[p0, p0 + kc)`: loads the tile of `c` into accumulators, replays
    /// the naive per-element `p`-ascending multiply-adds of the chunk
    /// (padding skip included), stores once. Chaining chunks through the
    /// store/load round-trip reproduces the full-depth op sequence exactly.
    #[allow(clippy::too_many_arguments)]
    fn nn_micro(
        a: &[f32],
        panel: &[f32],
        c: &mut [f32],
        i0: usize,
        rows: usize,
        j0: usize,
        p0: usize,
        kc: usize,
        k: usize,
        n: usize,
    ) {
        let mut acc = [[0.0f32; NR]; MR];
        for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
            acc_r.copy_from_slice(&c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR]);
        }
        for p in 0..kc {
            let bp = &panel[p * NR..(p + 1) * NR];
            for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
                let a_ip = a[(i0 + r) * k + p0 + p];
                if a_ip == 0.0 {
                    continue; // same padding-row skip as the naive kernel
                }
                for (o, &bv) in acc_r.iter_mut().zip(bp) {
                    *o += a_ip * bv;
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate().take(rows) {
            c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR].copy_from_slice(acc_r);
        }
    }

    /// Tiled `c[m,n] += a[m,k] · b[n,k]ᵀ` on the process-wide dispatch arm.
    pub fn matmul_nt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_nt_into_arm(simd::active_arm(), a, b, c, m, k, n);
    }

    /// [`matmul_nt_into`] on an explicit dispatch arm (test/bench hook).
    pub fn matmul_nt_into_arm(
        arm: SimdArm,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        workspace::with_thread(|ws| {
            let mut panel = ws.take(k * NR);
            let mut j0 = 0;
            while j0 + NR <= n {
                pack_panel_rows(b, &mut panel, k, j0);
                let mut i0 = 0;
                while i0 < m {
                    let rows = (m - i0).min(MR);
                    nt_micro_arm(arm, a, &panel, c, i0, rows, j0, k, n);
                    i0 += rows;
                }
                j0 += NR;
            }
            if j0 < n {
                naive::nt_cols(a, b, c, m, k, n, j0);
            }
        });
    }

    /// Packs **every** full-width K-panel of the row-major `[n, k]` matrix
    /// `b` into `panels` (`⌊n/NR⌋` panels of `k × NR` floats, `p`-major
    /// within each). One pack serves all row chunks of a parallel `nt` —
    /// the per-chunk packs this replaces produced byte-identical panels, so
    /// sharing them is invisible to the output bits.
    pub fn pack_nt_panels(b: &[f32], panels: &mut [f32], k: usize, n: usize) {
        let mut j0 = 0;
        while j0 + NR <= n {
            let pi = j0 / NR;
            pack_panel_rows(b, &mut panels[pi * k * NR..(pi + 1) * k * NR], k, j0);
            j0 += NR;
        }
    }

    /// Tiled `c[m,n] += a[m,k] · b[n,k]ᵀ` over pre-packed K-panels from
    /// [`pack_nt_panels`]. `b` is still needed for the `n % NR` column tail,
    /// which has no panel. Bit-identical to [`matmul_nt_into`].
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_nt_packed_into(
        arm: SimdArm,
        a: &[f32],
        b: &[f32],
        panels: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        debug_assert!(panels.len() >= (n / NR) * k * NR);
        let mut j0 = 0;
        while j0 + NR <= n {
            let pi = j0 / NR;
            let panel = &panels[pi * k * NR..(pi + 1) * k * NR];
            let mut i0 = 0;
            while i0 < m {
                let rows = (m - i0).min(MR);
                nt_micro_arm(arm, a, panel, c, i0, rows, j0, k, n);
                i0 += rows;
            }
            j0 += NR;
        }
        if j0 < n {
            naive::nt_cols(a, b, c, m, k, n, j0);
        }
    }

    /// Dispatches one `nt` register tile to the selected arm (bit-identical
    /// either way).
    #[allow(clippy::too_many_arguments)]
    fn nt_micro_arm(
        arm: SimdArm,
        a: &[f32],
        panel: &[f32],
        c: &mut [f32],
        i0: usize,
        rows: usize,
        j0: usize,
        k: usize,
        n: usize,
    ) {
        match arm {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the Avx2 arm is only handed out when runtime detection
            // reported AVX2 support.
            SimdArm::Avx2 => unsafe { simd::nt_micro_avx2(a, panel, c, i0, rows, j0, k, n) },
            _ => nt_micro(a, panel, c, i0, rows, j0, k, n),
        }
    }

    /// `MR × NR` register tile of the `nt` kernel: per element, the same
    /// zero-initialised `p`-ascending dot product as the naive kernel,
    /// added into `c` once at the end.
    #[allow(clippy::too_many_arguments)]
    fn nt_micro(
        a: &[f32],
        panel: &[f32],
        c: &mut [f32],
        i0: usize,
        rows: usize,
        j0: usize,
        k: usize,
        n: usize,
    ) {
        let mut acc = [[0.0f32; NR]; MR];
        for p in 0..k {
            let bp = &panel[p * NR..(p + 1) * NR];
            for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
                let a_ip = a[(i0 + r) * k + p];
                for (o, &bv) in acc_r.iter_mut().zip(bp) {
                    *o += a_ip * bv;
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate().take(rows) {
            let c_row = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR];
            for (c_el, &v) in c_row.iter_mut().zip(acc_r) {
                *c_el += v;
            }
        }
    }

    /// Tiled `c[m,n] += a[k,m]ᵀ · b[k,n]` on the process-wide dispatch arm.
    pub fn matmul_tn_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_tn_rows_into(a, b, c, 0, m, m, k, n);
    }

    /// Tiled `tn` over output rows `[i0, i0 + rows)` only (`c` holds
    /// exactly those rows) — the shape the row-partitioned parallel path
    /// hands out.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_tn_rows_into(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        i0: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        matmul_tn_rows_into_arm(simd::active_arm(), a, b, c, i0, rows, m, k, n);
    }

    /// [`matmul_tn_rows_into`] on an explicit dispatch arm (test hook).
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_tn_rows_into_arm(
        arm: SimdArm,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        i0: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
    ) {
        workspace::with_thread(|ws| {
            let mut panel = ws.take(k.min(KC) * NR);
            let mut j0 = 0;
            while j0 + NR <= n {
                let mut p0 = 0;
                loop {
                    let kc = (k - p0).min(KC);
                    pack_panel_cols(b, &mut panel, p0, kc, n, j0);
                    let mut r0 = 0;
                    while r0 < rows {
                        let tile_rows = (rows - r0).min(MR);
                        tn_micro_arm(arm, a, &panel, c, i0, r0, tile_rows, j0, p0, kc, m, n);
                        r0 += tile_rows;
                    }
                    p0 += kc;
                    if p0 >= k {
                        break;
                    }
                }
                j0 += NR;
            }
            if j0 < n {
                naive::tn_cols(a, b, c, i0, rows, m, k, n, j0);
            }
        });
    }

    /// Dispatches one `tn` register tile to the selected arm (bit-identical
    /// either way).
    #[allow(clippy::too_many_arguments)]
    fn tn_micro_arm(
        arm: SimdArm,
        a: &[f32],
        panel: &[f32],
        c: &mut [f32],
        i0: usize,
        r0: usize,
        rows: usize,
        j0: usize,
        p0: usize,
        kc: usize,
        m: usize,
        n: usize,
    ) {
        match arm {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the Avx2 arm is only handed out when runtime detection
            // reported AVX2 support.
            SimdArm::Avx2 => unsafe {
                simd::tn_micro_avx2(a, panel, c, i0, r0, rows, j0, p0, kc, m, n)
            },
            _ => tn_micro(a, panel, c, i0, r0, rows, j0, p0, kc, m, n),
        }
    }

    /// `MR × NR` register tile of the `tn` kernel over the k-chunk
    /// `[p0, p0 + kc)`. `r0` indexes into the local `c` block; `i0 + r0` is
    /// the global output row (the lhs column). Load/accumulate/store like
    /// [`nn_micro`], so k-chunking preserves the op sequence bit for bit.
    #[allow(clippy::too_many_arguments)]
    fn tn_micro(
        a: &[f32],
        panel: &[f32],
        c: &mut [f32],
        i0: usize,
        r0: usize,
        rows: usize,
        j0: usize,
        p0: usize,
        kc: usize,
        m: usize,
        n: usize,
    ) {
        let mut acc = [[0.0f32; NR]; MR];
        for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
            acc_r.copy_from_slice(&c[(r0 + r) * n + j0..(r0 + r) * n + j0 + NR]);
        }
        for p in 0..kc {
            let bp = &panel[p * NR..(p + 1) * NR];
            for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
                let a_pi = a[(p0 + p) * m + i0 + r0 + r];
                if a_pi == 0.0 {
                    continue; // same skip as the naive p-outer kernel
                }
                for (o, &bv) in acc_r.iter_mut().zip(bp) {
                    *o += a_pi * bv;
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate().take(rows) {
            c[(r0 + r) * n + j0..(r0 + r) * n + j0 + NR].copy_from_slice(acc_r);
        }
    }
}

/// Reduced-precision serving kernels: the `nn` walk of [`naive`]/[`tiled`]
/// with every multiply-accumulate replaced by a **fused** `mul_add`.
///
/// Fusion skips the intermediate rounding of `acc + a·b`, so results differ
/// from the exact kernels by at most the accumulated rounding delta — but
/// both `f32::mul_add` and `_mm256_fmadd_ps` are *correctly rounded* fused
/// ops, so the fast kernels are still fully deterministic: the scalar
/// fallback and the AVX2+FMA arm produce identical bits, and the tiled and
/// untiled paths replay the same per-element ascending-`p` fused-op
/// sequence (the `KC` store/load round-trip is exact), so shape-based
/// dispatch is invisible too. The `nt` flavour is *defined* as the `nn`
/// walk over a packed transpose of `b` (see [`nt_fast_block`][self]) — a
/// direct fused dot chain would serialise on FMA latency. On targets
/// without hardware FMA the scalar `mul_add` falls back to a (slow, still
/// correctly-rounded) software fma — that arm is the correctness
/// reference, not a fast path.
///
/// Only the forward-serving flavours exist (`nn`, `nt`); training and
/// backward passes always run the exact kernels.
pub mod fast {
    use super::{should_par, simd, tiled_worthwhile, SimdArm, KC, MR, NR};
    use crate::workspace;

    /// Fast `c[m,n] += a[m,k] · b[k,n]`: row-partitioned and tiled like the
    /// exact [`super::matmul_nn_into`], fused accumulation, padding-row
    /// skip preserved.
    pub fn matmul_nn_fast_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        let arm = simd::active_arm();
        if should_par(m * k * n, m) {
            super::par_rows(a, c, k, n, |a_rows, c_rows, rows| {
                nn_fast_block(arm, a_rows, b, c_rows, rows, k, n)
            });
        } else {
            nn_fast_block(arm, a, b, c, m, k, n);
        }
    }

    /// Fast `c[m,n] += a[m,k] · b[n,k]ᵀ`, row-partitioned like the exact
    /// [`super::matmul_nt_into`] and computed as the fast `nn` walk over a
    /// packed transpose of `b` (see [`nt_fast_block`][self]).
    pub fn matmul_nt_fast_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), n * k);
        debug_assert_eq!(c.len(), m * n);
        let arm = simd::active_arm();
        if should_par(m * k * n, m) {
            super::par_rows(a, c, k, n, |a_rows, c_rows, rows| {
                nt_fast_block(arm, a_rows, b, c_rows, rows, k, n)
            });
        } else {
            nt_fast_block(arm, a, b, c, m, k, n);
        }
    }

    /// Serial fast `nn` on an explicit arm — the test hook proving both
    /// dispatch arms produce identical bits.
    pub fn matmul_nn_fast_into_arm(
        arm: SimdArm,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        nn_fast_block(arm, a, b, c, m, k, n);
    }

    /// Serial fast `nt` on an explicit arm (test hook).
    pub fn matmul_nt_fast_into_arm(
        arm: SimdArm,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        nt_fast_block(arm, a, b, c, m, k, n);
    }

    fn nn_fast_block(
        arm: SimdArm,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        if tiled_worthwhile(m, k, n) {
            tiled_nn_fast(arm, a, b, c, m, k, n);
        } else {
            nn_cols_fast(a, b, c, m, k, n, 0);
        }
    }

    /// Fast `nt` = fast `nn` over a workspace-packed transpose of `b`.
    ///
    /// A direct fused `nt` walk is one serial `mul_add` dot chain per
    /// output element — every step consumes the previous accumulator, so
    /// the element is FMA-*latency*-bound, and measured slower than the
    /// exact separate-mul-add kernel. Transposing `b` once (`k·n` writes,
    /// amortised over `m·k·n` fused flops) turns the walk into the `nn`
    /// form, whose `j` lanes are independent at unit stride and vectorise.
    /// Per output element the value is the same ascending-`p` fused chain;
    /// `c`-seeding and the zero-operand skip follow the `nn` convention,
    /// and **both** dispatch arms share this single path, so cross-arm
    /// bit-identity holds by construction.
    fn nt_fast_block(
        arm: SimdArm,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        workspace::with_thread(|ws| {
            let mut bt = ws.take(k * n);
            for (j, b_row) in b.chunks_exact(k).enumerate().take(n) {
                for (p, &v) in b_row.iter().enumerate() {
                    bt[p * n + j] = v;
                }
            }
            nn_fast_block(arm, a, &bt, c, m, k, n);
        });
    }

    /// Fused-reference `nn` restricted to output columns `[j_lo, n)` — the
    /// fast analogue of `naive::nn_cols`, and the tiled path's column tail.
    fn nn_cols_fast(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        j_lo: usize,
    ) {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n + j_lo..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue; // padding rows stay inert in the fast profile
                }
                let b_row = &b[p * n + j_lo..(p + 1) * n];
                for (c_el, &b_el) in c_row.iter_mut().zip(b_row) {
                    *c_el = a_ip.mul_add(b_el, *c_el);
                }
            }
        }
    }

    fn tiled_nn_fast(
        arm: SimdArm,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        workspace::with_thread(|ws| {
            let mut panel = ws.take(k.min(KC) * NR);
            let mut j0 = 0;
            while j0 + NR <= n {
                let mut p0 = 0;
                loop {
                    let kc = (k - p0).min(KC);
                    super::tiled::pack_panel_cols(b, &mut panel, p0, kc, n, j0);
                    let mut i0 = 0;
                    while i0 < m {
                        let rows = (m - i0).min(MR);
                        nn_micro_fast_arm(arm, a, &panel, c, i0, rows, j0, p0, kc, k, n);
                        i0 += rows;
                    }
                    p0 += kc;
                    if p0 >= k {
                        break;
                    }
                }
                j0 += NR;
            }
            if j0 < n {
                nn_cols_fast(a, b, c, m, k, n, j0);
            }
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn nn_micro_fast_arm(
        arm: SimdArm,
        a: &[f32],
        panel: &[f32],
        c: &mut [f32],
        i0: usize,
        rows: usize,
        j0: usize,
        p0: usize,
        kc: usize,
        k: usize,
        n: usize,
    ) {
        match arm {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the Avx2 arm is only handed out when runtime detection
            // reported AVX2+FMA support.
            SimdArm::Avx2 => unsafe {
                simd::nn_micro_fast_avx2(a, panel, c, i0, rows, j0, p0, kc, k, n)
            },
            _ => nn_micro_fast(a, panel, c, i0, rows, j0, p0, kc, k, n),
        }
    }

    /// Scalar fast `nn` register tile: identical walk to `tiled::nn_micro`
    /// with fused accumulation — bit-identical to the AVX2+FMA body.
    #[allow(clippy::too_many_arguments)]
    fn nn_micro_fast(
        a: &[f32],
        panel: &[f32],
        c: &mut [f32],
        i0: usize,
        rows: usize,
        j0: usize,
        p0: usize,
        kc: usize,
        k: usize,
        n: usize,
    ) {
        let mut acc = [[0.0f32; NR]; MR];
        for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
            acc_r.copy_from_slice(&c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR]);
        }
        for p in 0..kc {
            let bp = &panel[p * NR..(p + 1) * NR];
            for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
                let a_ip = a[(i0 + r) * k + p0 + p];
                if a_ip == 0.0 {
                    continue;
                }
                for (o, &bv) in acc_r.iter_mut().zip(bp) {
                    *o = a_ip.mul_add(bv, *o);
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate().take(rows) {
            c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR].copy_from_slice(acc_r);
        }
    }
}

/// Fans `m` rows of `a`/`c` out over the global pool via
/// [`seqfm_parallel::par_units`], calling `f(a_rows, c_rows, rows)` per
/// contiguous block.
fn par_rows(
    a: &[f32],
    c: &mut [f32],
    k: usize,
    n: usize,
    f: impl Fn(&[f32], &mut [f32], usize) + Sync,
) {
    seqfm_parallel::par_units(seqfm_parallel::global(), c, n, |i0, c_rows| {
        let rows = c_rows.len() / n;
        f(&a[i0 * k..(i0 + rows) * k], c_rows, rows)
    });
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be rank 2, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, rand_tensor};

    fn t2(r: usize, c: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::d2(r, c), v.to_vec())
    }

    #[test]
    fn nn_hand_checked() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let a = t2(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t2(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = matmul_nn(&a, &b);
        assert_close(c.data(), &[19.0, 22.0, 43.0, 50.0], 1e-6);
    }

    #[test]
    fn nn_rectangular() {
        let a = t2(2, 3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let b = t2(3, 2, &[3.0, 1.0, 2.0, 1.0, 1.0, 0.0]);
        let c = matmul_nn(&a, &b);
        assert_close(c.data(), &[5.0, 1.0, 4.0, 2.0], 1e-6);
        assert_eq!(c.shape(), Shape::d2(2, 2));
    }

    #[test]
    fn nt_equals_nn_with_transposed_rhs() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 4, &(0..12).map(|x| x as f32 * 0.5).collect::<Vec<_>>());
        // Manually transpose b -> bt [4,3]
        let mut bt = vec![0.0; 12];
        for r in 0..3 {
            for c in 0..4 {
                bt[c * 3 + r] = b.data()[r * 4 + c];
            }
        }
        let bt = t2(4, 3, &bt);
        let via_nn = matmul_nn(&a, &b);
        let via_nt = matmul_nt(&a, &bt);
        assert_close(via_nn.data(), via_nt.data(), 1e-5);
    }

    #[test]
    fn tn_equals_nn_with_transposed_lhs() {
        let a = t2(3, 2, &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]); // aᵀ = [1 2 3; 4 5 6]
        let b = t2(3, 2, &[1.0, -1.0, 0.5, 2.0, 3.0, 0.0]);
        let at = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let via_tn = matmul_tn(&a, &b);
        let via_nn = matmul_nn(&at, &b);
        assert_close(via_tn.data(), via_nn.data(), 1e-5);
    }

    #[test]
    fn identity_is_noop() {
        let a = t2(3, 3, &(0..9).map(|x| x as f32).collect::<Vec<_>>());
        let mut eye = Tensor::zeros(Shape::d2(3, 3));
        for i in 0..3 {
            eye.data_mut()[i * 3 + i] = 1.0;
        }
        assert_close(matmul_nn(&a, &eye).data(), a.data(), 1e-6);
        assert_close(matmul_nn(&eye, &a).data(), a.data(), 1e-6);
    }

    #[test]
    fn tiled_kernels_match_naive_bitwise_at_serving_shapes() {
        // d = 32 and 64 with m around a candidate-expansion batch — the
        // shapes the serving path actually runs (see benches/kernels.rs).
        for &(m, k, n) in &[(100usize, 32usize, 32usize), (48, 64, 64), (37, 32, 50)] {
            let mut seed = 91;
            let a = rand_tensor(Shape::d2(m, k), &mut seed);
            let b = rand_tensor(Shape::d2(k, n), &mut seed);
            let bt = rand_tensor(Shape::d2(n, k), &mut seed);
            let at = rand_tensor(Shape::d2(k, m), &mut seed);
            let mut got = vec![0.5f32; m * n]; // non-zero: accumulation must match too
            let mut want = vec![0.5f32; m * n];
            tiled::matmul_nn_into(a.data(), b.data(), &mut got, m, k, n);
            naive::matmul_nn_into(a.data(), b.data(), &mut want, m, k, n);
            assert_eq!(got, want, "nn {m}x{k}x{n}");
            got.fill(-1.25);
            want.fill(-1.25);
            tiled::matmul_nt_into(a.data(), bt.data(), &mut got, m, k, n);
            naive::matmul_nt_into(a.data(), bt.data(), &mut want, m, k, n);
            assert_eq!(got, want, "nt {m}x{k}x{n}");
            got.fill(0.0);
            want.fill(0.0);
            tiled::matmul_tn_into(at.data(), b.data(), &mut got, m, k, n);
            naive::matmul_tn_into(at.data(), b.data(), &mut want, m, k, n);
            assert_eq!(got, want, "tn {m}x{k}x{n}");
        }
    }

    #[test]
    fn tiled_preserves_the_padding_row_skip_semantics() {
        // A zero row in `a` must be skipped, not multiplied — with an inf in
        // `b`, skipping yields finite output while multiplying would give
        // NaN. Bit-identity demands the tiled path skip exactly like naive.
        let (m, k, n) = (8usize, 4usize, 16usize);
        let a = vec![0.0f32; m * k]; // all padding rows
        let mut b = vec![1.0f32; k * n];
        b[5] = f32::INFINITY;
        let mut got = vec![2.0f32; m * n];
        let mut want = vec![2.0f32; m * n];
        tiled::matmul_nn_into(&a, &b, &mut got, m, k, n);
        naive::matmul_nn_into(&a, &b, &mut want, m, k, n);
        assert_eq!(got, want);
        assert!(got.iter().all(|v| v.is_finite()), "zero-skip lost: {got:?}");
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn nn_rejects_mismatch() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(2, 2));
        let _ = matmul_nn(&a, &b);
    }

    #[test]
    #[should_panic(expected = "must be rank 2")]
    fn nn_rejects_rank3() {
        let a = Tensor::zeros(Shape::d3(1, 2, 3));
        let b = Tensor::zeros(Shape::d2(3, 2));
        let _ = matmul_nn(&a, &b);
    }
}
