//! Explicit AVX2/FMA micro-kernel bodies, runtime SIMD dispatch, and the
//! reduced-precision (`f16` / fast-`exp`) primitives behind the serving
//! fast profile.
//!
//! ## Two kinds of kernels, two guarantees
//!
//! * **SIMD-exact** bodies (`nn_micro_avx2`, `nt_micro_avx2`,
//!   `tn_micro_avx2`) vectorise the register-tile lane loop of the tiled
//!   matmul micro-kernels with *separate* `_mm256_mul_ps` + `_mm256_add_ps`
//!   — one rounding per multiply and one per add, exactly like the scalar
//!   `*o += a_ip * bv`. Vector lanes are independent output elements, so
//!   the per-element f32 op sequence is unchanged and results are
//!   **bit-identical** to the scalar tiled kernels (and therefore to the
//!   naive reference). They exist so a binary compiled for baseline
//!   `x86-64` still gets AVX2 throughput at runtime, without giving up a
//!   single bit of reproducibility.
//!
//! * **Fast** bodies (`*_fast_avx2`) use `_mm256_fmadd_ps`. Fusion skips
//!   the intermediate rounding, so results differ from the exact kernels —
//!   but hardware FMA and [`f32::mul_add`] are both *correctly rounded*
//!   fused ops, so the fast kernels are **bit-identical across dispatch
//!   arms**: the AVX2 arm and the scalar `mul_add` fallback produce the
//!   same bits on every input. Determinism survives; only exactness
//!   relative to the two-rounding reference is traded away.
//!
//! ## Runtime dispatch
//!
//! [`active_arm`] picks the arm once per process: AVX2+FMA when the CPU
//! reports them (`is_x86_feature_detected!`), scalar otherwise — and scalar
//! unconditionally when the environment sets `SEQFM_SIMD=scalar`, which is
//! how CI keeps the fallback arm parity-tested on AVX2 hosts. Kernels
//! accept an explicit [`SimdArm`] in their `_arm` variants so tests can
//! drive both arms in one process regardless of the cached choice.
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::{
    __m256, _mm256_add_epi32, _mm256_add_ps, _mm256_andnot_ps, _mm256_castsi256_ps, _mm256_cmp_ps,
    _mm256_cvtph_ps, _mm256_cvtps_epi32, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_max_ps,
    _mm256_min_ps, _mm256_mul_ps, _mm256_set1_epi32, _mm256_set1_ps, _mm256_setzero_ps,
    _mm256_slli_epi32, _mm256_storeu_ps, _mm256_sub_ps, _mm_loadu_si128, _CMP_EQ_OQ,
};

/// Register-tile height shared with the tiled matmul kernels.
pub(crate) const MR: usize = super::matmul::MR;
/// Register-tile width shared with the tiled matmul kernels (two 8-wide
/// AVX vectors).
pub(crate) const NR: usize = super::matmul::NR;

/// Which instruction-set arm a kernel dispatches to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdArm {
    /// Hand-written AVX2 (+FMA for the fast kernels) micro-kernel bodies.
    Avx2,
    /// Portable scalar bodies — the reference arm, and the only arm on
    /// non-x86_64 targets or when `SEQFM_SIMD=scalar` is set.
    Scalar,
}

/// CPU capabilities probed once per process.
struct Caps {
    avx2_fma: bool,
    f16c: bool,
}

fn caps() -> &'static Caps {
    static CAPS: OnceLock<Caps> = OnceLock::new();
    CAPS.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            Caps {
                avx2_fma: std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma"),
                f16c: std::arch::is_x86_feature_detected!("f16c"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Caps { avx2_fma: false, f16c: false }
        }
    })
}

/// `true` when the running CPU supports AVX2 **and** FMA, independent of
/// the `SEQFM_SIMD` override — the raw detection result, for tests that
/// want to exercise the AVX2 arm explicitly.
pub fn avx2_available() -> bool {
    caps().avx2_fma
}

/// The dispatch arm every kernel uses by default, resolved once per
/// process: [`SimdArm::Avx2`] iff the CPU supports AVX2+FMA and the
/// environment does **not** set `SEQFM_SIMD=scalar`.
pub fn active_arm() -> SimdArm {
    static ARM: OnceLock<SimdArm> = OnceLock::new();
    *ARM.get_or_init(|| {
        let forced_scalar = std::env::var_os("SEQFM_SIMD").is_some_and(|v| v == "scalar");
        if !forced_scalar && avx2_available() {
            SimdArm::Avx2
        } else {
            SimdArm::Scalar
        }
    })
}

// ---------------------------------------------------------------------------
// SIMD-exact micro-kernel bodies (separate mul + add; bit-identical to the
// scalar tiled micros).
// ---------------------------------------------------------------------------

/// Loads the 16 lanes of one packed-panel row as two AVX vectors.
///
/// # Safety
/// Caller must be executing with AVX2 available (enforced by the enclosing
/// `#[target_feature]` kernels) and `bp` must have at least [`NR`] elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn load16(bp: &[f32]) -> (__m256, __m256) {
    debug_assert!(bp.len() >= NR);
    // SAFETY: `bp` holds at least NR = 16 f32s, so both unaligned 8-lane
    // loads are in bounds.
    unsafe { (_mm256_loadu_ps(bp.as_ptr()), _mm256_loadu_ps(bp.as_ptr().add(8))) }
}

/// `acc_r[t] += a_ip * bp[t]` over 16 lanes, one rounding per mul and one
/// per add — the exact scalar op sequence, vectorised across lanes.
///
/// # Safety
/// Caller must be executing with AVX2 available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn madd16_exact(acc_r: &mut [f32; NR], a_ip: f32, b0: __m256, b1: __m256) {
    let va = _mm256_set1_ps(a_ip);
    let p = acc_r.as_mut_ptr();
    // SAFETY: `acc_r` is exactly NR = 16 f32s; both 8-lane load/store pairs
    // stay in bounds.
    unsafe {
        let acc0 = _mm256_loadu_ps(p);
        let acc1 = _mm256_loadu_ps(p.add(8));
        _mm256_storeu_ps(p, _mm256_add_ps(acc0, _mm256_mul_ps(va, b0)));
        _mm256_storeu_ps(p.add(8), _mm256_add_ps(acc1, _mm256_mul_ps(va, b1)));
    }
}

/// AVX2 body of the tiled `nn` micro-kernel over the k-chunk
/// `[p0, p0 + kc)` — same tile walk, same ascending-`p` accumulation, same
/// padding-row skip as the scalar `nn_micro`; bit-identical output.
///
/// # Safety
/// The CPU must support AVX2 (callers go through [`active_arm`] /
/// [`avx2_available`]). Slice bounds are checked like the scalar kernel's.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn nn_micro_avx2(
    a: &[f32],
    panel: &[f32],
    c: &mut [f32],
    i0: usize,
    rows: usize,
    j0: usize,
    p0: usize,
    kc: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
        acc_r.copy_from_slice(&c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR]);
    }
    for p in 0..kc {
        let bp = &panel[p * NR..(p + 1) * NR];
        // SAFETY: `bp` is exactly NR floats; AVX2 is enabled on this fn.
        let (b0, b1) = unsafe { load16(bp) };
        for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
            let a_ip = a[(i0 + r) * k + p0 + p];
            if a_ip == 0.0 {
                continue; // same padding-row skip as the scalar kernel
            }
            // SAFETY: `acc_r` is an NR-float array; AVX2 is enabled.
            unsafe { madd16_exact(acc_r, a_ip, b0, b1) };
        }
    }
    for (r, acc_r) in acc.iter().enumerate().take(rows) {
        c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR].copy_from_slice(acc_r);
    }
}

/// AVX2 body of the tiled `nt` micro-kernel — zero-initialised accumulators
/// over the full depth, added into `c` once, exactly like the scalar
/// `nt_micro`; bit-identical output.
///
/// # Safety
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn nt_micro_avx2(
    a: &[f32],
    panel: &[f32],
    c: &mut [f32],
    i0: usize,
    rows: usize,
    j0: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let bp = &panel[p * NR..(p + 1) * NR];
        // SAFETY: `bp` is exactly NR floats; AVX2 is enabled on this fn.
        let (b0, b1) = unsafe { load16(bp) };
        for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
            let a_ip = a[(i0 + r) * k + p];
            // SAFETY: `acc_r` is an NR-float array; AVX2 is enabled.
            unsafe { madd16_exact(acc_r, a_ip, b0, b1) };
        }
    }
    for (r, acc_r) in acc.iter().enumerate().take(rows) {
        let c_row = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR];
        for (c_el, &v) in c_row.iter_mut().zip(acc_r) {
            *c_el += v;
        }
    }
}

/// AVX2 body of the tiled `tn` micro-kernel over the k-chunk
/// `[p0, p0 + kc)` — mirrors the scalar `tn_micro` walk and skip;
/// bit-identical output.
///
/// # Safety
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn tn_micro_avx2(
    a: &[f32],
    panel: &[f32],
    c: &mut [f32],
    i0: usize,
    r0: usize,
    rows: usize,
    j0: usize,
    p0: usize,
    kc: usize,
    m: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
        acc_r.copy_from_slice(&c[(r0 + r) * n + j0..(r0 + r) * n + j0 + NR]);
    }
    for p in 0..kc {
        let bp = &panel[p * NR..(p + 1) * NR];
        // SAFETY: `bp` is exactly NR floats; AVX2 is enabled on this fn.
        let (b0, b1) = unsafe { load16(bp) };
        for (r, acc_r) in acc.iter_mut().enumerate().take(rows) {
            let a_pi = a[(p0 + p) * m + i0 + r0 + r];
            if a_pi == 0.0 {
                continue; // same skip as the scalar p-outer kernel
            }
            // SAFETY: `acc_r` is an NR-float array; AVX2 is enabled.
            unsafe { madd16_exact(acc_r, a_pi, b0, b1) };
        }
    }
    for (r, acc_r) in acc.iter().enumerate().take(rows) {
        c[(r0 + r) * n + j0..(r0 + r) * n + j0 + NR].copy_from_slice(acc_r);
    }
}

// ---------------------------------------------------------------------------
// Fast (FMA) micro-kernel bodies — bit-identical to the scalar `mul_add`
// fallback, not to the exact kernels.
// ---------------------------------------------------------------------------

/// AVX2+FMA body of the fast `nn` micro-kernel over the k-chunk
/// `[p0, p0 + kc)`.
///
/// Dispatches `rows` to a `ROWS`-monomorphised tile body so the
/// accumulators live in YMM registers for the whole k-chunk. The
/// memory-array form the exact kernels use round-trips every accumulator
/// through the stack on each `p` step; for separate mul+add the reload
/// hides behind the multiply, but an FMA consumes the accumulator directly,
/// so there the store-forward latency lands on the critical path — measured
/// ~30% *slower* than the exact kernel until the accumulators stay
/// register-resident.
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn nn_micro_fast_avx2(
    a: &[f32],
    panel: &[f32],
    c: &mut [f32],
    i0: usize,
    rows: usize,
    j0: usize,
    p0: usize,
    kc: usize,
    k: usize,
    n: usize,
) {
    // SAFETY (each arm): AVX2+FMA are enabled on this fn; `rows ≤ MR` by
    // the tiled drivers' construction, and the tile body checks its own
    // slice bounds.
    match rows {
        1 => unsafe { nn_fast_tile::<1>(a, panel, c, i0, j0, p0, kc, k, n) },
        2 => unsafe { nn_fast_tile::<2>(a, panel, c, i0, j0, p0, kc, k, n) },
        3 => unsafe { nn_fast_tile::<3>(a, panel, c, i0, j0, p0, kc, k, n) },
        4 => unsafe { nn_fast_tile::<4>(a, panel, c, i0, j0, p0, kc, k, n) },
        5 => unsafe { nn_fast_tile::<5>(a, panel, c, i0, j0, p0, kc, k, n) },
        _ => unsafe { nn_fast_tile::<MR>(a, panel, c, i0, j0, p0, kc, k, n) },
    }
}

/// `ROWS × NR` register tile of the fast `nn` kernel: load `c`, fuse-add
/// ascending `p`, store — the same per-element op sequence as the scalar
/// `nn_micro_fast`, with `ROWS` a compile-time constant so the `2·ROWS`
/// accumulator vectors (≤ 12, plus `b0`/`b1`/broadcast = 15 of 16 YMM)
/// never spill.
///
/// # Safety
/// The CPU must support AVX2 and FMA; `ROWS` tile rows starting at `i0`
/// must be in bounds for `a` and `c`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn nn_fast_tile<const ROWS: usize>(
    a: &[f32],
    panel: &[f32],
    c: &mut [f32],
    i0: usize,
    j0: usize,
    p0: usize,
    kc: usize,
    k: usize,
    n: usize,
) {
    let mut lo = [_mm256_setzero_ps(); ROWS];
    let mut hi = [_mm256_setzero_ps(); ROWS];
    for r in 0..ROWS {
        let row = &c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR];
        // SAFETY: `row` holds exactly NR = 16 floats.
        unsafe {
            lo[r] = _mm256_loadu_ps(row.as_ptr());
            hi[r] = _mm256_loadu_ps(row.as_ptr().add(8));
        }
    }
    for p in 0..kc {
        let bp = &panel[p * NR..(p + 1) * NR];
        // SAFETY: `bp` is exactly NR floats; AVX2 is enabled on this fn.
        let (b0, b1) = unsafe { load16(bp) };
        for r in 0..ROWS {
            let a_ip = a[(i0 + r) * k + p0 + p];
            if a_ip == 0.0 {
                continue; // padding rows stay inert in the fast profile too
            }
            let va = _mm256_set1_ps(a_ip);
            lo[r] = _mm256_fmadd_ps(va, b0, lo[r]);
            hi[r] = _mm256_fmadd_ps(va, b1, hi[r]);
        }
    }
    for r in 0..ROWS {
        let row = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR];
        // SAFETY: `row` holds exactly NR = 16 floats.
        unsafe {
            _mm256_storeu_ps(row.as_mut_ptr(), lo[r]);
            _mm256_storeu_ps(row.as_mut_ptr().add(8), hi[r]);
        }
    }
}

/// Fast score block against a **pre-transposed** key pack:
/// `w[r·cols + j] = Σ_p q[r·d + p] · kt[p·cols + j]`, every element the
/// seeded-zero ascending-`p` fused chain of the scalar fast kernels.
///
/// Where the matmul micro-kernels tile for cache reuse, this kernel exists
/// for *latency*: a scalar score chain is one serial FMA dependency per
/// element, so a handful of long rows (the structured cross-attention
/// shape — 2 static rows against tens of history columns) runs at FMA
/// latency, not throughput. Walking `kt` column-major puts 8 score chains
/// in each vector lane-set (unit stride, one load shared by two query
/// rows), and because lanes are independent elements the per-element op
/// sequence — and its bits — is exactly the scalar chain's. Column tails
/// fall back to the scalar chain itself.
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn scores_colmajor_fast_avx2(
    q: &[f32],
    kt: &[f32],
    w: &mut [f32],
    rows: usize,
    cols: usize,
    d: usize,
) {
    assert!(q.len() >= rows * d, "scores_colmajor_fast_avx2: q too small");
    assert!(kt.len() >= d * cols, "scores_colmajor_fast_avx2: kt too small");
    assert!(w.len() >= rows * cols, "scores_colmajor_fast_avx2: w too small");
    let mut j = 0;
    while j + 8 <= cols {
        let mut r = 0;
        while r + 2 <= rows {
            let q0 = &q[r * d..(r + 1) * d];
            let q1 = &q[(r + 1) * d..(r + 2) * d];
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            for p in 0..d {
                // SAFETY: `p < d`, `j + 8 ≤ cols`, and `kt` holds ≥ d·cols
                // floats, so the 8-lane load at `p·cols + j` is in bounds;
                // AVX2+FMA are enabled on this fn.
                let kv = unsafe { _mm256_loadu_ps(kt.as_ptr().add(p * cols + j)) };
                acc0 = _mm256_fmadd_ps(_mm256_set1_ps(q0[p]), kv, acc0);
                acc1 = _mm256_fmadd_ps(_mm256_set1_ps(q1[p]), kv, acc1);
            }
            // SAFETY: `r + 1 < rows`, `j + 8 ≤ cols`, and `w` holds
            // ≥ rows·cols floats, so both 8-lane stores are in bounds.
            unsafe {
                _mm256_storeu_ps(w.as_mut_ptr().add(r * cols + j), acc0);
                _mm256_storeu_ps(w.as_mut_ptr().add((r + 1) * cols + j), acc1);
            }
            r += 2;
        }
        if r < rows {
            let q0 = &q[r * d..(r + 1) * d];
            let mut acc = _mm256_setzero_ps();
            for (p, &q0p) in q0.iter().enumerate() {
                // SAFETY: as above — the load at `p·cols + j` is in bounds.
                let kv = unsafe { _mm256_loadu_ps(kt.as_ptr().add(p * cols + j)) };
                acc = _mm256_fmadd_ps(_mm256_set1_ps(q0p), kv, acc);
            }
            // SAFETY: `r < rows` and `j + 8 ≤ cols` keep the store in bounds.
            unsafe { _mm256_storeu_ps(w.as_mut_ptr().add(r * cols + j), acc) };
        }
        j += 8;
    }
    // Column tail (`cols % 8`): the scalar serial chain, element for element.
    for r in 0..rows {
        for jj in j..cols {
            let mut acc = 0.0f32;
            for p in 0..d {
                acc = q[r * d + p].mul_add(kt[p * cols + jj], acc);
            }
            w[r * cols + jj] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// f16 storage (bit-cast half precision, f32 compute).
// ---------------------------------------------------------------------------

/// Converts one f32 to IEEE-754 binary16 bits, round-to-nearest-even — the
/// single deterministic encoder used when building `FrozenParamsFast`
/// snapshots.
pub fn f16_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 255 {
        // Inf / NaN: keep the top payload bits, force quiet for NaN.
        return if mant == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00 | ((mant >> 13) as u16 & 0x1ff)
        };
    }
    let e = exp - 127;
    if e > 15 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if e >= -14 {
        // Normal f16: round the 23-bit mantissa to 10 bits, ties to even.
        let lsb = (mant >> 13) & 1;
        let round = (mant >> 12) & 1;
        let sticky = (mant & 0x0fff) != 0;
        let mut m10 = mant >> 13;
        if round == 1 && (sticky || lsb == 1) {
            m10 += 1;
        }
        let mut e5 = (e + 15) as u32;
        if m10 == 0x400 {
            m10 = 0;
            e5 += 1;
            if e5 >= 31 {
                return sign | 0x7c00;
            }
        }
        return sign | ((e5 as u16) << 10) | (m10 as u16);
    }
    if e < -25 {
        return sign; // underflow → ±0
    }
    // Subnormal f16: shift the full significand down to the 2⁻²⁴ ulp grid,
    // rounding ties to even. A carry out of the 10-bit field lands exactly
    // on the smallest normal encoding.
    let m_full = mant | 0x0080_0000;
    let shift = (13 + (-14 - e)) as u32;
    let lsb = (m_full >> shift) & 1;
    let round = (m_full >> (shift - 1)) & 1;
    let sticky = (m_full & ((1u32 << (shift - 1)) - 1)) != 0;
    let mut m10 = m_full >> shift;
    if round == 1 && (sticky || lsb == 1) {
        m10 += 1;
    }
    sign | (m10 as u16)
}

/// Decodes IEEE-754 binary16 bits to f32. Exact: every finite f16 value is
/// representable in f32, so this is the inverse-free direction — software
/// decode and the F16C `vcvtph2ps` hardware path agree bit for bit.
pub fn f32_from_f16(h: u16) -> f32 {
    let sign32 = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x3ff) as u32;
    match exp {
        0 => {
            // ±0 and subnormals: mant · 2⁻²⁴, computed exactly in f32.
            let mag = (mant as f32) * f32::from_bits(0x3380_0000); // 2⁻²⁴
            f32::from_bits(sign32 | mag.to_bits())
        }
        31 => {
            if mant == 0 {
                f32::from_bits(sign32 | 0x7f80_0000)
            } else {
                // NaN: shift the payload up, keep it quiet (matches F16C).
                f32::from_bits(sign32 | 0x7fc0_0000 | (mant << 13))
            }
        }
        _ => f32::from_bits(sign32 | ((exp + 112) << 23) | (mant << 13)),
    }
}

/// Widens a slice of f16 bits into f32, taking the hardware F16C path when
/// available (bit-identical to the software decode for all finite values —
/// both are exact).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn widen_f16(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "widen_f16 length mismatch");
    #[cfg(target_arch = "x86_64")]
    if caps().f16c && active_arm() == SimdArm::Avx2 {
        // SAFETY: the running CPU reports F16C (and AVX, implied by the
        // AVX2 check inside `active_arm`).
        unsafe { widen_f16_f16c(src, dst) };
        return;
    }
    for (d, &h) in dst.iter_mut().zip(src) {
        *d = f32_from_f16(h);
    }
}

/// Hardware-widening body of [`widen_f16`]: 8 halves per `vcvtph2ps`.
///
/// # Safety
/// The CPU must support F16C and AVX. `src` and `dst` must be equal length
/// (asserted by the caller).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,f16c")]
unsafe fn widen_f16_f16c(src: &[u16], dst: &mut [f32]) {
    let chunks = src.len() / 8;
    for i in 0..chunks {
        // SAFETY: `i < len / 8`, so the 8-halfword load and the 8-float
        // store are both in bounds.
        unsafe {
            let h = _mm_loadu_si128(src.as_ptr().add(i * 8).cast());
            _mm256_storeu_ps(dst.as_mut_ptr().add(i * 8), _mm256_cvtph_ps(h));
        }
    }
    for j in chunks * 8..src.len() {
        dst[j] = f32_from_f16(src[j]);
    }
}

// ---------------------------------------------------------------------------
// Fast exponential — the fast profile's softmax primitive.
// ---------------------------------------------------------------------------

// Shared constants of the fast exponential: the scalar [`exp_fast`] and the
// 8-lane [`exp_fast8`] bodies must run the *same* chain on the same
// constants, or the fast profile's cross-arm bit-identity breaks.
const EXP_LOG2E: f32 = std::f32::consts::LOG2_E;
// High bits of ln 2 — written out in full because the literal is exactly
// representable (355/512), which is what makes `n·LN2_HI` exact for small n.
#[allow(clippy::excessive_precision)]
const EXP_LN2_HI: f32 = 0.693_359_375;
const EXP_LN2_LO: f32 = -2.121_944_4e-4;
/// 1.5·2²³: adding it forces round-to-nearest-even at integer precision.
const EXP_SHIFTER: f32 = 12_582_912.0;
// Degree-5 Taylor of eʳ on |r| ≤ ln2/2 + ε; error ~ r⁶/720 ≲ 2.5·10⁻⁶.
const EXP_C5: f32 = 1.0 / 120.0;
const EXP_C4: f32 = 1.0 / 24.0;
const EXP_C3: f32 = 1.0 / 6.0;
const EXP_C2: f32 = 0.5;

/// Fast `eˣ` for the reduced-precision profile: degree-5 polynomial on the
/// reduced argument with power-of-two reconstruction. Max relative error
/// ≈ 3·10⁻⁶ over the softmax range (inputs ≤ 0 after max-subtraction) —
/// far inside the fast profile's f16-dominated ε budget.
///
/// Every step is a plain f32 op or [`f32::mul_add`] (correctly-rounded
/// fused), so the result is deterministic and identical on every dispatch
/// arm and target.
pub fn exp_fast(x: f32) -> f32 {
    let x = x.clamp(-87.0, 88.0);
    let t = x.mul_add(EXP_LOG2E, EXP_SHIFTER);
    let n = t - EXP_SHIFTER; // round(x · log₂e), ties to even
                             // Two-term Cody–Waite reduction keeps r accurate near chunk boundaries.
    let r = n.mul_add(-EXP_LN2_HI, x);
    let r = n.mul_add(-EXP_LN2_LO, r);
    let p = EXP_C5
        .mul_add(r, EXP_C4)
        .mul_add(r, EXP_C3)
        .mul_add(r, EXP_C2)
        .mul_add(r, 1.0)
        .mul_add(r, 1.0);
    // 2ⁿ via exponent-field construction: n ∈ [-126, 127] after the clamp.
    let scale = f32::from_bits(((n as i32 + 127) as u32) << 23);
    p * scale
}

/// 8-lane AVX2+FMA body of [`exp_fast`]. Every step is the correctly-
/// rounded vector counterpart of the scalar op (`_mm256_fmadd_ps` ≡
/// [`f32::mul_add`]; `_mm256_cvtps_epi32` rounds to nearest, which equals
/// the scalar `n as i32` because `n` is already integral), so each lane is
/// **bit-identical** to `exp_fast` of that lane's input. The only
/// divergence is a NaN input (min/max vs. `clamp` ordering), which the
/// softmax contract excludes — scores are finite or `−∞`.
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn exp_fast8(x: __m256) -> __m256 {
    let x = _mm256_max_ps(_mm256_min_ps(x, _mm256_set1_ps(88.0)), _mm256_set1_ps(-87.0));
    let shifter = _mm256_set1_ps(EXP_SHIFTER);
    let t = _mm256_fmadd_ps(x, _mm256_set1_ps(EXP_LOG2E), shifter);
    let n = _mm256_sub_ps(t, shifter);
    let r = _mm256_fmadd_ps(n, _mm256_set1_ps(-EXP_LN2_HI), x);
    let r = _mm256_fmadd_ps(n, _mm256_set1_ps(-EXP_LN2_LO), r);
    let p = _mm256_fmadd_ps(_mm256_set1_ps(EXP_C5), r, _mm256_set1_ps(EXP_C4));
    let p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_C3));
    let p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_C2));
    let p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0));
    let p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0));
    let e = _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127));
    let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(e));
    _mm256_mul_ps(p, scale)
}

/// Vectorised exp pass of the fast softmax: overwrites each `x[i]` with
/// `exp_fast(v − max)` where `v = x[i] (+ mask[i])`, and with exactly
/// `+0.0` where `v == −∞` (the blocked-entry contract the retrieval
/// bounds rely on). The remainder (`len mod 8`) runs the scalar chain,
/// which is bit-identical per lane to [`exp_fast8`], so the whole pass
/// matches the scalar-arm loop bit for bit.
///
/// # Safety
/// The CPU must support AVX2 and FMA. `mask`, when present, must be at
/// least as long as `x`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn softmax_exp_pass_avx2(x: &mut [f32], mask: Option<&[f32]>, max: f32) {
    if let Some(m) = mask {
        assert!(m.len() >= x.len(), "softmax exp pass: mask shorter than row");
    }
    let len = x.len();
    let vmax = _mm256_set1_ps(max);
    let neg_inf = _mm256_set1_ps(f32::NEG_INFINITY);
    let mut off = 0usize;
    while off + 8 <= len {
        // SAFETY: `off + 8 ≤ len` and the mask is at least as long as `x`
        // (asserted above), so the 8-lane loads and the store are in
        // bounds; AVX2+FMA are enabled on this fn.
        unsafe {
            let mut v = _mm256_loadu_ps(x.as_ptr().add(off));
            if let Some(m) = mask {
                v = _mm256_add_ps(v, _mm256_loadu_ps(m.as_ptr().add(off)));
            }
            let e = exp_fast8(_mm256_sub_ps(v, vmax));
            // Blocked lanes (v = −∞) must come out exactly +0.0, like the
            // scalar arm's explicit branch.
            let blocked = _mm256_cmp_ps::<_CMP_EQ_OQ>(v, neg_inf);
            _mm256_storeu_ps(x.as_mut_ptr().add(off), _mm256_andnot_ps(blocked, e));
        }
        off += 8;
    }
    for i in off..len {
        let v = x[i] + mask.map_or(0.0, |m| m[i]);
        x[i] = if v == f32::NEG_INFINITY { 0.0 } else { exp_fast(v - max) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_round_trip_is_exact_for_representable_values() {
        for &v in &[0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 6.103_515_6e-5] {
            let h = f16_from_f32(v);
            assert_eq!(f32_from_f16(h), v, "round trip of {v}");
        }
    }

    #[test]
    fn f16_encode_rounds_to_nearest_even() {
        // 1 + 2⁻¹¹ is exactly halfway between 1.0 and the next f16 up
        // (1 + 2⁻¹⁰); ties-to-even keeps the even mantissa (1.0).
        let halfway = 1.0f32 + f32::powi(2.0, -11);
        assert_eq!(f32_from_f16(f16_from_f32(halfway)), 1.0);
        // Just above the halfway point must round up.
        let above = 1.0f32 + f32::powi(2.0, -11) + f32::powi(2.0, -20);
        assert_eq!(f32_from_f16(f16_from_f32(above)), 1.0 + f32::powi(2.0, -10));
    }

    #[test]
    fn f16_handles_overflow_underflow_and_specials() {
        assert_eq!(f16_from_f32(1e6), 0x7c00, "overflow → +inf");
        assert_eq!(f16_from_f32(-1e6), 0xfc00, "overflow → -inf");
        assert_eq!(f16_from_f32(1e-10), 0x0000, "underflow → +0");
        assert_eq!(f16_from_f32(-1e-10), 0x8000, "underflow → -0");
        assert_eq!(f32_from_f16(f16_from_f32(f32::INFINITY)), f32::INFINITY);
        assert!(f32_from_f16(f16_from_f32(f32::NAN)).is_nan());
        // Smallest f16 subnormal decodes exactly.
        assert_eq!(f32_from_f16(0x0001), f32::powi(2.0, -24));
    }

    #[test]
    fn f16_quantisation_error_is_within_half_ulp() {
        // RNE guarantees |x − decode(encode(x))| ≤ 2⁻¹¹·|x| for normal
        // range — the bound the fast profile's ε budget is derived from.
        let mut state = 0x12345u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((state >> 40) as i32 as f32) / 8.0e6; // ~[-1, 1]
            let back = f32_from_f16(f16_from_f32(v));
            assert!(
                (back - v).abs() <= v.abs() * 4.9e-4 + 1e-8,
                "f16 error too large at {v}: {back}"
            );
        }
    }

    #[test]
    fn widen_matches_scalar_decode_bitwise() {
        let src: Vec<u16> = (0..1003).map(|i| f16_from_f32((i as f32 - 500.0) * 0.37)).collect();
        let mut fast = vec![0.0f32; src.len()];
        widen_f16(&src, &mut fast);
        for (i, (&h, &w)) in src.iter().zip(&fast).enumerate() {
            assert_eq!(w.to_bits(), f32_from_f16(h).to_bits(), "lane {i}");
        }
    }

    #[test]
    fn exp_fast_tracks_libm_exp() {
        let mut worst = 0.0f64;
        for i in 0..20_000 {
            let x = -87.0 + (i as f32) * (88.0 + 87.0) / 20_000.0;
            let got = exp_fast(x) as f64;
            let want = (x as f64).exp();
            let rel = ((got - want) / want).abs();
            if rel > worst {
                worst = rel;
            }
        }
        assert!(worst < 5e-6, "exp_fast worst relative error {worst}");
    }

    #[test]
    fn exp_fast_edges() {
        assert_eq!(exp_fast(0.0), 1.0);
        assert!(exp_fast(-200.0) > 0.0, "deep negative stays positive (clamped)");
        assert!(exp_fast(-200.0) < 1e-37);
        assert!(exp_fast(f32::NEG_INFINITY) < 1e-37, "-inf clamps to the floor");
        assert!(exp_fast(1000.0).is_finite(), "clamp keeps overflow finite");
    }

    /// Runs [`exp_fast8`] over `xs` in 8-lane chunks (callers guarantee the
    /// lengths are equal multiples of 8).
    ///
    /// # Safety
    /// The CPU must support AVX2 and FMA.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn run_exp8(xs: &[f32], out: &mut [f32]) {
        for (chunk, o) in xs.chunks_exact(8).zip(out.chunks_exact_mut(8)) {
            // SAFETY: both chunks are exactly 8 lanes; AVX2+FMA are enabled
            // on this fn.
            unsafe {
                let v = _mm256_loadu_ps(chunk.as_ptr());
                _mm256_storeu_ps(o.as_mut_ptr(), exp_fast8(v));
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn exp_fast8_lanes_match_scalar_bitwise() {
        if !avx2_available() {
            return;
        }
        // Sweep past both clamp edges, plus −∞ (which the clamp floors).
        let mut xs: Vec<f32> = (0..4000).map(|i| -95.0 + i as f32 * 0.047).collect();
        xs[0] = f32::NEG_INFINITY;
        let mut out = vec![0.0f32; xs.len()];
        // SAFETY: AVX2+FMA verified above.
        unsafe { run_exp8(&xs, &mut out) };
        for (i, (&x, &got)) in xs.iter().zip(&out).enumerate() {
            assert_eq!(got.to_bits(), exp_fast(x).to_bits(), "lane {i} at x = {x}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn softmax_exp_pass_matches_scalar_loop_bitwise() {
        if !avx2_available() {
            return;
        }
        // 22 elements: two full vector chunks plus a 6-wide scalar tail —
        // the serving row width, with blocked entries in both regions.
        let n = 22usize;
        let x0: Vec<f32> = (0..n).map(|i| ((i * 29) % 13) as f32 * 0.37 - 2.0).collect();
        let mut mask = vec![0.0f32; n];
        for &i in &[1usize, 7, 12, 20] {
            mask[i] = f32::NEG_INFINITY;
        }
        let max = 1.5f32;
        let mut expect = x0.clone();
        for (i, slot) in expect.iter_mut().enumerate() {
            let v = *slot + mask[i];
            *slot = if v == f32::NEG_INFINITY { 0.0 } else { exp_fast(v - max) };
        }
        let mut got = x0.clone();
        // SAFETY: AVX2+FMA verified above; mask and row are equal length.
        unsafe { softmax_exp_pass_avx2(&mut got, Some(&mask), max) };
        for i in 0..n {
            assert_eq!(got[i].to_bits(), expect[i].to_bits(), "element {i}");
            if mask[i] == f32::NEG_INFINITY {
                assert_eq!(got[i].to_bits(), 0.0f32.to_bits(), "blocked {i} must be +0.0");
            }
        }
        // Unmasked variant exercises the `mask = None` path.
        let mut got2 = x0.clone();
        // SAFETY: as above.
        unsafe { softmax_exp_pass_avx2(&mut got2, None, max) };
        for (i, (&g, &x)) in got2.iter().zip(&x0).enumerate() {
            assert_eq!(g.to_bits(), exp_fast(x - max).to_bits(), "unmasked element {i}");
        }
    }

    #[test]
    fn active_arm_is_stable_and_consistent_with_detection() {
        let arm = active_arm();
        assert_eq!(arm, active_arm(), "cached arm must not change");
        if arm == SimdArm::Avx2 {
            assert!(avx2_available());
        }
    }
}
