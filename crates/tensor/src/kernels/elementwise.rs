//! Elementwise kernels and in-place accumulation helpers.

use crate::Tensor;

/// `a + b` elementwise.
///
/// # Panics
/// Panics on shape mismatch.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x + y)
}

/// `a - b` elementwise.
///
/// # Panics
/// Panics on shape mismatch.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x - y)
}

/// `a * b` elementwise (Hadamard product).
///
/// # Panics
/// Panics on shape mismatch.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    a.zip(b, |x, y| x * y)
}

/// `a * s` elementwise.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// In-place `acc += x` (same shape).
///
/// # Panics
/// Panics on shape mismatch.
pub fn add_assign(acc: &mut Tensor, x: &Tensor) {
    assert!(
        acc.shape().same(&x.shape()),
        "add_assign shape mismatch: {} vs {}",
        acc.shape(),
        x.shape()
    );
    for (a, &b) in acc.data_mut().iter_mut().zip(x.data()) {
        *a += b;
    }
}

/// In-place `acc += s * x` (same shape). The classic `axpy`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn axpy(acc: &mut Tensor, s: f32, x: &Tensor) {
    assert!(acc.shape().same(&x.shape()), "axpy shape mismatch: {} vs {}", acc.shape(), x.shape());
    for (a, &b) in acc.data_mut().iter_mut().zip(x.data()) {
        *a += s * b;
    }
}

/// Adds a rank-1 bias `b[d]` to every length-`d` row of `x` (rank 2 or 3 with
/// last dimension `d`).
///
/// # Panics
/// Panics if `b` is not rank 1 or `x.last_dim() != b.len()`.
pub fn add_bias(x: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(b.shape().rank(), 1, "bias must be rank 1, got {}", b.shape());
    let d = b.numel();
    assert_eq!(x.shape().last_dim(), d, "bias dim {d} does not match last dim of {}", x.shape());
    let mut out = x.clone();
    for row in out.data_mut().chunks_exact_mut(d) {
        for (o, &bv) in row.iter_mut().zip(b.data()) {
            *o += bv;
        }
    }
    out
}

/// Sums each length-`d` row of `x` into a rank-1 accumulator (the backward
/// pass of [`add_bias`]).
///
/// # Panics
/// Panics if `acc.len()` does not equal `x.last_dim()`.
pub fn accumulate_rows(acc: &mut [f32], x: &Tensor) {
    let d = x.shape().last_dim();
    assert_eq!(acc.len(), d, "accumulator len {} != last dim of {}", acc.len(), x.shape());
    for row in x.data().chunks_exact(d) {
        for (a, &v) in acc.iter_mut().zip(row) {
            *a += v;
        }
    }
}

/// Rectified linear unit.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Logistic sigmoid, numerically stable for large `|x|`.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(sigmoid_scalar)
}

/// Stable scalar sigmoid.
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Stable scalar softplus `ln(1 + e^x) = max(x, 0) + ln(1 + e^{-|x|})`.
pub fn softplus_scalar(x: f32) -> f32 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_close;
    use crate::{Shape, Tensor};

    #[test]
    fn basic_arithmetic() {
        let a = Tensor::vector(vec![1.0, -2.0, 3.0]);
        let b = Tensor::vector(vec![0.5, 0.5, 0.5]);
        assert_close(add(&a, &b).data(), &[1.5, -1.5, 3.5], 1e-6);
        assert_close(sub(&a, &b).data(), &[0.5, -2.5, 2.5], 1e-6);
        assert_close(mul(&a, &b).data(), &[0.5, -1.0, 1.5], 1e-6);
        assert_close(scale(&a, 2.0).data(), &[2.0, -4.0, 6.0], 1e-6);
    }

    #[test]
    fn in_place_accumulation() {
        let mut acc = Tensor::vector(vec![1.0, 1.0]);
        let x = Tensor::vector(vec![2.0, 3.0]);
        add_assign(&mut acc, &x);
        assert_close(acc.data(), &[3.0, 4.0], 1e-6);
        axpy(&mut acc, -2.0, &x);
        assert_close(acc.data(), &[-1.0, -2.0], 1e-6);
    }

    #[test]
    fn bias_broadcast_rank2_and_rank3() {
        let x2 = Tensor::from_vec(Shape::d2(2, 3), vec![0.0; 6]);
        let b = Tensor::vector(vec![1.0, 2.0, 3.0]);
        let y = add_bias(&x2, &b);
        assert_close(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0], 1e-6);

        let x3 = Tensor::from_vec(Shape::d3(2, 2, 3), vec![10.0; 12]);
        let y3 = add_bias(&x3, &b);
        assert_eq!(y3.at3(1, 1, 2), 13.0);
    }

    #[test]
    fn accumulate_rows_is_bias_backward() {
        let x = Tensor::from_vec(Shape::d2(3, 2), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut acc = vec![0.0; 2];
        accumulate_rows(&mut acc, &x);
        assert_close(&acc, &[9.0, 12.0], 1e-6);
    }

    #[test]
    fn stable_sigmoid_and_softplus() {
        assert!((sigmoid_scalar(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid_scalar(100.0) <= 1.0);
        assert!(sigmoid_scalar(-100.0) >= 0.0);
        assert!(sigmoid_scalar(-100.0) < 1e-30);
        // softplus(0) = ln 2
        assert!((softplus_scalar(0.0) - std::f32::consts::LN_2).abs() < 1e-6);
        // softplus(x) ~ x for large x; finite for very negative x
        assert!((softplus_scalar(50.0) - 50.0).abs() < 1e-3);
        assert!(softplus_scalar(-80.0) >= 0.0);
        assert!(softplus_scalar(-80.0).is_finite());
    }

    #[test]
    fn relu_clamps_negative() {
        let x = Tensor::vector(vec![-1.0, 0.0, 2.0]);
        assert_close(relu(&x).data(), &[0.0, 0.0, 2.0], 1e-6);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_assign_shape_checked() {
        let mut a = Tensor::zeros(Shape::d1(2));
        let b = Tensor::zeros(Shape::d1(3));
        add_assign(&mut a, &b);
    }
}
