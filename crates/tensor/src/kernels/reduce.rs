//! Reduction kernels (sums / means over an axis) and their adjoints.
//!
//! The paper's intra-view pooling (Eq. 14) is `mean_axis1` over the stacked
//! per-feature interaction vectors; the linear term and the loss heads need
//! `sum_lastdim` / scalar reductions.
//!
//! Every reduction exists as a tensor-allocating wrapper **and** a raw-slice
//! `_into` kernel. The wrappers are convenience for cold paths; hot callers
//! (the autograd tape, whose output buffers come from its workspace pool)
//! go through the `_into` kernels so reducing never allocates.

use crate::{Shape, Tensor};

/// Mean over axis 1 of a rank-3 tensor: `[b, n, d] → [b, d]`.
///
/// # Panics
/// Panics if `x` is not rank 3.
pub fn mean_axis1(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().rank(), 3, "mean_axis1 expects rank 3, got {}", x.shape());
    let (b, n, d) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let mut out = Tensor::zeros(Shape::d2(b, d));
    mean_axis1_into(x.data(), out.data_mut(), b, n, d);
    out
}

/// Raw slice kernel of [`mean_axis1`]: `out[b, d] = mean over n of
/// x[b, n, d]`. Overwrites `out`.
pub fn mean_axis1_into(x: &[f32], out: &mut [f32], b: usize, n: usize, d: usize) {
    sum_axis1_into(x, out, b, n, d);
    // A division per element, not a multiply by the reciprocal — identical
    // arithmetic to the historical `sum_axis1(x).map(|v| v / n)` wrapper.
    let n = n as f32;
    for o in out[..b * d].iter_mut() {
        *o /= n;
    }
}

/// Sum over axis 1 of a rank-3 tensor: `[b, n, d] → [b, d]`.
///
/// # Panics
/// Panics if `x` is not rank 3.
pub fn sum_axis1(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().rank(), 3, "sum_axis1 expects rank 3, got {}", x.shape());
    let (b, n, d) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let mut out = Tensor::zeros(Shape::d2(b, d));
    sum_axis1_into(x.data(), out.data_mut(), b, n, d);
    out
}

/// Raw slice kernel of [`sum_axis1`]: `out[b, d] = Σₙ x[b, n, d]`.
/// Overwrites `out` (zeroes it first).
pub fn sum_axis1_into(x: &[f32], out: &mut [f32], b: usize, n: usize, d: usize) {
    debug_assert!(x.len() >= b * n * d);
    let out = &mut out[..b * d];
    out.fill(0.0);
    for bi in 0..b {
        let o = &mut out[bi * d..(bi + 1) * d];
        for r in 0..n {
            let row = &x[(bi * n + r) * d..(bi * n + r + 1) * d];
            for (ov, &v) in o.iter_mut().zip(row) {
                *ov += v;
            }
        }
    }
}

/// Adjoint of [`sum_axis1`]: broadcasts `dy [b, d]` back to `[b, n, d]`,
/// scaling each copy by `scale` (use `1/n` for the mean).
///
/// # Panics
/// Panics if `dy` is not rank 2.
pub fn broadcast_axis1(dy: &Tensor, n: usize, scale: f32) -> Tensor {
    assert_eq!(dy.shape().rank(), 2, "broadcast_axis1 expects rank 2, got {}", dy.shape());
    let (b, d) = (dy.shape().dim(0), dy.shape().dim(1));
    let mut out = Tensor::zeros(Shape::d3(b, n, d));
    broadcast_axis1_into(dy.data(), out.data_mut(), b, n, d, scale);
    out
}

/// Raw slice kernel of [`broadcast_axis1`]: expands `dy [b, d]` into
/// `out [b, n, d]`, scaling each copy. Overwrites `out`.
pub fn broadcast_axis1_into(dy: &[f32], out: &mut [f32], b: usize, n: usize, d: usize, scale: f32) {
    debug_assert!(dy.len() >= b * d);
    debug_assert!(out.len() >= b * n * d);
    for bi in 0..b {
        let src = &dy[bi * d..(bi + 1) * d];
        for r in 0..n {
            let dst = &mut out[(bi * n + r) * d..(bi * n + r + 1) * d];
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = v * scale;
            }
        }
    }
}

/// Sum over the last dimension, reducing rank by one:
/// `[b, d] → [b]` or `[b, n, d] → [b, n]`.
///
/// # Panics
/// Panics if `x` is rank 1 (use [`Tensor::sum`] instead).
pub fn sum_lastdim(x: &Tensor) -> Tensor {
    let d = x.shape().last_dim();
    let out_shape = match x.shape().rank() {
        2 => Shape::d1(x.shape().dim(0)),
        3 => Shape::d2(x.shape().dim(0), x.shape().dim(1)),
        r => panic!("sum_lastdim expects rank 2 or 3, got rank {r}"),
    };
    let mut out = Tensor::zeros(out_shape);
    sum_lastdim_into(x.data(), out.data_mut(), d);
    out
}

/// Raw slice kernel of [`sum_lastdim`]: each length-`d` row of `x` sums
/// into one slot of `out` (`out.len() · d == x.len()`). Overwrites `out`.
pub fn sum_lastdim_into(x: &[f32], out: &mut [f32], d: usize) {
    debug_assert_eq!(out.len() * d, x.len());
    for (o, row) in out.iter_mut().zip(x.chunks_exact(d)) {
        *o = row.iter().sum();
    }
}

/// Adjoint of [`sum_lastdim`]: expands `dy` (rank r−1) back to `shape`
/// (rank r) by repeating each entry `last_dim` times.
///
/// # Panics
/// Panics if `dy.numel() * shape.last_dim() != shape.numel()`.
pub fn expand_lastdim(dy: &Tensor, shape: Shape) -> Tensor {
    let d = shape.last_dim();
    assert_eq!(
        dy.numel() * d,
        shape.numel(),
        "expand_lastdim: {} cannot expand to {shape}",
        dy.shape()
    );
    let mut out = Tensor::zeros(shape);
    expand_lastdim_into(dy.data(), out.data_mut(), d);
    out
}

/// Raw slice kernel of [`expand_lastdim`]: repeats each `dy` entry over a
/// length-`d` row of `out`. Overwrites `out`.
pub fn expand_lastdim_into(dy: &[f32], out: &mut [f32], d: usize) {
    debug_assert_eq!(dy.len() * d, out.len());
    for (row, &v) in out.chunks_exact_mut(d).zip(dy) {
        row.fill(v);
    }
}

/// Scalar mean of all elements, as a `[1]` tensor.
pub fn mean_all(x: &Tensor) -> Tensor {
    Tensor::scalar(x.mean())
}

/// Scalar sum of all elements, as a `[1]` tensor.
pub fn sum_all(x: &Tensor) -> Tensor {
    Tensor::scalar(x.sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_close;

    #[test]
    fn mean_and_sum_axis1() {
        let x = Tensor::from_vec(Shape::d3(1, 3, 2), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_close(sum_axis1(&x).data(), &[9.0, 12.0], 1e-6);
        assert_close(mean_axis1(&x).data(), &[3.0, 4.0], 1e-6);
    }

    #[test]
    fn broadcast_is_sum_adjoint() {
        // <broadcast(dy), x> must equal <dy, sum(x)> (adjoint property).
        let x = Tensor::from_vec(Shape::d3(2, 2, 2), (0..8).map(|v| v as f32).collect());
        let dy = Tensor::from_vec(Shape::d2(2, 2), vec![0.5, -1.0, 2.0, 0.25]);
        let lhs: f32 =
            broadcast_axis1(&dy, 2, 1.0).data().iter().zip(x.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = dy.data().iter().zip(sum_axis1(&x).data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn sum_lastdim_ranks() {
        let x2 = Tensor::from_vec(Shape::d2(2, 3), (1..=6).map(|v| v as f32).collect());
        assert_close(sum_lastdim(&x2).data(), &[6.0, 15.0], 1e-6);
        let x3 = Tensor::from_vec(Shape::d3(1, 2, 2), vec![1.0, 1.0, 2.0, 3.0]);
        let y = sum_lastdim(&x3);
        assert_eq!(y.shape(), Shape::d2(1, 2));
        assert_close(y.data(), &[2.0, 5.0], 1e-6);
    }

    #[test]
    fn expand_is_sum_lastdim_adjoint() {
        let shape = Shape::d2(2, 3);
        let x = Tensor::from_vec(shape, (0..6).map(|v| v as f32 - 2.0).collect());
        let dy = Tensor::vector(vec![1.5, -0.5]);
        let lhs: f32 =
            expand_lastdim(&dy, shape).data().iter().zip(x.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = dy.data().iter().zip(sum_lastdim(&x).data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn into_variants_overwrite_stale_buffers() {
        // The _into kernels are fed recycled workspace buffers; leftover
        // values must never survive.
        let x = Tensor::from_vec(Shape::d3(1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let mut out = vec![9.0f32; 4];
        sum_axis1_into(x.data(), &mut out[..2], 1, 2, 2);
        assert_close(&out[..2], &[4.0, 6.0], 1e-6);
        mean_axis1_into(x.data(), &mut out[..2], 1, 2, 2);
        assert_close(&out[..2], &[2.0, 3.0], 1e-6);
        broadcast_axis1_into(&[1.0, 2.0], &mut out, 1, 2, 2, 0.5);
        assert_close(&out, &[0.5, 1.0, 0.5, 1.0], 1e-6);
        sum_lastdim_into(&[1.0, 2.0, 3.0, 4.0], &mut out[..2], 2);
        assert_close(&out[..2], &[3.0, 7.0], 1e-6);
        expand_lastdim_into(&[2.0, -1.0], &mut out, 2);
        assert_close(&out, &[2.0, 2.0, -1.0, -1.0], 1e-6);
    }

    #[test]
    fn scalar_reductions() {
        let x = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        assert_close(sum_all(&x).data(), &[10.0], 1e-6);
        assert_close(mean_all(&x).data(), &[2.5], 1e-6);
    }
}
