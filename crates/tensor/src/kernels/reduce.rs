//! Reduction kernels (sums / means over an axis) and their adjoints.
//!
//! The paper's intra-view pooling (Eq. 14) is `mean_axis1` over the stacked
//! per-feature interaction vectors; the linear term and the loss heads need
//! `sum_lastdim` / scalar reductions.

use crate::{Shape, Tensor};

/// Mean over axis 1 of a rank-3 tensor: `[b, n, d] → [b, d]`.
///
/// # Panics
/// Panics if `x` is not rank 3.
pub fn mean_axis1(x: &Tensor) -> Tensor {
    let s = sum_axis1(x);
    let n = x.shape().dim(1) as f32;
    s.map(|v| v / n)
}

/// Sum over axis 1 of a rank-3 tensor: `[b, n, d] → [b, d]`.
///
/// # Panics
/// Panics if `x` is not rank 3.
pub fn sum_axis1(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().rank(), 3, "sum_axis1 expects rank 3, got {}", x.shape());
    let (b, n, d) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let mut out = Tensor::zeros(Shape::d2(b, d));
    for bi in 0..b {
        let o = &mut out.data_mut()[bi * d..(bi + 1) * d];
        for r in 0..n {
            let row = &x.data()[(bi * n + r) * d..(bi * n + r + 1) * d];
            for (ov, &v) in o.iter_mut().zip(row) {
                *ov += v;
            }
        }
    }
    out
}

/// Adjoint of [`sum_axis1`]: broadcasts `dy [b, d]` back to `[b, n, d]`,
/// scaling each copy by `scale` (use `1/n` for the mean).
///
/// # Panics
/// Panics if `dy` is not rank 2.
pub fn broadcast_axis1(dy: &Tensor, n: usize, scale: f32) -> Tensor {
    assert_eq!(dy.shape().rank(), 2, "broadcast_axis1 expects rank 2, got {}", dy.shape());
    let (b, d) = (dy.shape().dim(0), dy.shape().dim(1));
    let mut out = Tensor::zeros(Shape::d3(b, n, d));
    for bi in 0..b {
        let src = &dy.data()[bi * d..(bi + 1) * d];
        for r in 0..n {
            let dst = &mut out.data_mut()[(bi * n + r) * d..(bi * n + r + 1) * d];
            for (o, &v) in dst.iter_mut().zip(src) {
                *o = v * scale;
            }
        }
    }
    out
}

/// Sum over the last dimension, reducing rank by one:
/// `[b, d] → [b]` or `[b, n, d] → [b, n]`.
///
/// # Panics
/// Panics if `x` is rank 1 (use [`Tensor::sum`] instead).
pub fn sum_lastdim(x: &Tensor) -> Tensor {
    let d = x.shape().last_dim();
    let out_shape = match x.shape().rank() {
        2 => Shape::d1(x.shape().dim(0)),
        3 => Shape::d2(x.shape().dim(0), x.shape().dim(1)),
        r => panic!("sum_lastdim expects rank 2 or 3, got rank {r}"),
    };
    let mut out = Tensor::zeros(out_shape);
    for (o, row) in out.data_mut().iter_mut().zip(x.data().chunks_exact(d)) {
        *o = row.iter().sum();
    }
    out
}

/// Adjoint of [`sum_lastdim`]: expands `dy` (rank r−1) back to `shape`
/// (rank r) by repeating each entry `last_dim` times.
///
/// # Panics
/// Panics if `dy.numel() * shape.last_dim() != shape.numel()`.
pub fn expand_lastdim(dy: &Tensor, shape: Shape) -> Tensor {
    let d = shape.last_dim();
    assert_eq!(
        dy.numel() * d,
        shape.numel(),
        "expand_lastdim: {} cannot expand to {shape}",
        dy.shape()
    );
    let mut out = Tensor::zeros(shape);
    for (row, &v) in out.data_mut().chunks_exact_mut(d).zip(dy.data()) {
        row.fill(v);
    }
    out
}

/// Scalar mean of all elements, as a `[1]` tensor.
pub fn mean_all(x: &Tensor) -> Tensor {
    Tensor::scalar(x.mean())
}

/// Scalar sum of all elements, as a `[1]` tensor.
pub fn sum_all(x: &Tensor) -> Tensor {
    Tensor::scalar(x.sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_close;

    #[test]
    fn mean_and_sum_axis1() {
        let x = Tensor::from_vec(Shape::d3(1, 3, 2), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_close(sum_axis1(&x).data(), &[9.0, 12.0], 1e-6);
        assert_close(mean_axis1(&x).data(), &[3.0, 4.0], 1e-6);
    }

    #[test]
    fn broadcast_is_sum_adjoint() {
        // <broadcast(dy), x> must equal <dy, sum(x)> (adjoint property).
        let x = Tensor::from_vec(Shape::d3(2, 2, 2), (0..8).map(|v| v as f32).collect());
        let dy = Tensor::from_vec(Shape::d2(2, 2), vec![0.5, -1.0, 2.0, 0.25]);
        let lhs: f32 =
            broadcast_axis1(&dy, 2, 1.0).data().iter().zip(x.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = dy.data().iter().zip(sum_axis1(&x).data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn sum_lastdim_ranks() {
        let x2 = Tensor::from_vec(Shape::d2(2, 3), (1..=6).map(|v| v as f32).collect());
        assert_close(sum_lastdim(&x2).data(), &[6.0, 15.0], 1e-6);
        let x3 = Tensor::from_vec(Shape::d3(1, 2, 2), vec![1.0, 1.0, 2.0, 3.0]);
        let y = sum_lastdim(&x3);
        assert_eq!(y.shape(), Shape::d2(1, 2));
        assert_close(y.data(), &[2.0, 5.0], 1e-6);
    }

    #[test]
    fn expand_is_sum_lastdim_adjoint() {
        let shape = Shape::d2(2, 3);
        let x = Tensor::from_vec(shape, (0..6).map(|v| v as f32 - 2.0).collect());
        let dy = Tensor::vector(vec![1.5, -0.5]);
        let lhs: f32 =
            expand_lastdim(&dy, shape).data().iter().zip(x.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = dy.data().iter().zip(sum_lastdim(&x).data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn scalar_reductions() {
        let x = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        assert_close(sum_all(&x).data(), &[10.0], 1e-6);
        assert_close(mean_all(&x).data(), &[2.5], 1e-6);
    }
}
