//! Numerically-stable (masked) softmax over the last dimension.
//!
//! This is the attention-weight primitive of SeqFM's three views:
//!
//! * static view — plain softmax (paper Eq. 8);
//! * dynamic view — additive causal mask `m˙ᵢⱼ = 0 if i ≥ j else −∞`
//!   (Eq. 9–10);
//! * cross view — additive mask permitting only static↔dynamic interactions
//!   (Eq. 11–13).
//!
//! Masks are represented by [`AttnMask`], a plain `[n, m]` matrix of additive
//! terms (`0.0` = allowed, `f32::NEG_INFINITY` = blocked) shared across the
//! batch dimension. Rows that are *entirely* blocked softmax to all-zeros
//! rather than NaN, which keeps fully-masked padding rows inert.

use crate::Tensor;

/// An additive attention mask over score matrices of shape `[n, m]`.
///
/// Stored densely; entries are either `0.0` (interaction allowed) or
/// `f32::NEG_INFINITY` (interaction blocked), exactly as written in the
/// paper's Eq. (10) and Eq. (13).
#[derive(Clone, PartialEq)]
pub struct AttnMask {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl AttnMask {
    /// An all-allowed mask (equivalent to no mask).
    pub fn allow_all(rows: usize, cols: usize) -> Self {
        AttnMask { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Causal mask for the dynamic view: position `i` may attend to `j ≤ i`.
    ///
    /// Paper Eq. (10): `m˙ᵢⱼ = 0 if i ≥ j, −∞ otherwise`.
    pub fn causal(n: usize) -> Self {
        let mut m = Self::allow_all(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                m.data[i * n + j] = f32::NEG_INFINITY;
            }
        }
        m
    }

    /// Cross-view mask over the stacked `[n° + n˙]` features: only
    /// static↔dynamic interactions are allowed.
    ///
    /// Paper Eq. (13): `m*ᵢⱼ = 0 if i ≤ n° < j or j ≤ n° < i, −∞ otherwise`
    /// (with 1-based indices in the paper; this constructor is 0-based).
    pub fn cross(n_static: usize, n_dynamic: usize) -> Self {
        let n = n_static + n_dynamic;
        let mut m = Self::allow_all(n, n);
        for i in 0..n {
            for j in 0..n {
                let cross = (i < n_static) != (j < n_static);
                if !cross {
                    m.data[i * n + j] = f32::NEG_INFINITY;
                }
            }
        }
        m
    }

    /// Number of rows (query positions).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (key positions).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Additive mask entries, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// `true` if entry `(i, j)` is blocked.
    pub fn is_blocked(&self, i: usize, j: usize) -> bool {
        self.data[i * self.cols + j] == f32::NEG_INFINITY
    }

    /// Additionally blocks *columns* `0..pad_len` in every row — the optional
    /// padding-mask extension (not part of the paper's formulation; see
    /// DESIGN.md §3). Rows that become fully blocked produce all-zero softmax
    /// output.
    pub fn block_leading_cols(&mut self, pad_len: usize) {
        let p = pad_len.min(self.cols);
        for i in 0..self.rows {
            for j in 0..p {
                self.data[i * self.cols + j] = f32::NEG_INFINITY;
            }
        }
    }
}

/// Softmax over the last dimension of a rank-2 or rank-3 tensor.
pub fn softmax_lastdim(x: &Tensor) -> Tensor {
    softmax_impl(x, None)
}

/// Masked softmax over the last dimension.
///
/// For rank-3 input `[b, n, m]` the mask must be `[n, m]` and is shared by all
/// batch slices; for rank-2 input `[n, m]` it applies directly.
///
/// # Panics
/// Panics if the mask dimensions do not match the trailing dimensions of `x`.
pub fn softmax_lastdim_masked(x: &Tensor, mask: &AttnMask) -> Tensor {
    let (n, m) = trailing_dims(x);
    assert_eq!(
        (mask.rows(), mask.cols()),
        (n, m),
        "mask [{}x{}] does not match trailing dims of {}",
        mask.rows(),
        mask.cols(),
        x.shape()
    );
    softmax_impl(x, Some(mask))
}

fn trailing_dims(x: &Tensor) -> (usize, usize) {
    let s = x.shape();
    match s.rank() {
        2 => (s.dim(0), s.dim(1)),
        3 => (s.dim(1), s.dim(2)),
        r => panic!("softmax expects rank 2 or 3, got rank {r} ({s})"),
    }
}

fn softmax_impl(x: &Tensor, mask: Option<&AttnMask>) -> Tensor {
    let m = x.shape().last_dim();
    let rows_per_slice = match x.shape().rank() {
        2 => x.shape().dim(0),
        3 => x.shape().dim(1),
        r => panic!("softmax expects rank 2 or 3, got rank {r}"),
    };
    let mut out = Tensor::zeros(x.shape());
    softmax_rows_into(x.data(), m, rows_per_slice, mask, out.data_mut());
    out
}

/// In-place variant of [`softmax_row`] — identical arithmetic in identical
/// order, for callers that own the row buffer (see `kernels::attention`).
pub(crate) fn softmax_row_inplace(x: &mut [f32], mask: Option<&[f32]>) {
    let mut max = f32::NEG_INFINITY;
    for (i, &v) in x.iter().enumerate() {
        let v = v + mask.map_or(0.0, |m| m[i]);
        if v > max {
            max = v;
        }
    }
    if max == f32::NEG_INFINITY {
        x.fill(0.0);
        return;
    }
    let mut sum = 0.0f32;
    for (i, slot) in x.iter_mut().enumerate() {
        let v = *slot + mask.map_or(0.0, |m| m[i]);
        let e = if v == f32::NEG_INFINITY { 0.0 } else { (v - max).exp() };
        *slot = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in x.iter_mut() {
        *o *= inv;
    }
}

/// Fast-profile variant of [`softmax_row_inplace`]: identical structure
/// (max-subtraction, fully-masked rows → zeros, blocked entries → exactly
/// `0.0`) with `libm` `exp` replaced by the deterministic polynomial
/// [`crate::kernels::simd::exp_fast`].
///
/// Keeping blocked entries *exactly* zero is load-bearing for retrieval:
/// the pruning bounds treat attention output as a convex combination of
/// value rows, which holds for any positive weights that sum to 1 — and it
/// only takes masked weights being exactly 0 (not merely tiny) for the
/// combination to range over the *allowed* rows alone.
pub(crate) fn softmax_row_inplace_fast(x: &mut [f32], mask: Option<&[f32]>) {
    let mut max = f32::NEG_INFINITY;
    for (i, &v) in x.iter().enumerate() {
        let v = v + mask.map_or(0.0, |m| m[i]);
        if v > max {
            max = v;
        }
    }
    if max == f32::NEG_INFINITY {
        x.fill(0.0);
        return;
    }
    fast_exp_pass(x, mask, max);
    // Serial ascending sum over the stored e values — the same addition
    // order as the scalar arm's interleaved `sum += e`, so both arms agree
    // bit for bit.
    let mut sum = 0.0f32;
    for &e in x.iter() {
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in x.iter_mut() {
        *o *= inv;
    }
}

/// The exp pass of the fast softmax — `x[i] ← exp_fast(v − max)` with
/// blocked entries (`v = −∞`) set to exactly `+0.0` — dispatched on the
/// active SIMD arm. Both arms produce identical bits: each 8-wide lane of
/// [`crate::kernels::simd::softmax_exp_pass_avx2`] runs the scalar
/// `exp_fast` op chain (see its docs).
fn fast_exp_pass(x: &mut [f32], mask: Option<&[f32]>, max: f32) {
    // Short rows (e.g. the cross view's ns-wide softmaxes) take the scalar
    // loop on every arm — the vector body would run zero 8-lane chunks, and
    // the scalar chain is bit-identical to it anyway.
    #[cfg(target_arch = "x86_64")]
    if x.len() >= 8 && crate::kernels::simd::active_arm() == crate::kernels::simd::SimdArm::Avx2 {
        // SAFETY: the Avx2 arm is only selected when the CPU reports
        // AVX2+FMA; the mask (when present) matches the row length.
        unsafe { crate::kernels::simd::softmax_exp_pass_avx2(x, mask, max) };
        return;
    }
    for (i, slot) in x.iter_mut().enumerate() {
        let v = *slot + mask.map_or(0.0, |m| m[i]);
        *slot = if v == f32::NEG_INFINITY { 0.0 } else { crate::kernels::simd::exp_fast(v - max) };
    }
}

/// Fast softmax of an unmasked two-entry row, returned as a pair. Runs the
/// exact op sequence [`softmax_row_inplace_fast`] runs on a maskless
/// length-2 row (max scan, scalar `exp_fast`, ascending sum, one
/// reciprocal) — so results are bit-identical to the row kernel, without
/// the per-call slice machinery. Callers inline it in per-pair hot loops
/// (the cross view's `ns = 2` rows, the static pair kernel).
pub(crate) fn softmax2_fast(a: f32, b: f32) -> (f32, f32) {
    let max = if b > a { b } else { a };
    let ea = crate::kernels::simd::exp_fast(a - max);
    let eb = crate::kernels::simd::exp_fast(b - max);
    let inv = 1.0 / (ea + eb);
    (ea * inv, eb * inv)
}

/// Stable masked softmax of a single row. Fully-masked rows yield all zeros.
fn softmax_row(x: &[f32], mask: Option<&[f32]>, out: &mut [f32]) {
    let mut max = f32::NEG_INFINITY;
    for (i, &v) in x.iter().enumerate() {
        let v = v + mask.map_or(0.0, |m| m[i]);
        if v > max {
            max = v;
        }
    }
    if max == f32::NEG_INFINITY {
        out.fill(0.0);
        return;
    }
    let mut sum = 0.0f32;
    for (i, &v) in x.iter().enumerate() {
        let v = v + mask.map_or(0.0, |m| m[i]);
        let e = if v == f32::NEG_INFINITY { 0.0 } else { (v - max).exp() };
        out[i] = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// Out-buffer variant of [`softmax_lastdim`] / [`softmax_lastdim_masked`]
/// operating on raw slices — the inference hot path, where the caller owns a
/// reusable scratch buffer and wants zero allocations.
///
/// `x` holds `rows_per_slice`-row slices of width `m` (any number of batch
/// slices); the optional mask is `[rows_per_slice, m]` and shared across
/// slices, exactly as in the tensor-level functions.
///
/// # Panics
/// Panics if lengths disagree or the mask dims do not match.
pub fn softmax_rows_into(
    x: &[f32],
    m: usize,
    rows_per_slice: usize,
    mask: Option<&AttnMask>,
    out: &mut [f32],
) {
    assert_eq!(x.len(), out.len(), "softmax_rows_into length mismatch");
    assert_eq!(x.len() % m, 0, "softmax_rows_into: input not a multiple of row width {m}");
    if let Some(mk) = mask {
        assert_eq!(
            (mk.rows(), mk.cols()),
            (rows_per_slice, m),
            "mask [{}x{}] does not match rows_per_slice {rows_per_slice} x width {m}",
            mk.rows(),
            mk.cols()
        );
    }
    let rows = x.len().checked_div(m).unwrap_or(0);
    // exp dominates a softmax row — weight the op estimate accordingly so
    // modest score matrices still clear the fan-out threshold.
    if super::dispatch::should_par(x.len() * 16, rows) {
        seqfm_parallel::par_units(seqfm_parallel::global(), out, m, |r0, out_rows| {
            let x_rows = &x[r0 * m..r0 * m + out_rows.len()];
            softmax_rows(x_rows, m, rows_per_slice, mask, out_rows, r0)
        });
    } else {
        softmax_rows(x, m, rows_per_slice, mask, out, 0);
    }
}

/// Softmaxes a contiguous block of rows whose first row has global index
/// `r0` (the mask is indexed by *global* row modulo `rows_per_slice`).
fn softmax_rows(
    x: &[f32],
    m: usize,
    rows_per_slice: usize,
    mask: Option<&AttnMask>,
    out: &mut [f32],
    r0: usize,
) {
    for (ri, (row_in, row_out)) in x.chunks_exact(m).zip(out.chunks_exact_mut(m)).enumerate() {
        let mask_row = mask.map(|mk| {
            let r = (r0 + ri) % rows_per_slice;
            &mk.data()[r * m..(r + 1) * m]
        });
        softmax_row(row_in, mask_row, row_out);
    }
}

/// Backward pass of [`softmax_lastdim`] / [`softmax_lastdim_masked`]:
/// given the softmax output `y` and upstream gradient `dy`, returns
/// `dx = y ⊙ (dy − Σⱼ dyⱼ·yⱼ)` per row. The mask needs no special handling
/// because blocked positions have `y = 0`.
///
/// # Panics
/// Panics if `y` and `dy` shapes differ.
pub fn softmax_backward_lastdim(y: &Tensor, dy: &Tensor) -> Tensor {
    assert!(
        y.shape().same(&dy.shape()),
        "softmax backward shape mismatch: {} vs {}",
        y.shape(),
        dy.shape()
    );
    let mut out = Tensor::zeros(y.shape());
    softmax_backward_into(y.data(), dy.data(), out.data_mut(), y.shape().last_dim());
    out
}

/// Raw slice kernel of [`softmax_backward_lastdim`]: rows of width `m`.
/// Overwrites `out` — the autograd tape feeds it pooled gradient buffers.
pub fn softmax_backward_into(y: &[f32], dy: &[f32], out: &mut [f32], m: usize) {
    debug_assert_eq!(y.len(), dy.len());
    debug_assert_eq!(y.len(), out.len());
    for ((yr, dyr), or) in y.chunks_exact(m).zip(dy.chunks_exact(m)).zip(out.chunks_exact_mut(m)) {
        let dot: f32 = yr.iter().zip(dyr).map(|(&a, &b)| a * b).sum();
        for ((&yv, &dyv), o) in yr.iter().zip(dyr).zip(or.iter_mut()) {
            *o = yv * (dyv - dot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::assert_close;
    use crate::Shape;

    #[test]
    fn rows_sum_to_one() {
        let x = Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let y = softmax_lastdim(&x);
        for r in 0..2 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn hand_checked_values() {
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![0.0, (2.0f32).ln()]);
        let y = softmax_lastdim(&x);
        assert_close(y.data(), &[1.0 / 3.0, 2.0 / 3.0], 1e-5);
    }

    #[test]
    fn shift_invariance() {
        let x = Tensor::from_vec(Shape::d2(1, 4), vec![0.1, 1.5, -2.0, 0.7]);
        let xs = x.map(|v| v + 1000.0);
        assert_close(softmax_lastdim(&x).data(), softmax_lastdim(&xs).data(), 1e-5);
    }

    #[test]
    fn extreme_logits_are_finite() {
        let x = Tensor::from_vec(Shape::d2(1, 3), vec![1e4, -1e4, 0.0]);
        let y = softmax_lastdim(&x);
        assert!(!y.has_non_finite());
        assert!((y.data()[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let m = AttnMask::causal(3);
        assert!(!m.is_blocked(0, 0));
        assert!(m.is_blocked(0, 1));
        assert!(m.is_blocked(0, 2));
        assert!(m.is_blocked(1, 2));
        assert!(!m.is_blocked(2, 0));
        let x = Tensor::from_vec(Shape::d2(3, 3), vec![5.0; 9]);
        let y = softmax_lastdim_masked(&x, &m);
        // Row 0 can only see position 0.
        assert_close(y.row(0), &[1.0, 0.0, 0.0], 1e-6);
        // Row 1 splits evenly over positions 0,1.
        assert_close(y.row(1), &[0.5, 0.5, 0.0], 1e-6);
        // Row 2 splits evenly over all three.
        assert_close(y.row(2), &[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0], 1e-5);
    }

    #[test]
    fn cross_mask_blocks_same_category() {
        let m = AttnMask::cross(2, 3);
        // static rows (0,1) may only attend to dynamic cols (2,3,4)
        for i in 0..2 {
            for j in 0..2 {
                assert!(m.is_blocked(i, j), "static-static ({i},{j}) should be blocked");
            }
            for j in 2..5 {
                assert!(!m.is_blocked(i, j), "static-dynamic ({i},{j}) should be open");
            }
        }
        // dynamic rows (2..5) may only attend to static cols (0,1)
        for i in 2..5 {
            for j in 0..2 {
                assert!(!m.is_blocked(i, j));
            }
            for j in 2..5 {
                assert!(m.is_blocked(i, j), "dynamic-dynamic ({i},{j}) should be blocked");
            }
        }
    }

    #[test]
    fn fully_masked_row_yields_zeros() {
        let mut m = AttnMask::causal(2);
        m.block_leading_cols(2); // now every entry of row 0 is blocked
        let x = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let y = softmax_lastdim_masked(&x, &m);
        assert_close(y.row(0), &[0.0, 0.0], 1e-6);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn rank3_shares_mask_across_batch() {
        let m = AttnMask::causal(2);
        let x = Tensor::from_vec(Shape::d3(2, 2, 2), vec![1.0; 8]);
        let y = softmax_lastdim_masked(&x, &m);
        for b in 0..2 {
            assert!((y.at3(b, 0, 0) - 1.0).abs() < 1e-6);
            assert!((y.at3(b, 0, 1)).abs() < 1e-6);
            assert!((y.at3(b, 1, 0) - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn inplace_row_matches_out_of_place_bitwise() {
        let mask_full = AttnMask::causal(4);
        for r in 0..4 {
            let x = [0.3f32, -1.7, 2.5, 0.01];
            let mrow = &mask_full.data()[r * 4..(r + 1) * 4];
            let mut expect = [0.0f32; 4];
            softmax_row(&x, Some(mrow), &mut expect);
            let mut inplace = x;
            softmax_row_inplace(&mut inplace, Some(mrow));
            assert_eq!(inplace, expect, "row {r} diverges");
        }
        // Fully-masked row → zeros on both paths.
        let mut blocked = AttnMask::causal(2);
        blocked.block_leading_cols(2);
        let mut x = [1.0f32, 2.0];
        softmax_row_inplace(&mut x, Some(&blocked.data()[0..2]));
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn fast_row_tracks_exact_and_keeps_masked_zeros() {
        let mask_full = AttnMask::causal(4);
        for r in 0..4 {
            let x = [0.3f32, -1.7, 2.5, 0.01];
            let mrow = &mask_full.data()[r * 4..(r + 1) * 4];
            let mut exact = x;
            softmax_row_inplace(&mut exact, Some(mrow));
            let mut fast = x;
            softmax_row_inplace_fast(&mut fast, Some(mrow));
            let sum: f32 = fast.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "fast row {r} sums to {sum}");
            for j in 0..4 {
                if mrow[j] == f32::NEG_INFINITY {
                    assert_eq!(fast[j], 0.0, "blocked ({r},{j}) must be exactly zero");
                } else {
                    assert!(
                        (fast[j] - exact[j]).abs() <= 1e-5,
                        "({r},{j}): {} vs {}",
                        fast[j],
                        exact[j]
                    );
                }
            }
        }
        // Fully-masked row → zeros on the fast path too.
        let mut blocked = AttnMask::causal(2);
        blocked.block_leading_cols(2);
        let mut x = [1.0f32, 2.0];
        softmax_row_inplace_fast(&mut x, Some(&blocked.data()[0..2]));
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn rows_into_matches_tensor_variant() {
        let m = AttnMask::causal(2);
        let x =
            Tensor::from_vec(Shape::d3(2, 2, 2), vec![0.3, -1.0, 2.0, 0.1, 5.0, 4.0, -2.0, 0.0]);
        let expect = softmax_lastdim_masked(&x, &m);
        let mut out = vec![0.0f32; 8];
        softmax_rows_into(x.data(), 2, 2, Some(&m), &mut out);
        assert_eq!(out, expect.data(), "masked rows_into diverges from tensor softmax");
        let expect_plain = softmax_lastdim(&x);
        softmax_rows_into(x.data(), 2, 2, None, &mut out);
        assert_eq!(out, expect_plain.data());
    }

    #[test]
    fn backward_matches_finite_difference() {
        // d/dx of sum(w . softmax(x)) via the analytic formula vs numeric.
        let x0 = vec![0.3, -0.7, 1.2, 0.05];
        let w = [0.5, -1.0, 2.0, 0.25];
        let f = |xs: &[f32]| -> f32 {
            let t = Tensor::from_vec(Shape::d2(1, 4), xs.to_vec());
            let y = softmax_lastdim(&t);
            y.data().iter().zip(w.iter()).map(|(&a, &b)| a * b).sum()
        };
        let y = softmax_lastdim(&Tensor::from_vec(Shape::d2(1, 4), x0.clone()));
        let dy = Tensor::from_vec(Shape::d2(1, 4), w.to_vec());
        let dx = softmax_backward_lastdim(&y, &dy);
        for i in 0..4 {
            let mut xp = x0.clone();
            let mut xm = x0.clone();
            let eps = 1e-3;
            xp[i] += eps;
            xm[i] -= eps;
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 1e-3,
                "grad[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
    }
}
