//! Fused scaled-dot-product attention over raw slices — the graph-free
//! inference counterpart of the tape ops `bmm_nt → scale → softmax → bmm`.
//!
//! The kernel performs exactly the same floating-point operations in exactly
//! the same order as the graph path, so a frozen forward pass that uses it
//! reproduces `Graph`-built logits bit for bit. The caller provides both the
//! output buffer and a scores scratch buffer, so repeated calls allocate
//! nothing. Above the dispatch threshold the batch dimension fans out over
//! the global thread pool — per-slice arithmetic is untouched, so the
//! bit-for-bit guarantee survives parallel execution.

use super::bmm::{bmm_nn_into, bmm_nt_into};
use super::softmax::{softmax_row_inplace, AttnMask};

/// `out[b,n,d] = softmax(scale · Q·Kᵀ + M) · V` per batch slice.
///
/// `q`/`k`/`v` are `[bs, n, d]` row-major slices; `scores` is a scratch
/// buffer of at least `bs·n·n` elements (overwritten with the attention
/// weights); `out` must hold at least `bs·n·d` elements and is overwritten
/// (not accumulated). `mask`, when given, is `[n, n]` and shared across the
/// batch, as everywhere else in this crate; fully-masked rows produce
/// all-zero attention weights, keeping padding rows inert.
///
/// # Panics
/// Panics if any buffer is too small or the mask dims do not match `n`.
#[allow(clippy::too_many_arguments)]
pub fn attention_into(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: Option<&AttnMask>,
    scale: f32,
    bs: usize,
    n: usize,
    d: usize,
    scores: &mut [f32],
    out: &mut [f32],
) {
    assert!(q.len() >= bs * n * d, "attention_into: q too small");
    assert!(k.len() >= bs * n * d, "attention_into: k too small");
    assert!(v.len() >= bs * n * d, "attention_into: v too small");
    assert!(scores.len() >= bs * n * n, "attention_into: scores scratch too small");
    assert!(out.len() >= bs * n * d, "attention_into: out too small");
    if let Some(mk) = mask {
        assert_eq!(
            (mk.rows(), mk.cols()),
            (n, n),
            "attention mask [{}x{}] does not match n = {n}",
            mk.rows(),
            mk.cols()
        );
    }
    let (q, k, v) = (&q[..bs * n * d], &k[..bs * n * d], &v[..bs * n * d]);
    let scores = &mut scores[..bs * n * n];
    let out = &mut out[..bs * n * d];

    // ~2 multiply-add passes of n·n·d plus the softmax per slice.
    let work_per_slice = 2 * n * n * d + 16 * n * n;
    if super::dispatch::should_par(bs * work_per_slice, bs) {
        seqfm_parallel::par_units2(
            seqfm_parallel::global(),
            scores,
            n * n,
            out,
            n * d,
            |b0, scores_chunk, out_chunk| {
                let slices = scores_chunk.len() / (n * n);
                let q = &q[b0 * n * d..(b0 + slices) * n * d];
                let k = &k[b0 * n * d..(b0 + slices) * n * d];
                let v = &v[b0 * n * d..(b0 + slices) * n * d];
                attention_slices(q, k, v, mask, scale, slices, n, d, scores_chunk, out_chunk);
            },
        );
    } else {
        attention_slices(q, k, v, mask, scale, bs, n, d, scores, out);
    }
}

/// The fused attention pipeline over `bs` batch slices — exactly the serial
/// op order (`Q·Kᵀ → scale → masked softmax → ·V`), used both as the serial
/// path and as each parallel task's body.
#[allow(clippy::too_many_arguments)]
fn attention_slices(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: Option<&AttnMask>,
    scale: f32,
    bs: usize,
    n: usize,
    d: usize,
    scores: &mut [f32],
    out: &mut [f32],
) {
    // Q·Kᵀ, then the 1/√d scale — same op order as the tape.
    scores.fill(0.0);
    bmm_nt_into(q, k, scores, bs, n, d, n);
    for s in scores.iter_mut() {
        *s *= scale;
    }
    // Masked softmax, row by row in place.
    for (ri, row) in scores.chunks_exact_mut(n).enumerate() {
        let mask_row = mask.map(|mk| {
            let r = ri % n;
            &mk.data()[r * n..(r + 1) * n]
        });
        softmax_row_inplace(row, mask_row);
    }
    // Attention-weighted values.
    out.fill(0.0);
    bmm_nn_into(scores, v, out, bs, n, n, d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::softmax::softmax_lastdim_masked;
    use crate::testutil::rand_tensor;
    use crate::{bmm_nn, bmm_nt, ew, Shape};
    use std::sync::Arc;

    #[test]
    fn fused_kernel_matches_unfused_ops_bitwise() {
        let (bs, n, d) = (3, 5, 4);
        let mut seed = 23;
        let q = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let k = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let v = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let scale = 1.0 / (d as f32).sqrt();
        let mask = Arc::new(AttnMask::causal(n));

        // Reference: the exact op sequence the tape records.
        let scores = ew::scale(&bmm_nt(&q, &k), scale);
        let attn = softmax_lastdim_masked(&scores, &mask);
        let expect = bmm_nn(&attn, &v);

        let mut scratch = vec![0.0f32; bs * n * n];
        let mut out = vec![0.0f32; bs * n * d];
        attention_into(
            q.data(),
            k.data(),
            v.data(),
            Some(&mask),
            scale,
            bs,
            n,
            d,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, expect.data(), "fused attention diverges from the tape ops");
        assert_eq!(scratch, attn.data(), "attention weights diverge");
    }

    #[test]
    fn unmasked_path_matches_too() {
        let (bs, n, d) = (2, 3, 4);
        let mut seed = 29;
        let q = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let k = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let v = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let scale = 0.5;
        let scores = ew::scale(&bmm_nt(&q, &k), scale);
        let attn = crate::softmax_lastdim(&scores);
        let expect = bmm_nn(&attn, &v);
        let mut scratch = vec![0.0f32; bs * n * n];
        let mut out = vec![0.0f32; bs * n * d];
        attention_into(q.data(), k.data(), v.data(), None, scale, bs, n, d, &mut scratch, &mut out);
        assert_eq!(out, expect.data());
    }

    #[test]
    #[should_panic(expected = "scores scratch too small")]
    fn rejects_undersized_scratch() {
        let q = vec![0.0; 8];
        let mut scratch = vec![0.0; 3];
        let mut out = vec![0.0; 8];
        attention_into(&q, &q, &q, None, 1.0, 1, 2, 4, &mut scratch, &mut out);
    }
}
