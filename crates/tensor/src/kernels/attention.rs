//! Fused scaled-dot-product attention over raw slices — the graph-free
//! inference counterpart of the tape ops `bmm_nt → scale → softmax → bmm`.
//!
//! The kernel performs exactly the same floating-point operations in exactly
//! the same order as the graph path, so a frozen forward pass that uses it
//! reproduces `Graph`-built logits bit for bit. The caller provides both the
//! output buffer and a scores scratch buffer, so repeated calls allocate
//! nothing. Above the dispatch threshold the batch dimension fans out over
//! the global thread pool — per-slice arithmetic is untouched, so the
//! bit-for-bit guarantee survives parallel execution.

use super::bmm::{bmm_nn_fast_into, bmm_nn_into, bmm_nt_fast_into, bmm_nt_into};
use super::softmax::{softmax2_fast, softmax_row_inplace, softmax_row_inplace_fast, AttnMask};

/// `out[b,n,d] = softmax(scale · Q·Kᵀ + M) · V` per batch slice.
///
/// `q`/`k`/`v` are `[bs, n, d]` row-major slices; `scores` is a scratch
/// buffer of at least `bs·n·n` elements (overwritten with the attention
/// weights); `out` must hold at least `bs·n·d` elements and is overwritten
/// (not accumulated). `mask`, when given, is `[n, n]` and shared across the
/// batch, as everywhere else in this crate; fully-masked rows produce
/// all-zero attention weights, keeping padding rows inert.
///
/// # Panics
/// Panics if any buffer is too small or the mask dims do not match `n`.
#[allow(clippy::too_many_arguments)]
pub fn attention_into(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: Option<&AttnMask>,
    scale: f32,
    bs: usize,
    n: usize,
    d: usize,
    scores: &mut [f32],
    out: &mut [f32],
) {
    assert!(q.len() >= bs * n * d, "attention_into: q too small");
    assert!(k.len() >= bs * n * d, "attention_into: k too small");
    assert!(v.len() >= bs * n * d, "attention_into: v too small");
    assert!(scores.len() >= bs * n * n, "attention_into: scores scratch too small");
    assert!(out.len() >= bs * n * d, "attention_into: out too small");
    if let Some(mk) = mask {
        assert_eq!(
            (mk.rows(), mk.cols()),
            (n, n),
            "attention mask [{}x{}] does not match n = {n}",
            mk.rows(),
            mk.cols()
        );
    }
    let (q, k, v) = (&q[..bs * n * d], &k[..bs * n * d], &v[..bs * n * d]);
    let scores = &mut scores[..bs * n * n];
    let out = &mut out[..bs * n * d];

    // ~2 multiply-add passes of n·n·d plus the softmax per slice.
    let work_per_slice = 2 * n * n * d + 16 * n * n;
    if super::dispatch::should_par(bs * work_per_slice, bs) {
        seqfm_parallel::par_units2(
            seqfm_parallel::global(),
            scores,
            n * n,
            out,
            n * d,
            |b0, scores_chunk, out_chunk| {
                let slices = scores_chunk.len() / (n * n);
                let q = &q[b0 * n * d..(b0 + slices) * n * d];
                let k = &k[b0 * n * d..(b0 + slices) * n * d];
                let v = &v[b0 * n * d..(b0 + slices) * n * d];
                attention_slices(q, k, v, mask, scale, slices, n, d, scores_chunk, out_chunk);
            },
        );
    } else {
        attention_slices(q, k, v, mask, scale, bs, n, d, scores, out);
    }
}

/// The fused attention pipeline over `bs` batch slices — exactly the serial
/// op order (`Q·Kᵀ → scale → masked softmax → ·V`), used both as the serial
/// path and as each parallel task's body.
#[allow(clippy::too_many_arguments)]
fn attention_slices(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: Option<&AttnMask>,
    scale: f32,
    bs: usize,
    n: usize,
    d: usize,
    scores: &mut [f32],
    out: &mut [f32],
) {
    // Q·Kᵀ, then the 1/√d scale — same op order as the tape.
    scores.fill(0.0);
    bmm_nt_into(q, k, scores, bs, n, d, n);
    for s in scores.iter_mut() {
        *s *= scale;
    }
    // Masked softmax, row by row in place.
    for (ri, row) in scores.chunks_exact_mut(n).enumerate() {
        let mask_row = mask.map(|mk| {
            let r = ri % n;
            &mk.data()[r * n..(r + 1) * n]
        });
        softmax_row_inplace(row, mask_row);
    }
    // Attention-weighted values.
    out.fill(0.0);
    bmm_nn_into(scores, v, out, bs, n, n, d);
}

/// Fast-profile [`attention_into`]: the same fused pipeline and the same
/// buffer/mask contract, with the score and value products running the
/// fused-FMA matmuls and the softmax using the deterministic polynomial
/// `exp_fast`. Masked positions still produce *exactly* zero weights and
/// fully-masked rows all-zero output, so padding stays inert and the
/// retrieval bounds' convexity argument applies unchanged. Deterministic on
/// every target, but not bit-equal to [`attention_into`].
#[allow(clippy::too_many_arguments)]
pub fn attention_fast_into(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: Option<&AttnMask>,
    scale: f32,
    bs: usize,
    n: usize,
    d: usize,
    scores: &mut [f32],
    out: &mut [f32],
) {
    assert!(q.len() >= bs * n * d, "attention_fast_into: q too small");
    assert!(k.len() >= bs * n * d, "attention_fast_into: k too small");
    assert!(v.len() >= bs * n * d, "attention_fast_into: v too small");
    assert!(scores.len() >= bs * n * n, "attention_fast_into: scores scratch too small");
    assert!(out.len() >= bs * n * d, "attention_fast_into: out too small");
    if let Some(mk) = mask {
        assert_eq!(
            (mk.rows(), mk.cols()),
            (n, n),
            "attention mask [{}x{}] does not match n = {n}",
            mk.rows(),
            mk.cols()
        );
    }
    let (q, k, v) = (&q[..bs * n * d], &k[..bs * n * d], &v[..bs * n * d]);
    let scores = &mut scores[..bs * n * n];
    let out = &mut out[..bs * n * d];

    let work_per_slice = 2 * n * n * d + 16 * n * n;
    if super::dispatch::should_par(bs * work_per_slice, bs) {
        seqfm_parallel::par_units2(
            seqfm_parallel::global(),
            scores,
            n * n,
            out,
            n * d,
            |b0, scores_chunk, out_chunk| {
                let slices = scores_chunk.len() / (n * n);
                let q = &q[b0 * n * d..(b0 + slices) * n * d];
                let k = &k[b0 * n * d..(b0 + slices) * n * d];
                let v = &v[b0 * n * d..(b0 + slices) * n * d];
                attention_fast_slices(q, k, v, mask, scale, slices, n, d, scores_chunk, out_chunk);
            },
        );
    } else {
        attention_fast_slices(q, k, v, mask, scale, bs, n, d, scores, out);
    }
}

/// Fast-profile body of [`attention_fast_slices`]'s pipeline over `bs`
/// slices: fused-FMA `Q·Kᵀ` → scale → fast masked softmax → fused-FMA `·V`.
#[allow(clippy::too_many_arguments)]
fn attention_fast_slices(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: Option<&AttnMask>,
    scale: f32,
    bs: usize,
    n: usize,
    d: usize,
    scores: &mut [f32],
    out: &mut [f32],
) {
    scores.fill(0.0);
    bmm_nt_fast_into(q, k, scores, bs, n, d, n);
    for s in scores.iter_mut() {
        *s *= scale;
    }
    for (ri, row) in scores.chunks_exact_mut(n).enumerate() {
        let mask_row = mask.map(|mk| {
            let r = ri % n;
            &mk.data()[r * n..(r + 1) * n]
        });
        softmax_row_inplace_fast(row, mask_row);
    }
    out.fill(0.0);
    bmm_nn_fast_into(scores, v, out, bs, n, n, d);
}

/// Block-structured fast attention for the **cross view**: equivalent to
/// [`attention_fast_into`] with [`AttnMask::cross(ns, nd)`](AttnMask::cross)
/// over `n = ns + nd` positions, but it never touches the masked blocks.
///
/// The cross mask only admits static↔dynamic interactions, so a dense
/// `n × n` score matrix is `(ns² + nd²)/n²` wasted work — at serving
/// geometry (`ns = 2`, `nd = 20`) **83 % of the scores are computed and
/// discarded**. This kernel computes exactly the admitted pairs: each
/// static row softmaxes over the `nd` dynamic columns, each dynamic row
/// over the `ns` static columns.
///
/// Output is **bit-identical** to the dense masked fast path, not merely
/// close: the dense pipeline's per-element score is the same seeded-zero
/// ascending-`p` `mul_add` chain this kernel runs; blocked entries enter
/// the dense softmax as `−∞` (never the max, exactly `+0.0` weight) and
/// enter the dense value product as `+0.0 · vⱼ` (an exact no-op on the
/// non-negative partial sums) — so dropping them changes nothing. A test
/// below pins this equivalence. Every op is scalar `f32`/`mul_add`
/// (one shared path, no SIMD arm), so cross-arm determinism is structural.
///
/// `scores` keeps the dense scratch contract (≥ `bs·n·n`) so the kernel is
/// a drop-in for the dense call, but only the first `ns·nd` slots of each
/// slice's block are used (as block weight scratch); the rest is left
/// untouched, so callers must not read the scores buffer back.
///
/// Degenerate sides behave like fully-masked rows: with `nd = 0` every
/// static row (and with `ns = 0` every dynamic row) outputs zeros.
///
/// # Panics
/// Panics if any buffer is too small.
#[allow(clippy::too_many_arguments)]
pub fn attention_cross_fast_into(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    scale: f32,
    bs: usize,
    ns: usize,
    nd: usize,
    d: usize,
    scores: &mut [f32],
    out: &mut [f32],
) {
    let n = ns + nd;
    assert!(q.len() >= bs * n * d, "attention_cross_fast_into: q too small");
    assert!(k.len() >= bs * n * d, "attention_cross_fast_into: k too small");
    assert!(v.len() >= bs * n * d, "attention_cross_fast_into: v too small");
    assert!(scores.len() >= bs * n * n, "attention_cross_fast_into: scores scratch too small");
    assert!(out.len() >= bs * n * d, "attention_cross_fast_into: out too small");
    let (q, k, v) = (&q[..bs * n * d], &k[..bs * n * d], &v[..bs * n * d]);
    let scores = &mut scores[..bs * n * n];
    let out = &mut out[..bs * n * d];

    // Two admitted blocks of ns·nd scores, each read once for the weighted
    // value sum → 4·ns·nd·d multiply-adds plus 2·ns·nd exp-weighted ops.
    let work_per_slice = 4 * ns * nd * d + 32 * ns * nd;
    if super::dispatch::should_par(bs * work_per_slice, bs) {
        seqfm_parallel::par_units2(
            seqfm_parallel::global(),
            scores,
            n * n,
            out,
            n * d,
            |b0, scores_chunk, out_chunk| {
                let slices = scores_chunk.len() / (n * n);
                let q = &q[b0 * n * d..(b0 + slices) * n * d];
                let k = &k[b0 * n * d..(b0 + slices) * n * d];
                let v = &v[b0 * n * d..(b0 + slices) * n * d];
                cross_fast_slices(q, k, v, scale, slices, ns, nd, d, scores_chunk, out_chunk);
            },
        );
    } else {
        cross_fast_slices(q, k, v, scale, bs, ns, nd, d, scores, out);
    }
}

/// Serial body of [`attention_cross_fast_into`] over `bs` slices.
#[allow(clippy::too_many_arguments)]
fn cross_fast_slices(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    scale: f32,
    bs: usize,
    ns: usize,
    nd: usize,
    d: usize,
    scores: &mut [f32],
    out: &mut [f32],
) {
    let n = ns + nd;
    for b in 0..bs {
        let qs = &q[b * n * d..(b + 1) * n * d];
        let ks = &k[b * n * d..(b + 1) * n * d];
        let vs = &v[b * n * d..(b + 1) * n * d];
        let (out_stat, out_dyn) = out[b * n * d..(b + 1) * n * d].split_at_mut(ns * d);
        let w = &mut scores[b * n * n..b * n * n + ns * nd];
        // Static rows (0..ns) attend to the nd dynamic columns.
        cross_block(&qs[..ns * d], &ks[ns * d..], &vs[ns * d..], out_stat, w, scale, ns, nd, d);
        // Dynamic rows (ns..n) attend to the ns static columns.
        cross_block(&qs[ns * d..], &ks[..ns * d], &vs[..ns * d], out_dyn, w, scale, nd, ns, d);
    }
}

/// One admitted block: `rows` query rows softmax over `cols` key/value rows
/// and write their context rows (all buffers are the block itself,
/// row-major). The per-element op chains match the dense fast pipeline
/// exactly (see [`attention_cross_fast_into`]); `w` provides ≥ `rows·cols`
/// scratch.
#[allow(clippy::too_many_arguments)]
fn cross_block(
    q: &[f32],
    kblk: &[f32],
    vblk: &[f32],
    out: &mut [f32],
    w: &mut [f32],
    scale: f32,
    rows: usize,
    cols: usize,
    d: usize,
) {
    if cols == 0 {
        // Fully-masked rows: the dense pipeline softmaxes an all-−∞ row to
        // exact zeros, so the context rows are zero.
        out[..rows * d].fill(0.0);
        return;
    }
    let kblk = &kblk[..cols * d];
    let vblk = &vblk[..cols * d];
    let w = &mut w[..rows * cols];

    // Scores for the whole block first, 2×2-register-tiled: each score is
    // still its own seeded-zero ascending-p fused chain (the dense fast nt
    // walk, so every element's op sequence — and its bits — is unchanged),
    // but four chains run interleaved so the FMA unit pipelines instead of
    // stalling on one chain's latency.
    let mut i = 0;
    while i + 2 <= rows {
        let q0 = &q[i * d..(i + 1) * d];
        let q1 = &q[(i + 1) * d..(i + 2) * d];
        let (w0, rest) = w[i * cols..].split_at_mut(cols);
        let w1 = &mut rest[..cols];
        let mut j = 0;
        while j + 2 <= cols {
            let k0 = &kblk[j * d..(j + 1) * d];
            let k1 = &kblk[(j + 1) * d..(j + 2) * d];
            let (mut a00, mut a01, mut a10, mut a11) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for p in 0..d {
                let (q0p, q1p) = (q0[p], q1[p]);
                a00 = q0p.mul_add(k0[p], a00);
                a01 = q0p.mul_add(k1[p], a01);
                a10 = q1p.mul_add(k0[p], a10);
                a11 = q1p.mul_add(k1[p], a11);
            }
            w0[j] = a00;
            w0[j + 1] = a01;
            w1[j] = a10;
            w1[j + 1] = a11;
            j += 2;
        }
        if j < cols {
            let kj = &kblk[j * d..(j + 1) * d];
            let (mut a0, mut a1) = (0.0f32, 0.0f32);
            for p in 0..d {
                a0 = q0[p].mul_add(kj[p], a0);
                a1 = q1[p].mul_add(kj[p], a1);
            }
            w0[j] = a0;
            w1[j] = a1;
        }
        i += 2;
    }
    if i < rows {
        let q0 = &q[i * d..(i + 1) * d];
        let wrow = &mut w[i * cols..(i + 1) * cols];
        let mut j = 0;
        while j + 2 <= cols {
            let k0 = &kblk[j * d..(j + 1) * d];
            let k1 = &kblk[(j + 1) * d..(j + 2) * d];
            let (mut a0, mut a1) = (0.0f32, 0.0f32);
            for p in 0..d {
                let q0p = q0[p];
                a0 = q0p.mul_add(k0[p], a0);
                a1 = q0p.mul_add(k1[p], a1);
            }
            wrow[j] = a0;
            wrow[j + 1] = a1;
            j += 2;
        }
        if j < cols {
            let kj = &kblk[j * d..(j + 1) * d];
            let mut a = 0.0f32;
            for p in 0..d {
                a = q0[p].mul_add(kj[p], a);
            }
            wrow[j] = a;
        }
    }

    // Scale, softmax, and weighted value sum per row; the value loop's d
    // independent chains auto-vectorize across the context lane. Two-wide
    // rows (the dynamic rows' softmax over `ns = 2` static columns — the
    // bulk of the calls at serving geometry) inline the pair softmax,
    // which is bit-identical to the row kernel without its call overhead.
    for (r, wrow) in w.chunks_exact_mut(cols).enumerate() {
        for slot in wrow.iter_mut() {
            *slot *= scale;
        }
        if cols == 2 {
            let (w0, w1) = softmax2_fast(wrow[0], wrow[1]);
            wrow[0] = w0;
            wrow[1] = w1;
        } else {
            softmax_row_inplace_fast(wrow, None);
        }
        let o = &mut out[r * d..(r + 1) * d];
        o.fill(0.0);
        for (&wj, vj) in wrow.iter().zip(vblk.chunks_exact(d)) {
            for (ot, &vt) in o.iter_mut().zip(vj) {
                *ot = wj.mul_add(vt, *ot);
            }
        }
    }
}

/// [`attention_cross_fast_into`] for a **shared history**: every slice
/// shares one `[nd, d]` block of history-row Q/K/V (`qh`/`kh`/`vh`) under
/// its own `[ns, d]` static rows (`qs`/`ks`/`vs`, laid out `[bs, ns, d]`).
///
/// A candidate-expansion batch repeats one user history under every
/// candidate, so the interleaved layout the dense kernel wants costs
/// `3·bs·nd·d` floats of pure copying per call just to place the same
/// history rows under each slice. This entry point reads the shared block
/// in place instead — per-slice arithmetic is `cross_block` either way,
/// so the output is **bit-identical** to splicing the history under each
/// slice and calling [`attention_cross_fast_into`] (a test below pins
/// this). `out` keeps the full interleaved `[bs, ns + nd, d]` layout
/// (every slice's history rows attend to *its* static rows, so their
/// context differs per slice). Unlike the dense drop-in, `scores` only
/// needs the slots actually used — `ns·nd` block-weight scratch per
/// slice (≥ `bs·ns·nd` total) instead of the dense `bs·n²` — so callers
/// can right-size the allocation; its contents are still scratch and
/// must not be read back.
///
/// # Panics
/// Panics if any buffer is too small.
#[allow(clippy::too_many_arguments)]
pub fn attention_cross_shared_fast_into(
    qs: &[f32],
    ks: &[f32],
    vs: &[f32],
    qh: &[f32],
    kh: &[f32],
    vh: &[f32],
    scale: f32,
    bs: usize,
    ns: usize,
    nd: usize,
    d: usize,
    scores: &mut [f32],
    out: &mut [f32],
) {
    let n = ns + nd;
    assert!(qs.len() >= bs * ns * d, "attention_cross_shared_fast_into: qs too small");
    assert!(ks.len() >= bs * ns * d, "attention_cross_shared_fast_into: ks too small");
    assert!(vs.len() >= bs * ns * d, "attention_cross_shared_fast_into: vs too small");
    assert!(qh.len() >= nd * d, "attention_cross_shared_fast_into: qh too small");
    assert!(kh.len() >= nd * d, "attention_cross_shared_fast_into: kh too small");
    assert!(vh.len() >= nd * d, "attention_cross_shared_fast_into: vh too small");
    assert!(
        scores.len() >= bs * ns * nd,
        "attention_cross_shared_fast_into: scores scratch too small"
    );
    assert!(out.len() >= bs * n * d, "attention_cross_shared_fast_into: out too small");
    let out = &mut out[..bs * n * d];
    if ns == 0 || nd == 0 {
        // One side empty ⇒ every row is fully masked ⇒ all-zero context
        // (exactly what the dense masked pipeline produces).
        out.fill(0.0);
        return;
    }
    let (qs, ks, vs) = (&qs[..bs * ns * d], &ks[..bs * ns * d], &vs[..bs * ns * d]);
    let (qh, kh, vh) = (&qh[..nd * d], &kh[..nd * d], &vh[..nd * d]);
    let scores = &mut scores[..bs * ns * nd];

    let work_per_slice = 4 * ns * nd * d + 32 * ns * nd;
    if super::dispatch::should_par(bs * work_per_slice, bs) {
        seqfm_parallel::par_units2(
            seqfm_parallel::global(),
            scores,
            ns * nd,
            out,
            n * d,
            |b0, scores_chunk, out_chunk| {
                let slices = scores_chunk.len() / (ns * nd);
                let qs = &qs[b0 * ns * d..(b0 + slices) * ns * d];
                let ks = &ks[b0 * ns * d..(b0 + slices) * ns * d];
                let vs = &vs[b0 * ns * d..(b0 + slices) * ns * d];
                cross_shared_slices(
                    qs,
                    ks,
                    vs,
                    qh,
                    kh,
                    vh,
                    scale,
                    slices,
                    ns,
                    nd,
                    d,
                    scores_chunk,
                    out_chunk,
                );
            },
        );
    } else {
        cross_shared_slices(qs, ks, vs, qh, kh, vh, scale, bs, ns, nd, d, scores, out);
    }
}

/// Serial body of [`attention_cross_shared_fast_into`] over `bs` slices.
///
/// At the candidate-expansion geometry (`ns = 2` static rows against a
/// history wide enough to fill a vector register) the score chains move to
/// [`cross_shared_slices_avx2`] when the AVX2 arm is active; the scalar
/// [`cross_block`] walk is the reference arm (and the only arm elsewhere).
/// Both arms run the same per-element fused chains, so the choice never
/// changes bits — the spliced-parity test below pins the AVX2 body against
/// the scalar interleaved kernel on AVX2 hosts, and CI's `SEQFM_SIMD=scalar`
/// job pins the fallback.
#[allow(clippy::too_many_arguments)]
fn cross_shared_slices(
    qs: &[f32],
    ks: &[f32],
    vs: &[f32],
    qh: &[f32],
    kh: &[f32],
    vh: &[f32],
    scale: f32,
    bs: usize,
    ns: usize,
    nd: usize,
    d: usize,
    scores: &mut [f32],
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if ns == 2
        && nd >= 8
        && crate::kernels::simd::active_arm() == crate::kernels::simd::SimdArm::Avx2
    {
        cross_shared_slices_avx2(qs, ks, vs, qh, kh, vh, scale, bs, nd, d, scores, out);
        return;
    }
    let n = ns + nd;
    for b in 0..bs {
        let sq = &qs[b * ns * d..(b + 1) * ns * d];
        let sk = &ks[b * ns * d..(b + 1) * ns * d];
        let sv = &vs[b * ns * d..(b + 1) * ns * d];
        let (out_stat, out_dyn) = out[b * n * d..(b + 1) * n * d].split_at_mut(ns * d);
        let w = &mut scores[b * ns * nd..(b + 1) * ns * nd];
        // Static rows attend to the shared history's nd columns.
        cross_block(sq, kh, vh, out_stat, w, scale, ns, nd, d);
        // History rows attend to this slice's ns static columns.
        cross_block(qh, sk, sv, out_dyn, w, scale, nd, ns, d);
    }
}

/// AVX2 arm of [`cross_shared_slices`] for `ns = 2`, `nd ≥ 8`.
///
/// The scalar walk is latency-bound: each score is one serial FMA chain,
/// and at this geometry there are only `2·(ns·nd)` short rows per slice to
/// interleave, so the 2×2 register tiling of [`cross_block`] tops out at
/// ~4 chains in flight. Because the history block is *shared*, its Q/K rows
/// can be packed transposed **once per call** (`kt[p·nd + j] = k[j·d + p]`)
/// and every slice then walks scores column-major with
/// [`scores_colmajor_fast_avx2`][simd]: 16+ chains in flight, unit-stride
/// loads, one load shared by both query rows. Each vector lane still runs
/// the seeded-zero ascending-`p` fused chain of the scalar walk (`q·k` dots
/// commute multiplicand-for-multiplicand on the history side), and the
/// scale/softmax/value tail repeats [`cross_block`]'s scalar ops verbatim —
/// so the output is bit-identical to the scalar arm.
///
/// [simd]: crate::kernels::simd
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn cross_shared_slices_avx2(
    qs: &[f32],
    ks: &[f32],
    vs: &[f32],
    qh: &[f32],
    kh: &[f32],
    vh: &[f32],
    scale: f32,
    bs: usize,
    nd: usize,
    d: usize,
    scores: &mut [f32],
    out: &mut [f32],
) {
    use crate::kernels::simd::scores_colmajor_fast_avx2;
    const NS: usize = 2;
    let n = NS + nd;
    crate::workspace::with_thread(|ws| {
        // Transposed packs of the shared history's K rows (for the static
        // rows' scores) and Q rows (for the history rows' scores) — packed
        // once, reused by every slice in this chunk.
        let mut kht = ws.take(d * nd);
        let mut qht = ws.take(d * nd);
        for (j, row) in kh.chunks_exact(d).enumerate().take(nd) {
            for (p, &x) in row.iter().enumerate() {
                kht[p * nd + j] = x;
            }
        }
        for (j, row) in qh.chunks_exact(d).enumerate().take(nd) {
            for (p, &x) in row.iter().enumerate() {
                qht[p * nd + j] = x;
            }
        }
        for b in 0..bs {
            let sq = &qs[b * NS * d..(b + 1) * NS * d];
            let sk = &ks[b * NS * d..(b + 1) * NS * d];
            let sv = &vs[b * NS * d..(b + 1) * NS * d];
            let (out_stat, out_dyn) = out[b * n * d..(b + 1) * n * d].split_at_mut(NS * d);
            let w = &mut scores[b * NS * nd..(b + 1) * NS * nd];

            // Static rows attend to the shared history's nd columns:
            // scores land row-major, then cross_block's exact scalar tail.
            // SAFETY: the dispatch in `cross_shared_slices` only selects
            // this arm when the CPU reports AVX2+FMA.
            unsafe { scores_colmajor_fast_avx2(sq, &kht, w, NS, nd, d) };
            for r in 0..NS {
                let wrow = &mut w[r * nd..(r + 1) * nd];
                for slot in wrow.iter_mut() {
                    *slot *= scale;
                }
                softmax_row_inplace_fast(wrow, None);
                let o = &mut out_stat[r * d..(r + 1) * d];
                o.fill(0.0);
                for (&wj, vj) in wrow.iter().zip(vh.chunks_exact(d)) {
                    for (ot, &vt) in o.iter_mut().zip(vj) {
                        *ot = wj.mul_add(vt, *ot);
                    }
                }
            }

            // History rows attend to this slice's 2 static columns. Swap
            // the operands so the lanes run across history rows instead:
            // `w[c·nd + r]` holds history row r's score against static
            // column c — the same `qh_r · sk_c` fused chain (multiplication
            // commutes per element), laid out column-major.
            // SAFETY: as above — this arm requires AVX2+FMA.
            unsafe { scores_colmajor_fast_avx2(sk, &qht, w, NS, nd, d) };
            let (v0, v1) = sv[..NS * d].split_at(d);
            for r in 0..nd {
                let (w0, w1) = softmax2_fast(w[r] * scale, w[nd + r] * scale);
                let o = &mut out_dyn[r * d..(r + 1) * d];
                for t in 0..d {
                    o[t] = w1.mul_add(v1[t], w0.mul_add(v0[t], 0.0));
                }
            }
        }
    });
}

/// Fast maskless attention specialized to `n = 2` — the static view's
/// `(user, candidate)` pair at serving geometry. One fused, fully-unrolled
/// pass per slice: four 2×2-register-tiled fused dots, two pair softmaxes
/// (`softmax2_fast`), and two value blends — no bmm dispatch, no scores
/// scratch, no per-row kernel calls.
///
/// Output is **bit-identical** to [`attention_fast_into`] at `n = 2` with
/// no mask (pinned by a test below): the dense fast pipeline's score is
/// the same seeded-zero ascending-`p` `mul_add` chain, its length-2 row
/// softmax runs exactly the `softmax2_fast` op sequence, and its value
/// product is the same seeded-zero ascending-`j` chain. Every op is
/// scalar `f32`/`mul_add`/`exp_fast` (one shared path, no SIMD arm), so
/// cross-arm determinism is structural.
///
/// # Panics
/// Panics if any buffer is too small.
pub fn attention_pair_fast_into(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    scale: f32,
    bs: usize,
    d: usize,
    out: &mut [f32],
) {
    assert!(q.len() >= bs * 2 * d, "attention_pair_fast_into: q too small");
    assert!(k.len() >= bs * 2 * d, "attention_pair_fast_into: k too small");
    assert!(v.len() >= bs * 2 * d, "attention_pair_fast_into: v too small");
    assert!(out.len() >= bs * 2 * d, "attention_pair_fast_into: out too small");
    let (q, k, v) = (&q[..bs * 2 * d], &k[..bs * 2 * d], &v[..bs * 2 * d]);
    let out = &mut out[..bs * 2 * d];

    let work_per_slice = 6 * d + 64;
    if super::dispatch::should_par(bs * work_per_slice, bs) {
        seqfm_parallel::par_units(seqfm_parallel::global(), out, 2 * d, |b0, chunk| {
            let slices = chunk.len() / (2 * d);
            pair_fast_slices(
                &q[b0 * 2 * d..(b0 + slices) * 2 * d],
                &k[b0 * 2 * d..(b0 + slices) * 2 * d],
                &v[b0 * 2 * d..(b0 + slices) * 2 * d],
                scale,
                slices,
                d,
                chunk,
            );
        });
    } else {
        pair_fast_slices(q, k, v, scale, bs, d, out);
    }
}

/// Serial body of [`attention_pair_fast_into`] over `bs` slices.
fn pair_fast_slices(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    scale: f32,
    bs: usize,
    d: usize,
    out: &mut [f32],
) {
    for b in 0..bs {
        let base = b * 2 * d;
        let (q0, q1) = q[base..base + 2 * d].split_at(d);
        let (k0, k1) = k[base..base + 2 * d].split_at(d);
        let (v0, v1) = v[base..base + 2 * d].split_at(d);
        let (mut s00, mut s01, mut s10, mut s11) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for p in 0..d {
            let (q0p, q1p) = (q0[p], q1[p]);
            let (k0p, k1p) = (k0[p], k1[p]);
            s00 = q0p.mul_add(k0p, s00);
            s01 = q0p.mul_add(k1p, s01);
            s10 = q1p.mul_add(k0p, s10);
            s11 = q1p.mul_add(k1p, s11);
        }
        let (w00, w01) = softmax2_fast(s00 * scale, s01 * scale);
        let (w10, w11) = softmax2_fast(s10 * scale, s11 * scale);
        let (o0, o1) = out[base..base + 2 * d].split_at_mut(d);
        for t in 0..d {
            o0[t] = w01.mul_add(v1[t], w00.mul_add(v0[t], 0.0));
            o1[t] = w11.mul_add(v1[t], w10.mul_add(v0[t], 0.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::softmax::softmax_lastdim_masked;
    use crate::testutil::rand_tensor;
    use crate::{bmm_nn, bmm_nt, ew, Shape};
    use std::sync::Arc;

    #[test]
    fn fused_kernel_matches_unfused_ops_bitwise() {
        let (bs, n, d) = (3, 5, 4);
        let mut seed = 23;
        let q = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let k = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let v = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let scale = 1.0 / (d as f32).sqrt();
        let mask = Arc::new(AttnMask::causal(n));

        // Reference: the exact op sequence the tape records.
        let scores = ew::scale(&bmm_nt(&q, &k), scale);
        let attn = softmax_lastdim_masked(&scores, &mask);
        let expect = bmm_nn(&attn, &v);

        let mut scratch = vec![0.0f32; bs * n * n];
        let mut out = vec![0.0f32; bs * n * d];
        attention_into(
            q.data(),
            k.data(),
            v.data(),
            Some(&mask),
            scale,
            bs,
            n,
            d,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out, expect.data(), "fused attention diverges from the tape ops");
        assert_eq!(scratch, attn.data(), "attention weights diverge");
    }

    #[test]
    fn unmasked_path_matches_too() {
        let (bs, n, d) = (2, 3, 4);
        let mut seed = 29;
        let q = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let k = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let v = rand_tensor(Shape::d3(bs, n, d), &mut seed);
        let scale = 0.5;
        let scores = ew::scale(&bmm_nt(&q, &k), scale);
        let attn = crate::softmax_lastdim(&scores);
        let expect = bmm_nn(&attn, &v);
        let mut scratch = vec![0.0f32; bs * n * n];
        let mut out = vec![0.0f32; bs * n * d];
        attention_into(q.data(), k.data(), v.data(), None, scale, bs, n, d, &mut scratch, &mut out);
        assert_eq!(out, expect.data());
    }

    #[test]
    #[should_panic(expected = "scores scratch too small")]
    fn rejects_undersized_scratch() {
        let q = vec![0.0; 8];
        let mut scratch = vec![0.0; 3];
        let mut out = vec![0.0; 8];
        attention_into(&q, &q, &q, None, 1.0, 1, 2, 4, &mut scratch, &mut out);
    }

    #[test]
    fn cross_fast_matches_dense_masked_fast_bitwise() {
        // Serving geometry, an odd small shape, and both degenerate sides
        // (one of them makes a whole block fully masked → zeros).
        for &(bs, ns, nd, d) in
            &[(3usize, 2usize, 20usize, 32usize), (2, 3, 5, 7), (1, 2, 0, 4), (1, 0, 4, 4)]
        {
            let n = ns + nd;
            let mut seed = 77 + (ns * 31 + nd) as u64;
            let q = rand_tensor(Shape::d3(bs, n, d), &mut seed);
            let k = rand_tensor(Shape::d3(bs, n, d), &mut seed);
            let v = rand_tensor(Shape::d3(bs, n, d), &mut seed);
            let scale = 1.0 / (d as f32).sqrt();
            let mask = AttnMask::cross(ns, nd);

            let mut scratch = vec![0.0f32; bs * n * n];
            let mut dense = vec![0.0f32; bs * n * d];
            attention_fast_into(
                q.data(),
                k.data(),
                v.data(),
                Some(&mask),
                scale,
                bs,
                n,
                d,
                &mut scratch,
                &mut dense,
            );
            let mut structured = vec![0.0f32; bs * n * d];
            attention_cross_fast_into(
                q.data(),
                k.data(),
                v.data(),
                scale,
                bs,
                ns,
                nd,
                d,
                &mut scratch,
                &mut structured,
            );
            for (i, (&a, &b)) in dense.iter().zip(&structured).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "ns={ns} nd={nd} d={d}: element {i} diverges ({a} vs {b})"
                );
            }
        }
    }

    #[test]
    fn cross_shared_matches_spliced_cross_bitwise() {
        // Retrieval/serving geometry, odd shapes, and both degenerate sides;
        // the ns = 2, nd ≥ 8 entries drive the AVX2 score-walk arm (exact
        // vector chunk, multi-chunk, and ragged-tail column counts) against
        // the scalar interleaved reference on AVX2 hosts.
        for &(bs, ns, nd, d) in &[
            (64usize, 2usize, 10usize, 32usize),
            (3, 2, 13, 16),
            (2, 2, 8, 8),
            (1, 2, 16, 4),
            (2, 3, 5, 7),
            (4, 1, 3, 8),
            (1, 2, 0, 4),
            (2, 0, 4, 4),
        ] {
            let n = ns + nd;
            let mut seed = 131 + (bs * 7 + ns * 31 + nd) as u64;
            let qs = rand_tensor(Shape::d3(bs, ns.max(1), d), &mut seed);
            let ks = rand_tensor(Shape::d3(bs, ns.max(1), d), &mut seed);
            let vs = rand_tensor(Shape::d3(bs, ns.max(1), d), &mut seed);
            let qh = rand_tensor(Shape::d2(nd.max(1), d), &mut seed);
            let kh = rand_tensor(Shape::d2(nd.max(1), d), &mut seed);
            let vh = rand_tensor(Shape::d2(nd.max(1), d), &mut seed);
            let scale = 1.0 / (d as f32).sqrt();

            // Reference: splice the shared history under every slice's
            // static rows and run the interleaved structured kernel.
            let splice = |s: &[f32], h: &[f32]| {
                let mut full = vec![0.0f32; bs * n * d];
                for b in 0..bs {
                    full[b * n * d..b * n * d + ns * d]
                        .copy_from_slice(&s[b * ns * d..(b + 1) * ns * d]);
                    full[b * n * d + ns * d..(b + 1) * n * d].copy_from_slice(&h[..nd * d]);
                }
                full
            };
            let (fq, fk, fv) = (
                splice(qs.data(), qh.data()),
                splice(ks.data(), kh.data()),
                splice(vs.data(), vh.data()),
            );
            let mut scratch = vec![0.0f32; bs * n * n];
            let mut spliced = vec![0.0f32; bs * n * d];
            attention_cross_fast_into(
                &fq,
                &fk,
                &fv,
                scale,
                bs,
                ns,
                nd,
                d,
                &mut scratch,
                &mut spliced,
            );

            let mut shared = vec![0.0f32; bs * n * d];
            attention_cross_shared_fast_into(
                qs.data(),
                ks.data(),
                vs.data(),
                qh.data(),
                kh.data(),
                vh.data(),
                scale,
                bs,
                ns,
                nd,
                d,
                &mut scratch,
                &mut shared,
            );
            for (i, (&a, &b)) in spliced.iter().zip(&shared).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "bs={bs} ns={ns} nd={nd} d={d}: element {i} diverges ({a} vs {b})"
                );
            }
        }
    }

    #[test]
    fn pair_fast_matches_dense_fast_bitwise() {
        for &(bs, d) in &[(100usize, 32usize), (3, 7), (1, 1), (4, 16)] {
            let n = 2;
            let mut seed = 19 + (bs * 13 + d) as u64;
            let q = rand_tensor(Shape::d3(bs, n, d), &mut seed);
            let k = rand_tensor(Shape::d3(bs, n, d), &mut seed);
            let v = rand_tensor(Shape::d3(bs, n, d), &mut seed);
            let scale = 1.0 / (d as f32).sqrt();

            let mut scratch = vec![0.0f32; bs * n * n];
            let mut dense = vec![0.0f32; bs * n * d];
            attention_fast_into(
                q.data(),
                k.data(),
                v.data(),
                None,
                scale,
                bs,
                n,
                d,
                &mut scratch,
                &mut dense,
            );
            let mut paired = vec![0.0f32; bs * n * d];
            attention_pair_fast_into(q.data(), k.data(), v.data(), scale, bs, d, &mut paired);
            for (i, (&a, &b)) in dense.iter().zip(&paired).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "bs={bs} d={d}: element {i} diverges ({a} vs {b})"
                );
            }
        }
    }
}
