//! Batched (rank-3) matrix multiplication.
//!
//! Self-attention operates on per-sample `[n, d]` matrices stacked into a
//! `[batch, n, d]` tensor; these kernels apply the 2-D kernels batch slice by
//! batch slice. As with the 2-D kernels, all three transpose flavours exist
//! because backward passes need them: for `C = bmm(A, B)`,
//! `dA = bmm_nt(dC, B)` and `dB = bmm_tn(A, dC)`.

use super::dispatch::should_par;
use super::matmul::fast::{matmul_nn_fast_into, matmul_nt_fast_into};
use super::matmul::{matmul_nn_into, matmul_nt_into, matmul_tn_into};
use crate::{Shape, Tensor};

/// Fans `bs` batch slices out over the global pool, calling
/// `f(slice_index, c_slice)` per slice, or runs the same loop serially
/// below the dispatch threshold. Per-slice arithmetic is untouched, so
/// parallel output is bit-identical to serial output.
fn for_each_slice(
    c: &mut [f32],
    bs: usize,
    slice_len: usize,
    work_per_slice: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if should_par(bs * work_per_slice, bs) {
        seqfm_parallel::par_units(seqfm_parallel::global(), c, slice_len, |b0, chunk| {
            for (j, c_slice) in chunk.chunks_mut(slice_len).enumerate() {
                f(b0 + j, c_slice);
            }
        });
    } else {
        for (i, c_slice) in c.chunks_mut(slice_len).enumerate() {
            f(i, c_slice);
        }
    }
}

/// `C[b,m,n] = A[b,m,k] · B[b,k,n]` per batch slice.
///
/// # Panics
/// Panics if either operand is not rank 3, batch sizes differ, or inner
/// dimensions disagree.
pub fn bmm_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, m, k) = dims3(a, "bmm_nn lhs");
    let (bs2, k2, n) = dims3(b, "bmm_nn rhs");
    assert_eq!(bs, bs2, "bmm_nn batch mismatch: {} vs {}", a.shape(), b.shape());
    assert_eq!(k, k2, "bmm_nn inner dim mismatch: {} vs {}", a.shape(), b.shape());
    let mut out = Tensor::zeros(Shape::d3(bs, m, n));
    bmm_nn_into(a.data(), b.data(), out.data_mut(), bs, m, k, n);
    out
}

/// `C[b,m,n] = A[b,m,k] · B[b,n,k]ᵀ` per batch slice (e.g. `Q·Kᵀ`).
///
/// # Panics
/// Panics if either operand is not rank 3, batch sizes differ, or inner
/// dimensions disagree.
pub fn bmm_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, m, k) = dims3(a, "bmm_nt lhs");
    let (bs2, n, k2) = dims3(b, "bmm_nt rhs");
    assert_eq!(bs, bs2, "bmm_nt batch mismatch: {} vs {}", a.shape(), b.shape());
    assert_eq!(k, k2, "bmm_nt inner dim mismatch: {} vs {}", a.shape(), b.shape());
    let mut out = Tensor::zeros(Shape::d3(bs, m, n));
    bmm_nt_into(a.data(), b.data(), out.data_mut(), bs, m, k, n);
    out
}

/// `C[b,m,n] = A[b,k,m]ᵀ · B[b,k,n]` per batch slice.
///
/// # Panics
/// Panics if either operand is not rank 3, batch sizes differ, or inner
/// dimensions disagree.
pub fn bmm_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, k, m) = dims3(a, "bmm_tn lhs");
    let (bs2, k2, n) = dims3(b, "bmm_tn rhs");
    assert_eq!(bs, bs2, "bmm_tn batch mismatch: {} vs {}", a.shape(), b.shape());
    assert_eq!(k, k2, "bmm_tn inner dim mismatch: {} vs {}", a.shape(), b.shape());
    let mut out = Tensor::zeros(Shape::d3(bs, m, n));
    bmm_tn_into(a.data(), b.data(), out.data_mut(), bs, m, k, n);
    out
}

/// Raw slice kernel: per-slice `c[i] += a[i]ᵀ · b[i]` over `bs` batch slices
/// (`a: [bs,k,m]`, `b: [bs,k,n]`, `c: [bs,m,n]`). Accumulates into `c` — the
/// backward pass's `dB = bmm_tn(A, dC)` writes straight into pooled gradient
/// buffers through this.
pub fn bmm_tn_into(a: &[f32], b: &[f32], c: &mut [f32], bs: usize, m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), bs * k * m);
    debug_assert_eq!(b.len(), bs * k * n);
    debug_assert_eq!(c.len(), bs * m * n);
    for_each_slice(c, bs, m * n, m * k * n, |i, c_slice| {
        matmul_tn_into(
            &a[i * k * m..(i + 1) * k * m],
            &b[i * k * n..(i + 1) * k * n],
            c_slice,
            m,
            k,
            n,
        );
    });
}

/// Raw slice kernel: per-slice `c[i] += a[i] · b[i]` over `bs` batch slices
/// (`a: [bs,m,k]`, `b: [bs,k,n]`, `c: [bs,m,n]`). Accumulates into `c`, so
/// zero it first when a plain product is wanted.
pub fn bmm_nn_into(a: &[f32], b: &[f32], c: &mut [f32], bs: usize, m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), bs * m * k);
    debug_assert_eq!(b.len(), bs * k * n);
    debug_assert_eq!(c.len(), bs * m * n);
    for_each_slice(c, bs, m * n, m * k * n, |i, c_slice| {
        matmul_nn_into(
            &a[i * m * k..(i + 1) * m * k],
            &b[i * k * n..(i + 1) * k * n],
            c_slice,
            m,
            k,
            n,
        );
    });
}

/// Raw slice kernel: per-slice `c[i] += a[i] · b[i]ᵀ` over `bs` batch slices
/// (`a: [bs,m,k]`, `b: [bs,n,k]`, `c: [bs,m,n]`). Accumulates into `c`.
pub fn bmm_nt_into(a: &[f32], b: &[f32], c: &mut [f32], bs: usize, m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), bs * m * k);
    debug_assert_eq!(b.len(), bs * n * k);
    debug_assert_eq!(c.len(), bs * m * n);
    for_each_slice(c, bs, m * n, m * k * n, |i, c_slice| {
        matmul_nt_into(
            &a[i * m * k..(i + 1) * m * k],
            &b[i * n * k..(i + 1) * n * k],
            c_slice,
            m,
            k,
            n,
        );
    });
}

/// Fast-profile [`bmm_nn_into`]: per-slice fused-FMA matmul (see
/// [`super::matmul::fast`]) — deterministic, but not bit-equal to the exact
/// kernel.
pub fn bmm_nn_fast_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    bs: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), bs * m * k);
    debug_assert_eq!(b.len(), bs * k * n);
    debug_assert_eq!(c.len(), bs * m * n);
    for_each_slice(c, bs, m * n, m * k * n, |i, c_slice| {
        matmul_nn_fast_into(
            &a[i * m * k..(i + 1) * m * k],
            &b[i * k * n..(i + 1) * k * n],
            c_slice,
            m,
            k,
            n,
        );
    });
}

/// Fast-profile [`bmm_nt_into`] (e.g. the fast `Q·Kᵀ`).
pub fn bmm_nt_fast_into(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    bs: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), bs * m * k);
    debug_assert_eq!(b.len(), bs * n * k);
    debug_assert_eq!(c.len(), bs * m * n);
    for_each_slice(c, bs, m * n, m * k * n, |i, c_slice| {
        matmul_nt_fast_into(
            &a[i * m * k..(i + 1) * m * k],
            &b[i * n * k..(i + 1) * n * k],
            c_slice,
            m,
            k,
            n,
        );
    });
}

fn dims3(t: &Tensor, what: &str) -> (usize, usize, usize) {
    assert_eq!(t.shape().rank(), 3, "{what} must be rank 3, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1), t.shape().dim(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::matmul::{matmul_nn, matmul_nt, matmul_tn};
    use crate::testutil::{assert_close, rand_tensor};

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let mut seed = 7;
        let a = rand_tensor(Shape::d3(3, 4, 5), &mut seed);
        let b = rand_tensor(Shape::d3(3, 5, 2), &mut seed);
        let c = bmm_nn(&a, &b);
        for i in 0..3 {
            let ai = Tensor::from_vec(Shape::d2(4, 5), a.data()[i * 20..(i + 1) * 20].to_vec());
            let bi = Tensor::from_vec(Shape::d2(5, 2), b.data()[i * 10..(i + 1) * 10].to_vec());
            let ci = matmul_nn(&ai, &bi);
            assert_close(&c.data()[i * 8..(i + 1) * 8], ci.data(), 1e-5);
        }
    }

    #[test]
    fn bmm_nt_matches_per_slice() {
        let mut seed = 11;
        let a = rand_tensor(Shape::d3(2, 3, 4), &mut seed);
        let b = rand_tensor(Shape::d3(2, 5, 4), &mut seed);
        let c = bmm_nt(&a, &b);
        assert_eq!(c.shape(), Shape::d3(2, 3, 5));
        for i in 0..2 {
            let ai = Tensor::from_vec(Shape::d2(3, 4), a.data()[i * 12..(i + 1) * 12].to_vec());
            let bi = Tensor::from_vec(Shape::d2(5, 4), b.data()[i * 20..(i + 1) * 20].to_vec());
            let ci = matmul_nt(&ai, &bi);
            assert_close(&c.data()[i * 15..(i + 1) * 15], ci.data(), 1e-5);
        }
    }

    #[test]
    fn bmm_tn_matches_per_slice() {
        let mut seed = 13;
        let a = rand_tensor(Shape::d3(2, 4, 3), &mut seed);
        let b = rand_tensor(Shape::d3(2, 4, 5), &mut seed);
        let c = bmm_tn(&a, &b);
        assert_eq!(c.shape(), Shape::d3(2, 3, 5));
        for i in 0..2 {
            let ai = Tensor::from_vec(Shape::d2(4, 3), a.data()[i * 12..(i + 1) * 12].to_vec());
            let bi = Tensor::from_vec(Shape::d2(4, 5), b.data()[i * 20..(i + 1) * 20].to_vec());
            let ci = matmul_tn(&ai, &bi);
            assert_close(&c.data()[i * 15..(i + 1) * 15], ci.data(), 1e-5);
        }
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        let mut seed = 17;
        let a = rand_tensor(Shape::d3(2, 3, 4), &mut seed);
        let b = rand_tensor(Shape::d3(2, 4, 5), &mut seed);
        let expect = bmm_nn(&a, &b);
        let mut c = vec![0.0f32; 2 * 3 * 5];
        bmm_nn_into(a.data(), b.data(), &mut c, 2, 3, 4, 5);
        assert_eq!(c, expect.data());
        let bt = rand_tensor(Shape::d3(2, 5, 4), &mut seed);
        let expect_nt = bmm_nt(&a, &bt);
        c.fill(0.0);
        bmm_nt_into(a.data(), bt.data(), &mut c, 2, 3, 4, 5);
        assert_eq!(c, expect_nt.data());
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn bmm_rejects_batch_mismatch() {
        let a = Tensor::zeros(Shape::d3(2, 3, 4));
        let b = Tensor::zeros(Shape::d3(3, 4, 5));
        let _ = bmm_nn(&a, &b);
    }
}
