//! Shared test helpers (also used by downstream crates' tests).

use crate::{Shape, Tensor};

/// Asserts that two slices are elementwise within `tol` of each other.
///
/// # Panics
/// Panics (with the offending index and values) when any pair differs by more
/// than `tol`, or when lengths differ.
pub fn assert_close(actual: &[f32], expected: &[f32], tol: f32) {
    assert_eq!(
        actual.len(),
        expected.len(),
        "length mismatch: {} vs {}",
        actual.len(),
        expected.len()
    );
    for (i, (&a, &e)) in actual.iter().zip(expected).enumerate() {
        assert!((a - e).abs() <= tol, "element {i}: actual {a} vs expected {e} (tol {tol})");
    }
}

/// Deterministic pseudo-random tensor in `[-1, 1)` from a tiny splitmix64
/// generator — keeps this crate dependency-free (no `rand` here).
///
/// The `seed` is advanced in place so consecutive calls yield different data.
pub fn rand_tensor(shape: Shape, seed: &mut u64) -> Tensor {
    let n = shape.numel();
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(next_uniform(seed) * 2.0 - 1.0);
    }
    Tensor::from_vec(shape, data)
}

/// A counting global-allocator wrapper for zero-allocation assertions.
///
/// Counts every `alloc`/`alloc_zeroed`/`realloc` routed through the global
/// allocator (deallocations are free — returning memory is not
/// "allocating") and delegates verbatim to [`std::alloc::System`]. It is
/// inert unless a **binary** installs it:
///
/// ```ignore
/// use seqfm_tensor::testutil::CountingAlloc;
///
/// #[global_allocator]
/// static GLOBAL: CountingAlloc = CountingAlloc;
///
/// let before = CountingAlloc::allocations();
/// // ... hot path ...
/// assert_eq!(CountingAlloc::allocations() - before, 0);
/// ```
///
/// One definition shared by the core zero-allocation test and the kernels
/// bench, so the counting policy behind the published
/// `allocs_per_scored_request` number and the test's guarantee can never
/// drift apart.
pub struct CountingAlloc;

static ALLOCATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl CountingAlloc {
    /// Total allocations counted so far in this process.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(std::sync::atomic::Ordering::SeqCst)
    }

    fn count() {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

// SAFETY: delegates every operation verbatim to `System`; the counter has
// no effect on the returned memory.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        Self::count();
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        Self::count();
        unsafe { std::alloc::System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        Self::count();
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
}

/// Next uniform sample in `[0, 1)` from a splitmix64 stream.
pub fn next_uniform(seed: &mut u64) -> f32 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // take the top 24 bits for a clean f32 mantissa
    ((z >> 40) as f32) / ((1u64 << 24) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_tensor_is_deterministic_and_bounded() {
        let mut s1 = 42;
        let mut s2 = 42;
        let a = rand_tensor(Shape::d2(4, 4), &mut s1);
        let b = rand_tensor(Shape::d2(4, 4), &mut s2);
        assert_eq!(a.data(), b.data());
        assert!(a.data().iter().all(|&v| (-1.0..1.0).contains(&v)));
        // stream advances
        let c = rand_tensor(Shape::d2(4, 4), &mut s1);
        assert_ne!(a.data(), c.data());
    }

    #[test]
    #[should_panic(expected = "element 1")]
    fn assert_close_reports_index() {
        assert_close(&[1.0, 2.0], &[1.0, 3.0], 0.5);
    }
}
