//! Regression metrics: MAE and RRSE (paper Eq. 28, Table IV), plus RMSE.

/// Mean absolute error.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn mae(pred: &[f32], truth: &[f32]) -> f64 {
    check(pred, truth);
    pred.iter().zip(truth).map(|(&p, &t)| (p as f64 - t as f64).abs()).sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn rmse(pred: &[f32], truth: &[f32]) -> f64 {
    check(pred, truth);
    let sse: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            let e = p as f64 - t as f64;
            e * e
        })
        .sum();
    (sse / pred.len() as f64).sqrt()
}

/// Root relative squared error (paper Eq. 28):
/// `√( Σ(ŷ−y)² / (|S|·Var(y)) )` — squared error normalised by the variance
/// of the ground truth, so 1.0 matches the predict-the-mean baseline.
///
/// # Panics
/// Panics if lengths differ, inputs are empty, or the truth is constant
/// (zero variance).
pub fn rrse(pred: &[f32], truth: &[f32]) -> f64 {
    check(pred, truth);
    let n = truth.len() as f64;
    let mean = truth.iter().map(|&t| t as f64).sum::<f64>() / n;
    let var = truth.iter().map(|&t| (t as f64 - mean) * (t as f64 - mean)).sum::<f64>() / n;
    assert!(var > 0.0, "RRSE undefined for constant ground truth");
    let sse: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            let e = p as f64 - t as f64;
            e * e
        })
        .sum();
    (sse / (n * var)).sqrt()
}

fn check(pred: &[f32], truth: &[f32]) {
    assert_eq!(pred.len(), truth.len(), "pred/truth length mismatch");
    assert!(!pred.is_empty(), "empty input");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hand_checked_values() {
        let pred = [3.0f32, 5.0, 1.0];
        let truth = [2.0f32, 5.0, 3.0];
        assert!((mae(&pred, &truth) - 1.0).abs() < 1e-9);
        assert!((rmse(&pred, &truth) - (5.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn perfect_prediction_is_zero() {
        let t = [1.0f32, 2.0, 3.0];
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
        assert_eq!(rrse(&t, &t), 0.0);
    }

    #[test]
    fn mean_predictor_has_rrse_one() {
        let truth = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let mean = truth.iter().sum::<f32>() / 5.0;
        let pred = [mean; 5];
        assert!((rrse(&pred, &truth) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "constant ground truth")]
    fn rrse_rejects_constant_truth() {
        let _ = rrse(&[1.0, 2.0], &[3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_checked() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        /// MAE ≤ RMSE (Jensen) and both are non-negative.
        #[test]
        fn mae_bounded_by_rmse(
            pred in proptest::collection::vec(-10.0f32..10.0, 1..50),
            truth in proptest::collection::vec(-10.0f32..10.0, 1..50),
        ) {
            let n = pred.len().min(truth.len());
            let p = &pred[..n];
            let t = &truth[..n];
            prop_assert!(mae(p, t) <= rmse(p, t) + 1e-9);
            prop_assert!(mae(p, t) >= 0.0);
        }

        /// RRSE scales correctly: predicting the truth's mean gives exactly 1.
        #[test]
        fn rrse_of_mean_is_one(truth in proptest::collection::vec(-10.0f32..10.0, 3..50)) {
            let mean = truth.iter().sum::<f32>() / truth.len() as f32;
            let spread: f32 = truth.iter().map(|&t| (t - mean).abs()).sum();
            prop_assume!(spread > 1e-3);
            let pred = vec![mean; truth.len()];
            prop_assert!((rrse(&pred, &truth) - 1.0).abs() < 1e-3);
        }
    }
}
