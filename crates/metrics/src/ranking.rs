//! Ranking metrics: HR@K and NDCG@K (paper Eq. 27).
//!
//! The paper's protocol: for each test instance, mix the ground-truth item
//! with `J` sampled negatives, rank all `J+1` candidates, then measure
//! whether the positive lands in the top-K (HR) and how high (NDCG).

/// 0-based rank of the positive among `1 + negatives` candidates: the number
/// of negative scores strictly greater than `pos_score`, with ties counted
/// as losses (pessimistic, deterministic — a model scoring everything
/// equally gets no credit).
pub fn rank_of_positive(pos_score: f32, neg_scores: &[f32]) -> usize {
    neg_scores.iter().filter(|&&s| s >= pos_score).count()
}

/// Accumulator over test cases for HR@K / NDCG@K at several cutoffs.
#[derive(Clone, Debug)]
pub struct RankingAccumulator {
    ks: Vec<usize>,
    hits: Vec<usize>,
    ndcg: Vec<f64>,
    cases: usize,
}

impl RankingAccumulator {
    /// Accumulator for the given cutoffs (e.g. `[5, 10, 20]`).
    ///
    /// # Panics
    /// Panics if `ks` is empty or contains 0.
    pub fn new(ks: &[usize]) -> Self {
        assert!(!ks.is_empty(), "need at least one cutoff");
        assert!(ks.iter().all(|&k| k > 0), "cutoffs must be positive");
        RankingAccumulator {
            ks: ks.to_vec(),
            hits: vec![0; ks.len()],
            ndcg: vec![0.0; ks.len()],
            cases: 0,
        }
    }

    /// Records one test case given the positive's 0-based rank.
    ///
    /// HR@K counts `rank < K`; NDCG@K adds `1/log₂(rank+2)` when it hits
    /// (ideal DCG is 1 because there is a single relevant item — Eq. 27).
    pub fn record(&mut self, rank: usize) {
        self.cases += 1;
        for (i, &k) in self.ks.iter().enumerate() {
            if rank < k {
                self.hits[i] += 1;
                self.ndcg[i] += 1.0 / ((rank as f64) + 2.0).log2();
            }
        }
    }

    /// Convenience: records a case from raw scores.
    pub fn record_scores(&mut self, pos_score: f32, neg_scores: &[f32]) {
        self.record(rank_of_positive(pos_score, neg_scores));
    }

    /// Number of recorded cases.
    pub fn cases(&self) -> usize {
        self.cases
    }

    /// `HR@k` for a cutoff previously passed to [`Self::new`].
    ///
    /// # Panics
    /// Panics if `k` was not configured.
    pub fn hr(&self, k: usize) -> f64 {
        let i = self.index(k);
        self.hits[i] as f64 / self.cases.max(1) as f64
    }

    /// `NDCG@k` for a configured cutoff.
    ///
    /// # Panics
    /// Panics if `k` was not configured.
    pub fn ndcg(&self, k: usize) -> f64 {
        let i = self.index(k);
        self.ndcg[i] / self.cases.max(1) as f64
    }

    fn index(&self, k: usize) -> usize {
        self.ks
            .iter()
            .position(|&kk| kk == k)
            .unwrap_or_else(|| panic!("cutoff {k} not configured (have {:?})", self.ks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rank_counts_strictly_better_negatives() {
        assert_eq!(rank_of_positive(0.9, &[0.1, 0.5, 0.95]), 1);
        assert_eq!(rank_of_positive(1.0, &[0.1, 0.5]), 0);
        assert_eq!(rank_of_positive(0.0, &[0.1, 0.5]), 2);
        // ties count against the model
        assert_eq!(rank_of_positive(0.5, &[0.5, 0.4]), 1);
    }

    #[test]
    fn hand_checked_hr_and_ndcg() {
        let mut acc = RankingAccumulator::new(&[1, 5]);
        acc.record(0); // hit@1: ndcg 1/log2(2) = 1
        acc.record(3); // miss@1, hit@5: ndcg 1/log2(5)
        acc.record(9); // miss both
        assert!((acc.hr(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((acc.hr(5) - 2.0 / 3.0).abs() < 1e-12);
        let expect_ndcg5 = (1.0 + 1.0 / 5.0f64.log2()) / 3.0;
        assert!((acc.ndcg(5) - expect_ndcg5).abs() < 1e-12);
        assert_eq!(acc.cases(), 3);
    }

    #[test]
    fn perfect_ranker_scores_one() {
        let mut acc = RankingAccumulator::new(&[5, 10]);
        for _ in 0..10 {
            acc.record(0);
        }
        assert_eq!(acc.hr(5), 1.0);
        assert_eq!(acc.ndcg(10), 1.0);
    }

    #[test]
    #[should_panic(expected = "not configured")]
    fn unknown_cutoff_panics() {
        let acc = RankingAccumulator::new(&[5]);
        let _ = acc.hr(10);
    }

    proptest! {
        /// HR@K is monotone in K and NDCG ≤ HR.
        #[test]
        fn hr_monotone_ndcg_bounded(ranks in proptest::collection::vec(0usize..50, 1..100)) {
            let mut acc = RankingAccumulator::new(&[5, 10, 20]);
            for r in &ranks {
                acc.record(*r);
            }
            prop_assert!(acc.hr(5) <= acc.hr(10) + 1e-12);
            prop_assert!(acc.hr(10) <= acc.hr(20) + 1e-12);
            for k in [5usize, 10, 20] {
                prop_assert!(acc.ndcg(k) <= acc.hr(k) + 1e-12);
                prop_assert!(acc.ndcg(k) >= 0.0 && acc.hr(k) <= 1.0);
            }
        }

        /// Rank is invariant under any strictly-increasing transform of the
        /// scores.
        #[test]
        fn rank_invariant_to_monotone_transform(
            pos in -5.0f32..5.0,
            negs in proptest::collection::vec(-5.0f32..5.0, 0..40),
        ) {
            let base = rank_of_positive(pos, &negs);
            let f = |x: f32| 2.5 * x + 1.0;
            let mapped: Vec<f32> = negs.iter().map(|&x| f(x)).collect();
            prop_assert_eq!(base, rank_of_positive(f(pos), &mapped));
        }
    }
}
