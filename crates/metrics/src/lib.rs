#![warn(missing_docs)]

//! # seqfm-metrics
//!
//! Evaluation metrics for the three SeqFM task families (paper §V-C):
//!
//! * [`ranking`] — HR@K and NDCG@K under the sampled-negative leave-one-out
//!   protocol (Eq. 27);
//! * [`classification`] — AUC (rank-sum with tie handling) and RMSE over
//!   predicted probabilities;
//! * [`regression`] — MAE and RRSE (Eq. 28), plus RMSE.
//!
//! All metrics accumulate in `f64` regardless of the `f32` model outputs.

pub mod classification;
pub mod ranking;
pub mod regression;

pub use classification::{auc, log_loss, rmse_binary};
pub use ranking::{rank_of_positive, RankingAccumulator};
pub use regression::{mae, rmse, rrse};
