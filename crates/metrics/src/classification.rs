//! Classification metrics: AUC and RMSE over probabilities (paper §V-C,
//! Table III), plus log-loss for training diagnostics.

/// Area under the ROC curve via the rank-sum (Mann–Whitney U) formulation.
/// Ties receive half credit. Returns 0.5 when either class is empty.
///
/// # Panics
/// Panics if `scores.len() != labels.len()`.
pub fn auc(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    // average ranks, handling ties
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0; // 1-based
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let rank_sum_pos: f64 = ranks.iter().zip(labels).filter(|(_, &l)| l).map(|(&r, _)| r).sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Root mean squared error between predicted probabilities and 0/1 labels —
/// the paper pairs AUC with RMSE for CTR (Table III, following NFM/AFM).
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn rmse_binary(probs: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "probs/labels length mismatch");
    assert!(!probs.is_empty(), "empty input");
    let sse: f64 = probs
        .iter()
        .zip(labels)
        .map(|(&p, &l)| {
            let t = if l { 1.0 } else { 0.0 };
            let e = p as f64 - t;
            e * e
        })
        .sum();
    (sse / probs.len() as f64).sqrt()
}

/// Mean binary log-loss (cross-entropy, Eq. 24) with probability clamping.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn log_loss(probs: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "probs/labels length mismatch");
    assert!(!probs.is_empty(), "empty input");
    let eps = 1e-7f64;
    let sum: f64 = probs
        .iter()
        .zip(labels)
        .map(|(&p, &l)| {
            let p = (p as f64).clamp(eps, 1.0 - eps);
            if l {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    sum / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn auc_hand_checked() {
        // perfect separation
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &[false, false, true, true]), 1.0);
        // perfectly wrong
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &[false, false, true, true]), 0.0);
        // positives {0.6, 0.45} vs negatives {0.4, 0.5}: 3 of 4 pairs correct
        assert!((auc(&[0.4, 0.6, 0.5, 0.45], &[false, true, false, true]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_ties_get_half_credit() {
        let a = auc(&[0.5, 0.5], &[true, false]);
        assert!((a - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_classes() {
        assert_eq!(auc(&[0.3, 0.4], &[true, true]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn rmse_and_logloss_hand_checked() {
        let probs = [1.0f32, 0.0, 0.5];
        let labels = [true, false, false];
        assert!((rmse_binary(&probs, &labels) - (0.25f64 / 3.0).sqrt()).abs() < 1e-9);
        let ll = log_loss(&[0.5, 0.5], &[true, false]);
        assert!((ll - std::f64::consts::LN_2).abs() < 1e-6);
    }

    proptest! {
        /// AUC is invariant to strictly monotone score transforms.
        #[test]
        fn auc_monotone_invariant(
            scores in proptest::collection::vec(-3.0f32..3.0, 2..60),
            flags in proptest::collection::vec(any::<bool>(), 2..60),
        ) {
            let n = scores.len().min(flags.len());
            let s = &scores[..n];
            let l = &flags[..n];
            let base = auc(s, l);
            let mapped: Vec<f32> = s.iter().map(|&x| x * 0.5 + 2.0).collect();
            prop_assert!((base - auc(&mapped, l)).abs() < 1e-9);
        }

        /// AUC is bounded and flipping all scores mirrors it around 0.5.
        #[test]
        fn auc_bounds_and_symmetry(
            scores in proptest::collection::vec(-3.0f32..3.0, 2..60),
            flags in proptest::collection::vec(any::<bool>(), 2..60),
        ) {
            let n = scores.len().min(flags.len());
            let s = &scores[..n];
            let l = &flags[..n];
            let a = auc(s, l);
            prop_assert!((0.0..=1.0).contains(&a));
            let neg: Vec<f32> = s.iter().map(|&x| -x).collect();
            let b = auc(&neg, l);
            let n_pos = l.iter().filter(|&&x| x).count();
            if n_pos > 0 && n_pos < n {
                prop_assert!((a + b - 1.0).abs() < 1e-9);
            }
        }
    }
}
