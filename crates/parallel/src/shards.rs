//! The shared core of every sharded queue in this crate: one
//! `Mutex<VecDeque>` per shard, an atomic count of queued items, and a
//! park/wake protocol on a single `Condvar`.
//!
//! Both the thread pool's task queues ([`pool`](crate::pool)) and the
//! serving-side [`WorkQueue`](crate::WorkQueue) are thin wrappers over this
//! type, so the two subtle protocols — *lock-then-notify* on push (no lost
//! wakeups) and *increment-under-the-shard-lock* (the `queued` counter can
//! never transiently underflow, because an item's pop strictly follows its
//! own increment) — live in exactly one place.
//!
//! A queue may additionally carry a **capacity bound** across all shards
//! ([`Shards::bounded`]): [`Shards::try_push`] refuses items at capacity
//! (the caller's backpressure signal) and [`Shards::push_wait`] parks the
//! producer on a dedicated `space` condvar until a pop frees a slot. The
//! producer-side park mirrors the consumer-side one — condition checked
//! under the `closed` mutex, poppers lock-then-notify — so wakeups cannot
//! be lost in either direction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

pub(crate) struct Shards<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    /// Items pushed but not yet popped — the wake condition.
    queued: AtomicUsize,
    /// Total queued-item bound across all shards; `usize::MAX` = unbounded.
    capacity: usize,
    /// Producers currently parked (or about to park) in [`Shards::push_wait`].
    /// Lets the pop hot path skip the lock + `space` notification entirely
    /// in the common nobody-is-parked case — see the SeqCst pairing note in
    /// `try_pop`.
    parked_producers: AtomicUsize,
    /// `true` once the producing side is done. Guards the parking condvar.
    closed: Mutex<bool>,
    wake: Condvar,
    /// Producers parked on a full bounded queue (see [`Shards::push_wait`]).
    space: Condvar,
}

impl<T> Shards<T> {
    pub(crate) fn new(n: usize) -> Self {
        Self::bounded(n, usize::MAX)
    }

    /// A queue refusing to hold more than `capacity` items across all
    /// shards (clamped to at least 1).
    pub(crate) fn bounded(n: usize, capacity: usize) -> Self {
        Shards {
            shards: (0..n.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            capacity: capacity.max(1),
            parked_producers: AtomicUsize::new(0),
            closed: Mutex::new(false),
            wake: Condvar::new(),
            space: Condvar::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `item` on shard `shard % len` and wakes one parked consumer.
    /// Ignores the capacity bound — the unbounded producers (thread-pool
    /// task injection) use this path.
    pub(crate) fn push(&self, shard: usize, item: T) {
        {
            let mut q =
                self.shards[shard % self.shards.len()].lock().expect("queue shard poisoned");
            // Increment while holding the shard lock: a popper can only see
            // (and decrement for) this item after the lock is released, so
            // `queued` never transiently underflows.
            self.queued.fetch_add(1, Ordering::Release);
            q.push_back(item);
        }
        self.notify_push();
    }

    /// Enqueues `item` unless the queue already holds `capacity` items;
    /// on refusal the item is handed back untouched. The admission check
    /// and the increment are one CAS, so the bound is exact even with
    /// concurrent producers on different shards.
    pub(crate) fn try_push(&self, shard: usize, item: T) -> Result<(), T> {
        {
            let mut q =
                self.shards[shard % self.shards.len()].lock().expect("queue shard poisoned");
            let mut cur = self.queued.load(Ordering::Acquire);
            loop {
                if cur >= self.capacity {
                    return Err(item);
                }
                match self.queued.compare_exchange(
                    cur,
                    cur + 1,
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
            q.push_back(item);
        }
        self.notify_push();
        Ok(())
    }

    /// Enqueues `item`, parking until a pop frees capacity if the queue is
    /// full. Hands the item back only if the queue is closed while waiting.
    pub(crate) fn push_wait(&self, shard: usize, item: T) -> Result<(), T> {
        let mut item = item;
        loop {
            item = match self.try_push(shard, item) {
                Ok(()) => return Ok(()),
                Err(back) => back,
            };
            let mut closed = self.closed.lock().expect("queue closed flag poisoned");
            // Announce the park *before* the final fullness re-check (both
            // SeqCst): either this load observes a pop's decrement and we
            // skip the wait, or that pop's subsequent `parked_producers`
            // load observes our increment and sends the wakeup. Its
            // lock-then-notify cannot fire between our re-check and the
            // wait, because we hold `closed` for that whole window.
            self.parked_producers.fetch_add(1, Ordering::SeqCst);
            while self.queued.load(Ordering::SeqCst) >= self.capacity {
                if *closed {
                    self.parked_producers.fetch_sub(1, Ordering::SeqCst);
                    return Err(item);
                }
                closed = self.space.wait(closed).expect("queue closed flag poisoned");
            }
            self.parked_producers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Lock-then-notify pairs with the consumer park loop: a consumer that
    /// observed `queued == 0` under this lock is guaranteed to be inside
    /// `wait` before we notify, so the wakeup cannot be lost.
    fn notify_push(&self) {
        drop(self.closed.lock().expect("queue closed flag poisoned"));
        self.wake.notify_one();
    }

    /// Pops one item, preferring shard `home`, stealing from siblings
    /// otherwise. Never blocks.
    pub(crate) fn try_pop(&self, home: usize) -> Option<T> {
        let n = self.shards.len();
        for i in 0..n {
            let shard = &self.shards[(home + i) % n];
            let item = shard.lock().expect("queue shard poisoned").pop_front();
            if let Some(item) = item {
                // SeqCst pairs with `push_wait`: this decrement precedes the
                // `parked_producers` load, the producer's increment precedes
                // its fullness re-check — in any interleaving at least one
                // side sees the other, so a wakeup is never lost while the
                // common nobody-parked pop stays lock-free.
                self.queued.fetch_sub(1, Ordering::SeqCst);
                if self.parked_producers.load(Ordering::SeqCst) > 0 {
                    // Lock-then-notify, aimed at producers parked on a full
                    // queue (bounded queues only — nothing parks otherwise).
                    drop(self.closed.lock().expect("queue closed flag poisoned"));
                    self.space.notify_one();
                }
                return Some(item);
            }
        }
        None
    }

    /// Blocks for the next item (own shard first, then stealing). Returns
    /// `None` only once the queue is closed **and** every shard is drained.
    pub(crate) fn pop_or_park(&self, home: usize) -> Option<T> {
        loop {
            if let Some(item) = self.try_pop(home) {
                return Some(item);
            }
            let mut closed = self.closed.lock().expect("queue closed flag poisoned");
            loop {
                if self.queued.load(Ordering::Acquire) > 0 {
                    break;
                }
                if *closed {
                    return None;
                }
                closed = self.wake.wait(closed).expect("queue closed flag poisoned");
            }
        }
    }

    /// Bulk drain: blocks for the first item, then greedily takes up to
    /// `max - 1` more that are already queued (own shard first, stealing
    /// otherwise) **without** blocking again. Appends to `out` and returns
    /// `true`, or returns `false` once the queue is closed and drained.
    pub(crate) fn pop_many_or_park(&self, home: usize, max: usize, out: &mut Vec<T>) -> bool {
        let Some(first) = self.pop_or_park(home) else {
            return false;
        };
        out.push(first);
        while out.len() < max {
            match self.try_pop(home) {
                Some(item) => out.push(item),
                None => break,
            }
        }
        true
    }

    /// Marks the queue closed and wakes every parked consumer and producer;
    /// already-queued items remain poppable (drain semantics).
    pub(crate) fn close(&self) {
        *self.closed.lock().expect("queue closed flag poisoned") = true;
        self.wake.notify_all();
        self.space.notify_all();
    }
}
