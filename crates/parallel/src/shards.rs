//! The shared core of every sharded queue in this crate: one
//! `Mutex<VecDeque>` per shard, an atomic count of queued items, and a
//! park/wake protocol on a single `Condvar`.
//!
//! Both the thread pool's task queues ([`pool`](crate::pool)) and the
//! serving-side [`WorkQueue`](crate::WorkQueue) are thin wrappers over this
//! type, so the two subtle protocols — *lock-then-notify* on push (no lost
//! wakeups) and *increment-under-the-shard-lock* (the `queued` counter can
//! never transiently underflow, because an item's pop strictly follows its
//! own increment) — live in exactly one place.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

pub(crate) struct Shards<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    /// Items pushed but not yet popped — the wake condition.
    queued: AtomicUsize,
    /// `true` once the producing side is done. Guards the parking condvar.
    closed: Mutex<bool>,
    wake: Condvar,
}

impl<T> Shards<T> {
    pub(crate) fn new(n: usize) -> Self {
        Shards {
            shards: (0..n.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            closed: Mutex::new(false),
            wake: Condvar::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.shards.len()
    }

    /// Enqueues `item` on shard `shard % len` and wakes one parked consumer.
    pub(crate) fn push(&self, shard: usize, item: T) {
        {
            let mut q =
                self.shards[shard % self.shards.len()].lock().expect("queue shard poisoned");
            // Increment while holding the shard lock: a popper can only see
            // (and decrement for) this item after the lock is released, so
            // `queued` never transiently underflows.
            self.queued.fetch_add(1, Ordering::Release);
            q.push_back(item);
        }
        // Lock-then-notify pairs with the park loop: a consumer that
        // observed `queued == 0` under this lock is guaranteed to be inside
        // `wait` before we notify, so the wakeup cannot be lost.
        drop(self.closed.lock().expect("queue closed flag poisoned"));
        self.wake.notify_one();
    }

    /// Pops one item, preferring shard `home`, stealing from siblings
    /// otherwise. Never blocks.
    pub(crate) fn try_pop(&self, home: usize) -> Option<T> {
        let n = self.shards.len();
        for i in 0..n {
            let shard = &self.shards[(home + i) % n];
            let item = shard.lock().expect("queue shard poisoned").pop_front();
            if let Some(item) = item {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                return Some(item);
            }
        }
        None
    }

    /// Blocks for the next item (own shard first, then stealing). Returns
    /// `None` only once the queue is closed **and** every shard is drained.
    pub(crate) fn pop_or_park(&self, home: usize) -> Option<T> {
        loop {
            if let Some(item) = self.try_pop(home) {
                return Some(item);
            }
            let mut closed = self.closed.lock().expect("queue closed flag poisoned");
            loop {
                if self.queued.load(Ordering::Acquire) > 0 {
                    break;
                }
                if *closed {
                    return None;
                }
                closed = self.wake.wait(closed).expect("queue closed flag poisoned");
            }
        }
    }

    /// Marks the queue closed and wakes every parked consumer; already-
    /// queued items remain poppable (drain semantics).
    pub(crate) fn close(&self) {
        *self.closed.lock().expect("queue closed flag poisoned") = true;
        self.wake.notify_all();
    }
}
