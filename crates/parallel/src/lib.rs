#![warn(missing_docs)]

//! # seqfm-parallel
//!
//! The workspace's parallelism subsystem — built entirely on `std`
//! (`Mutex`/`Condvar`/atomics/threads), because the build environment is
//! offline. It replaced the vendored crossbeam shim (whose single global
//! `Mutex<VecDeque>` channel serialized every dispatch) outright; the shim
//! has since been deleted from the tree.
//!
//! Four facilities, layered bottom-up:
//!
//! * [`ThreadPool`] — a persistent pool of worker threads with **per-worker
//!   sharded deques**: tasks are injected round-robin and idle workers
//!   **steal** from their siblings, so no single lock funnels every dispatch.
//!   [`ThreadPool::scope`] lets tasks borrow from the caller's stack frame
//!   (crossbeam-style), and a blocked scope *helps* by executing queued
//!   tasks, so nested scopes cannot deadlock the pool.
//! * [`par_for`] / [`par_map_reduce`] — data-parallel loops over index
//!   ranges. Chunking is deterministic (a pure function of the inputs), so
//!   results never depend on thread scheduling.
//! * [`partition`] / [`shard_seed`] — deterministic contiguous partitioning
//!   and per-shard RNG stream derivation (SplitMix64 mixing), the building
//!   blocks of reproducible data-parallel training.
//! * [`WorkQueue`] / [`Oneshot`] — the serving-side work-distributing
//!   channel (per-worker shards, round-robin submit, stealing, drain-on-
//!   close; optionally capacity-[`bounded`](WorkQueue::bounded) with a
//!   non-blocking [`try_push`](WorkQueue::try_push) backpressure signal, a
//!   parking [`push_wait`](WorkQueue::push_wait), and bulk
//!   [`recv_many`](WorkerHandle::recv_many) draining for batch coalescing)
//!   and a reusable single-value reply slot that replaces per-request
//!   channel allocation.
//!
//! The global pool ([`global`]) is sized by the `SEQFM_WORKERS` environment
//! variable when set, else by [`std::thread::available_parallelism`]; the
//! tensor kernels dispatch through it above a size threshold.

mod oneshot;
mod par;
mod pool;
mod queue;
mod shards;
mod slot;

pub use oneshot::{Disconnected, Oneshot};
pub use par::{
    chunk_ranges, par_for, par_map_reduce, par_units, par_units2, partition, shard_seed,
};
pub use pool::{configured_workers, global, in_parallel_task, Scope, ThreadPool};
pub use queue::{WorkQueue, WorkerHandle};
pub use slot::ArcSlot;

/// The `SEQFM_WORKERS` environment variable, parsed once per call:
/// `Some(n)` for a positive integer (clamped to 256), `None` when unset or
/// unparseable. The single source of truth for every consumer — the kernel
/// pool ([`default_workers`]) and the training default
/// (`TrainConfig::workers`) differ only in their fallback, never in how
/// they read the variable.
pub fn env_workers() -> Option<usize> {
    let raw = std::env::var("SEQFM_WORKERS").ok()?;
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1).map(|n| n.min(256))
}

/// Pool size implied by the environment: [`env_workers`] when set, else the
/// machine's available parallelism, else 1.
pub fn default_workers() -> usize {
    env_workers()
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}
