//! The scoped work-stealing thread pool.
//!
//! Layout: one `Mutex<VecDeque>` **per worker** (a shard), an atomic count
//! of queued tasks, and one `Condvar` for parking. Injection round-robins
//! across shards; a worker pops its own shard first and then scans its
//! siblings (work stealing), so a burst of submissions never serializes on
//! one lock the way a single shared queue does.
//!
//! Borrowed data: [`ThreadPool::scope`] spawns closures that may borrow
//! from the enclosing frame. Soundness rests on one invariant — `scope`
//! does **not** return (normally or by unwinding) until every task it
//! spawned has finished — enforced by a per-scope completion latch that is
//! always waited on, even when the scope body itself panics. While waiting,
//! the scoping thread executes queued tasks ("helping"), so a scope opened
//! from inside a pool task cannot deadlock a fully-busy pool.

use crate::shards::Shards;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send>;

thread_local! {
    static IN_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// `true` while the current thread is executing a pool task (either as a
/// pool worker or as a scoping thread helping out). Kernel-level callers
/// use this to fall back to serial execution instead of nesting parallel
/// regions that could not add real concurrency anyway.
pub fn in_parallel_task() -> bool {
    IN_TASK.with(|c| c.get())
}

/// Runs a task with the [`in_parallel_task`] flag raised, restoring the
/// previous value afterwards (the flag nests correctly under helping).
fn run_task(task: Task) {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_TASK.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(IN_TASK.with(|c| c.replace(true)));
    task();
}

/// A persistent pool of worker threads with sharded deques and work
/// stealing. See the module docs.
pub struct ThreadPool {
    shared: Arc<Shards<Task>>,
    handles: Vec<JoinHandle<()>>,
    /// Round-robin injection cursor.
    next: AtomicUsize,
}

impl ThreadPool {
    /// Spawns a pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shards::new(workers));
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("seqfm-pool-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles, next: AtomicUsize::new(0) }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues a raw task on the next shard (round-robin) and wakes one
    /// parked worker.
    fn inject(&self, task: Task) {
        self.shared.push(self.next.fetch_add(1, Ordering::Relaxed), task);
    }

    /// Runs `f` with a [`Scope`] whose spawned tasks may borrow from the
    /// enclosing environment. All spawned tasks complete before `scope`
    /// returns; the first task panic (or a panic in `f` itself) is
    /// propagated to the caller after that barrier.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = Scope { pool: self, state: Arc::clone(&state), _env: PhantomData };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The completion barrier MUST hold on every exit path — tasks may
        // borrow the caller's dying stack frame otherwise.
        self.wait_scope(&state);
        let task_panic = state.panic.lock().expect("scope panic slot poisoned").take();
        match result {
            Err(body_panic) => resume_unwind(body_panic),
            Ok(r) => {
                if let Some(p) = task_panic {
                    resume_unwind(p);
                }
                r
            }
        }
    }

    /// Blocks until `state.remaining == 0`, executing queued tasks while
    /// waiting so a scope opened from inside a pool task cannot deadlock.
    fn wait_scope(&self, state: &ScopeState) {
        while state.remaining.load(Ordering::Acquire) > 0 {
            if let Some(task) = self.shared.try_pop(0) {
                run_task(task);
                continue;
            }
            let guard = state.done.lock().expect("scope latch poisoned");
            if state.remaining.load(Ordering::Acquire) > 0 {
                // Re-check with a timeout: a task queued *after* the pop
                // scan above would otherwise leave us parked while work
                // we could help with sits idle.
                let (_g, _timeout) = state
                    .cv
                    .wait_timeout(guard, std::time::Duration::from_millis(1))
                    .expect("scope latch poisoned");
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close-then-join: workers drain every queued task before exiting.
        self.shared.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shards<Task>, me: usize) {
    while let Some(task) = shared.pop_or_park(me) {
        run_task(task);
    }
}

struct ScopeState {
    /// Spawned-but-unfinished task count; the scope's completion latch.
    remaining: AtomicUsize,
    done: Mutex<()>,
    cv: Condvar,
    /// First panic payload raised by a task of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            remaining: AtomicUsize::new(0),
            done: Mutex::new(()),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`]. Tasks may
/// borrow anything that outlives the scope (`'env`).
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on the pool. Panics inside the task are captured and
    /// re-raised by the enclosing [`ThreadPool::scope`] call (first panic
    /// wins); the scope still waits for every other task.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.remaining.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
                state.panic.lock().expect("scope panic slot poisoned").get_or_insert(p);
            }
            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task out: notify under the latch lock so the waiter
                // cannot miss the wakeup between its check and its wait.
                drop(state.done.lock().expect("scope latch poisoned"));
                state.cv.notify_all();
            }
        });
        // SAFETY: only the lifetime is erased. `ThreadPool::scope` joins the
        // completion latch on every exit path before `'env` can end, so the
        // boxed closure never outlives the data it borrows.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        };
        self.pool.inject(task);
    }
}

/// The process-wide pool used by auto-dispatching kernels, sized by
/// [`default_workers`](crate::default_workers) (the `SEQFM_WORKERS`
/// environment variable, else available parallelism). Created lazily on
/// first use and never torn down.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(configured_workers()))
}

/// The worker count [`global`] has (or will have) — resolved once from the
/// environment. Cheap to call before any pool exists: dispatch heuristics
/// use it to skip pool creation entirely on single-worker configurations.
pub fn configured_workers() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(crate::default_workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_task_and_borrows_stack_data() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0u32; 64];
        let base = 7u32; // borrowed immutably by every task
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                let base = &base;
                s.spawn(move || *slot = i as u32 + base);
            }
        });
        assert_eq!(out, (0..64).map(|i| i + 7).collect::<Vec<_>>());
    }

    #[test]
    fn pool_of_one_still_completes_scopes() {
        let pool = ThreadPool::new(1);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Every worker opens an inner scope; the helping logic must keep the
        // pool moving even though all workers are blocked in waits.
        let pool = ThreadPool::new(2);
        let counter = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let counter = &counter;
                let pool = &pool;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(move || {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn task_panic_propagates_after_the_barrier() {
        let pool = ThreadPool::new(2);
        let finished = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task died"));
                for _ in 0..8 {
                    let finished = &finished;
                    s.spawn(move || {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must re-raise the task panic");
        // The barrier held: every sibling ran to completion first.
        assert_eq!(finished.load(Ordering::Relaxed), 8);
        // The pool survives and keeps executing new work.
        let after = AtomicU64::new(0);
        pool.scope(|s| {
            let after = &after;
            s.spawn(move || {
                after.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(after.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn in_parallel_task_is_set_inside_tasks_only() {
        let pool = ThreadPool::new(2);
        assert!(!in_parallel_task());
        let seen = Mutex::new(Vec::new());
        pool.scope(|s| {
            for _ in 0..4 {
                let seen = &seen;
                s.spawn(move || seen.lock().unwrap().push(in_parallel_task()));
            }
        });
        assert!(!in_parallel_task());
        assert_eq!(*seen.lock().unwrap(), vec![true; 4]);
    }

    #[test]
    fn dropping_the_pool_joins_workers() {
        let pool = ThreadPool::new(3);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        drop(pool); // must not hang
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }
}
