//! The work-distributing channel behind the serving engine: per-worker
//! sharded FIFO queues with round-robin submission and stealing.
//!
//! Compared to a single shared MPMC queue, each push touches only one
//! shard's lock and each worker drains its own shard contention-free in the
//! common case; stealing preserves throughput under skew. Closing the
//! submitter lets workers **drain** everything already queued before their
//! `recv` returns `None`, so in-flight work is never dropped on shutdown.
//!
//! A queue built with [`WorkQueue::bounded`] additionally enforces an
//! **admission bound**: [`WorkQueue::try_push`] refuses items once
//! `capacity` are queued (the backpressure signal an overload-aware front
//! door needs) and [`WorkQueue::push_wait`] parks the producer until a
//! consumer frees a slot. Consumers can drain in bulk with
//! [`WorkerHandle::recv_many`] — the primitive batch-coalescing engines are
//! built on.
//!
//! The queue machinery itself — shard array, park/wake protocol, counter
//! discipline — is [`crate::shards::Shards`], shared with the thread pool.

use crate::shards::Shards;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Submitting half of the sharded queue; dropping it closes the queue.
pub struct WorkQueue<T> {
    shared: Arc<Shards<T>>,
    next: AtomicUsize,
}

/// One worker's receiving endpoint: pops its own shard first, steals from
/// siblings otherwise, parks when the whole queue is empty.
pub struct WorkerHandle<T> {
    shared: Arc<Shards<T>>,
    me: usize,
}

impl<T> WorkQueue<T> {
    /// Creates an unbounded queue with `workers` shards and one
    /// [`WorkerHandle`] per shard (clamped to at least 1).
    pub fn new(workers: usize) -> (Self, Vec<WorkerHandle<T>>) {
        Self::build(Shards::new(workers))
    }

    /// Creates a queue that admits at most `capacity` queued items across
    /// all shards (clamped to at least 1). Use [`WorkQueue::try_push`] /
    /// [`WorkQueue::push_wait`] to submit against the bound.
    pub fn bounded(workers: usize, capacity: usize) -> (Self, Vec<WorkerHandle<T>>) {
        Self::build(Shards::bounded(workers, capacity))
    }

    fn build(shards: Shards<T>) -> (Self, Vec<WorkerHandle<T>>) {
        let shared = Arc::new(shards);
        let handles =
            (0..shared.len()).map(|me| WorkerHandle { shared: Arc::clone(&shared), me }).collect();
        (WorkQueue { shared, next: AtomicUsize::new(0) }, handles)
    }

    /// Number of shards (== worker handles).
    pub fn shards(&self) -> usize {
        self.shared.len()
    }

    /// The admission bound (`usize::MAX` for an unbounded queue).
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Enqueues `item` on the next shard in round-robin order and wakes one
    /// parked worker. Ignores any capacity bound.
    pub fn push(&self, item: T) {
        self.shared.push(self.next.fetch_add(1, Ordering::Relaxed), item);
    }

    /// Enqueues `item` unless the queue already holds
    /// [`capacity`](Self::capacity) items; on refusal the item is handed
    /// back untouched — the producer's non-blocking backpressure signal.
    ///
    /// # Errors
    /// `Err(item)` when the queue is at capacity.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        self.shared.try_push(self.next.fetch_add(1, Ordering::Relaxed), item)
    }

    /// Enqueues `item`, parking the calling thread while the queue is at
    /// capacity; a consumer pop frees the producer. Only a closed queue can
    /// refuse, and closing requires dropping this submitter — so through a
    /// live `&WorkQueue` this never fails.
    pub fn push_wait(&self, item: T) {
        if self.shared.push_wait(self.next.fetch_add(1, Ordering::Relaxed), item).is_err() {
            unreachable!("queue closed while its submitter is alive");
        }
    }
}

impl<T> Drop for WorkQueue<T> {
    fn drop(&mut self) {
        self.shared.close();
    }
}

impl<T> WorkerHandle<T> {
    /// Blocks for the next item (own shard first, then stealing). Returns
    /// `None` only once the submitter is dropped **and** every shard is
    /// drained.
    pub fn recv(&self) -> Option<T> {
        self.shared.pop_or_park(self.me)
    }

    /// Bulk drain: blocks for the first item, then greedily appends up to
    /// `max - 1` more already-queued items (own shard first, then stealing)
    /// without blocking again. Returns `true` with at least one new item in
    /// `out`, or `false` once the submitter is dropped and every shard is
    /// drained. `max` is clamped to at least 1.
    pub fn recv_many(&self, max: usize, out: &mut Vec<T>) -> bool {
        self.shared.pop_many_or_park(self.me, max.max(1), out)
    }

    /// Non-blocking top-up: appends up to `max` already-queued items (own
    /// shard first, then stealing) and returns how many were taken — zero
    /// when the queue is momentarily empty. Never parks, so a worker holding
    /// a partial batch can poll for late-arriving siblings under a linger
    /// deadline without risking a stall.
    pub fn try_recv_many(&self, max: usize, out: &mut Vec<T>) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.shared.try_pop(self.me) {
                Some(item) => {
                    out.push(item);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_item_is_received_exactly_once() {
        let (q, handles) = WorkQueue::<usize>::new(3);
        assert_eq!(q.shards(), 3);
        assert_eq!(q.capacity(), usize::MAX);
        let collected = std::thread::scope(|s| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(i) = h.recv() {
                            got.push(i);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..300 {
                q.push(i);
            }
            drop(q); // close → workers drain and exit
            joins.into_iter().flat_map(|j| j.join().unwrap()).collect::<Vec<_>>()
        });
        let mut got = collected;
        got.sort_unstable();
        assert_eq!(got, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn items_queued_before_close_are_drained() {
        let (q, mut handles) = WorkQueue::<u8>::new(2);
        for i in 0..10 {
            q.push(i);
        }
        drop(q);
        let h = handles.remove(0);
        let mut got = Vec::new();
        while let Some(i) = h.recv() {
            got.push(i);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_serves_a_single_worker_everything() {
        // Round-robin spreads items over 4 shards, but one worker must still
        // see them all via stealing.
        let (q, handles) = WorkQueue::<usize>::new(4);
        for i in 0..40 {
            q.push(i);
        }
        drop(q);
        let h = &handles[2];
        let mut got = Vec::new();
        while let Some(i) = h.recv() {
            got.push(i);
        }
        got.sort_unstable();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_queue_refuses_items_at_capacity_and_recovers_after_pops() {
        let (q, handles) = WorkQueue::<usize>::bounded(2, 3);
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.try_push(0), Ok(()));
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        // Full: the item comes back untouched.
        assert_eq!(q.try_push(7), Err(7));
        assert_eq!(q.try_push(8), Err(8));
        // One pop frees one admission slot.
        assert!(handles[0].recv().is_some());
        assert_eq!(q.try_push(9), Ok(()));
        assert_eq!(q.try_push(10), Err(10));
    }

    #[test]
    fn push_wait_parks_until_a_consumer_frees_capacity() {
        let (q, mut handles) = WorkQueue::<usize>::bounded(1, 2);
        q.push_wait(0);
        q.push_wait(1);
        let h = handles.remove(0);
        std::thread::scope(|s| {
            // Producer blocks on the full queue...
            let producer = s.spawn(|| {
                for i in 2..30 {
                    q.push_wait(i);
                }
            });
            // ...and makes progress exactly as the consumer drains.
            let mut got = Vec::new();
            while got.len() < 30 {
                if let Some(i) = h.recv() {
                    got.push(i);
                }
            }
            producer.join().unwrap();
            got.sort_unstable();
            assert_eq!(got, (0..30).collect::<Vec<_>>());
        });
    }

    #[test]
    fn recv_many_drains_up_to_max_without_blocking_for_more() {
        let (q, handles) = WorkQueue::<usize>::new(2);
        for i in 0..7 {
            q.push(i);
        }
        let h = &handles[0];
        let mut batch = Vec::new();
        // First drain: at most 4, stealing across both shards.
        assert!(h.recv_many(4, &mut batch));
        assert_eq!(batch.len(), 4);
        // Second drain takes what's left — 3 items, not blocking for a 4th.
        let mut rest = Vec::new();
        assert!(h.recv_many(4, &mut rest));
        assert_eq!(rest.len(), 3);
        let mut all: Vec<usize> = batch.into_iter().chain(rest).collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
        drop(q);
        let mut empty = Vec::new();
        assert!(!h.recv_many(4, &mut empty), "closed + drained must return false");
        assert!(empty.is_empty());
    }

    #[test]
    fn try_recv_many_never_blocks_and_reports_count() {
        let (q, handles) = WorkQueue::<usize>::new(2);
        let h = &handles[1];
        let mut out = Vec::new();
        assert_eq!(h.try_recv_many(4, &mut out), 0, "empty queue: immediate zero");
        for i in 0..5 {
            q.push(i);
        }
        assert_eq!(h.try_recv_many(4, &mut out), 4);
        assert_eq!(h.try_recv_many(4, &mut out), 1, "takes the remainder, no blocking");
        assert_eq!(h.try_recv_many(4, &mut out), 0);
        out.sort_unstable();
        assert_eq!(out, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn recv_many_blocks_for_the_first_item_only() {
        let (q, mut handles) = WorkQueue::<usize>::new(1);
        let h = handles.remove(0);
        std::thread::scope(|s| {
            let consumer = s.spawn(move || {
                let mut batch = Vec::new();
                assert!(h.recv_many(8, &mut batch), "queue still open");
                batch
            });
            // The consumer parks until this arrives.
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.push(42);
            let batch = consumer.join().unwrap();
            assert_eq!(batch, vec![42]);
        });
    }
}
