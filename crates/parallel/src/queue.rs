//! The work-distributing channel behind the serving engine: per-worker
//! sharded FIFO queues with round-robin submission and stealing.
//!
//! Compared to a single shared MPMC queue, each push touches only one
//! shard's lock and each worker drains its own shard contention-free in the
//! common case; stealing preserves throughput under skew. Closing the
//! submitter lets workers **drain** everything already queued before their
//! `recv` returns `None`, so in-flight work is never dropped on shutdown.
//!
//! The queue machinery itself — shard array, park/wake protocol, counter
//! discipline — is [`crate::shards::Shards`], shared with the thread pool.

use crate::shards::Shards;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Submitting half of the sharded queue; dropping it closes the queue.
pub struct WorkQueue<T> {
    shared: Arc<Shards<T>>,
    next: AtomicUsize,
}

/// One worker's receiving endpoint: pops its own shard first, steals from
/// siblings otherwise, parks when the whole queue is empty.
pub struct WorkerHandle<T> {
    shared: Arc<Shards<T>>,
    me: usize,
}

impl<T> WorkQueue<T> {
    /// Creates a queue with `workers` shards and one [`WorkerHandle`] per
    /// shard (clamped to at least 1).
    pub fn new(workers: usize) -> (Self, Vec<WorkerHandle<T>>) {
        let shared = Arc::new(Shards::new(workers));
        let handles =
            (0..shared.len()).map(|me| WorkerHandle { shared: Arc::clone(&shared), me }).collect();
        (WorkQueue { shared, next: AtomicUsize::new(0) }, handles)
    }

    /// Number of shards (== worker handles).
    pub fn shards(&self) -> usize {
        self.shared.len()
    }

    /// Enqueues `item` on the next shard in round-robin order and wakes one
    /// parked worker.
    pub fn push(&self, item: T) {
        self.shared.push(self.next.fetch_add(1, Ordering::Relaxed), item);
    }
}

impl<T> Drop for WorkQueue<T> {
    fn drop(&mut self) {
        self.shared.close();
    }
}

impl<T> WorkerHandle<T> {
    /// Blocks for the next item (own shard first, then stealing). Returns
    /// `None` only once the submitter is dropped **and** every shard is
    /// drained.
    pub fn recv(&self) -> Option<T> {
        self.shared.pop_or_park(self.me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_item_is_received_exactly_once() {
        let (q, handles) = WorkQueue::<usize>::new(3);
        assert_eq!(q.shards(), 3);
        let collected = std::thread::scope(|s| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(i) = h.recv() {
                            got.push(i);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..300 {
                q.push(i);
            }
            drop(q); // close → workers drain and exit
            joins.into_iter().flat_map(|j| j.join().unwrap()).collect::<Vec<_>>()
        });
        let mut got = collected;
        got.sort_unstable();
        assert_eq!(got, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn items_queued_before_close_are_drained() {
        let (q, mut handles) = WorkQueue::<u8>::new(2);
        for i in 0..10 {
            q.push(i);
        }
        drop(q);
        let h = handles.remove(0);
        let mut got = Vec::new();
        while let Some(i) = h.recv() {
            got.push(i);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_serves_a_single_worker_everything() {
        // Round-robin spreads items over 4 shards, but one worker must still
        // see them all via stealing.
        let (q, handles) = WorkQueue::<usize>::new(4);
        for i in 0..40 {
            q.push(i);
        }
        drop(q);
        let h = &handles[2];
        let mut got = Vec::new();
        while let Some(i) = h.recv() {
            got.push(i);
        }
        got.sort_unstable();
        assert_eq!(got, (0..40).collect::<Vec<_>>());
    }
}
