//! [`ArcSlot`]: a hand-rolled `ArcSwap` — one shared `Arc<T>` slot with
//! wait-free-in-practice readers and serialized writers.
//!
//! The serving engine publishes a fresh model snapshot by *swapping* the
//! `Arc` in this slot; every worker loads it once per drain. A
//! `Mutex<Arc<T>>` would serialize all readers through one lock on the hot
//! path; `ArcSlot::load` instead costs two atomic RMWs and never takes a
//! lock, while `store` (rare — once per model publish) waits for straggler
//! readers of the retiring cell before reusing it.
//!
//! ## Design: left/right cells + generation counter
//!
//! Two cells each hold an `Option<Arc<T>>` and a reader count. A monotone
//! generation `g` names the active cell (`g & 1`). Readers pin the active
//! cell by incrementing its counter, then **re-check** the generation: if it
//! moved they back off and retry, so a successful re-check proves — in the
//! `SeqCst` total order — that the increment landed before any writer
//! advanced the generation, and therefore before the *next* writer's
//! wait-for-zero scan of this cell. A writer mutates only the **inactive**
//! cell, and only after its reader count drains to zero; publishing is a
//! single generation store. The counter rides with the generation parity, so
//! a reader from generation `g` can never be confused with one from `g + 2`
//! (the ABA case a single shared counter would admit).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct Cell<T> {
    /// Readers currently pinning this cell (incremented before the
    /// generation re-check, decremented after cloning).
    readers: AtomicUsize,
    /// The published value; mutated only by a writer that owns the write
    /// lock *and* observed `readers == 0` on this (inactive) cell.
    value: UnsafeCell<Option<Arc<T>>>,
}

impl<T> Cell<T> {
    fn empty() -> Self {
        Cell { readers: AtomicUsize::new(0), value: UnsafeCell::new(None) }
    }
}

/// An atomically swappable `Arc<T>` slot: lock-free `load`, mutex-serialized
/// `store`. See the module docs for the protocol.
pub struct ArcSlot<T> {
    cells: [Cell<T>; 2],
    generation: AtomicU64,
    write: Mutex<()>,
}

// The `UnsafeCell` makes the auto-impls disappear; the reader/writer
// protocol above restores the required exclusion by hand.
unsafe impl<T: Send + Sync> Send for ArcSlot<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSlot<T> {}

impl<T> ArcSlot<T> {
    /// A slot holding `initial` at generation 0.
    pub fn new(initial: Arc<T>) -> Self {
        let slot = ArcSlot {
            cells: [Cell::empty(), Cell::empty()],
            generation: AtomicU64::new(0),
            write: Mutex::new(()),
        };
        // Not yet shared: plain initialization, no protocol needed.
        unsafe { *slot.cells[0].value.get() = Some(initial) };
        slot
    }

    /// The number of [`Self::store`]s so far — each publish advances it by
    /// exactly one. Useful for cheap "did anything change?" staleness checks.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Clones the currently published `Arc` without locking.
    pub fn load(&self) -> Arc<T> {
        loop {
            let g = self.generation.load(Ordering::SeqCst);
            let cell = &self.cells[(g & 1) as usize];
            cell.readers.fetch_add(1, Ordering::SeqCst);
            if self.generation.load(Ordering::SeqCst) != g {
                // A writer published between our generation read and the
                // pin: this cell may be the next reuse target. Back off.
                cell.readers.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            // Pinned: the re-check proves our increment precedes any future
            // writer's wait-for-zero scan, so the value cannot be replaced
            // under us.
            let value = unsafe { (*cell.value.get()).clone() };
            cell.readers.fetch_sub(1, Ordering::SeqCst);
            return value.expect("active cell always holds a value");
        }
    }

    /// Publishes `new`, returning the previously published `Arc`.
    ///
    /// Readers that already pinned the old generation keep their `Arc`
    /// (epoch pinning); readers arriving after the store see `new`.
    /// Concurrent `store`s serialize on an internal mutex; the wait for
    /// straggler readers of the retiring cell is a bounded spin (readers
    /// hold their pin only across one `Arc` clone).
    pub fn store(&self, new: Arc<T>) -> Arc<T> {
        let _guard = self.write.lock().unwrap_or_else(|e| e.into_inner());
        let g = self.generation.load(Ordering::SeqCst);
        let next = &self.cells[((g + 1) & 1) as usize];
        // Stragglers still pinning the inactive cell come from generation
        // g - 1; wait them out before touching its value.
        let mut spins = 0u32;
        while next.readers.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        let previous = unsafe {
            let retired = (*next.value.get()).replace(new);
            let current = (*self.cells[(g & 1) as usize].value.get())
                .clone()
                .expect("active cell always holds a value");
            drop(retired); // the generation g - 1 value, unreachable since g
            current
        };
        self.generation.store(g + 1, Ordering::SeqCst);
        previous
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_what_was_stored() {
        let slot = ArcSlot::new(Arc::new(1u32));
        assert_eq!(*slot.load(), 1);
        assert_eq!(slot.generation(), 0);
        let prev = slot.store(Arc::new(2));
        assert_eq!(*prev, 1);
        assert_eq!(*slot.load(), 2);
        assert_eq!(slot.generation(), 1);
        let prev = slot.store(Arc::new(3));
        assert_eq!(*prev, 2);
        assert_eq!(*slot.load(), 3);
        assert_eq!(slot.generation(), 2);
    }

    #[test]
    fn old_arcs_survive_a_store() {
        let slot = ArcSlot::new(Arc::new(String::from("v0")));
        let pinned = slot.load();
        slot.store(Arc::new(String::from("v1")));
        slot.store(Arc::new(String::from("v2")));
        assert_eq!(pinned.as_str(), "v0", "pinned readers keep their epoch");
        assert_eq!(slot.load().as_str(), "v2");
    }

    #[test]
    fn drops_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let slot = ArcSlot::new(Arc::new(Counted(Arc::clone(&drops))));
        for _ in 0..5 {
            slot.store(Arc::new(Counted(Arc::clone(&drops))));
        }
        // Each store retires the value parked in the inactive cell — the one
        // published two generations ago — so after 5 stores exactly 4 of the
        // 6 values created are gone; the last two live in the cells.
        assert_eq!(drops.load(Ordering::SeqCst), 4, "retired values drop once each");
        drop(slot);
        assert_eq!(drops.load(Ordering::SeqCst), 6, "cell residents drop with the slot");
    }

    #[test]
    fn concurrent_loads_and_stores_never_tear() {
        // Published values carry a self-consistency pair; any torn or
        // use-after-free read would break it (or crash under a sanitizer).
        let slot = Arc::new(ArcSlot::new(Arc::new((0u64, !0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = slot.load();
                        assert_eq!(v.0, !v.1, "inconsistent pair: torn publish");
                        assert!(v.0 >= last, "generations must not run backwards");
                        last = v.0;
                    }
                });
            }
            for i in 1..=2000u64 {
                slot.store(Arc::new((i, !i)));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(slot.load().0, 2000);
        assert_eq!(slot.generation(), 2000);
    }
}
