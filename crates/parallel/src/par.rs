//! Data-parallel loop primitives and deterministic partitioning.
//!
//! Everything here is deterministic by construction: chunk boundaries are a
//! pure function of the inputs (never of thread timing), per-chunk work is
//! processed in index order, and reductions combine chunk results in chunk
//! order. Parallel results therefore match their serial counterparts exactly
//! whenever the combining operator is associative — and bit-for-bit when
//! per-index work is independent (as in row-partitioned kernels).

use crate::pool::{in_parallel_task, ThreadPool};
use std::ops::Range;

/// Splits `0..n` into exactly `min(parts, n)` contiguous ranges whose sizes
/// differ by at most one (earlier ranges get the remainder) — so `n == 0`
/// yields no ranges at all. Deterministic; the shard layout of
/// data-parallel training.
pub fn partition(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.max(1).min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Splits `0..n` into at most `target_chunks` contiguous ranges of at least
/// `min_chunk` items each (the tail range may be shorter only when
/// `n < min_chunk`). Deterministic — used by [`par_for`] to bound task
/// granularity.
pub fn chunk_ranges(n: usize, target_chunks: usize, min_chunk: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let max_by_min = n.div_ceil(min_chunk);
    partition(n, target_chunks.max(1).min(max_by_min))
}

/// Derives the RNG seed of stream `stream` from a base seed — a SplitMix64
/// finalizer over `seed ⊕ (stream + 1)·φ64`, so consecutive streams are
/// uncorrelated and stream 0 differs from the base seed itself.
pub fn shard_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ (stream.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `f` over `0..n` in parallel chunks of at least `min_chunk` indices.
///
/// Falls back to one serial call `f(0..n)` when the pool has a single
/// worker, the range fits one chunk, or the caller is already inside a pool
/// task (nested data parallelism adds overhead, not concurrency).
pub fn par_for<F>(pool: &ThreadPool, n: usize, min_chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let chunks = chunk_ranges(n, pool.workers(), min_chunk);
    if chunks.len() <= 1 || in_parallel_task() {
        f(0..n);
        return;
    }
    pool.scope(|s| {
        for r in chunks {
            let f = &f;
            s.spawn(move || f(r));
        }
    });
}

/// Fans a buffer of `data.len() / unit_len` fixed-size units out over the
/// pool in contiguous per-worker chunks, calling `f(first_unit, chunk)` for
/// each chunk (`chunk` holds whole units; `first_unit` is the global index
/// of its first one — mask/row offsets derive from it). The single home of
/// the `div_ceil`/`chunks_mut` fan-out arithmetic used by every
/// row/slice-partitioned kernel.
///
/// # Panics
/// Panics if `unit_len == 0` or `data.len()` is not a multiple of
/// `unit_len`.
pub fn par_units<T, F>(pool: &ThreadPool, data: &mut [T], unit_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit_len > 0, "par_units: unit_len must be positive");
    assert_eq!(data.len() % unit_len, 0, "par_units: data not a multiple of unit_len");
    let units = data.len() / unit_len;
    let per = units.div_ceil(pool.workers()).max(1);
    pool.scope(|s| {
        for (ci, chunk) in data.chunks_mut(per * unit_len).enumerate() {
            let f = &f;
            s.spawn(move || f(ci * per, chunk));
        }
    });
}

/// Like [`par_units`], but over two parallel buffers whose units correspond
/// one-to-one (e.g. an attention kernel's per-slice scores and output):
/// `f(first_unit, a_chunk, b_chunk)` receives matching chunks of both.
///
/// # Panics
/// Panics if either unit length is zero, either buffer is not a multiple of
/// its unit length, or the unit counts differ.
pub fn par_units2<T, U, F>(
    pool: &ThreadPool,
    a: &mut [T],
    a_unit: usize,
    b: &mut [U],
    b_unit: usize,
    f: F,
) where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    assert!(a_unit > 0 && b_unit > 0, "par_units2: unit lengths must be positive");
    assert_eq!(a.len() % a_unit, 0, "par_units2: lhs not a multiple of its unit");
    assert_eq!(b.len() % b_unit, 0, "par_units2: rhs not a multiple of its unit");
    let units = a.len() / a_unit;
    assert_eq!(units, b.len() / b_unit, "par_units2: unit count mismatch");
    let per = units.div_ceil(pool.workers()).max(1);
    pool.scope(|s| {
        for ((ci, a_chunk), b_chunk) in
            a.chunks_mut(per * a_unit).enumerate().zip(b.chunks_mut(per * b_unit))
        {
            let f = &f;
            s.spawn(move || f(ci * per, a_chunk, b_chunk));
        }
    });
}

/// Parallel map + ordered reduce over `0..n`:
/// each chunk folds `map(i)` in index order, and chunk results are folded
/// into `init` in chunk order. For an associative `reduce` the result equals
/// the serial `(0..n).map(map).fold(init, reduce)` exactly — the reduction
/// tree depends only on `n`, `min_chunk`, and the pool size, never on
/// scheduling.
pub fn par_map_reduce<T, M, R>(
    pool: &ThreadPool,
    n: usize,
    min_chunk: usize,
    init: T,
    map: M,
    reduce: R,
) -> T
where
    T: Send,
    M: Fn(usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    if n == 0 {
        return init;
    }
    let chunks = chunk_ranges(n, pool.workers(), min_chunk);
    let fold_chunk = |r: Range<usize>| -> Option<T> {
        let mut acc: Option<T> = None;
        for i in r {
            let v = map(i);
            acc = Some(match acc {
                None => v,
                Some(a) => reduce(a, v),
            });
        }
        acc
    };
    let mut slots: Vec<Option<T>> = Vec::new();
    if chunks.len() <= 1 || in_parallel_task() {
        slots.push(fold_chunk(0..n));
    } else {
        slots.resize_with(chunks.len(), || None);
        pool.scope(|s| {
            for (slot, r) in slots.iter_mut().zip(chunks) {
                let fold_chunk = &fold_chunk;
                s.spawn(move || *slot = fold_chunk(r));
            }
        });
    }
    slots.into_iter().flatten().fold(init, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let parts = partition(10, 4);
        assert_eq!(parts, vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(partition(3, 8), vec![0..1, 1..2, 2..3]);
        assert!(partition(0, 4).is_empty(), "no items -> no shards");
    }

    #[test]
    fn chunk_ranges_respects_min_chunk() {
        // 100 items, min chunk 40 → at most 3 chunks even on a wide pool.
        let chunks = chunk_ranges(100, 16, 40);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|r| r.len() >= 33));
        assert_eq!(chunk_ranges(5, 8, 10), vec![0..5]);
        assert!(chunk_ranges(0, 4, 1).is_empty());
    }

    #[test]
    fn shard_seeds_are_distinct_streams() {
        let seeds: Vec<u64> = (0..64).map(|s| shard_seed(42, s)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "stream collision");
        assert_ne!(shard_seed(42, 0), 42, "stream 0 must not echo the base seed");
        assert_ne!(shard_seed(42, 0), shard_seed(43, 0), "base seed must matter");
    }

    #[test]
    fn par_for_covers_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        par_for(&pool, hits.len(), 16, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_units_hands_out_whole_units_with_correct_offsets() {
        let pool = ThreadPool::new(3);
        let unit = 4;
        let mut data = vec![0u32; 11 * unit];
        par_units(&pool, &mut data, unit, |first, chunk| {
            assert_eq!(chunk.len() % unit, 0, "partial unit handed out");
            for (u, slots) in chunk.chunks_mut(unit).enumerate() {
                slots.fill((first + u) as u32);
            }
        });
        for (u, slots) in data.chunks(unit).enumerate() {
            assert!(slots.iter().all(|&v| v == u as u32), "unit {u} wrote {slots:?}");
        }
    }

    #[test]
    fn par_units2_keeps_both_buffers_in_lockstep() {
        let pool = ThreadPool::new(4);
        let mut a = vec![0u32; 9 * 2];
        let mut b = vec![0u32; 9 * 5];
        par_units2(&pool, &mut a, 2, &mut b, 5, |first, ac, bc| {
            assert_eq!(ac.len() / 2, bc.len() / 5, "chunk unit counts diverge");
            for (u, slots) in ac.chunks_mut(2).enumerate() {
                slots.fill((first + u) as u32);
            }
            for (u, slots) in bc.chunks_mut(5).enumerate() {
                slots.fill((first + u) as u32);
            }
        });
        for (u, slots) in a.chunks(2).enumerate() {
            assert!(slots.iter().all(|&v| v == u as u32));
        }
        for (u, slots) in b.chunks(5).enumerate() {
            assert!(slots.iter().all(|&v| v == u as u32));
        }
    }

    #[test]
    fn par_map_reduce_matches_serial_fold() {
        let pool = ThreadPool::new(3);
        let n = 1234usize;
        let serial: u64 = (0..n).map(|i| (i as u64) * 3 + 1).fold(7, u64::wrapping_add);
        let par = par_map_reduce(&pool, n, 10, 7u64, |i| (i as u64) * 3 + 1, u64::wrapping_add);
        assert_eq!(par, serial);
    }
}
