//! A reusable single-value reply slot.
//!
//! The serving engine's old reply path allocated a full MPMC channel
//! (queue + two refcounts + condvar) per request. An [`Oneshot`] is the
//! minimal replacement — one `Mutex<state>` + `Condvar` — and, crucially,
//! it can be [`reset`](Oneshot::reset) and parked in a free list, so steady-
//! state serving performs **zero** reply-path allocations.

use std::sync::{Condvar, Mutex};

/// Why [`Oneshot::recv`] returned without a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Disconnected {
    /// `true` when the producing side was dropped mid-panic — the consumer
    /// can report "worker panicked" instead of a generic shutdown.
    pub panicked: bool,
}

enum State<T> {
    /// Armed, no value yet.
    Empty,
    /// Value delivered, not yet consumed.
    Full(T),
    /// Producer gave up without delivering.
    Closed(Disconnected),
}

/// A single-producer single-consumer, single-value slot. See module docs.
pub struct Oneshot<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

impl<T> Default for Oneshot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Oneshot<T> {
    /// An empty (armed) slot.
    pub fn new() -> Self {
        Oneshot { state: Mutex::new(State::Empty), cv: Condvar::new() }
    }

    /// Delivers `value` and wakes the consumer. Returns `false` (dropping
    /// the value's effect) if the slot was not empty — a double send or a
    /// send after close, both producer bugs this keeps harmless.
    pub fn send(&self, value: T) -> bool {
        let mut st = self.state.lock().expect("oneshot poisoned");
        match *st {
            State::Empty => {
                *st = State::Full(value);
                drop(st);
                self.cv.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Marks the slot closed-without-value (producer dropped the request).
    /// No-op unless the slot is still empty.
    pub fn close(&self, panicked: bool) {
        let mut st = self.state.lock().expect("oneshot poisoned");
        if matches!(*st, State::Empty) {
            *st = State::Closed(Disconnected { panicked });
            drop(st);
            self.cv.notify_all();
        }
    }

    /// Blocks until a value or a close arrives. Taking the value leaves the
    /// slot `Empty` again, ready for [`reset`](Self::reset)-free reuse by
    /// the *same* consumer; a close is sticky until reset.
    ///
    /// # Errors
    /// [`Disconnected`] when the producer closed the slot without a value.
    pub fn recv(&self) -> Result<T, Disconnected> {
        let mut st = self.state.lock().expect("oneshot poisoned");
        loop {
            match std::mem::replace(&mut *st, State::Empty) {
                State::Full(v) => return Ok(v),
                State::Closed(d) => {
                    *st = State::Closed(d);
                    return Err(d);
                }
                State::Empty => {
                    st = self.cv.wait(st).expect("oneshot poisoned");
                }
            }
        }
    }

    /// Non-blocking [`recv`](Self::recv): takes the value if one has been
    /// delivered, reports a close if the producer gave up, and returns
    /// `None` while the slot is still armed and unanswered. Lets a consumer
    /// abandoning a slot decide whether it is safe to recycle — `Some`
    /// means the producer is done with it, `None` means a send may still
    /// be in flight.
    pub fn try_recv(&self) -> Option<Result<T, Disconnected>> {
        let mut st = self.state.lock().expect("oneshot poisoned");
        match std::mem::replace(&mut *st, State::Empty) {
            State::Full(v) => Some(Ok(v)),
            State::Closed(d) => {
                *st = State::Closed(d);
                Some(Err(d))
            }
            State::Empty => None,
        }
    }

    /// Returns the slot to `Empty`, discarding any undelivered value or
    /// close marker — the free-list re-arm step.
    pub fn reset(&self) {
        *self.state.lock().expect("oneshot poisoned") = State::Empty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn delivers_across_threads() {
        let slot = Arc::new(Oneshot::<u32>::new());
        let tx = Arc::clone(&slot);
        let j = std::thread::spawn(move || tx.send(99));
        assert_eq!(slot.recv(), Ok(99));
        assert!(j.join().unwrap());
    }

    #[test]
    fn close_reports_panic_flag() {
        let slot = Oneshot::<u32>::new();
        slot.close(true);
        assert_eq!(slot.recv(), Err(Disconnected { panicked: true }));
        // sticky until reset
        assert_eq!(slot.recv(), Err(Disconnected { panicked: true }));
        slot.reset();
        slot.send(5);
        assert_eq!(slot.recv(), Ok(5));
    }

    #[test]
    fn slot_is_reusable_after_recv() {
        let slot = Oneshot::<u32>::new();
        for i in 0..10 {
            assert!(slot.send(i));
            assert_eq!(slot.recv(), Ok(i));
        }
    }

    #[test]
    fn try_recv_reports_all_three_states() {
        let slot = Oneshot::<u32>::new();
        assert_eq!(slot.try_recv(), None, "armed slot has nothing to take");
        slot.send(4);
        assert_eq!(slot.try_recv(), Some(Ok(4)));
        assert_eq!(slot.try_recv(), None, "value consumed, slot re-armed");
        slot.close(false);
        assert_eq!(slot.try_recv(), Some(Err(Disconnected { panicked: false })));
        // Close is sticky until reset, like recv.
        assert_eq!(slot.try_recv(), Some(Err(Disconnected { panicked: false })));
        slot.reset();
        assert_eq!(slot.try_recv(), None);
    }

    #[test]
    fn double_send_is_rejected() {
        let slot = Oneshot::<u32>::new();
        assert!(slot.send(1));
        assert!(!slot.send(2));
        assert_eq!(slot.recv(), Ok(1));
        // close after send is a no-op
        assert!(slot.send(3));
        slot.close(false);
        assert_eq!(slot.recv(), Ok(3));
    }
}
