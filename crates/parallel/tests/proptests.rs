//! Property-based tests for the parallel primitives.

use proptest::prelude::*;
use seqfm_parallel::{chunk_ranges, par_for, par_map_reduce, partition, ThreadPool};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// One shared multi-worker pool for every case — repeatedly spinning up
/// threads per proptest case would dominate the runtime.
fn pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(4))
}

proptest! {
    /// par_map_reduce over an exactly-associative operator equals the plain
    /// serial fold for arbitrary input lengths and chunk granularities.
    #[test]
    fn par_map_reduce_equals_serial_fold(
        values in proptest::collection::vec(0u32..1_000_000, 0..700),
        min_chunk in 1usize..64,
        init in 0u64..1000,
    ) {
        let map = |i: usize| values[i] as u64;
        let serial = (0..values.len()).map(map).fold(init, u64::wrapping_add);
        let par = par_map_reduce(pool(), values.len(), min_chunk, init, map, u64::wrapping_add);
        prop_assert_eq!(par, serial);
    }

    /// Partitioning is a disjoint, exhaustive, ordered cover of 0..n.
    #[test]
    fn partition_covers_exactly(n in 0usize..5000, parts in 1usize..32) {
        let ranges = partition(n, parts);
        prop_assert!(ranges.len() <= parts.max(1));
        let mut expect_start = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, expect_start, "gap or overlap");
            prop_assert!(r.end >= r.start);
            expect_start = r.end;
        }
        prop_assert_eq!(expect_start, n);
        // Balanced: sizes differ by at most one.
        if let (Some(max), Some(min)) = (
            ranges.iter().map(|r| r.len()).max(),
            ranges.iter().map(|r| r.len()).min(),
        ) {
            prop_assert!(max - min <= 1, "unbalanced: {max} vs {min}");
        }
    }

    /// chunk_ranges never under-fills a chunk below min_chunk (except the
    /// single-chunk tail case) and covers 0..n exactly.
    #[test]
    fn chunk_ranges_cover_and_respect_granularity(
        n in 0usize..5000,
        target in 1usize..16,
        min_chunk in 1usize..128,
    ) {
        let chunks = chunk_ranges(n, target, min_chunk);
        let total: usize = chunks.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total, n);
        if chunks.len() > 1 {
            // Balanced partition of a range that supports >=2 chunks of
            // min_chunk: every chunk is at least min_chunk/2 in practice,
            // but the hard guarantee is chunk count <= ceil(n / min_chunk).
            prop_assert!(chunks.len() <= n.div_ceil(min_chunk));
        }
    }

    /// par_for visits every index exactly once for arbitrary granularity.
    #[test]
    fn par_for_visits_each_index_once(n in 0usize..2000, min_chunk in 1usize..96) {
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        par_for(pool(), n, min_chunk, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "index {} hit count", i);
        }
    }
}
