//! Reverse-mode sweep over the tape.

use crate::graph::{Graph, Var};
use crate::op::Op;
use crate::store::ParamStore;
use seqfm_tensor::{
    bmm_nn, bmm_tn, ew, matmul_nn, matmul_nt, matmul_tn, reduce, softmax_backward_lastdim, Shape,
    Tensor,
};

impl Graph {
    /// Runs reverse-mode differentiation from the scalar node `loss`,
    /// accumulating parameter gradients into `ps`.
    ///
    /// Gradients of interior nodes are freed as soon as they have been
    /// propagated; parameter gradients *accumulate* in the store, so call
    /// [`ParamStore::zero_grads`] between optimization steps.
    ///
    /// # Panics
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var, ps: &mut ParamStore) {
        let lshape = self.value(loss).shape();
        assert_eq!(lshape.numel(), 1, "backward expects a scalar loss, got {lshape}");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::ones(lshape));

        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                grads[i] = None;
                continue;
            }
            let Some(dy) = grads[i].take() else { continue };
            self.step_backward(i, &dy, &mut grads, ps);
        }
    }

    /// Propagates `dy` of node `i` one op backwards.
    fn step_backward(
        &self,
        i: usize,
        dy: &Tensor,
        grads: &mut [Option<Tensor>],
        ps: &mut ParamStore,
    ) {
        let node = &self.nodes[i];
        let val = |v: Var| -> &Tensor { self.value(v) };
        match &node.op {
            Op::Input => {}
            Op::Param(id) => ps.accumulate_dense(*id, dy),
            Op::Gather { table, idx } => {
                let d = node.value.shape().last_dim();
                for (slot, &ix) in idx.iter().enumerate() {
                    if ix < 0 {
                        continue;
                    }
                    ps.accumulate_row(*table, ix as usize, &dy.data()[slot * d..(slot + 1) * d]);
                }
            }

            Op::Add(a, b) => {
                self.acc(grads, *a, dy.clone());
                self.acc(grads, *b, dy.clone());
            }
            Op::Sub(a, b) => {
                self.acc(grads, *a, dy.clone());
                self.acc(grads, *b, dy.map(|v| -v));
            }
            Op::Mul(a, b) => {
                self.acc(grads, *a, ew::mul(dy, val(*b)));
                self.acc(grads, *b, ew::mul(dy, val(*a)));
            }
            Op::Neg(x) => self.acc(grads, *x, dy.map(|v| -v)),
            Op::Scale(x, s) => self.acc(grads, *x, ew::scale(dy, *s)),
            Op::AddScalar(x) => self.acc(grads, *x, dy.clone()),
            Op::Square(x) => {
                let dx = val(*x).zip(dy, |xv, g| 2.0 * xv * g);
                self.acc(grads, *x, dx);
            }
            Op::Relu(x) => {
                let dx = val(*x).zip(dy, |xv, g| if xv > 0.0 { g } else { 0.0 });
                self.acc(grads, *x, dx);
            }
            Op::Sigmoid(x) => {
                let dx = node.value.zip(dy, |y, g| g * y * (1.0 - y));
                self.acc(grads, *x, dx);
            }
            Op::Tanh(x) => {
                let dx = node.value.zip(dy, |y, g| g * (1.0 - y * y));
                self.acc(grads, *x, dx);
            }
            Op::Softplus(x) => {
                let dx = val(*x).zip(dy, |xv, g| g * ew::sigmoid_scalar(xv));
                self.acc(grads, *x, dx);
            }
            Op::AddBias { x, b } => {
                self.acc(grads, *x, dy.clone());
                let mut db = vec![0.0; val(*b).numel()];
                ew::accumulate_rows(&mut db, dy);
                self.acc(grads, *b, Tensor::vector(db));
            }

            Op::Matmul(a, b) => {
                self.acc(grads, *a, matmul_nt(dy, val(*b)));
                self.acc(grads, *b, matmul_tn(val(*a), dy));
            }
            Op::MatmulNT(a, b) => {
                self.acc(grads, *a, matmul_nn(dy, val(*b)));
                self.acc(grads, *b, matmul_tn(dy, val(*a)));
            }
            Op::Bmm(a, b) => {
                self.acc(grads, *a, seqfm_tensor::bmm_nt(dy, val(*b)));
                self.acc(grads, *b, bmm_tn(val(*a), dy));
            }
            Op::BmmNT(a, b) => {
                self.acc(grads, *a, bmm_nn(dy, val(*b)));
                self.acc(grads, *b, bmm_tn(dy, val(*a)));
            }
            Op::LMatmul { w, x } => {
                let (wv, xv) = (val(*w), val(*x));
                let (p, q) = (wv.shape().dim(0), wv.shape().dim(1));
                let (bsz, _, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
                let mut dw = Tensor::zeros(Shape::d2(p, q));
                let mut dx = Tensor::zeros(xv.shape());
                for bi in 0..bsz {
                    let dy_b = &dy.data()[bi * p * d..(bi + 1) * p * d];
                    let x_b = &xv.data()[bi * q * d..(bi + 1) * q * d];
                    // dW += dY_b · X_bᵀ
                    seqfm_tensor::kernels::matmul::matmul_nt_into(
                        dy_b,
                        x_b,
                        dw.data_mut(),
                        p,
                        d,
                        q,
                    );
                    // dX_b = Wᵀ · dY_b
                    seqfm_tensor::kernels::matmul::matmul_tn_into(
                        wv.data(),
                        dy_b,
                        &mut dx.data_mut()[bi * q * d..(bi + 1) * q * d],
                        q,
                        p,
                        d,
                    );
                }
                self.acc(grads, *w, dw);
                self.acc(grads, *x, dx);
            }
            Op::RowDot(a, b) => {
                // dy: [b]; da[bi,:] = dy[bi]*b[bi,:]
                let (av, bv) = (val(*a), val(*b));
                let d = av.shape().dim(1);
                let mut da = Tensor::zeros(av.shape());
                let mut db = Tensor::zeros(bv.shape());
                for (bi, &g) in dy.data().iter().enumerate() {
                    for j in 0..d {
                        da.data_mut()[bi * d + j] = g * bv.data()[bi * d + j];
                        db.data_mut()[bi * d + j] = g * av.data()[bi * d + j];
                    }
                }
                self.acc(grads, *a, da);
                self.acc(grads, *b, db);
            }

            Op::Softmax { x } => {
                self.acc(grads, *x, softmax_backward_lastdim(&node.value, dy));
            }
            Op::LayerNorm { x, scale, bias, cache } => {
                let xv = val(*x);
                let d = xv.shape().last_dim();
                let sv = val(*scale).data();
                let mut dx = Tensor::zeros(xv.shape());
                let mut ds = vec![0.0f32; d];
                let mut db = vec![0.0f32; d];
                for (r, (xrow, dyrow)) in
                    xv.data().chunks_exact(d).zip(dy.data().chunks_exact(d)).enumerate()
                {
                    let (mu, rs) = (cache.mean[r], cache.rstd[r]);
                    let mut mean_g = 0.0f32;
                    let mut mean_gx = 0.0f32;
                    for j in 0..d {
                        let xhat = (xrow[j] - mu) * rs;
                        let g = dyrow[j] * sv[j];
                        mean_g += g;
                        mean_gx += g * xhat;
                        ds[j] += dyrow[j] * xhat;
                        db[j] += dyrow[j];
                    }
                    mean_g /= d as f32;
                    mean_gx /= d as f32;
                    let dxrow = &mut dx.data_mut()[r * d..(r + 1) * d];
                    for j in 0..d {
                        let xhat = (xrow[j] - mu) * rs;
                        let g = dyrow[j] * sv[j];
                        dxrow[j] = rs * (g - mean_g - xhat * mean_gx);
                    }
                }
                self.acc(grads, *x, dx);
                self.acc(grads, *scale, Tensor::vector(ds));
                self.acc(grads, *bias, Tensor::vector(db));
            }
            Op::Dropout { x, mask } => {
                let mut dx = dy.clone();
                for (g, &m) in dx.data_mut().iter_mut().zip(mask.iter()) {
                    *g *= m;
                }
                self.acc(grads, *x, dx);
            }

            Op::Reshape(x) => {
                self.acc(grads, *x, dy.reshaped(val(*x).shape()));
            }
            Op::ConcatCols(parts) => {
                let total = node.value.shape().dim(1);
                let b = node.value.shape().dim(0);
                let mut col = 0;
                for &p in parts {
                    let w = val(p).shape().dim(1);
                    let mut dp = Tensor::zeros(Shape::d2(b, w));
                    for r in 0..b {
                        dp.data_mut()[r * w..(r + 1) * w]
                            .copy_from_slice(&dy.data()[r * total + col..r * total + col + w]);
                    }
                    col += w;
                    self.acc(grads, p, dp);
                }
            }
            Op::ConcatAxis1(a, b) => {
                let (av, bv) = (val(*a), val(*b));
                let (bsz, na, d) = (av.shape().dim(0), av.shape().dim(1), av.shape().dim(2));
                let nb = bv.shape().dim(1);
                let n = na + nb;
                let mut da = Tensor::zeros(av.shape());
                let mut db = Tensor::zeros(bv.shape());
                for bi in 0..bsz {
                    da.data_mut()[bi * na * d..(bi + 1) * na * d]
                        .copy_from_slice(&dy.data()[bi * n * d..bi * n * d + na * d]);
                    db.data_mut()[bi * nb * d..(bi + 1) * nb * d]
                        .copy_from_slice(&dy.data()[bi * n * d + na * d..(bi + 1) * n * d]);
                }
                self.acc(grads, *a, da);
                self.acc(grads, *b, db);
            }
            Op::IndexSelectAxis1 { x, idx } => {
                let xv = val(*x);
                let (bsz, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
                let p = idx.len();
                let mut dx = Tensor::zeros(xv.shape());
                for bi in 0..bsz {
                    for (pi, &r) in idx.iter().enumerate() {
                        let src = &dy.data()[(bi * p + pi) * d..(bi * p + pi + 1) * d];
                        let dst = &mut dx.data_mut()[(bi * n + r) * d..(bi * n + r + 1) * d];
                        for (o, &g) in dst.iter_mut().zip(src) {
                            *o += g;
                        }
                    }
                }
                self.acc(grads, *x, dx);
            }
            Op::SliceAxis1 { x, start, len } => {
                let xv = val(*x);
                let (bsz, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
                let mut dx = Tensor::zeros(xv.shape());
                for bi in 0..bsz {
                    dx.data_mut()[(bi * n + start) * d..(bi * n + start + len) * d]
                        .copy_from_slice(&dy.data()[bi * len * d..(bi + 1) * len * d]);
                }
                self.acc(grads, *x, dx);
            }
            Op::ExpandAxis1 { x } => {
                self.acc(grads, *x, reduce::sum_axis1(dy));
            }
            Op::AddBroadcastBatch { x, p } => {
                self.acc(grads, *x, dy.clone());
                let pv = val(*p);
                let (n, d) = (pv.shape().dim(0), pv.shape().dim(1));
                let bsz = dy.shape().dim(0);
                let mut dp = Tensor::zeros(pv.shape());
                for bi in 0..bsz {
                    for (o, &g) in
                        dp.data_mut().iter_mut().zip(&dy.data()[bi * n * d..(bi + 1) * n * d])
                    {
                        *o += g;
                    }
                }
                self.acc(grads, *p, dp);
            }

            Op::MeanAxis1(x) => {
                let n = val(*x).shape().dim(1);
                self.acc(grads, *x, reduce::broadcast_axis1(dy, n, 1.0 / n as f32));
            }
            Op::SumAxis1(x) => {
                let n = val(*x).shape().dim(1);
                self.acc(grads, *x, reduce::broadcast_axis1(dy, n, 1.0));
            }
            Op::SumLast(x) => {
                self.acc(grads, *x, reduce::expand_lastdim(dy, val(*x).shape()));
            }
            Op::MeanAll(x) => {
                let xs = val(*x).shape();
                let g = dy.data()[0] / xs.numel() as f32;
                self.acc(grads, *x, Tensor::full(xs, g));
            }
            Op::SumAll(x) => {
                let xs = val(*x).shape();
                self.acc(grads, *x, Tensor::full(xs, dy.data()[0]));
            }

            Op::BceWithLogits { logits, targets } => {
                let zv = val(*logits);
                let mut dz = Tensor::zeros(zv.shape());
                for (i, ((o, &z), &g)) in
                    dz.data_mut().iter_mut().zip(zv.data()).zip(dy.data()).enumerate()
                {
                    *o = g * (ew::sigmoid_scalar(z) - targets[i]);
                }
                self.acc(grads, *logits, dz);
            }
        }
    }

    /// Adds `g` into the gradient slot of `v` (skipping no-grad subtrees).
    fn acc(&self, grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut grads[v.0] {
            Some(t) => ew::add_assign(t, &g),
            slot @ None => *slot = Some(g),
        }
    }
}
