//! Reverse-mode sweep over the tape.

use crate::graph::{Graph, Var};
use crate::op::Op;
use crate::store::ParamStore;
use seqfm_tensor::{
    bmm_nn_into, bmm_nt_into, bmm_tn_into, kernels::matmul, reduce, softmax_backward_into, Shape,
    Tensor,
};

impl Graph {
    /// Runs reverse-mode differentiation from the scalar node `loss`,
    /// accumulating parameter gradients into `ps`.
    ///
    /// Gradients of interior nodes are freed as soon as they have been
    /// propagated; parameter gradients *accumulate* in the store, so call
    /// [`ParamStore::zero_grads`] between optimization steps.
    ///
    /// Every gradient temporary comes from — and returns to — the graph's
    /// workspace pool, so a training loop that reuses its `Graph` (see
    /// [`Graph::reset`]) runs backward sweeps without heap allocations once
    /// the pool is warm.
    ///
    /// # Panics
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var, ps: &mut ParamStore) {
        let lshape = self.value(loss).shape();
        assert_eq!(lshape.numel(), 1, "backward expects a scalar loss, got {lshape}");
        // The gradient-slot table is graph-owned and reused across sweeps
        // (every slot is back to `None` by the end of the loop below).
        let mut grads_cell = self.grads.borrow_mut();
        let grads = &mut *grads_cell;
        grads.clear();
        grads.resize_with(self.nodes.len(), || None);
        let mut seed = self.pooled_zeros(lshape);
        seed.data_mut().fill(1.0);
        grads[loss.0] = Some(seed);

        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                if let Some(g) = grads[i].take() {
                    self.recycle(g);
                }
                continue;
            }
            let Some(dy) = grads[i].take() else { continue };
            self.step_backward(i, &dy, grads, ps);
            self.recycle(dy);
        }
    }

    /// Propagates `dy` of node `i` one op backwards.
    fn step_backward(
        &self,
        i: usize,
        dy: &Tensor,
        grads: &mut [Option<Tensor>],
        ps: &mut ParamStore,
    ) {
        let node = &self.nodes[i];
        let val = |v: Var| -> &Tensor { self.value(v) };
        match &node.op {
            Op::Input => {}
            Op::Param(id) => ps.accumulate_dense(*id, dy),
            Op::Gather { table, idx } => {
                let d = node.value.shape().last_dim();
                for (slot, &ix) in idx.iter().enumerate() {
                    if ix < 0 {
                        continue;
                    }
                    ps.accumulate_row(*table, ix as usize, &dy.data()[slot * d..(slot + 1) * d]);
                }
            }

            Op::Add(a, b) => {
                self.acc(grads, *a, self.pooled_copy(dy));
                self.acc(grads, *b, self.pooled_copy(dy));
            }
            Op::Sub(a, b) => {
                self.acc(grads, *a, self.pooled_copy(dy));
                self.acc(grads, *b, self.pooled_unary(dy, |v| -v));
            }
            Op::Mul(a, b) => {
                self.acc(grads, *a, self.pooled_zip(dy, val(*b), |g, y| g * y));
                self.acc(grads, *b, self.pooled_zip(dy, val(*a), |g, x| g * x));
            }
            Op::Neg(x) => self.acc(grads, *x, self.pooled_unary(dy, |v| -v)),
            Op::Scale(x, s) => {
                let s = *s;
                self.acc(grads, *x, self.pooled_unary(dy, |v| v * s));
            }
            Op::AddScalar(x) => self.acc(grads, *x, self.pooled_copy(dy)),
            Op::Square(x) => {
                let dx = self.pooled_zip(val(*x), dy, |xv, g| 2.0 * xv * g);
                self.acc(grads, *x, dx);
            }
            Op::Relu(x) => {
                let dx = self.pooled_zip(val(*x), dy, |xv, g| if xv > 0.0 { g } else { 0.0 });
                self.acc(grads, *x, dx);
            }
            Op::Sigmoid(x) => {
                let dx = self.pooled_zip(&node.value, dy, |y, g| g * y * (1.0 - y));
                self.acc(grads, *x, dx);
            }
            Op::Tanh(x) => {
                let dx = self.pooled_zip(&node.value, dy, |y, g| g * (1.0 - y * y));
                self.acc(grads, *x, dx);
            }
            Op::Softplus(x) => {
                let dx =
                    self.pooled_zip(val(*x), dy, |xv, g| g * seqfm_tensor::ew::sigmoid_scalar(xv));
                self.acc(grads, *x, dx);
            }
            Op::AddBias { x, b } => {
                self.acc(grads, *x, self.pooled_copy(dy));
                let mut db = self.pooled_zeros(val(*b).shape());
                seqfm_tensor::ew::accumulate_rows(db.data_mut(), dy);
                self.acc(grads, *b, db);
            }

            Op::Matmul(a, b) => {
                let (av, bv) = (val(*a), val(*b));
                let (m, k) = (av.shape().dim(0), av.shape().dim(1));
                let n = bv.shape().dim(1);
                let mut da = self.pooled_zeros(av.shape());
                matmul::matmul_nt_into(dy.data(), bv.data(), da.data_mut(), m, n, k);
                self.acc(grads, *a, da);
                let mut db = self.pooled_zeros(bv.shape());
                matmul::matmul_tn_into(av.data(), dy.data(), db.data_mut(), k, m, n);
                self.acc(grads, *b, db);
            }
            Op::MatmulNT(a, b) => {
                let (av, bv) = (val(*a), val(*b));
                let (m, k) = (av.shape().dim(0), av.shape().dim(1));
                let n = bv.shape().dim(0);
                let mut da = self.pooled_zeros(av.shape());
                matmul::matmul_nn_into(dy.data(), bv.data(), da.data_mut(), m, n, k);
                self.acc(grads, *a, da);
                let mut db = self.pooled_zeros(bv.shape());
                matmul::matmul_tn_into(dy.data(), av.data(), db.data_mut(), n, m, k);
                self.acc(grads, *b, db);
            }
            Op::Bmm(a, b) => {
                let (av, bv) = (val(*a), val(*b));
                let (bs, m, k) = (av.shape().dim(0), av.shape().dim(1), av.shape().dim(2));
                let n = bv.shape().dim(2);
                let mut da = self.pooled_zeros(av.shape());
                bmm_nt_into(dy.data(), bv.data(), da.data_mut(), bs, m, n, k);
                self.acc(grads, *a, da);
                let mut db = self.pooled_zeros(bv.shape());
                bmm_tn_into(av.data(), dy.data(), db.data_mut(), bs, k, m, n);
                self.acc(grads, *b, db);
            }
            Op::BmmNT(a, b) => {
                let (av, bv) = (val(*a), val(*b));
                let (bs, m, k) = (av.shape().dim(0), av.shape().dim(1), av.shape().dim(2));
                let n = bv.shape().dim(1);
                let mut da = self.pooled_zeros(av.shape());
                bmm_nn_into(dy.data(), bv.data(), da.data_mut(), bs, m, n, k);
                self.acc(grads, *a, da);
                let mut db = self.pooled_zeros(bv.shape());
                bmm_tn_into(dy.data(), av.data(), db.data_mut(), bs, n, m, k);
                self.acc(grads, *b, db);
            }
            Op::LMatmul { w, x } => {
                let (wv, xv) = (val(*w), val(*x));
                let (p, q) = (wv.shape().dim(0), wv.shape().dim(1));
                let (bsz, _, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
                let mut dw = self.pooled_zeros(Shape::d2(p, q));
                let mut dx = self.pooled_zeros(xv.shape());
                for bi in 0..bsz {
                    let dy_b = &dy.data()[bi * p * d..(bi + 1) * p * d];
                    let x_b = &xv.data()[bi * q * d..(bi + 1) * q * d];
                    // dW += dY_b · X_bᵀ
                    matmul::matmul_nt_into(dy_b, x_b, dw.data_mut(), p, d, q);
                    // dX_b = Wᵀ · dY_b
                    matmul::matmul_tn_into(
                        wv.data(),
                        dy_b,
                        &mut dx.data_mut()[bi * q * d..(bi + 1) * q * d],
                        q,
                        p,
                        d,
                    );
                }
                self.acc(grads, *w, dw);
                self.acc(grads, *x, dx);
            }
            Op::RowDot(a, b) => {
                // dy: [b]; da[bi,:] = dy[bi]*b[bi,:]
                let (av, bv) = (val(*a), val(*b));
                let d = av.shape().dim(1);
                let mut da = self.pooled_zeros(av.shape());
                let mut db = self.pooled_zeros(bv.shape());
                for (bi, &g) in dy.data().iter().enumerate() {
                    for j in 0..d {
                        da.data_mut()[bi * d + j] = g * bv.data()[bi * d + j];
                        db.data_mut()[bi * d + j] = g * av.data()[bi * d + j];
                    }
                }
                self.acc(grads, *a, da);
                self.acc(grads, *b, db);
            }

            Op::Softmax { x } => {
                let mut dx = self.pooled_zeros(node.value.shape());
                softmax_backward_into(
                    node.value.data(),
                    dy.data(),
                    dx.data_mut(),
                    node.value.shape().last_dim(),
                );
                self.acc(grads, *x, dx);
            }
            Op::LayerNorm { x, scale, bias, cache } => {
                let xv = val(*x);
                let d = xv.shape().last_dim();
                let sv = val(*scale).data();
                let mut dx = self.pooled_zeros(xv.shape());
                let mut ds = self.pooled_zeros(Shape::d1(d));
                let mut db = self.pooled_zeros(Shape::d1(d));
                for (r, (xrow, dyrow)) in
                    xv.data().chunks_exact(d).zip(dy.data().chunks_exact(d)).enumerate()
                {
                    let (mu, rs) = (cache.mean[r], cache.rstd[r]);
                    let mut mean_g = 0.0f32;
                    let mut mean_gx = 0.0f32;
                    for j in 0..d {
                        let xhat = (xrow[j] - mu) * rs;
                        let g = dyrow[j] * sv[j];
                        mean_g += g;
                        mean_gx += g * xhat;
                        ds.data_mut()[j] += dyrow[j] * xhat;
                        db.data_mut()[j] += dyrow[j];
                    }
                    mean_g /= d as f32;
                    mean_gx /= d as f32;
                    let dxrow = &mut dx.data_mut()[r * d..(r + 1) * d];
                    for j in 0..d {
                        let xhat = (xrow[j] - mu) * rs;
                        let g = dyrow[j] * sv[j];
                        dxrow[j] = rs * (g - mean_g - xhat * mean_gx);
                    }
                }
                self.acc(grads, *x, dx);
                self.acc(grads, *scale, ds);
                self.acc(grads, *bias, db);
            }
            Op::Dropout { x, mask } => {
                let mut dx = self.pooled_copy(dy);
                for (g, &m) in dx.data_mut().iter_mut().zip(mask.iter()) {
                    *g *= m;
                }
                self.acc(grads, *x, dx);
            }

            Op::Reshape(x) => {
                let dx = self.pooled_copy_shaped(dy.data(), val(*x).shape());
                self.acc(grads, *x, dx);
            }
            Op::ConcatCols(parts) => {
                let total = node.value.shape().dim(1);
                let b = node.value.shape().dim(0);
                let mut col = 0;
                for &p in parts {
                    let w = val(p).shape().dim(1);
                    let mut dp = self.pooled_zeros(Shape::d2(b, w));
                    for r in 0..b {
                        dp.data_mut()[r * w..(r + 1) * w]
                            .copy_from_slice(&dy.data()[r * total + col..r * total + col + w]);
                    }
                    col += w;
                    self.acc(grads, p, dp);
                }
            }
            Op::ConcatAxis1(a, b) => {
                let (av, bv) = (val(*a), val(*b));
                let (bsz, na, d) = (av.shape().dim(0), av.shape().dim(1), av.shape().dim(2));
                let nb = bv.shape().dim(1);
                let n = na + nb;
                let mut da = self.pooled_zeros(av.shape());
                let mut db = self.pooled_zeros(bv.shape());
                for bi in 0..bsz {
                    da.data_mut()[bi * na * d..(bi + 1) * na * d]
                        .copy_from_slice(&dy.data()[bi * n * d..bi * n * d + na * d]);
                    db.data_mut()[bi * nb * d..(bi + 1) * nb * d]
                        .copy_from_slice(&dy.data()[bi * n * d + na * d..(bi + 1) * n * d]);
                }
                self.acc(grads, *a, da);
                self.acc(grads, *b, db);
            }
            Op::IndexSelectAxis1 { x, idx } => {
                let xv = val(*x);
                let (bsz, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
                let p = idx.len();
                let mut dx = self.pooled_zeros(xv.shape());
                for bi in 0..bsz {
                    for (pi, &r) in idx.iter().enumerate() {
                        let src = &dy.data()[(bi * p + pi) * d..(bi * p + pi + 1) * d];
                        let dst = &mut dx.data_mut()[(bi * n + r) * d..(bi * n + r + 1) * d];
                        for (o, &g) in dst.iter_mut().zip(src) {
                            *o += g;
                        }
                    }
                }
                self.acc(grads, *x, dx);
            }
            Op::SliceAxis1 { x, start, len } => {
                let xv = val(*x);
                let (bsz, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
                let mut dx = self.pooled_zeros(xv.shape());
                for bi in 0..bsz {
                    dx.data_mut()[(bi * n + start) * d..(bi * n + start + len) * d]
                        .copy_from_slice(&dy.data()[bi * len * d..(bi + 1) * len * d]);
                }
                self.acc(grads, *x, dx);
            }
            Op::ExpandAxis1 { x } => {
                let xv = val(*x);
                let (b, n, d) = (dy.shape().dim(0), dy.shape().dim(1), dy.shape().dim(2));
                let mut dx = self.pooled_zeros(xv.shape());
                reduce::sum_axis1_into(dy.data(), dx.data_mut(), b, n, d);
                self.acc(grads, *x, dx);
            }
            Op::AddBroadcastBatch { x, p } => {
                self.acc(grads, *x, self.pooled_copy(dy));
                let pv = val(*p);
                let (n, d) = (pv.shape().dim(0), pv.shape().dim(1));
                let bsz = dy.shape().dim(0);
                let mut dp = self.pooled_zeros(pv.shape());
                for bi in 0..bsz {
                    for (o, &g) in
                        dp.data_mut().iter_mut().zip(&dy.data()[bi * n * d..(bi + 1) * n * d])
                    {
                        *o += g;
                    }
                }
                self.acc(grads, *p, dp);
            }

            Op::MeanAxis1(x) => {
                let xv = val(*x);
                let (b, n) = (xv.shape().dim(0), xv.shape().dim(1));
                let d = xv.shape().dim(2);
                let mut dx = self.pooled_zeros(xv.shape());
                reduce::broadcast_axis1_into(dy.data(), dx.data_mut(), b, n, d, 1.0 / n as f32);
                self.acc(grads, *x, dx);
            }
            Op::SumAxis1(x) => {
                let xv = val(*x);
                let (b, n) = (xv.shape().dim(0), xv.shape().dim(1));
                let d = xv.shape().dim(2);
                let mut dx = self.pooled_zeros(xv.shape());
                reduce::broadcast_axis1_into(dy.data(), dx.data_mut(), b, n, d, 1.0);
                self.acc(grads, *x, dx);
            }
            Op::SumLast(x) => {
                let xv = val(*x);
                let mut dx = self.pooled_zeros(xv.shape());
                reduce::expand_lastdim_into(dy.data(), dx.data_mut(), xv.shape().last_dim());
                self.acc(grads, *x, dx);
            }
            Op::MeanAll(x) => {
                let xs = val(*x).shape();
                let g = dy.data()[0] / xs.numel() as f32;
                let mut dx = self.pooled_zeros(xs);
                dx.data_mut().fill(g);
                self.acc(grads, *x, dx);
            }
            Op::SumAll(x) => {
                let xs = val(*x).shape();
                let mut dx = self.pooled_zeros(xs);
                dx.data_mut().fill(dy.data()[0]);
                self.acc(grads, *x, dx);
            }

            Op::BceWithLogits { logits, targets } => {
                let zv = val(*logits);
                let mut dz = self.pooled_zeros(zv.shape());
                for (i, ((o, &z), &g)) in
                    dz.data_mut().iter_mut().zip(zv.data()).zip(dy.data()).enumerate()
                {
                    *o = g * (seqfm_tensor::ew::sigmoid_scalar(z) - targets[i]);
                }
                self.acc(grads, *logits, dz);
            }
        }
    }

    /// Pooled `dy.map(f)`.
    fn pooled_unary(&self, dy: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = self.pooled_copy(dy);
        for o in out.data_mut() {
            *o = f(*o);
        }
        out
    }

    /// Pooled `a.zip(b, f)` (identical per-element arithmetic).
    fn pooled_zip(&self, a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        debug_assert!(a.shape().same(&b.shape()));
        let mut out = self.pooled_copy(a);
        for (o, &y) in out.data_mut().iter_mut().zip(b.data()) {
            *o = f(*o, y);
        }
        out
    }

    /// Adds `g` into the gradient slot of `v` (skipping no-grad subtrees).
    /// Merged-in gradients return their buffer to the pool immediately.
    fn acc(&self, grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
        if !self.nodes[v.0].needs_grad {
            self.recycle(g);
            return;
        }
        match &mut grads[v.0] {
            Some(t) => {
                seqfm_tensor::ew::add_assign(t, &g);
                self.recycle(g);
            }
            slot @ None => *slot = Some(g),
        }
    }
}
