//! The operation set of the autodiff tape.

use crate::store::ParamId;
use crate::Var;
use std::sync::Arc;

/// Per-row statistics cached by the LayerNorm forward pass for its backward.
#[derive(Clone)]
pub(crate) struct LnCache {
    /// Mean of each length-`d` row.
    pub mean: Vec<f32>,
    /// Reciprocal standard deviation (`1/√(var+ε)`) of each row.
    pub rstd: Vec<f32>,
}

/// Every differentiable operation the tape supports.
///
/// Each variant stores its parent [`Var`]s plus whatever forward-pass context
/// the backward pass needs (masks, dropout keep-masks, gather indices,
/// LayerNorm row statistics). Constant context is wrapped in [`Arc`] so nodes
/// stay cheap to construct when the same mask/index buffer is reused across a
/// batch.
pub(crate) enum Op {
    /// Constant input; never receives gradient.
    Input,
    /// Leaf copied from a [`crate::ParamStore`] parameter; gradient flows
    /// back into the store.
    Param(ParamId),
    /// Embedding lookup: rows of `table` selected by `idx` (`-1` = padding →
    /// zero row, no gradient). Value shape `[b, n, d]` with `idx.len() == b·n`.
    Gather {
        table: ParamId,
        idx: Arc<Vec<i64>>,
    },

    // -- elementwise ---------------------------------------------------------
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var),
    Square(Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Softplus(Var),
    /// `x + bias` where bias is rank-1 broadcast over rows.
    AddBias {
        x: Var,
        b: Var,
    },

    // -- linear algebra ------------------------------------------------------
    /// `A[m,k]·B[k,n]`.
    Matmul(Var, Var),
    /// `A[m,k]·B[n,k]ᵀ`.
    MatmulNT(Var, Var),
    /// Batched `A[b,m,k]·B[b,k,n]`.
    Bmm(Var, Var),
    /// Batched `A[b,m,k]·B[b,n,k]ᵀ` (attention scores `Q·Kᵀ`).
    BmmNT(Var, Var),
    /// Left-broadcast matmul `W[p,q]·X[b,q,d] → [b,p,d]` (CIN layers).
    LMatmul {
        w: Var,
        x: Var,
    },
    /// Row-wise dot product `[b,d]·[b,d] → [b]`.
    RowDot(Var, Var),

    // -- attention / normalisation / regularisation --------------------------
    /// Softmax over the last dim (optionally masked at forward time). The
    /// node value *is* the softmax output; the backward pass needs only it,
    /// so the mask is not retained.
    Softmax {
        x: Var,
    },
    /// LayerNorm over the last dim with learned `scale`/`bias` (Eq. 16).
    LayerNorm {
        x: Var,
        scale: Var,
        bias: Var,
        cache: LnCache,
    },
    /// Inverted dropout; `mask` entries are `0` or `1/(1-p)`.
    Dropout {
        x: Var,
        mask: Arc<Vec<f32>>,
    },

    // -- shape / gather ------------------------------------------------------
    Reshape(Var),
    /// Concatenate rank-2 tensors along the last dim: `[b,d_i] → [b,Σd_i]`.
    ConcatCols(Vec<Var>),
    /// Concatenate rank-3 tensors along axis 1 (cross-view stack, Eq. 12).
    ConcatAxis1(Var, Var),
    /// Select rows along axis 1 by constant indices: `[b,n,d] → [b,|idx|,d]`.
    IndexSelectAxis1 {
        x: Var,
        idx: Arc<Vec<usize>>,
    },
    /// Contiguous slice along axis 1.
    SliceAxis1 {
        x: Var,
        start: usize,
        len: usize,
    },
    /// Broadcast `[b,d] → [b,n,d]`.
    ExpandAxis1 {
        x: Var,
    },
    /// `X[b,n,d] + P[n,d]` (positional embeddings).
    AddBroadcastBatch {
        x: Var,
        p: Var,
    },

    // -- reductions ----------------------------------------------------------
    /// Mean over axis 1: `[b,n,d] → [b,d]` (intra-view pooling, Eq. 14).
    MeanAxis1(Var),
    SumAxis1(Var),
    /// Sum over last dim, rank r → r−1.
    SumLast(Var),
    MeanAll(Var),
    SumAll(Var),

    // -- losses --------------------------------------------------------------
    /// Numerically-stable `BCE(σ(logit), target)` per element → `[b]`.
    BceWithLogits {
        logits: Var,
        targets: Arc<Vec<f32>>,
    },
}
