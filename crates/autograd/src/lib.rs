#![warn(missing_docs)]

//! # seqfm-autograd
//!
//! Tape-based reverse-mode automatic differentiation over
//! [`seqfm_tensor::Tensor`] values — the substrate that lets this workspace
//! train SeqFM and its eleven baselines without an external deep-learning
//! framework.
//!
//! ## Design
//!
//! * **Define-by-run**: a [`Graph`] is rebuilt per mini-batch; each op
//!   executes eagerly and records a node. [`Graph::backward`] sweeps the tape
//!   in reverse.
//! * **Parameters live outside the tape** in a [`ParamStore`]. Small dense
//!   parameters enter graphs as copied leaves ([`Graph::param`]); large
//!   embedding tables are accessed through [`Graph::gather`], whose backward
//!   scatter-adds only the touched rows — mirroring how FM-style models are
//!   trained in practice (sparse "lazy" updates, see `seqfm-nn::optim`).
//! * **Every op is gradient-checked** against central finite differences (see
//!   [`gradcheck`] and this crate's test-suite).
//! * **Inference freezes the store**: [`ParamStore::freeze`] snapshots all
//!   values into an immutable, `Arc`-shareable [`FrozenParams`] that serving
//!   threads read without graphs, gradients, or locks.
//!
//! ## Example
//!
//! ```
//! use seqfm_autograd::{Graph, ParamStore};
//! use seqfm_tensor::{Shape, Tensor};
//!
//! let mut ps = ParamStore::new();
//! let w = ps.add_dense("w", Tensor::from_vec(Shape::d2(2, 1), vec![0.5, -0.5]));
//!
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_vec(Shape::d2(3, 2), vec![1., 2., 3., 4., 5., 6.]));
//! let wv = g.param(&ps, w);
//! let y = g.matmul(x, wv);          // [3,1]
//! let loss = g.mean_all(y);
//! g.backward(loss, &mut ps);
//! assert_eq!(ps.grad(w).shape(), Shape::d2(2, 1));
//! ```

mod backward;
mod frozen;
mod graph;
mod op;
mod store;

pub mod gradcheck;

pub use frozen::{FrozenId, FrozenParams, ModelEpoch};
pub use gradcheck::{assert_grad_check, grad_check, GradCheckReport};
pub use graph::{Graph, Var};
pub use store::{Param, ParamId, ParamKind, ParamStore};

#[cfg(test)]
mod tests;
