//! Parameter storage shared by all models.
//!
//! A [`ParamStore`] owns every trainable tensor of a model together with its
//! gradient accumulator and bookkeeping for *sparse-row* parameters
//! (embedding tables). Embedding tables in FM-style models are by far the
//! largest parameters (`m × d` with `m` in the tens of thousands) while each
//! mini-batch only touches a few hundred rows, so their gradients are
//! accumulated row-wise and the optimizer later visits only the touched rows
//! ("lazy" updates — see `seqfm-nn::optim`).

use seqfm_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;

/// Opaque handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ParamId(pub(crate) usize);

/// How a parameter's gradient is accumulated and consumed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParamKind {
    /// Whole-tensor gradients (weight matrices, biases, projection vectors).
    Dense,
    /// Rank-2 table updated row-wise via gather/scatter (embedding matrices).
    SparseRows,
}

/// One named, trainable tensor plus its gradient state.
pub struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
    kind: ParamKind,
    /// Row indices with non-zero gradient since the last `zero_grads`
    /// (sparse parameters only; may contain duplicates, deduped on read).
    touched: Vec<usize>,
}

impl Param {
    /// Parameter name (unique within the store).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Current accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Dense or sparse-row.
    pub fn kind(&self) -> ParamKind {
        self.kind
    }
}

/// Owner of all model parameters.
///
/// Models allocate parameters once at construction time and reference them by
/// [`ParamId`] when building computation graphs; the optimizer mutates values
/// in place between steps.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Param>,
    by_name: HashMap<String, ParamId>,
    /// Monotone version counter consumed by `freeze_versioned` (see
    /// `crate::frozen`): the number of versioned snapshots taken so far.
    epoch: u64,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dense parameter.
    ///
    /// # Panics
    /// Panics if `name` is already registered.
    pub fn add_dense(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.add(name.into(), value, ParamKind::Dense)
    }

    /// Registers a sparse-row (embedding) parameter.
    ///
    /// # Panics
    /// Panics if `name` is already registered or `value` is not rank 2.
    pub fn add_sparse(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        assert_eq!(
            value.shape().rank(),
            2,
            "sparse-row parameters must be rank 2, got {}",
            value.shape()
        );
        self.add(name.into(), value, ParamKind::SparseRows)
    }

    fn add(&mut self, name: String, value: Tensor, kind: ParamKind) -> ParamId {
        assert!(!self.by_name.contains_key(&name), "parameter `{name}` registered twice");
        let id = ParamId(self.params.len());
        let grad = Tensor::zeros(value.shape());
        self.params.push(Param { name: name.clone(), value, grad, kind, touched: Vec::new() });
        self.by_name.insert(name, id);
        id
    }

    /// Looks up a parameter id by name.
    pub fn id_of(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalars across all parameters.
    pub fn total_elems(&self) -> usize {
        self.params.iter().map(|p| p.value.numel()).sum()
    }

    /// Borrow a parameter record.
    pub fn param(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable value (initialization and optimizer steps).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Current gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Iterate over `(id, param)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// All parameter ids in registration order.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.params.len()).map(ParamId).collect()
    }

    /// Simultaneous mutable value / immutable gradient access (optimizer
    /// steps).
    pub fn value_grad_mut(&mut self, id: ParamId) -> (&mut Tensor, &Tensor) {
        let p = &mut self.params[id.0];
        (&mut p.value, &p.grad)
    }

    /// Accumulates a dense gradient contribution `g` into the parameter.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn accumulate_dense(&mut self, id: ParamId, g: &Tensor) {
        let p = &mut self.params[id.0];
        seqfm_tensor::ew::add_assign(&mut p.grad, g);
        if p.kind == ParamKind::SparseRows {
            // A dense contribution touches every row.
            let rows = p.value.shape().dim(0);
            p.touched.extend(0..rows);
        }
    }

    /// Accumulates `g_row` into row `row` of a sparse parameter's gradient
    /// and records the row as touched.
    ///
    /// # Panics
    /// Panics if the parameter is dense, the row is out of range, or the row
    /// length differs from the table width.
    pub fn accumulate_row(&mut self, id: ParamId, row: usize, g_row: &[f32]) {
        let p = &mut self.params[id.0];
        assert_eq!(p.kind, ParamKind::SparseRows, "accumulate_row on dense param `{}`", p.name);
        let (rows, cols) = (p.value.shape().dim(0), p.value.shape().dim(1));
        assert!(row < rows, "row {row} out of range for `{}` ({rows} rows)", p.name);
        assert_eq!(g_row.len(), cols, "gradient row width mismatch for `{}`", p.name);
        let dst = &mut p.grad.data_mut()[row * cols..(row + 1) * cols];
        for (d, &g) in dst.iter_mut().zip(g_row) {
            *d += g;
        }
        p.touched.push(row);
    }

    /// Rows of a sparse parameter touched since the last [`Self::zero_grads`],
    /// deduplicated and sorted.
    pub fn touched_rows(&self, id: ParamId) -> Vec<usize> {
        let mut rows = self.params[id.0].touched.clone();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Clears all gradients (dense: full zero; sparse: only touched rows) and
    /// resets touched-row bookkeeping.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            match p.kind {
                ParamKind::Dense => p.grad.data_mut().fill(0.0),
                ParamKind::SparseRows => {
                    let cols = p.value.shape().dim(1);
                    p.touched.sort_unstable();
                    p.touched.dedup();
                    for &r in &p.touched {
                        p.grad.data_mut()[r * cols..(r + 1) * cols].fill(0.0);
                    }
                    p.touched.clear();
                }
            }
        }
    }

    /// A same-shaped store for one data-parallel training worker: identical
    /// names, kinds, and **values**, with freshly zeroed gradients. Workers
    /// accumulate shard gradients here, and the trainer merges them back via
    /// [`Self::add_grads_from`].
    pub fn worker_clone(&self) -> ParamStore {
        let mut out = ParamStore::new();
        for p in &self.params {
            let value = Tensor::from_vec(p.value.shape(), p.value.data().to_vec());
            match p.kind {
                ParamKind::Dense => out.add_dense(p.name.clone(), value),
                ParamKind::SparseRows => out.add_sparse(p.name.clone(), value),
            };
        }
        out
    }

    /// Overwrites every parameter value with `src`'s (the per-step snapshot
    /// refresh of data-parallel training). Gradients are untouched.
    ///
    /// # Panics
    /// Panics if the stores do not hold the same parameters in the same
    /// order with the same shapes.
    pub fn copy_values_from(&mut self, src: &ParamStore) {
        assert_eq!(self.params.len(), src.params.len(), "param count mismatch");
        for (dst, s) in self.params.iter_mut().zip(&src.params) {
            assert_eq!(dst.name, s.name, "param order mismatch");
            assert!(dst.value.shape().same(&s.value.shape()), "shape mismatch for `{}`", dst.name);
            dst.value.data_mut().copy_from_slice(s.value.data());
        }
    }

    /// Adds `src`'s accumulated gradients into this store's — the
    /// synchronous all-reduce of data-parallel training. Dense gradients add
    /// elementwise; sparse gradients add only `src`'s touched rows (in
    /// sorted order, so merging workers in a fixed order is deterministic)
    /// and record them as touched here.
    ///
    /// # Panics
    /// Panics if the stores do not hold the same parameters in the same
    /// order with the same shapes.
    pub fn add_grads_from(&mut self, src: &ParamStore) {
        assert_eq!(self.params.len(), src.params.len(), "param count mismatch");
        for (id, s) in (0..self.params.len()).map(ParamId).zip(&src.params) {
            assert_eq!(self.params[id.0].name, s.name, "param order mismatch");
            match s.kind {
                ParamKind::Dense => self.accumulate_dense(id, &s.grad),
                ParamKind::SparseRows => {
                    let cols = s.value.shape().dim(1);
                    let mut rows = s.touched.clone();
                    rows.sort_unstable();
                    rows.dedup();
                    for r in rows {
                        self.accumulate_row(id, r, &s.grad.data()[r * cols..(r + 1) * cols]);
                    }
                }
            }
        }
    }

    /// Advances and returns the versioned-snapshot counter — the epoch the
    /// next `freeze_versioned` stamps. First call returns 1 so the stamp is
    /// always distinguishable from the unversioned epoch 0.
    pub(crate) fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// The epoch stamped by the most recent `freeze_versioned`, or 0 when
    /// no versioned snapshot was taken yet.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Sum of squared gradient elements across all parameters (diagnostics).
    pub fn grad_sq_norm(&self) -> f64 {
        self.params.iter().flat_map(|p| p.grad.data()).map(|&g| (g as f64) * (g as f64)).sum()
    }

    /// `true` if any parameter value or gradient contains NaN/inf.
    pub fn has_non_finite(&self) -> bool {
        self.params.iter().any(|p| p.value.has_non_finite() || p.grad.has_non_finite())
    }
}

impl fmt::Debug for ParamStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ParamStore ({} params, {} elems)", self.len(), self.total_elems())?;
        for p in &self.params {
            writeln!(f, "  {} {} {:?}", p.name, p.value.shape(), p.kind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqfm_tensor::testutil::assert_close;
    use seqfm_tensor::Shape;

    #[test]
    fn register_and_lookup() {
        let mut ps = ParamStore::new();
        let a = ps.add_dense("w", Tensor::zeros(Shape::d2(2, 3)));
        let b = ps.add_sparse("emb", Tensor::zeros(Shape::d2(10, 4)));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.total_elems(), 6 + 40);
        assert_eq!(ps.id_of("w"), Some(a));
        assert_eq!(ps.id_of("emb"), Some(b));
        assert_eq!(ps.id_of("nope"), None);
        assert_eq!(ps.param(a).kind(), ParamKind::Dense);
        assert_eq!(ps.param(b).kind(), ParamKind::SparseRows);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_rejected() {
        let mut ps = ParamStore::new();
        ps.add_dense("w", Tensor::zeros(Shape::d1(1)));
        ps.add_dense("w", Tensor::zeros(Shape::d1(1)));
    }

    #[test]
    #[should_panic(expected = "rank 2")]
    fn sparse_must_be_rank2() {
        let mut ps = ParamStore::new();
        ps.add_sparse("emb", Tensor::zeros(Shape::d1(5)));
    }

    #[test]
    fn dense_grad_accumulation_and_reset() {
        let mut ps = ParamStore::new();
        let w = ps.add_dense("w", Tensor::zeros(Shape::d1(3)));
        ps.accumulate_dense(w, &Tensor::vector(vec![1.0, 2.0, 3.0]));
        ps.accumulate_dense(w, &Tensor::vector(vec![1.0, 1.0, 1.0]));
        assert_close(ps.grad(w).data(), &[2.0, 3.0, 4.0], 1e-6);
        ps.zero_grads();
        assert_close(ps.grad(w).data(), &[0.0, 0.0, 0.0], 1e-6);
    }

    #[test]
    fn sparse_rows_touched_and_reset() {
        let mut ps = ParamStore::new();
        let e = ps.add_sparse("emb", Tensor::zeros(Shape::d2(4, 2)));
        ps.accumulate_row(e, 1, &[0.5, 0.5]);
        ps.accumulate_row(e, 3, &[1.0, -1.0]);
        ps.accumulate_row(e, 1, &[0.5, 0.5]);
        assert_eq!(ps.touched_rows(e), vec![1, 3]);
        assert_close(ps.grad(e).data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, -1.0], 1e-6);
        ps.zero_grads();
        assert!(ps.touched_rows(e).is_empty());
        assert!(ps.grad(e).data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn worker_clone_shares_values_not_grads() {
        let mut ps = ParamStore::new();
        let w = ps.add_dense("w", Tensor::vector(vec![1.0, 2.0]));
        let e = ps.add_sparse("emb", Tensor::ones(Shape::d2(3, 2)));
        ps.accumulate_dense(w, &Tensor::vector(vec![5.0, 5.0]));
        let wk = ps.worker_clone();
        assert_eq!(wk.value(w).data(), ps.value(w).data());
        assert_eq!(wk.param(e).kind(), ParamKind::SparseRows);
        assert!(wk.grad(w).data().iter().all(|&g| g == 0.0), "worker grads must start zeroed");
    }

    #[test]
    fn copy_values_refreshes_the_snapshot() {
        let mut master = ParamStore::new();
        let w = master.add_dense("w", Tensor::vector(vec![1.0, 2.0]));
        let mut worker = master.worker_clone();
        master.value_mut(w).data_mut()[0] = 9.0;
        worker.copy_values_from(&master);
        assert_eq!(worker.value(w).data(), &[9.0, 2.0]);
    }

    #[test]
    fn add_grads_merges_dense_and_touched_sparse_rows() {
        let mut master = ParamStore::new();
        let w = master.add_dense("w", Tensor::vector(vec![0.0, 0.0]));
        let e = master.add_sparse("emb", Tensor::zeros(Shape::d2(4, 2)));
        let mut wk1 = master.worker_clone();
        let mut wk2 = master.worker_clone();
        wk1.accumulate_dense(w, &Tensor::vector(vec![1.0, 2.0]));
        wk1.accumulate_row(e, 1, &[0.5, 0.5]);
        wk2.accumulate_dense(w, &Tensor::vector(vec![10.0, 20.0]));
        wk2.accumulate_row(e, 1, &[0.5, 0.5]);
        wk2.accumulate_row(e, 3, &[1.0, -1.0]);
        master.add_grads_from(&wk1);
        master.add_grads_from(&wk2);
        assert_close(master.grad(w).data(), &[11.0, 22.0], 1e-6);
        assert_eq!(master.touched_rows(e), vec![1, 3]);
        assert_close(master.grad(e).data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, -1.0], 1e-6);
        // zero_grads still clears everything merged.
        master.zero_grads();
        assert!(master.grad(e).data().iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "param count mismatch")]
    fn merging_foreign_stores_is_rejected() {
        let mut a = ParamStore::new();
        a.add_dense("w", Tensor::vector(vec![0.0]));
        let b = ParamStore::new();
        a.add_grads_from(&b);
    }

    #[test]
    fn non_finite_detection() {
        let mut ps = ParamStore::new();
        let w = ps.add_dense("w", Tensor::zeros(Shape::d1(2)));
        assert!(!ps.has_non_finite());
        ps.value_mut(w).data_mut()[0] = f32::INFINITY;
        assert!(ps.has_non_finite());
    }
}
