//! Finite-difference gradient checking.
//!
//! Every op in this crate (and every layer built on top of it in `seqfm-nn`)
//! is validated against central finite differences. The checker rebuilds the
//! forward graph from scratch for each perturbation, so the closure must be
//! deterministic — in particular it must not sample dropout masks.

use crate::graph::{Graph, Var};
use crate::store::{ParamId, ParamStore};
use seqfm_tensor::Tensor;

/// Result of a gradient check: the largest deviation found.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest absolute error between analytic and numeric gradient.
    pub max_abs_err: f32,
    /// Largest relative error `|a−n| / (1 + max(|a|,|n|))`.
    pub max_rel_err: f32,
    /// Number of scalar entries compared.
    pub entries: usize,
}

/// Checks analytic gradients of `build` (a closure producing a **scalar**
/// loss node) against central finite differences for every listed parameter.
///
/// Returns the worst-case report; asserts nothing. Use
/// [`assert_grad_check`] in tests.
pub fn grad_check(
    ps: &mut ParamStore,
    ids: &[ParamId],
    eps: f32,
    build: impl Fn(&mut Graph, &ParamStore) -> Var,
) -> GradCheckReport {
    // Analytic pass.
    ps.zero_grads();
    let mut g = Graph::new();
    let loss = build(&mut g, ps);
    g.backward(loss, ps);
    let analytic: Vec<Tensor> = ids.iter().map(|&id| ps.grad(id).clone()).collect();

    let mut report = GradCheckReport { max_abs_err: 0.0, max_rel_err: 0.0, entries: 0 };
    let eval = |ps: &ParamStore| -> f32 {
        let mut g = Graph::new();
        let loss = build(&mut g, ps);
        g.scalar_value(loss)
    };

    for (k, &id) in ids.iter().enumerate() {
        let n = ps.value(id).numel();
        for j in 0..n {
            let orig = ps.value(id).data()[j];
            ps.value_mut(id).data_mut()[j] = orig + eps;
            let lp = eval(ps);
            ps.value_mut(id).data_mut()[j] = orig - eps;
            let lm = eval(ps);
            ps.value_mut(id).data_mut()[j] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[k].data()[j];
            let abs = (a - numeric).abs();
            let rel = abs / (1.0 + a.abs().max(numeric.abs()));
            report.max_abs_err = report.max_abs_err.max(abs);
            report.max_rel_err = report.max_rel_err.max(rel);
            report.entries += 1;
        }
    }
    ps.zero_grads();
    report
}

/// Asserts that [`grad_check`] stays within `tol` relative error.
///
/// # Panics
/// Panics with the offending report when the tolerance is exceeded.
pub fn assert_grad_check(
    ps: &mut ParamStore,
    ids: &[ParamId],
    eps: f32,
    tol: f32,
    build: impl Fn(&mut Graph, &ParamStore) -> Var,
) {
    let report = grad_check(ps, ids, eps, build);
    assert!(report.max_rel_err <= tol, "gradient check failed: {report:?} (tol {tol})");
}
