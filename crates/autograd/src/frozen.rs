//! Immutable, shareable parameter snapshots for inference.
//!
//! A [`FrozenParams`] is the read-only counterpart of [`ParamStore`]: the
//! same named tensors, but with no gradients, no interior mutability, and no
//! `&mut` surface at all — so a single snapshot behind an `Arc` can be read
//! concurrently by any number of serving threads. Freezing copies the values
//! once; after that, scoring never touches the training store again.

use crate::store::ParamStore;
use seqfm_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of a parameter inside a [`FrozenParams`] snapshot.
///
/// Resolved once by name (see [`FrozenParams::index_of`]) and then used for
/// hash-free access on the scoring hot path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrozenId(usize);

/// Version stamp of a parameter snapshot.
///
/// Epochs are handed out by [`ParamStore::freeze_versioned`] in strictly
/// increasing order per store, so any layer that derives state from a
/// snapshot (view caches, retrieval indexes, quantized bundles) can key on
/// the epoch and detect staleness with a single integer compare. Plain
/// [`ParamStore::freeze`] stamps [`ModelEpoch::ZERO`] — the "unversioned /
/// offline" epoch — which keeps every pre-existing call site byte-for-byte
/// unchanged.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ModelEpoch(pub u64);

impl ModelEpoch {
    /// The unversioned epoch stamped by plain [`ParamStore::freeze`].
    pub const ZERO: ModelEpoch = ModelEpoch(0);

    /// The raw counter value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ModelEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An immutable snapshot of model parameters, keyed by name.
///
/// `FrozenParams` is `Send + Sync` by construction (plain owned data), so it
/// can be wrapped in an [`Arc`] and shared across serving threads.
pub struct FrozenParams {
    names: Vec<String>,
    values: Vec<Tensor>,
    by_name: HashMap<String, usize>,
    epoch: ModelEpoch,
}

impl FrozenParams {
    /// Copies every parameter value out of a [`ParamStore`], stamped with
    /// the unversioned [`ModelEpoch::ZERO`].
    pub fn from_store(ps: &ParamStore) -> Self {
        Self::from_store_versioned(ps, ModelEpoch::ZERO)
    }

    /// Copies every parameter value out of a [`ParamStore`], stamped with
    /// `epoch`. Callers that need monotone stamps should go through
    /// [`ParamStore::freeze_versioned`] instead of picking epochs by hand.
    pub fn from_store_versioned(ps: &ParamStore, epoch: ModelEpoch) -> Self {
        let mut names = Vec::with_capacity(ps.len());
        let mut values = Vec::with_capacity(ps.len());
        let mut by_name = HashMap::with_capacity(ps.len());
        for (_, p) in ps.iter() {
            by_name.insert(p.name().to_string(), values.len());
            names.push(p.name().to_string());
            values.push(p.value().clone());
        }
        FrozenParams { names, values, by_name, epoch }
    }

    /// Convenience: freeze straight into an [`Arc`].
    pub fn shared(ps: &ParamStore) -> Arc<Self> {
        Arc::new(Self::from_store(ps))
    }

    /// The epoch this snapshot was stamped with at freeze time.
    pub fn epoch(&self) -> ModelEpoch {
        self.epoch
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the snapshot holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalars across all parameters.
    pub fn total_elems(&self) -> usize {
        self.values.iter().map(Tensor::numel).sum()
    }

    /// Resolves a parameter name to its stable index.
    pub fn index_of(&self, name: &str) -> Option<FrozenId> {
        self.by_name.get(name).copied().map(FrozenId)
    }

    /// Looks up a parameter value by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.by_name.get(name).map(|&i| &self.values[i])
    }

    /// Value by pre-resolved index — the hot-path accessor.
    pub fn value(&self, id: FrozenId) -> &Tensor {
        &self.values[id.0]
    }

    /// Name of a parameter by index.
    pub fn name(&self, id: FrozenId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.names.iter().map(String::as_str).zip(self.values.iter())
    }
}

impl fmt::Debug for FrozenParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FrozenParams ({} params, {} elems, {})",
            self.len(),
            self.total_elems(),
            self.epoch
        )?;
        for (name, v) in self.iter() {
            writeln!(f, "  {} {}", name, v.shape())?;
        }
        Ok(())
    }
}

impl ParamStore {
    /// Snapshots every parameter value into an immutable [`FrozenParams`]
    /// stamped [`ModelEpoch::ZERO`] — the offline, unversioned path.
    pub fn freeze(&self) -> FrozenParams {
        FrozenParams::from_store(self)
    }

    /// Snapshots every parameter value into a shared [`FrozenParams`]
    /// stamped with the store's next monotone [`ModelEpoch`].
    ///
    /// Successive calls on the same store return strictly increasing epochs
    /// starting at 1, so epoch equality is snapshot identity for everything
    /// derived downstream (view caches, retrieval indexes, quantized fast
    /// profiles).
    pub fn freeze_versioned(&mut self) -> Arc<FrozenParams> {
        let epoch = ModelEpoch(self.bump_epoch());
        Arc::new(FrozenParams::from_store_versioned(self, epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqfm_tensor::Shape;

    fn sample() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.add_dense("w", Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]));
        ps.add_sparse("emb", Tensor::from_vec(Shape::d2(3, 2), vec![0.5; 6]));
        ps
    }

    #[test]
    fn freeze_copies_values_and_preserves_shapes() {
        let mut ps = sample();
        let frozen = ps.freeze();
        assert_eq!(frozen.len(), 2);
        assert_eq!(frozen.total_elems(), ps.total_elems());
        assert_eq!(frozen.get("w").unwrap().data(), ps.value(ps.id_of("w").unwrap()).data());
        assert_eq!(frozen.get("emb").unwrap().shape(), Shape::d2(3, 2));
        // A later optimizer step must not leak into the snapshot.
        let w = ps.id_of("w").unwrap();
        ps.value_mut(w).data_mut()[0] = 99.0;
        assert_eq!(frozen.get("w").unwrap().data()[0], 1.0);
    }

    #[test]
    fn index_lookup_matches_name_lookup() {
        let ps = sample();
        let frozen = ps.freeze();
        let id = frozen.index_of("emb").expect("emb registered");
        assert_eq!(frozen.value(id).data(), frozen.get("emb").unwrap().data());
        assert_eq!(frozen.name(id), "emb");
        assert!(frozen.index_of("nope").is_none());
        assert!(!frozen.is_empty());
    }

    #[test]
    fn versioned_freezes_are_strictly_monotone() {
        let mut ps = sample();
        assert_eq!(ps.freeze().epoch(), ModelEpoch::ZERO);
        let first = ps.freeze_versioned();
        let second = ps.freeze_versioned();
        assert_eq!(first.epoch(), ModelEpoch(1));
        assert_eq!(second.epoch(), ModelEpoch(2));
        assert!(first.epoch() < second.epoch());
        // Plain freeze stays on the unversioned epoch and does not advance
        // the counter.
        assert_eq!(ps.freeze().epoch(), ModelEpoch::ZERO);
        assert_eq!(ps.freeze_versioned().epoch(), ModelEpoch(3));
        assert_eq!(format!("{}", ModelEpoch(3)), "e3");
    }

    #[test]
    fn versioned_freeze_snapshots_current_values() {
        let mut ps = sample();
        let w = ps.id_of("w").unwrap();
        let before = ps.freeze_versioned();
        ps.value_mut(w).data_mut()[0] = 42.0;
        let after = ps.freeze_versioned();
        assert_eq!(before.get("w").unwrap().data()[0], 1.0);
        assert_eq!(after.get("w").unwrap().data()[0], 42.0);
    }

    #[test]
    fn frozen_params_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenParams>();
        assert_send_sync::<Arc<FrozenParams>>();
    }
}
