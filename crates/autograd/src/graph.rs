//! Define-by-run computation graph (forward pass).
//!
//! A [`Graph`] is a tape: every operation executes eagerly, appends a node
//! holding its output value, and returns a [`Var`] handle. Calling
//! [`Graph::backward`] replays the tape in reverse, accumulating parameter
//! gradients into a [`ParamStore`]. A fresh graph is built per mini-batch —
//! node construction is cheap and values are exactly the activations needed
//! by the backward pass.

use crate::op::{LnCache, Op};
use crate::store::{ParamId, ParamStore};
use rand::Rng;
use seqfm_tensor::{bmm_nn, bmm_nt, ew, matmul_nn, matmul_nt, reduce, AttnMask, Shape, Tensor};
use std::sync::Arc;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Var(pub(crate) usize);

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
    pub needs_grad: bool,
}

/// The autodiff tape. See the module docs.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tape with preallocated node capacity (hot training loops).
    pub fn with_capacity(n: usize) -> Self {
        Graph { nodes: Vec::with_capacity(n) }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Convenience: the single element of a `[1]`-shaped node (losses).
    ///
    /// # Panics
    /// Panics if the node does not hold exactly one element.
    pub fn scalar_value(&self, v: Var) -> f32 {
        let t = self.value(v);
        assert_eq!(t.numel(), 1, "scalar_value on {} tensor", t.shape());
        t.data()[0]
    }

    fn push(&mut self, value: Tensor, op: Op, needs_grad: bool) -> Var {
        self.nodes.push(Node { value, op, needs_grad });
        Var(self.nodes.len() - 1)
    }

    fn ng(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    // --- leaves -------------------------------------------------------------

    /// Records a constant input (no gradient).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Input, false)
    }

    /// Records a parameter leaf by copying its current value from the store.
    pub fn param(&mut self, ps: &ParamStore, id: ParamId) -> Var {
        self.push(ps.value(id).clone(), Op::Param(id), true)
    }

    /// Embedding lookup: gathers rows of the (sparse) parameter `table` into
    /// a `[b, n, d]` tensor. Index `-1` denotes padding and yields a zero row
    /// that receives no gradient — this realises the paper's zero-vector
    /// padding of the dynamic feature matrix (§III).
    ///
    /// # Panics
    /// Panics if `idx.len() != b*n` or an index is out of table range.
    pub fn gather(
        &mut self,
        ps: &ParamStore,
        table: ParamId,
        idx: &[i64],
        b: usize,
        n: usize,
    ) -> Var {
        assert_eq!(idx.len(), b * n, "gather: idx len {} != {}x{}", idx.len(), b, n);
        let tbl = ps.value(table);
        let (rows, d) = (tbl.shape().dim(0), tbl.shape().dim(1));
        let mut out = Tensor::zeros(Shape::d3(b, n, d));
        for (slot, &i) in idx.iter().enumerate() {
            if i < 0 {
                continue;
            }
            let i = i as usize;
            assert!(i < rows, "gather index {i} out of range ({rows} rows)");
            out.data_mut()[slot * d..(slot + 1) * d]
                .copy_from_slice(&tbl.data()[i * d..(i + 1) * d]);
        }
        self.push(out, Op::Gather { table, idx: Arc::new(idx.to_vec()) }, true)
    }

    // --- elementwise --------------------------------------------------------

    /// `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = ew::add(self.value(a), self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::Add(a, b), g)
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = ew::sub(self.value(a), self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::Sub(a, b), g)
    }

    /// `a ⊙ b` (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = ew::mul(self.value(a), self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::Mul(a, b), g)
    }

    /// `-x`.
    pub fn neg(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|v| -v);
        let g = self.ng(x);
        self.push(v, Op::Neg(x), g)
    }

    /// `s · x`.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        let v = ew::scale(self.value(x), s);
        let g = self.ng(x);
        self.push(v, Op::Scale(x, s), g)
    }

    /// `x + c` elementwise with a constant.
    pub fn add_scalar(&mut self, x: Var, c: f32) -> Var {
        let v = self.value(x).map(|v| v + c);
        let g = self.ng(x);
        self.push(v, Op::AddScalar(x), g)
    }

    /// `x²` elementwise.
    pub fn square(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|v| v * v);
        let g = self.ng(x);
        self.push(v, Op::Square(x), g)
    }

    /// ReLU.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = ew::relu(self.value(x));
        let g = self.ng(x);
        self.push(v, Op::Relu(x), g)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = ew::sigmoid(self.value(x));
        let g = self.ng(x);
        self.push(v, Op::Sigmoid(x), g)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|v| v.tanh());
        let g = self.ng(x);
        self.push(v, Op::Tanh(x), g)
    }

    /// Numerically-stable softplus `ln(1+eˣ)`.
    pub fn softplus(&mut self, x: Var) -> Var {
        let v = self.value(x).map(ew::softplus_scalar);
        let g = self.ng(x);
        self.push(v, Op::Softplus(x), g)
    }

    /// `x + bias` (bias rank-1, broadcast over rows).
    pub fn add_bias(&mut self, x: Var, b: Var) -> Var {
        let v = ew::add_bias(self.value(x), self.value(b));
        let g = self.ng(x) || self.ng(b);
        self.push(v, Op::AddBias { x, b }, g)
    }

    // --- linear algebra ------------------------------------------------------

    /// `A[m,k]·B[k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = matmul_nn(self.value(a), self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::Matmul(a, b), g)
    }

    /// `A[m,k]·B[n,k]ᵀ`.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let v = matmul_nt(self.value(a), self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::MatmulNT(a, b), g)
    }

    /// Batched `A[b,m,k]·B[b,k,n]`.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let v = bmm_nn(self.value(a), self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::Bmm(a, b), g)
    }

    /// Batched `A[b,m,k]·B[b,n,k]ᵀ` (`Q·Kᵀ`).
    pub fn bmm_nt(&mut self, a: Var, b: Var) -> Var {
        let v = bmm_nt(self.value(a), self.value(b));
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::BmmNT(a, b), g)
    }

    /// Left-broadcast matmul `W[p,q]·X[b,q,d] → [b,p,d]`.
    ///
    /// # Panics
    /// Panics if `w` is not rank 2, `x` not rank 3, or `q` dims disagree.
    pub fn lmatmul(&mut self, w: Var, x: Var) -> Var {
        let (wv, xv) = (self.value(w), self.value(x));
        assert_eq!(wv.shape().rank(), 2, "lmatmul W must be rank 2, got {}", wv.shape());
        assert_eq!(xv.shape().rank(), 3, "lmatmul X must be rank 3, got {}", xv.shape());
        let (p, q) = (wv.shape().dim(0), wv.shape().dim(1));
        let (b, q2, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert_eq!(q, q2, "lmatmul inner dim mismatch: {} vs {}", wv.shape(), xv.shape());
        let mut out = Tensor::zeros(Shape::d3(b, p, d));
        for bi in 0..b {
            seqfm_tensor::kernels::matmul::matmul_nn_into(
                wv.data(),
                &xv.data()[bi * q * d..(bi + 1) * q * d],
                &mut out.data_mut()[bi * p * d..(bi + 1) * p * d],
                p,
                q,
                d,
            );
        }
        let g = self.ng(w) || self.ng(x);
        self.push(out, Op::LMatmul { w, x }, g)
    }

    /// Row-wise dot product of two `[b,d]` tensors → `[b]`.
    ///
    /// # Panics
    /// Panics if shapes differ or are not rank 2.
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.shape().rank(), 2, "row_dot expects rank 2, got {}", av.shape());
        assert!(
            av.shape().same(&bv.shape()),
            "row_dot shape mismatch: {} vs {}",
            av.shape(),
            bv.shape()
        );
        let prod = ew::mul(av, bv);
        let v = reduce::sum_lastdim(&prod);
        let g = self.ng(a) || self.ng(b);
        self.push(v, Op::RowDot(a, b), g)
    }

    // --- attention / normalisation / regularisation --------------------------

    /// Softmax over the last dim.
    pub fn softmax(&mut self, x: Var) -> Var {
        let v = seqfm_tensor::softmax_lastdim(self.value(x));
        let g = self.ng(x);
        self.push(v, Op::Softmax { x }, g)
    }

    /// Masked softmax over the last dim; the mask is shared across the batch.
    pub fn softmax_masked(&mut self, x: Var, mask: Arc<AttnMask>) -> Var {
        let v = seqfm_tensor::softmax_lastdim_masked(self.value(x), &mask);
        let g = self.ng(x);
        self.push(v, Op::Softmax { x }, g)
    }

    /// LayerNorm over the last dimension with learned scale and bias
    /// (paper Eq. 16). `eps` guards the variance as the paper's "small bias
    /// term added in case σ = 0".
    ///
    /// # Panics
    /// Panics if `scale`/`bias` are not rank-1 of the last-dim size.
    pub fn layer_norm(&mut self, x: Var, scale: Var, bias: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let d = xv.shape().last_dim();
        assert_eq!(self.value(scale).numel(), d, "layer_norm scale width mismatch");
        assert_eq!(self.value(bias).numel(), d, "layer_norm bias width mismatch");
        let rows = xv.shape().outer_rows();
        let mut mean = Vec::with_capacity(rows);
        let mut rstd = Vec::with_capacity(rows);
        let mut out = Tensor::zeros(xv.shape());
        let (sv, bv) = (self.value(scale).data().to_vec(), self.value(bias).data().to_vec());
        for (row, orow) in xv.data().chunks_exact(d).zip(self_chunks_mut(&mut out, d)) {
            let mu = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
            let rs = 1.0 / (var + eps).sqrt();
            mean.push(mu);
            rstd.push(rs);
            for ((&xi, o), (sc, bi)) in row.iter().zip(orow.iter_mut()).zip(sv.iter().zip(&bv)) {
                *o = (xi - mu) * rs * sc + bi;
            }
        }
        let g = self.ng(x) || self.ng(scale) || self.ng(bias);
        self.push(out, Op::LayerNorm { x, scale, bias, cache: LnCache { mean, rstd } }, g)
    }

    /// Inverted dropout with drop probability `p`: kept activations are
    /// scaled by `1/(1-p)` so the expected value is unchanged and inference
    /// needs no rescaling (paper §III-F "Layer Dropout").
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1`.
    pub fn dropout<R: Rng + ?Sized>(&mut self, x: Var, p: f32, rng: &mut R) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1), got {p}");
        if p == 0.0 {
            return x;
        }
        let keep = 1.0 - p;
        let inv = 1.0 / keep;
        let xv = self.value(x);
        let mask: Vec<f32> =
            (0..xv.numel()).map(|_| if rng.gen::<f32>() < keep { inv } else { 0.0 }).collect();
        let mut v = xv.clone();
        for (o, &m) in v.data_mut().iter_mut().zip(&mask) {
            *o *= m;
        }
        let g = self.ng(x);
        self.push(v, Op::Dropout { x, mask: Arc::new(mask) }, g)
    }

    // --- shape ----------------------------------------------------------------

    /// Reshape (same element count, zero-copy semantics for values).
    pub fn reshape(&mut self, x: Var, shape: Shape) -> Var {
        let v = self.value(x).reshaped(shape);
        let g = self.ng(x);
        self.push(v, Op::Reshape(x), g)
    }

    /// Concatenates rank-2 tensors along the last dim (view-wise aggregation,
    /// Eq. 17).
    ///
    /// # Panics
    /// Panics if `parts` is empty, any part is not rank 2, or row counts
    /// differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one input");
        let b = self.value(parts[0]).shape().dim(0);
        let mut total = 0;
        for &p in parts {
            let s = self.value(p).shape();
            assert_eq!(s.rank(), 2, "concat_cols expects rank 2, got {s}");
            assert_eq!(s.dim(0), b, "concat_cols row count mismatch");
            total += s.dim(1);
        }
        let mut out = Tensor::zeros(Shape::d2(b, total));
        let mut col = 0;
        for &p in parts {
            let pv = self.value(p).clone();
            let w = pv.shape().dim(1);
            for r in 0..b {
                out.data_mut()[r * total + col..r * total + col + w]
                    .copy_from_slice(&pv.data()[r * w..(r + 1) * w]);
            }
            col += w;
        }
        let g = parts.iter().any(|&p| self.ng(p));
        self.push(out, Op::ConcatCols(parts.to_vec()), g)
    }

    /// Concatenates two `[b,n,d]` tensors along axis 1 (cross-view stack,
    /// Eq. 12).
    ///
    /// # Panics
    /// Panics if ranks/batch/last dims disagree.
    pub fn concat_axis1(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.shape().rank(), 3, "concat_axis1 expects rank 3, got {}", av.shape());
        assert_eq!(bv.shape().rank(), 3, "concat_axis1 expects rank 3, got {}", bv.shape());
        let (ba, na, d) = (av.shape().dim(0), av.shape().dim(1), av.shape().dim(2));
        let (bb, nb, d2) = (bv.shape().dim(0), bv.shape().dim(1), bv.shape().dim(2));
        assert_eq!(ba, bb, "concat_axis1 batch mismatch");
        assert_eq!(d, d2, "concat_axis1 width mismatch");
        let n = na + nb;
        let mut out = Tensor::zeros(Shape::d3(ba, n, d));
        for bi in 0..ba {
            out.data_mut()[bi * n * d..bi * n * d + na * d]
                .copy_from_slice(&av.data()[bi * na * d..(bi + 1) * na * d]);
            out.data_mut()[bi * n * d + na * d..(bi + 1) * n * d]
                .copy_from_slice(&bv.data()[bi * nb * d..(bi + 1) * nb * d]);
        }
        let g = self.ng(a) || self.ng(b);
        self.push(out, Op::ConcatAxis1(a, b), g)
    }

    /// Selects rows along axis 1 by constant indices (`[b,n,d] → [b,|idx|,d]`).
    ///
    /// # Panics
    /// Panics if `x` is not rank 3 or an index is out of range.
    pub fn index_select_axis1(&mut self, x: Var, idx: &[usize]) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "index_select_axis1 expects rank 3, got {}", xv.shape());
        let (b, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        let p = idx.len();
        let mut out = Tensor::zeros(Shape::d3(b, p, d));
        for bi in 0..b {
            for (pi, &r) in idx.iter().enumerate() {
                assert!(r < n, "index_select_axis1 index {r} out of range ({n})");
                let src = &xv.data()[(bi * n + r) * d..(bi * n + r + 1) * d];
                out.data_mut()[(bi * p + pi) * d..(bi * p + pi + 1) * d].copy_from_slice(src);
            }
        }
        let g = self.ng(x);
        self.push(out, Op::IndexSelectAxis1 { x, idx: Arc::new(idx.to_vec()) }, g)
    }

    /// Contiguous slice `[b, start..start+len, d]` along axis 1.
    ///
    /// # Panics
    /// Panics if the range exceeds axis 1.
    pub fn slice_axis1(&mut self, x: Var, start: usize, len: usize) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "slice_axis1 expects rank 3, got {}", xv.shape());
        let (b, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert!(start + len <= n, "slice_axis1 range {start}+{len} exceeds {n}");
        let mut out = Tensor::zeros(Shape::d3(b, len, d));
        for bi in 0..b {
            let src = &xv.data()[(bi * n + start) * d..(bi * n + start + len) * d];
            out.data_mut()[bi * len * d..(bi + 1) * len * d].copy_from_slice(src);
        }
        let g = self.ng(x);
        self.push(out, Op::SliceAxis1 { x, start, len }, g)
    }

    /// Broadcasts `[b,d] → [b,n,d]` by repeating along a new axis 1.
    ///
    /// # Panics
    /// Panics if `x` is not rank 2.
    pub fn expand_axis1(&mut self, x: Var, n: usize) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 2, "expand_axis1 expects rank 2, got {}", xv.shape());
        let v = reduce::broadcast_axis1(xv, n, 1.0);
        let g = self.ng(x);
        self.push(v, Op::ExpandAxis1 { x }, g)
    }

    /// `X[b,n,d] + P[n,d]`, broadcasting `P` over the batch (positional
    /// embeddings in SASRec).
    ///
    /// # Panics
    /// Panics on rank/shape mismatch.
    pub fn add_broadcast_batch(&mut self, x: Var, p: Var) -> Var {
        let (xv, pv) = (self.value(x), self.value(p));
        assert_eq!(xv.shape().rank(), 3, "add_broadcast_batch x must be rank 3");
        assert_eq!(pv.shape().rank(), 2, "add_broadcast_batch p must be rank 2");
        let (b, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert_eq!((pv.shape().dim(0), pv.shape().dim(1)), (n, d), "broadcast shape mismatch");
        let mut out = xv.clone();
        for bi in 0..b {
            for (o, &pvv) in out.data_mut()[bi * n * d..(bi + 1) * n * d].iter_mut().zip(pv.data())
            {
                *o += pvv;
            }
        }
        let g = self.ng(x) || self.ng(p);
        self.push(out, Op::AddBroadcastBatch { x, p }, g)
    }

    // --- reductions -----------------------------------------------------------

    /// Mean over axis 1 (`[b,n,d] → [b,d]`) — intra-view pooling, Eq. 14.
    pub fn mean_axis1(&mut self, x: Var) -> Var {
        let v = reduce::mean_axis1(self.value(x));
        let g = self.ng(x);
        self.push(v, Op::MeanAxis1(x), g)
    }

    /// Sum over axis 1 (`[b,n,d] → [b,d]`).
    pub fn sum_axis1(&mut self, x: Var) -> Var {
        let v = reduce::sum_axis1(self.value(x));
        let g = self.ng(x);
        self.push(v, Op::SumAxis1(x), g)
    }

    /// Sum over the last dim (rank r → r−1).
    pub fn sum_lastdim(&mut self, x: Var) -> Var {
        let v = reduce::sum_lastdim(self.value(x));
        let g = self.ng(x);
        self.push(v, Op::SumLast(x), g)
    }

    /// Mean of all elements → `[1]`.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let v = reduce::mean_all(self.value(x));
        let g = self.ng(x);
        self.push(v, Op::MeanAll(x), g)
    }

    /// Sum of all elements → `[1]`.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let v = reduce::sum_all(self.value(x));
        let g = self.ng(x);
        self.push(v, Op::SumAll(x), g)
    }

    // --- losses ---------------------------------------------------------------

    /// Per-element binary cross-entropy on logits:
    /// `ℓ = max(z,0) − z·t + ln(1+e^{−|z|})` (stable log-loss, Eq. 24).
    ///
    /// # Panics
    /// Panics if `targets.len() != logits.numel()`.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let lv = self.value(logits);
        assert_eq!(targets.len(), lv.numel(), "bce targets length mismatch");
        let mut out = Tensor::zeros(lv.shape());
        for ((o, &z), &t) in out.data_mut().iter_mut().zip(lv.data()).zip(targets) {
            *o = z.max(0.0) - z * t + (-z.abs()).exp().ln_1p();
        }
        let g = self.ng(logits);
        self.push(out, Op::BceWithLogits { logits, targets: Arc::new(targets.to_vec()) }, g)
    }
}

/// Helper: mutable row chunks of a tensor (sidesteps a borrow conflict inside
/// `layer_norm`).
fn self_chunks_mut(t: &mut Tensor, d: usize) -> std::slice::ChunksExactMut<'_, f32> {
    t.data_mut().chunks_exact_mut(d)
}
