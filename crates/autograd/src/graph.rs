//! Define-by-run computation graph (forward pass).
//!
//! A [`Graph`] is a tape: every operation executes eagerly, appends a node
//! holding its output value, and returns a [`Var`] handle. Calling
//! [`Graph::backward`] replays the tape in reverse, accumulating parameter
//! gradients into a [`ParamStore`].
//!
//! ## Pooled tape buffers
//!
//! Node values (and the backward pass's gradient temporaries) live in
//! buffers drawn from the graph's own [`Workspace`] pool instead of fresh
//! heap allocations. [`Graph::reset`] clears the tape and recycles every
//! buffer, so a training loop that reuses one `Graph` across mini-batches —
//! or a serving adapter that reuses one across requests — builds each new
//! tape without touching the global allocator once the pool has warmed to
//! the batch shape. Dropping the graph simply frees the pool.

use crate::op::{LnCache, Op};
use crate::store::{ParamId, ParamStore};
use rand::Rng;
use seqfm_tensor::{
    bmm_nn_into, bmm_nt_into, kernels::matmul::matmul_nn_into, reduce, softmax_rows_into, AttnMask,
    Shape, Tensor, Workspace,
};
use std::sync::Arc;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Var(pub(crate) usize);

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
    pub needs_grad: bool,
}

/// The autodiff tape. See the module docs.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    /// Buffer pool backing node values and backward temporaries; `&self`
    /// interior mutability so the backward sweep (which borrows the tape
    /// immutably) can recycle through it too.
    pub(crate) ws: Workspace,
    /// Reused gradient-slot table of the backward sweep (one entry per
    /// node); kept across calls so backward itself allocates nothing once
    /// its capacity has grown to the tape length.
    pub(crate) grads: std::cell::RefCell<Vec<Option<Tensor>>>,
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tape with preallocated node capacity (hot training loops).
    pub fn with_capacity(n: usize) -> Self {
        Graph { nodes: Vec::with_capacity(n), ..Default::default() }
    }

    /// Clears the tape and recycles every node's buffer into the graph's
    /// workspace pool, ready for the next forward pass. A loop that calls
    /// `reset` between mini-batches (or serving requests) rebuilds its tape
    /// with **zero heap allocations** once the pool is warm — the pooled
    /// successor of building a fresh `Graph` per batch.
    pub fn reset(&mut self) {
        // Reverse node order: the pool pops LIFO, so the next forward pass's
        // i-th allocation receives exactly the buffer the previous pass's
        // i-th node held — identity reuse, no capacity churn between
        // differently-sized slots.
        for node in self.nodes.drain(..).rev() {
            match node.op {
                // Input buffers were allocated by the caller (batch
                // construction), not the pool: absorbing one per op per
                // cycle would grow the pool without bound and keep
                // shuffling odd-sized buffers into the hot take sequence.
                Op::Input => drop(node.value),
                // Recycle the op payloads that own real buffers, too.
                Op::LayerNorm { cache, .. } => {
                    self.ws.put_vec(node.value.into_vec());
                    self.ws.put_vec(cache.mean);
                    self.ws.put_vec(cache.rstd);
                }
                Op::Dropout { mask, .. } => {
                    self.ws.put_vec(node.value.into_vec());
                    if let Ok(mask) = Arc::try_unwrap(mask) {
                        self.ws.put_vec(mask);
                    }
                }
                _ => self.ws.put_vec(node.value.into_vec()),
            }
        }
    }

    /// The graph's buffer pool — exposed so callers can observe warm-state
    /// allocation behaviour (`heap_events`) or release memory (`reset`
    /// on the workspace itself frees parked buffers).
    pub fn workspace(&self) -> &Workspace {
        &self.ws
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Convenience: the single element of a `[1]`-shaped node (losses).
    ///
    /// # Panics
    /// Panics if the node does not hold exactly one element.
    pub fn scalar_value(&self, v: Var) -> f32 {
        let t = self.value(v);
        assert_eq!(t.numel(), 1, "scalar_value on {} tensor", t.shape());
        t.data()[0]
    }

    fn push(&mut self, value: Tensor, op: Op, needs_grad: bool) -> Var {
        self.nodes.push(Node { value, op, needs_grad });
        Var(self.nodes.len() - 1)
    }

    fn ng(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    // --- pooled buffers -----------------------------------------------------

    /// Zero-filled pooled tensor (the tape's `Tensor::zeros`).
    pub(crate) fn pooled_zeros(&self, shape: Shape) -> Tensor {
        Tensor::from_vec(shape, self.ws.take_vec(shape.numel()))
    }

    /// Pooled copy of `src` (the tape's `Tensor::clone`).
    pub(crate) fn pooled_copy(&self, src: &Tensor) -> Tensor {
        Tensor::from_vec(src.shape(), self.ws.take_vec_copy(src.data()))
    }

    /// Pooled copy of `src` under a different shape (reshape-with-copy).
    pub(crate) fn pooled_copy_shaped(&self, src: &[f32], shape: Shape) -> Tensor {
        Tensor::from_vec(shape, self.ws.take_vec_copy(src))
    }

    /// Returns a pooled tensor's buffer to the pool (backward temporaries).
    pub(crate) fn recycle(&self, t: Tensor) {
        self.ws.put_vec(t.into_vec());
    }

    // --- leaves -------------------------------------------------------------

    /// Records a constant input (no gradient).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Input, false)
    }

    /// Records a parameter leaf by copying its current value from the store
    /// (into a pooled buffer — parameters are the largest per-tape copies).
    pub fn param(&mut self, ps: &ParamStore, id: ParamId) -> Var {
        let v = self.pooled_copy(ps.value(id));
        self.push(v, Op::Param(id), true)
    }

    /// Embedding lookup: gathers rows of the (sparse) parameter `table` into
    /// a `[b, n, d]` tensor. Index `-1` denotes padding and yields a zero row
    /// that receives no gradient — this realises the paper's zero-vector
    /// padding of the dynamic feature matrix (§III).
    ///
    /// # Panics
    /// Panics if `idx.len() != b*n` or an index is out of table range.
    pub fn gather(
        &mut self,
        ps: &ParamStore,
        table: ParamId,
        idx: &[i64],
        b: usize,
        n: usize,
    ) -> Var {
        assert_eq!(idx.len(), b * n, "gather: idx len {} != {}x{}", idx.len(), b, n);
        let tbl = ps.value(table);
        let (rows, d) = (tbl.shape().dim(0), tbl.shape().dim(1));
        let mut out = self.pooled_zeros(Shape::d3(b, n, d));
        for (slot, &i) in idx.iter().enumerate() {
            if i < 0 {
                continue;
            }
            let i = i as usize;
            assert!(i < rows, "gather index {i} out of range ({rows} rows)");
            out.data_mut()[slot * d..(slot + 1) * d]
                .copy_from_slice(&tbl.data()[i * d..(i + 1) * d]);
        }
        self.push(out, Op::Gather { table, idx: Arc::new(idx.to_vec()) }, true)
    }

    // --- elementwise --------------------------------------------------------

    /// Pooled copy of `a`'s value transformed elementwise in place — the
    /// tape's `map` (per-element arithmetic identical to mapping).
    fn unary(&mut self, x: Var, f: impl Fn(f32) -> f32, op: Op) -> Var {
        let mut v = self.pooled_copy(self.value(x));
        for o in v.data_mut() {
            *o = f(*o);
        }
        let g = self.ng(x);
        self.push(v, op, g)
    }

    /// Pooled copy of `a`'s value combined elementwise with `b`'s — the
    /// tape's `zip` (`f(a_i, b_i)` exactly, evaluated left-to-right).
    fn binary(&mut self, a: Var, b: Var, f: impl Fn(f32, f32) -> f32, op: Op) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        assert!(
            av.shape().same(&bv.shape()),
            "elementwise shape mismatch: {} vs {}",
            av.shape(),
            bv.shape()
        );
        let mut v = self.pooled_copy(av);
        let bv = self.value(b);
        for (o, &y) in v.data_mut().iter_mut().zip(bv.data()) {
            *o = f(*o, y);
        }
        let g = self.ng(a) || self.ng(b);
        self.push(v, op, g)
    }

    /// `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x + y, Op::Add(a, b))
    }

    /// `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x - y, Op::Sub(a, b))
    }

    /// `a ⊙ b` (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x * y, Op::Mul(a, b))
    }

    /// `-x`.
    pub fn neg(&mut self, x: Var) -> Var {
        self.unary(x, |v| -v, Op::Neg(x))
    }

    /// `s · x`.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        self.unary(x, |v| v * s, Op::Scale(x, s))
    }

    /// `x + c` elementwise with a constant.
    pub fn add_scalar(&mut self, x: Var, c: f32) -> Var {
        self.unary(x, |v| v + c, Op::AddScalar(x))
    }

    /// `x²` elementwise.
    pub fn square(&mut self, x: Var) -> Var {
        self.unary(x, |v| v * v, Op::Square(x))
    }

    /// ReLU.
    pub fn relu(&mut self, x: Var) -> Var {
        self.unary(x, |v| v.max(0.0), Op::Relu(x))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        self.unary(x, seqfm_tensor::ew::sigmoid_scalar, Op::Sigmoid(x))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        self.unary(x, |v| v.tanh(), Op::Tanh(x))
    }

    /// Numerically-stable softplus `ln(1+eˣ)`.
    pub fn softplus(&mut self, x: Var) -> Var {
        self.unary(x, seqfm_tensor::ew::softplus_scalar, Op::Softplus(x))
    }

    /// `x + bias` (bias rank-1, broadcast over rows).
    pub fn add_bias(&mut self, x: Var, b: Var) -> Var {
        let (xv, bv) = (self.value(x), self.value(b));
        assert_eq!(bv.shape().rank(), 1, "bias must be rank 1, got {}", bv.shape());
        let d = bv.numel();
        assert_eq!(
            xv.shape().last_dim(),
            d,
            "bias dim {d} does not match last dim of {}",
            xv.shape()
        );
        let mut v = self.pooled_copy(xv);
        let bv = self.value(b);
        for row in v.data_mut().chunks_exact_mut(d) {
            for (o, &bias) in row.iter_mut().zip(bv.data()) {
                *o += bias;
            }
        }
        let g = self.ng(x) || self.ng(b);
        self.push(v, Op::AddBias { x, b }, g)
    }

    // --- linear algebra ------------------------------------------------------

    /// `A[m,k]·B[k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        let (m, k) = dims2(av, "matmul lhs");
        let (k2, n) = dims2(bv, "matmul rhs");
        assert_eq!(k, k2, "matmul inner dim mismatch: {} vs {}", av.shape(), bv.shape());
        let mut out = self.pooled_zeros(Shape::d2(m, n));
        let (av, bv) = (self.value(a), self.value(b));
        seqfm_tensor::matmul_nn_into(av.data(), bv.data(), out.data_mut(), m, k, n);
        let g = self.ng(a) || self.ng(b);
        self.push(out, Op::Matmul(a, b), g)
    }

    /// `A[m,k]·B[n,k]ᵀ`.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        let (m, k) = dims2(av, "matmul_nt lhs");
        let (n, k2) = dims2(bv, "matmul_nt rhs");
        assert_eq!(k, k2, "matmul_nt inner dim mismatch: {} vs {}", av.shape(), bv.shape());
        let mut out = self.pooled_zeros(Shape::d2(m, n));
        let (av, bv) = (self.value(a), self.value(b));
        seqfm_tensor::matmul_nt_into(av.data(), bv.data(), out.data_mut(), m, k, n);
        let g = self.ng(a) || self.ng(b);
        self.push(out, Op::MatmulNT(a, b), g)
    }

    /// Batched `A[b,m,k]·B[b,k,n]`.
    pub fn bmm(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        let (bs, m, k) = dims3(av, "bmm lhs");
        let (bs2, k2, n) = dims3(bv, "bmm rhs");
        assert_eq!(bs, bs2, "bmm batch mismatch: {} vs {}", av.shape(), bv.shape());
        assert_eq!(k, k2, "bmm inner dim mismatch: {} vs {}", av.shape(), bv.shape());
        let mut out = self.pooled_zeros(Shape::d3(bs, m, n));
        let (av, bv) = (self.value(a), self.value(b));
        bmm_nn_into(av.data(), bv.data(), out.data_mut(), bs, m, k, n);
        let g = self.ng(a) || self.ng(b);
        self.push(out, Op::Bmm(a, b), g)
    }

    /// Batched `A[b,m,k]·B[b,n,k]ᵀ` (`Q·Kᵀ`).
    pub fn bmm_nt(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        let (bs, m, k) = dims3(av, "bmm_nt lhs");
        let (bs2, n, k2) = dims3(bv, "bmm_nt rhs");
        assert_eq!(bs, bs2, "bmm_nt batch mismatch: {} vs {}", av.shape(), bv.shape());
        assert_eq!(k, k2, "bmm_nt inner dim mismatch: {} vs {}", av.shape(), bv.shape());
        let mut out = self.pooled_zeros(Shape::d3(bs, m, n));
        let (av, bv) = (self.value(a), self.value(b));
        bmm_nt_into(av.data(), bv.data(), out.data_mut(), bs, m, k, n);
        let g = self.ng(a) || self.ng(b);
        self.push(out, Op::BmmNT(a, b), g)
    }

    /// Left-broadcast matmul `W[p,q]·X[b,q,d] → [b,p,d]`.
    ///
    /// # Panics
    /// Panics if `w` is not rank 2, `x` not rank 3, or `q` dims disagree.
    pub fn lmatmul(&mut self, w: Var, x: Var) -> Var {
        let (wv, xv) = (self.value(w), self.value(x));
        assert_eq!(wv.shape().rank(), 2, "lmatmul W must be rank 2, got {}", wv.shape());
        assert_eq!(xv.shape().rank(), 3, "lmatmul X must be rank 3, got {}", xv.shape());
        let (p, q) = (wv.shape().dim(0), wv.shape().dim(1));
        let (b, q2, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert_eq!(q, q2, "lmatmul inner dim mismatch: {} vs {}", wv.shape(), xv.shape());
        let mut out = self.pooled_zeros(Shape::d3(b, p, d));
        let (wv, xv) = (self.value(w), self.value(x));
        for bi in 0..b {
            matmul_nn_into(
                wv.data(),
                &xv.data()[bi * q * d..(bi + 1) * q * d],
                &mut out.data_mut()[bi * p * d..(bi + 1) * p * d],
                p,
                q,
                d,
            );
        }
        let g = self.ng(w) || self.ng(x);
        self.push(out, Op::LMatmul { w, x }, g)
    }

    /// Row-wise dot product of two `[b,d]` tensors → `[b]`.
    ///
    /// # Panics
    /// Panics if shapes differ or are not rank 2.
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.shape().rank(), 2, "row_dot expects rank 2, got {}", av.shape());
        assert!(
            av.shape().same(&bv.shape()),
            "row_dot shape mismatch: {} vs {}",
            av.shape(),
            bv.shape()
        );
        let (b_rows, d) = (av.shape().dim(0), av.shape().dim(1));
        let mut out = self.pooled_zeros(Shape::d1(b_rows));
        let (av, bv) = (self.value(a), self.value(b));
        for ((o, arow), brow) in
            out.data_mut().iter_mut().zip(av.data().chunks_exact(d)).zip(bv.data().chunks_exact(d))
        {
            // Same accumulation order as the historical mul → sum_lastdim
            // pair: products left to right, folded from 0.
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o = acc;
        }
        let g = self.ng(a) || self.ng(b);
        self.push(out, Op::RowDot(a, b), g)
    }

    // --- attention / normalisation / regularisation --------------------------

    /// Softmax over the last dim.
    pub fn softmax(&mut self, x: Var) -> Var {
        self.softmax_impl(x, None)
    }

    /// Masked softmax over the last dim; the mask is shared across the batch.
    pub fn softmax_masked(&mut self, x: Var, mask: Arc<AttnMask>) -> Var {
        self.softmax_impl(x, Some(&mask))
    }

    fn softmax_impl(&mut self, x: Var, mask: Option<&AttnMask>) -> Var {
        let xv = self.value(x);
        let m = xv.shape().last_dim();
        let rows_per_slice = match xv.shape().rank() {
            2 => xv.shape().dim(0),
            3 => xv.shape().dim(1),
            r => panic!("softmax expects rank 2 or 3, got rank {r} ({})", xv.shape()),
        };
        let mut out = self.pooled_zeros(xv.shape());
        let xv = self.value(x);
        softmax_rows_into(xv.data(), m, rows_per_slice, mask, out.data_mut());
        let g = self.ng(x);
        self.push(out, Op::Softmax { x }, g)
    }

    /// LayerNorm over the last dimension with learned scale and bias
    /// (paper Eq. 16). `eps` guards the variance as the paper's "small bias
    /// term added in case σ = 0".
    ///
    /// # Panics
    /// Panics if `scale`/`bias` are not rank-1 of the last-dim size.
    pub fn layer_norm(&mut self, x: Var, scale: Var, bias: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let d = xv.shape().last_dim();
        assert_eq!(self.value(scale).numel(), d, "layer_norm scale width mismatch");
        assert_eq!(self.value(bias).numel(), d, "layer_norm bias width mismatch");
        let rows = xv.shape().outer_rows();
        let mut mean = self.ws.take_vec(rows);
        let mut rstd = self.ws.take_vec(rows);
        let mut out = self.pooled_zeros(xv.shape());
        let (xv, sv, bv) = (self.value(x), self.value(scale), self.value(bias));
        for (r, (row, orow)) in
            xv.data().chunks_exact(d).zip(out.data_mut().chunks_exact_mut(d)).enumerate()
        {
            let mu = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
            let rs = 1.0 / (var + eps).sqrt();
            mean[r] = mu;
            rstd[r] = rs;
            for ((&xi, o), (&sc, &bi)) in
                row.iter().zip(orow.iter_mut()).zip(sv.data().iter().zip(bv.data()))
            {
                *o = (xi - mu) * rs * sc + bi;
            }
        }
        let g = self.ng(x) || self.ng(scale) || self.ng(bias);
        self.push(out, Op::LayerNorm { x, scale, bias, cache: LnCache { mean, rstd } }, g)
    }

    /// Inverted dropout with drop probability `p`: kept activations are
    /// scaled by `1/(1-p)` so the expected value is unchanged and inference
    /// needs no rescaling (paper §III-F "Layer Dropout").
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1`.
    pub fn dropout<R: Rng + ?Sized>(&mut self, x: Var, p: f32, rng: &mut R) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1), got {p}");
        if p == 0.0 {
            return x;
        }
        let keep = 1.0 - p;
        let inv = 1.0 / keep;
        let n = self.value(x).numel();
        let mut mask = self.ws.take_vec(n);
        for m in mask.iter_mut() {
            *m = if rng.gen::<f32>() < keep { inv } else { 0.0 };
        }
        let mut v = self.pooled_copy(self.value(x));
        for (o, &m) in v.data_mut().iter_mut().zip(&mask) {
            *o *= m;
        }
        let g = self.ng(x);
        self.push(v, Op::Dropout { x, mask: Arc::new(mask) }, g)
    }

    // --- shape ----------------------------------------------------------------

    /// Reshape (same element count, zero-copy semantics for values).
    pub fn reshape(&mut self, x: Var, shape: Shape) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.numel(), shape.numel(), "cannot reshape {} into {shape}", xv.shape());
        let v = self.pooled_copy_shaped(xv.data(), shape);
        let g = self.ng(x);
        self.push(v, Op::Reshape(x), g)
    }

    /// Concatenates rank-2 tensors along the last dim (view-wise aggregation,
    /// Eq. 17).
    ///
    /// # Panics
    /// Panics if `parts` is empty, any part is not rank 2, or row counts
    /// differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one input");
        let b = self.value(parts[0]).shape().dim(0);
        let mut total = 0;
        for &p in parts {
            let s = self.value(p).shape();
            assert_eq!(s.rank(), 2, "concat_cols expects rank 2, got {s}");
            assert_eq!(s.dim(0), b, "concat_cols row count mismatch");
            total += s.dim(1);
        }
        let mut out = self.pooled_zeros(Shape::d2(b, total));
        let mut col = 0;
        for &p in parts {
            let pv = self.value(p);
            let w = pv.shape().dim(1);
            let (pv_data, out_data) = (pv.data(), out.data_mut());
            for r in 0..b {
                out_data[r * total + col..r * total + col + w]
                    .copy_from_slice(&pv_data[r * w..(r + 1) * w]);
            }
            col += w;
        }
        let g = parts.iter().any(|&p| self.ng(p));
        self.push(out, Op::ConcatCols(parts.to_vec()), g)
    }

    /// Concatenates two `[b,n,d]` tensors along axis 1 (cross-view stack,
    /// Eq. 12).
    ///
    /// # Panics
    /// Panics if ranks/batch/last dims disagree.
    pub fn concat_axis1(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.shape().rank(), 3, "concat_axis1 expects rank 3, got {}", av.shape());
        assert_eq!(bv.shape().rank(), 3, "concat_axis1 expects rank 3, got {}", bv.shape());
        let (ba, na, d) = (av.shape().dim(0), av.shape().dim(1), av.shape().dim(2));
        let (bb, nb, d2) = (bv.shape().dim(0), bv.shape().dim(1), bv.shape().dim(2));
        assert_eq!(ba, bb, "concat_axis1 batch mismatch");
        assert_eq!(d, d2, "concat_axis1 width mismatch");
        let n = na + nb;
        let mut out = self.pooled_zeros(Shape::d3(ba, n, d));
        let (av, bv) = (self.value(a), self.value(b));
        for bi in 0..ba {
            out.data_mut()[bi * n * d..bi * n * d + na * d]
                .copy_from_slice(&av.data()[bi * na * d..(bi + 1) * na * d]);
            out.data_mut()[bi * n * d + na * d..(bi + 1) * n * d]
                .copy_from_slice(&bv.data()[bi * nb * d..(bi + 1) * nb * d]);
        }
        let g = self.ng(a) || self.ng(b);
        self.push(out, Op::ConcatAxis1(a, b), g)
    }

    /// Selects rows along axis 1 by constant indices (`[b,n,d] → [b,|idx|,d]`).
    ///
    /// # Panics
    /// Panics if `x` is not rank 3 or an index is out of range.
    pub fn index_select_axis1(&mut self, x: Var, idx: &[usize]) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "index_select_axis1 expects rank 3, got {}", xv.shape());
        let (b, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        let p = idx.len();
        let mut out = self.pooled_zeros(Shape::d3(b, p, d));
        let xv = self.value(x);
        for bi in 0..b {
            for (pi, &r) in idx.iter().enumerate() {
                assert!(r < n, "index_select_axis1 index {r} out of range ({n})");
                let src = &xv.data()[(bi * n + r) * d..(bi * n + r + 1) * d];
                out.data_mut()[(bi * p + pi) * d..(bi * p + pi + 1) * d].copy_from_slice(src);
            }
        }
        let g = self.ng(x);
        self.push(out, Op::IndexSelectAxis1 { x, idx: Arc::new(idx.to_vec()) }, g)
    }

    /// Contiguous slice `[b, start..start+len, d]` along axis 1.
    ///
    /// # Panics
    /// Panics if the range exceeds axis 1.
    pub fn slice_axis1(&mut self, x: Var, start: usize, len: usize) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "slice_axis1 expects rank 3, got {}", xv.shape());
        let (b, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert!(start + len <= n, "slice_axis1 range {start}+{len} exceeds {n}");
        let mut out = self.pooled_zeros(Shape::d3(b, len, d));
        let xv = self.value(x);
        for bi in 0..b {
            let src = &xv.data()[(bi * n + start) * d..(bi * n + start + len) * d];
            out.data_mut()[bi * len * d..(bi + 1) * len * d].copy_from_slice(src);
        }
        let g = self.ng(x);
        self.push(out, Op::SliceAxis1 { x, start, len }, g)
    }

    /// Broadcasts `[b,d] → [b,n,d]` by repeating along a new axis 1.
    ///
    /// # Panics
    /// Panics if `x` is not rank 2.
    pub fn expand_axis1(&mut self, x: Var, n: usize) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 2, "expand_axis1 expects rank 2, got {}", xv.shape());
        let (b, d) = (xv.shape().dim(0), xv.shape().dim(1));
        let mut out = self.pooled_zeros(Shape::d3(b, n, d));
        let xv = self.value(x);
        reduce::broadcast_axis1_into(xv.data(), out.data_mut(), b, n, d, 1.0);
        let g = self.ng(x);
        self.push(out, Op::ExpandAxis1 { x }, g)
    }

    /// `X[b,n,d] + P[n,d]`, broadcasting `P` over the batch (positional
    /// embeddings in SASRec).
    ///
    /// # Panics
    /// Panics on rank/shape mismatch.
    pub fn add_broadcast_batch(&mut self, x: Var, p: Var) -> Var {
        let (xv, pv) = (self.value(x), self.value(p));
        assert_eq!(xv.shape().rank(), 3, "add_broadcast_batch x must be rank 3");
        assert_eq!(pv.shape().rank(), 2, "add_broadcast_batch p must be rank 2");
        let (b, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        assert_eq!((pv.shape().dim(0), pv.shape().dim(1)), (n, d), "broadcast shape mismatch");
        let mut out = self.pooled_copy(xv);
        let pv = self.value(p);
        for bi in 0..b {
            for (o, &pvv) in out.data_mut()[bi * n * d..(bi + 1) * n * d].iter_mut().zip(pv.data())
            {
                *o += pvv;
            }
        }
        let g = self.ng(x) || self.ng(p);
        self.push(out, Op::AddBroadcastBatch { x, p }, g)
    }

    // --- reductions -----------------------------------------------------------

    /// Mean over axis 1 (`[b,n,d] → [b,d]`) — intra-view pooling, Eq. 14.
    pub fn mean_axis1(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "mean_axis1 expects rank 3, got {}", xv.shape());
        let (b, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        let mut out = self.pooled_zeros(Shape::d2(b, d));
        let xv = self.value(x);
        reduce::mean_axis1_into(xv.data(), out.data_mut(), b, n, d);
        let g = self.ng(x);
        self.push(out, Op::MeanAxis1(x), g)
    }

    /// Sum over axis 1 (`[b,n,d] → [b,d]`).
    pub fn sum_axis1(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.shape().rank(), 3, "sum_axis1 expects rank 3, got {}", xv.shape());
        let (b, n, d) = (xv.shape().dim(0), xv.shape().dim(1), xv.shape().dim(2));
        let mut out = self.pooled_zeros(Shape::d2(b, d));
        let xv = self.value(x);
        reduce::sum_axis1_into(xv.data(), out.data_mut(), b, n, d);
        let g = self.ng(x);
        self.push(out, Op::SumAxis1(x), g)
    }

    /// Sum over the last dim (rank r → r−1).
    pub fn sum_lastdim(&mut self, x: Var) -> Var {
        let xv = self.value(x);
        let d = xv.shape().last_dim();
        let out_shape = match xv.shape().rank() {
            2 => Shape::d1(xv.shape().dim(0)),
            3 => Shape::d2(xv.shape().dim(0), xv.shape().dim(1)),
            r => panic!("sum_lastdim expects rank 2 or 3, got rank {r}"),
        };
        let mut out = self.pooled_zeros(out_shape);
        let xv = self.value(x);
        reduce::sum_lastdim_into(xv.data(), out.data_mut(), d);
        let g = self.ng(x);
        self.push(out, Op::SumLast(x), g)
    }

    /// Mean of all elements → `[1]`.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let mut out = self.pooled_zeros(Shape::d1(1));
        out.data_mut()[0] = self.value(x).mean();
        let g = self.ng(x);
        self.push(out, Op::MeanAll(x), g)
    }

    /// Sum of all elements → `[1]`.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let mut out = self.pooled_zeros(Shape::d1(1));
        out.data_mut()[0] = self.value(x).sum();
        let g = self.ng(x);
        self.push(out, Op::SumAll(x), g)
    }

    // --- losses ---------------------------------------------------------------

    /// Per-element binary cross-entropy on logits:
    /// `ℓ = max(z,0) − z·t + ln(1+e^{−|z|})` (stable log-loss, Eq. 24).
    ///
    /// # Panics
    /// Panics if `targets.len() != logits.numel()`.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let lv = self.value(logits);
        assert_eq!(targets.len(), lv.numel(), "bce targets length mismatch");
        let mut out = self.pooled_zeros(lv.shape());
        let lv = self.value(logits);
        for ((o, &z), &t) in out.data_mut().iter_mut().zip(lv.data()).zip(targets) {
            *o = z.max(0.0) - z * t + (-z.abs()).exp().ln_1p();
        }
        let g = self.ng(logits);
        self.push(out, Op::BceWithLogits { logits, targets: Arc::new(targets.to_vec()) }, g)
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be rank 2, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

fn dims3(t: &Tensor, what: &str) -> (usize, usize, usize) {
    assert_eq!(t.shape().rank(), 3, "{what} must be rank 3, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1), t.shape().dim(2))
}
