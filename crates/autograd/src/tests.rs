//! Gradient checks for every op plus tape-semantics tests.

use crate::gradcheck::assert_grad_check;
use crate::{Graph, ParamStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_tensor::testutil::rand_tensor;
use seqfm_tensor::{AttnMask, Shape, Tensor};
use std::sync::Arc;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Registers a deterministic random dense parameter.
fn p(ps: &mut ParamStore, name: &str, shape: Shape, seed: u64) -> crate::ParamId {
    let mut s = seed;
    ps.add_dense(name, rand_tensor(shape, &mut s))
}

#[test]
fn grad_elementwise_chain() {
    let mut ps = ParamStore::new();
    let a = p(&mut ps, "a", Shape::d2(3, 4), 1);
    let b = p(&mut ps, "b", Shape::d2(3, 4), 2);
    assert_grad_check(&mut ps, &[a, b], EPS, TOL, |g, ps| {
        let av = g.param(ps, a);
        let bv = g.param(ps, b);
        let s = g.add(av, bv);
        let d = g.sub(s, bv);
        let m = g.mul(d, av);
        let n = g.neg(m);
        let sc = g.scale(n, 0.7);
        let sh = g.add_scalar(sc, 0.3);
        let sq = g.square(sh);
        g.mean_all(sq)
    });
}

#[test]
fn grad_activations() {
    let mut ps = ParamStore::new();
    // Shift values away from ReLU's kink at 0 for a clean finite difference.
    let mut seed = 3;
    let mut t = rand_tensor(Shape::d2(2, 5), &mut seed);
    for v in t.data_mut() {
        if v.abs() < 0.15 {
            *v += 0.3;
        }
    }
    let a = ps.add_dense("a", t);
    assert_grad_check(&mut ps, &[a], 5e-3, TOL, |g, ps| {
        let av = g.param(ps, a);
        let r = g.relu(av);
        let s = g.sigmoid(r);
        let t = g.tanh(s);
        let sp = g.softplus(t);
        g.sum_all(sp)
    });
}

#[test]
fn grad_add_bias() {
    let mut ps = ParamStore::new();
    let x = p(&mut ps, "x", Shape::d3(2, 3, 4), 4);
    let b = p(&mut ps, "b", Shape::d1(4), 5);
    assert_grad_check(&mut ps, &[x, b], EPS, TOL, |g, ps| {
        let xv = g.param(ps, x);
        let bv = g.param(ps, b);
        let y = g.add_bias(xv, bv);
        let sq = g.square(y);
        g.mean_all(sq)
    });
}

#[test]
fn grad_matmul_both_flavours() {
    let mut ps = ParamStore::new();
    let a = p(&mut ps, "a", Shape::d2(3, 4), 6);
    let b = p(&mut ps, "b", Shape::d2(4, 2), 7);
    let c = p(&mut ps, "c", Shape::d2(5, 2), 8);
    assert_grad_check(&mut ps, &[a, b, c], EPS, TOL, |g, ps| {
        let av = g.param(ps, a);
        let bv = g.param(ps, b);
        let cv = g.param(ps, c);
        let y = g.matmul(av, bv); // [3,2]
        let z = g.matmul_nt(y, cv); // [3,5]
        let sq = g.square(z);
        g.mean_all(sq)
    });
}

#[test]
fn grad_bmm_both_flavours() {
    let mut ps = ParamStore::new();
    let a = p(&mut ps, "a", Shape::d3(2, 3, 4), 9);
    let b = p(&mut ps, "b", Shape::d3(2, 4, 3), 10);
    assert_grad_check(&mut ps, &[a, b], EPS, TOL, |g, ps| {
        let av = g.param(ps, a);
        let bv = g.param(ps, b);
        let y = g.bmm(av, bv); // [2,3,3]
        let z = g.bmm_nt(y, bv); // [2,3,3]·[2,4,3]ᵀ → [2,3,4]
        let sq = g.square(z);
        g.mean_all(sq)
    });
}

#[test]
fn grad_lmatmul() {
    let mut ps = ParamStore::new();
    let w = p(&mut ps, "w", Shape::d2(3, 4), 11);
    let x = p(&mut ps, "x", Shape::d3(2, 4, 5), 12);
    assert_grad_check(&mut ps, &[w, x], EPS, TOL, |g, ps| {
        let wv = g.param(ps, w);
        let xv = g.param(ps, x);
        let y = g.lmatmul(wv, xv); // [2,3,5]
        let sq = g.square(y);
        g.mean_all(sq)
    });
}

#[test]
fn grad_row_dot() {
    let mut ps = ParamStore::new();
    let a = p(&mut ps, "a", Shape::d2(4, 3), 13);
    let b = p(&mut ps, "b", Shape::d2(4, 3), 14);
    assert_grad_check(&mut ps, &[a, b], EPS, TOL, |g, ps| {
        let av = g.param(ps, a);
        let bv = g.param(ps, b);
        let y = g.row_dot(av, bv); // [4]
        let sq = g.square(y);
        g.mean_all(sq)
    });
}

#[test]
fn grad_softmax_plain_and_masked() {
    let mut ps = ParamStore::new();
    let x = p(&mut ps, "x", Shape::d3(2, 3, 3), 15);
    assert_grad_check(&mut ps, &[x], 5e-3, TOL, |g, ps| {
        let xv = g.param(ps, x);
        let y = g.softmax(xv);
        let sq = g.square(y);
        g.sum_all(sq)
    });
    let mask = Arc::new(AttnMask::causal(3));
    assert_grad_check(&mut ps, &[x], 5e-3, TOL, |g, ps| {
        let xv = g.param(ps, x);
        let y = g.softmax_masked(xv, mask.clone());
        let sq = g.square(y);
        g.sum_all(sq)
    });
    let cross = Arc::new(AttnMask::cross(1, 2));
    assert_grad_check(&mut ps, &[x], 5e-3, TOL, |g, ps| {
        let xv = g.param(ps, x);
        let y = g.softmax_masked(xv, cross.clone());
        let sq = g.square(y);
        g.sum_all(sq)
    });
}

#[test]
fn grad_layer_norm() {
    let mut ps = ParamStore::new();
    let x = p(&mut ps, "x", Shape::d2(3, 6), 16);
    let s = p(&mut ps, "s", Shape::d1(6), 17);
    let b = p(&mut ps, "b", Shape::d1(6), 18);
    assert_grad_check(&mut ps, &[x, s, b], 5e-3, TOL, |g, ps| {
        let xv = g.param(ps, x);
        let sv = g.param(ps, s);
        let bv = g.param(ps, b);
        let y = g.layer_norm(xv, sv, bv, 1e-5);
        let sq = g.square(y);
        g.mean_all(sq)
    });
}

#[test]
fn dropout_backward_applies_same_mask() {
    let mut ps = ParamStore::new();
    let x = ps.add_dense("x", Tensor::ones(Shape::d2(4, 8)));
    let mut rng = StdRng::seed_from_u64(99);
    let mut g = Graph::new();
    let xv = g.param(&ps, x);
    let y = g.dropout(xv, 0.5, &mut rng);
    let loss = g.sum_all(y);
    g.backward(loss, &mut ps);
    // The gradient equals the forward mask (since x = ones and loss = sum).
    let fwd = g.value(y).clone();
    assert_eq!(ps.grad(x).data(), fwd.data());
    // Kept entries are scaled by 1/(1-p) = 2.0.
    assert!(fwd.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    // p = 0 is the identity (same Var handle).
    let mut g2 = Graph::new();
    let xv2 = g2.param(&ps, x);
    let y2 = g2.dropout(xv2, 0.0, &mut rng);
    assert_eq!(xv2, y2);
}

#[test]
fn grad_shape_ops() {
    let mut ps = ParamStore::new();
    let a = p(&mut ps, "a", Shape::d3(2, 3, 4), 19);
    let b = p(&mut ps, "b", Shape::d3(2, 2, 4), 20);
    assert_grad_check(&mut ps, &[a, b], EPS, TOL, |g, ps| {
        let av = g.param(ps, a);
        let bv = g.param(ps, b);
        let cat = g.concat_axis1(av, bv); // [2,5,4]
        let sel = g.index_select_axis1(cat, &[0, 4, 4, 2]); // duplicated index
        let sl = g.slice_axis1(sel, 1, 3); // [2,3,4]
        let rs = g.reshape(sl, Shape::d2(6, 4));
        let sq = g.square(rs);
        g.mean_all(sq)
    });
}

#[test]
fn grad_concat_cols_and_expand() {
    let mut ps = ParamStore::new();
    let a = p(&mut ps, "a", Shape::d2(3, 2), 21);
    let b = p(&mut ps, "b", Shape::d2(3, 4), 22);
    assert_grad_check(&mut ps, &[a, b], EPS, TOL, |g, ps| {
        let av = g.param(ps, a);
        let bv = g.param(ps, b);
        let cat = g.concat_cols(&[av, bv, av]); // [3,8]
        let ex = g.expand_axis1(cat, 2); // [3,2,8]
        let sq = g.square(ex);
        g.mean_all(sq)
    });
}

#[test]
fn grad_add_broadcast_batch() {
    let mut ps = ParamStore::new();
    let x = p(&mut ps, "x", Shape::d3(3, 2, 4), 23);
    let pos = p(&mut ps, "pos", Shape::d2(2, 4), 24);
    assert_grad_check(&mut ps, &[x, pos], EPS, TOL, |g, ps| {
        let xv = g.param(ps, x);
        let pv = g.param(ps, pos);
        let y = g.add_broadcast_batch(xv, pv);
        let sq = g.square(y);
        g.mean_all(sq)
    });
}

#[test]
fn grad_reductions() {
    let mut ps = ParamStore::new();
    let x = p(&mut ps, "x", Shape::d3(2, 3, 4), 25);
    assert_grad_check(&mut ps, &[x], EPS, TOL, |g, ps| {
        let xv = g.param(ps, x);
        let m = g.mean_axis1(xv); // [2,4]
        let s = g.sum_axis1(xv); // [2,4]
        let c = g.add(m, s);
        let last = g.sum_lastdim(c); // [2]
        let sq = g.square(last);
        g.sum_all(sq)
    });
}

#[test]
fn grad_bce_with_logits() {
    let mut ps = ParamStore::new();
    let z = p(&mut ps, "z", Shape::d1(6), 26);
    let targets = vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
    assert_grad_check(&mut ps, &[z], 5e-3, TOL, move |g, ps| {
        let zv = g.param(ps, z);
        let l = g.bce_with_logits(zv, &targets);
        g.mean_all(l)
    });
}

#[test]
fn gather_routes_gradients_to_rows() {
    let mut ps = ParamStore::new();
    let table = ps
        .add_sparse("emb", Tensor::from_vec(Shape::d2(4, 2), vec![1., 2., 3., 4., 5., 6., 7., 8.]));
    let mut g = Graph::new();
    // batch=2, n=2; second sample starts with padding (-1).
    let e = g.gather(&ps, table, &[0, 2, -1, 3], 2, 2);
    assert_eq!(g.value(e).shape(), Shape::d3(2, 2, 2));
    // padding slot is a zero row
    assert_eq!(g.value(e).at3(1, 0, 0), 0.0);
    assert_eq!(g.value(e).at3(1, 0, 1), 0.0);
    assert_eq!(g.value(e).at3(0, 1, 0), 5.0);
    let loss = g.sum_all(e);
    g.backward(loss, &mut ps);
    // rows 0, 2, 3 touched with gradient 1.0 everywhere; row 1 untouched.
    assert_eq!(ps.touched_rows(table), vec![0, 2, 3]);
    assert_eq!(ps.grad(table).row(0), &[1.0, 1.0]);
    assert_eq!(ps.grad(table).row(1), &[0.0, 0.0]);
    assert_eq!(ps.grad(table).row(2), &[1.0, 1.0]);
    assert_eq!(ps.grad(table).row(3), &[1.0, 1.0]);
}

#[test]
fn gather_finite_difference() {
    let mut ps = ParamStore::new();
    let mut seed = 31;
    let table = ps.add_sparse("emb", rand_tensor(Shape::d2(5, 3), &mut seed));
    assert_grad_check(&mut ps, &[table], EPS, TOL, |g, ps| {
        let e = g.gather(ps, table, &[1, 1, 4, -1, 0, 2], 2, 3);
        let sq = g.square(e);
        g.mean_all(sq)
    });
}

#[test]
fn composite_attention_block_grad() {
    // softmax(E·Wq·(E·Wk)ᵀ/√d + causal)·(E·Wv), mean-pooled — the paper's
    // dynamic-view computation (Eq. 9) end-to-end.
    let mut ps = ParamStore::new();
    let e = p(&mut ps, "e", Shape::d3(2, 4, 3), 27);
    let wq = p(&mut ps, "wq", Shape::d2(3, 3), 28);
    let wk = p(&mut ps, "wk", Shape::d2(3, 3), 29);
    let wv = p(&mut ps, "wv", Shape::d2(3, 3), 30);
    let mask = Arc::new(AttnMask::causal(4));
    assert_grad_check(&mut ps, &[e, wq, wk, wv], 5e-3, 3e-2, |g, ps| {
        let ev = g.param(ps, e);
        let q = {
            let w = g.param(ps, wq);
            let e2 = g.reshape(ev, Shape::d2(8, 3));
            let q2 = g.matmul(e2, w);
            g.reshape(q2, Shape::d3(2, 4, 3))
        };
        let k = {
            let w = g.param(ps, wk);
            let e2 = g.reshape(ev, Shape::d2(8, 3));
            let k2 = g.matmul(e2, w);
            g.reshape(k2, Shape::d3(2, 4, 3))
        };
        let v = {
            let w = g.param(ps, wv);
            let e2 = g.reshape(ev, Shape::d2(8, 3));
            let v2 = g.matmul(e2, w);
            g.reshape(v2, Shape::d3(2, 4, 3))
        };
        let scores = g.bmm_nt(q, k);
        let scaled = g.scale(scores, 1.0 / (3.0f32).sqrt());
        let attn = g.softmax_masked(scaled, mask.clone());
        let h = g.bmm(attn, v);
        let pooled = g.mean_axis1(h);
        let sq = g.square(pooled);
        g.mean_all(sq)
    });
}

#[test]
fn no_grad_inputs_are_pruned() {
    let mut ps = ParamStore::new();
    let mut g = Graph::new();
    let a = g.input(Tensor::ones(Shape::d2(2, 2)));
    let b = g.input(Tensor::ones(Shape::d2(2, 2)));
    let c = g.mul(a, b);
    let loss = g.sum_all(c);
    g.backward(loss, &mut ps); // must not panic, nothing to accumulate
    assert_eq!(ps.len(), 0);
}

#[test]
fn reused_node_accumulates_gradient() {
    // loss = mean(x ⊙ x): dx = 2x/n, exercised through two uses of x.
    let mut ps = ParamStore::new();
    let x = ps.add_dense("x", Tensor::vector(vec![1.0, -2.0, 3.0]));
    let mut g = Graph::new();
    let xv = g.param(&ps, x);
    let y = g.mul(xv, xv);
    let loss = g.mean_all(y);
    g.backward(loss, &mut ps);
    let expect: Vec<f32> = vec![2.0 / 3.0, -4.0 / 3.0, 2.0];
    seqfm_tensor::testutil::assert_close(ps.grad(x).data(), &expect, 1e-5);
}

#[test]
#[should_panic(expected = "scalar loss")]
fn backward_requires_scalar() {
    let mut ps = ParamStore::new();
    let x = ps.add_dense("x", Tensor::zeros(Shape::d2(2, 2)));
    let mut g = Graph::new();
    let xv = g.param(&ps, x);
    g.backward(xv, &mut ps);
}

#[test]
fn causal_softmax_blocks_future_gradient_flow() {
    // Perturbing a future position must not change attention output at an
    // earlier position — verified through gradients: d(out at pos 0)/d(E at
    // pos 2) must be zero in the dynamic view.
    let mut ps = ParamStore::new();
    let mut seed = 41;
    let e = ps.add_dense("e", rand_tensor(Shape::d3(1, 3, 2), &mut seed));
    let mask = Arc::new(AttnMask::causal(3));
    let mut g = Graph::new();
    let ev = g.param(&ps, e);
    let scores = g.bmm_nt(ev, ev);
    let attn = g.softmax_masked(scores, mask);
    let h = g.bmm(attn, ev);
    // Loss reads only position 0 of the output.
    let first = g.slice_axis1(h, 0, 1);
    let loss = g.sum_all(first);
    g.backward(loss, &mut ps);
    let grad = ps.grad(e);
    // position 0 of input affects output position 0…
    assert!(grad.at3(0, 0, 0).abs() > 1e-6);
    // …while positions 1 and 2 receive zero gradient.
    for pos in 1..3 {
        for dim in 0..2 {
            assert_eq!(grad.at3(0, pos, dim), 0.0, "future pos {pos} leaked gradient");
        }
    }
}

#[test]
fn reset_graph_reuse_is_bit_identical_and_allocation_free() {
    // One Graph reused across "mini-batches" via reset() must produce the
    // same values, the same gradients, and — once its buffer pool is warm —
    // build each tape without new heap traffic.
    let mut ps = ParamStore::new();
    let mut seed = 17;
    let w = ps.add_dense("w", rand_tensor(Shape::d2(6, 6), &mut seed));
    let x = rand_tensor(Shape::d2(4, 6), &mut seed);

    let run = |g: &mut Graph, ps: &mut ParamStore| -> (Vec<f32>, Vec<f32>) {
        ps.zero_grads();
        let wv = g.param(ps, w);
        let xv = g.input(Tensor::from_vec(Shape::d2(4, 6), x.data().to_vec()));
        let y = g.matmul(xv, wv);
        let act = g.relu(y);
        let sq = g.square(act);
        let loss = g.mean_all(sq);
        let out = g.value(act).data().to_vec();
        g.backward(loss, ps);
        (out, ps.grad(w).data().to_vec())
    };

    // Fresh graph per run (the old pattern) = the reference.
    let mut fresh = Graph::new();
    let (want_val, want_grad) = run(&mut fresh, &mut ps);

    // Reused graph: warm it, then assert bit-identical results and zero
    // pool growth across many reset cycles.
    let mut g = Graph::new();
    for _ in 0..2 {
        g.reset();
        let (v, gr) = run(&mut g, &mut ps);
        assert_eq!(v, want_val);
        assert_eq!(gr, want_grad);
    }
    let warm = g.ws.heap_events();
    for _ in 0..10 {
        g.reset();
        let (v, gr) = run(&mut g, &mut ps);
        assert_eq!(v, want_val, "reset graph diverged");
        assert_eq!(gr, want_grad, "reset graph gradients diverged");
    }
    assert_eq!(g.ws.heap_events(), warm, "warm reset cycles must not allocate from the pool");
}
