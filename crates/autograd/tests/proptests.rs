//! Property-based tests of the autodiff engine: analytic gradients must
//! match finite differences on randomly generated graphs and inputs, and the
//! backward pass must be linear in the upstream seed.

use proptest::prelude::*;
use seqfm_autograd::{grad_check, Graph, ParamStore};
use seqfm_tensor::{Shape, Tensor};

fn param_values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random smooth composite (no ReLU kinks) gradient-checks on random
    /// parameter values.
    #[test]
    fn smooth_graph_gradient_checks(
        a_vals in param_values(12),
        b_vals in param_values(12),
    ) {
        let mut ps = ParamStore::new();
        let a = ps.add_dense("a", Tensor::from_vec(Shape::d2(3, 4), a_vals));
        let b = ps.add_dense("b", Tensor::from_vec(Shape::d2(4, 3), b_vals));
        let report = grad_check(&mut ps, &[a, b], 5e-3, |g, ps| {
            let av = g.param(ps, a);
            let bv = g.param(ps, b);
            let prod = g.matmul(av, bv); // [3,3]
            let s = g.sigmoid(prod);
            let t = g.tanh(s);
            let sq = g.square(t);
            g.mean_all(sq)
        });
        prop_assert!(report.max_rel_err < 3e-2, "{report:?}");
    }

    /// Backward is linear: scaling the loss by c scales every gradient by c.
    #[test]
    fn backward_is_linear_in_seed(vals in param_values(8), c in 0.5f32..3.0) {
        let mut ps = ParamStore::new();
        let x = ps.add_dense("x", Tensor::from_vec(Shape::d2(2, 4), vals));
        let grads = |scale: f32, ps: &mut ParamStore| -> Vec<f32> {
            ps.zero_grads();
            let mut g = Graph::new();
            let xv = g.param(ps, x);
            let sq = g.square(xv);
            let l = g.sum_all(sq);
            let scaled = g.scale(l, scale);
            g.backward(scaled, ps);
            ps.grad(x).data().to_vec()
        };
        let g1 = grads(1.0, &mut ps);
        let gc = grads(c, &mut ps);
        for (u, v) in g1.iter().zip(&gc) {
            prop_assert!((u * c - v).abs() < 1e-3 * (1.0 + v.abs()), "{u} * {c} != {v}");
        }
    }

    /// Gradient accumulation over two backward passes equals one pass on the
    /// doubled loss.
    #[test]
    fn gradients_accumulate_across_backwards(vals in param_values(6)) {
        let mut ps = ParamStore::new();
        let x = ps.add_dense("x", Tensor::from_vec(Shape::d2(2, 3), vals));
        // two passes
        ps.zero_grads();
        for _ in 0..2 {
            let mut g = Graph::new();
            let xv = g.param(&ps, x);
            let sq = g.square(xv);
            let l = g.mean_all(sq);
            g.backward(l, &mut ps);
        }
        let twice = ps.grad(x).data().to_vec();
        // one pass, doubled
        ps.zero_grads();
        let mut g = Graph::new();
        let xv = g.param(&ps, x);
        let sq = g.square(xv);
        let l = g.mean_all(sq);
        let l2 = g.scale(l, 2.0);
        g.backward(l2, &mut ps);
        let doubled = ps.grad(x).data().to_vec();
        for (a, b) in twice.iter().zip(&doubled) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Gather + sum routes exactly the right gradient mass to each row: the
    /// gradient of `sum(gather(T, idx))` w.r.t. row r equals the number of
    /// times r appears in idx.
    #[test]
    fn gather_gradient_counts_occurrences(
        idx in proptest::collection::vec(0i64..5, 6),
    ) {
        let mut ps = ParamStore::new();
        let t = ps.add_sparse("t", Tensor::ones(Shape::d2(5, 2)));
        let mut g = Graph::new();
        let e = g.gather(&ps, t, &idx, 2, 3);
        let l = g.sum_all(e);
        g.backward(l, &mut ps);
        for r in 0..5 {
            let count = idx.iter().filter(|&&i| i == r as i64).count() as f32;
            prop_assert_eq!(ps.grad(t).row(r), &[count, count]);
        }
    }
}
