#![warn(missing_docs)]

//! # seqfm-train
//!
//! The **online** half of SeqFM training — the loop that keeps a serving
//! deployment's model fresh without ever taking it offline:
//!
//! ```text
//!   Engine::append_event ──▶ EventLog ──▶ OnlineTrainer::ingest
//!        ▲                                      │
//!        │                              freeze_versioned()
//!        │                                      ▼
//!   Engine::publish_frozen ◀── FrozenSeqFm ◀── Arc<FrozenParams> (e1, e2, …)
//! ```
//!
//! [`OnlineTrainer`] consumes the engine's append-event stream (see
//! [`EventLog`](seqfm_serve::EventLog)), folds it into deterministic
//! fixed-size BPR minibatches against *shadow* per-user histories, takes
//! sparse per-row Adam steps (O(batch·d) per event, independent of
//! vocabulary size), and every `publish_every` minibatches freezes a
//! versioned parameter snapshot — a monotone
//! [`ModelEpoch`](seqfm_core::ModelEpoch) — ready for
//! [`Engine::publish_frozen`](seqfm_serve::Engine::publish_frozen)'s atomic
//! hot-swap. A bounded rollback ring keeps the last N published epochs so a
//! bad update can be reverted *as served* — the republished snapshot keeps
//! its original epoch stamp, so epoch-keyed caches recognise it.
//!
//! ## Replay determinism
//!
//! The trainer's entire state is a pure function of `(initial parameters,
//! config, event stream)` — never of how the stream was chunked into
//! [`ingest`](online::OnlineTrainer::ingest) calls, and never of wall-clock
//! or thread scheduling. Replaying a logged event stream offline reproduces
//! the online trajectory — every published snapshot — **bit for bit**, for
//! every Table-V model variant. That is what makes online learning safe to
//! operate: any serving incident can be reproduced exactly from the log.

pub mod online;

pub use online::{OnlineConfig, OnlineTrainer};
