//! The incremental trainer behind the serving engine's hot-swap loop.
//!
//! [`OnlineTrainer`] owns a live `(SeqFm, ParamStore)` pair and consumes an
//! append-event stream — `(user, item)` interactions in arrival order,
//! typically drained from an engine's
//! [`EventLog`](seqfm_serve::EventLog). Events accumulate in a pending
//! buffer and are consumed in minibatches of **exactly**
//! [`OnlineConfig::batch_size`]; the remainder stays pending. That exact
//! cut is the chunking-invariance keystone: minibatch boundaries depend
//! only on the stream's event *ordinals*, never on how many events each
//! [`ingest`](OnlineTrainer::ingest) call happened to deliver, so an
//! offline replay of the logged stream walks the identical sequence of
//! minibatches.
//!
//! Each minibatch trains with the paper's BPR pairwise ranking loss
//! (Eq. 21) against the trainer's **shadow histories** — per-user bounded
//! rings maintained from the same event stream, mirroring the engine's
//! [`HistoryStore`](seqfm_serve::HistoryStore) without sharing state with
//! it. The event's user history *before* the event is the context, the
//! event's item is the positive, and one uniform negative is drawn from a
//! per-minibatch RNG seeded from `(seed, step)` — so randomness, too, is a
//! function of stream position alone. The gradient step is
//! [`Adam::sparse_step`]: per-row updates over exactly the embedding rows
//! the minibatch touched, bit-identical to the dense step on those rows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqfm_autograd::{FrozenParams, Graph, ModelEpoch, ParamStore};
use seqfm_core::{FrozenSeqFm, SeqFm, SeqModel};
use seqfm_data::{build_instance, Batch, FeatureLayout, Instance};
use seqfm_nn::Adam;
use seqfm_parallel::shard_seed;
use seqfm_serve::Engine;
use std::collections::VecDeque;
use std::sync::Arc;

/// Online-trainer configuration.
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// Events per minibatch — consumed in **exact** multiples; a partial
    /// remainder stays pending until the stream fills it. Treated as ≥ 1.
    pub batch_size: usize,
    /// Minibatches between published snapshots. Treated as ≥ 1: every
    /// `publish_every`-th optimizer step freezes a versioned epoch.
    pub publish_every: usize,
    /// Adam learning rate. Online steps see far fewer repetitions per
    /// example than offline epochs, so this defaults lower than
    /// [`seqfm_core::TrainConfig`]'s.
    pub lr: f32,
    /// Maximum dynamic sequence length n˙ fed to the model — must match the
    /// serving engine's `max_seq` for the published model to see the same
    /// windows the engine serves.
    pub max_seq: usize,
    /// Seed for the per-minibatch RNG streams (negative sampling and
    /// training-mode dropout).
    pub seed: u64,
    /// Shadow-history ring capacity per user; `0` means `max_seq` (events
    /// beyond the model's window can never enter a context anyway).
    pub history_capacity: usize,
    /// Published epochs retained for [`OnlineTrainer::rollback_to`].
    /// Treated as ≥ 1.
    pub keep_epochs: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            batch_size: 8,
            publish_every: 4,
            lr: 1e-3,
            max_seq: 20,
            seed: 42,
            history_capacity: 0,
            keep_epochs: 4,
        }
    }
}

impl OnlineConfig {
    fn resolved_history_capacity(&self) -> usize {
        if self.history_capacity == 0 {
            self.max_seq.max(1)
        } else {
            self.history_capacity
        }
    }
}

/// Incremental SeqFM trainer: event stream in, versioned
/// [`FrozenParams`] epochs out. See the module docs for the determinism
/// contract.
pub struct OnlineTrainer {
    model: SeqFm,
    ps: ParamStore,
    layout: FeatureLayout,
    cfg: OnlineConfig,
    opt: Adam,
    /// Reused tape — [`Graph::reset`] between steps keeps steady-state
    /// minibatches allocation-free, same as the offline loop.
    graph: Graph,
    /// Shadow per-user histories (most recent last), bounded by
    /// [`OnlineConfig::history_capacity`].
    histories: Vec<VecDeque<u32>>,
    /// Events ingested but not yet consumed by a full minibatch.
    pending: VecDeque<(u32, u32)>,
    /// Minibatches consumed so far — the RNG stream ordinal.
    step: u64,
    /// Minibatches since the last published snapshot.
    since_publish: usize,
    /// The last [`OnlineConfig::keep_epochs`] published snapshots, oldest
    /// first — the rollback ring.
    ring: VecDeque<Arc<FrozenParams>>,
    /// Scratch for draining an engine's event log in [`OnlineTrainer::pump`].
    drain_buf: Vec<(u32, u32)>,
}

impl OnlineTrainer {
    /// Wraps a live model + parameter store (typically warm-started by the
    /// offline trainer) for incremental updates.
    pub fn new(model: SeqFm, ps: ParamStore, layout: FeatureLayout, cfg: OnlineConfig) -> Self {
        let lr = cfg.lr;
        let histories = (0..layout.n_users).map(|_| VecDeque::new()).collect();
        OnlineTrainer {
            model,
            ps,
            layout,
            cfg,
            opt: Adam::new(lr),
            graph: Graph::new(),
            histories,
            pending: VecDeque::new(),
            step: 0,
            since_publish: 0,
            ring: VecDeque::new(),
            drain_buf: Vec::new(),
        }
    }

    /// Feeds a slice of the event stream (in arrival order) into the
    /// trainer and returns every snapshot published while consuming it
    /// (possibly none, possibly several). Call granularity is
    /// behaviour-free: `ingest(a); ingest(b)` ≡ `ingest(a ++ b)`, bit for
    /// bit.
    pub fn ingest(&mut self, events: &[(u32, u32)]) -> Vec<Arc<FrozenParams>> {
        self.pending.extend(events.iter().copied());
        let bs = self.cfg.batch_size.max(1);
        let mut published = Vec::new();
        while self.pending.len() >= bs {
            let minibatch: Vec<(u32, u32)> = self.pending.drain(..bs).collect();
            self.train_minibatch(&minibatch);
            self.since_publish += 1;
            if self.since_publish >= self.cfg.publish_every.max(1) {
                self.since_publish = 0;
                published.push(self.publish_snapshot());
            }
        }
        published
    }

    /// One BPR step over `events`: per-event contexts come from the shadow
    /// histories *as of that event* (events earlier in the minibatch are
    /// already folded in when a later event of the same user builds its
    /// context), then every event advances its user's ring.
    fn train_minibatch(&mut self, events: &[(u32, u32)]) {
        // Stream-position randomness: negatives and dropout for minibatch
        // `step` come from `(seed, step)` alone.
        let mut rng = StdRng::seed_from_u64(shard_seed(self.cfg.seed, self.step));
        let mut pos: Vec<Instance> = Vec::with_capacity(events.len());
        let mut neg: Vec<Instance> = Vec::with_capacity(events.len());
        let mut hist: Vec<u32> = Vec::new();
        for &(u, item) in events {
            hist.clear();
            hist.extend(self.histories[u as usize].iter().copied());
            let negative = sample_negative(&mut rng, self.layout.n_items, item);
            pos.push(build_instance(&self.layout, u, item, &hist, self.cfg.max_seq, 1.0));
            neg.push(build_instance(&self.layout, u, negative, &hist, self.cfg.max_seq, 0.0));
            self.push_history(u, item);
        }
        let pb = Batch::try_from_instances(&pos).expect("minibatches are non-empty");
        let nb = Batch::try_from_instances(&neg).expect("minibatches are non-empty");
        let g = &mut self.graph;
        g.reset();
        let y_pos = self.model.forward(g, &self.ps, &pb, true, &mut rng);
        let y_neg = self.model.forward(g, &self.ps, &nb, true, &mut rng);
        let diff = g.sub(y_pos, y_neg);
        // BPR (Eq. 21): −log σ(ŷ⁺ − ŷ⁻) = softplus(−(ŷ⁺ − ŷ⁻))
        let ndiff = g.neg(diff);
        let per = g.softplus(ndiff);
        let loss = g.mean_all(per);
        self.ps.zero_grads();
        g.backward(loss, &mut self.ps);
        self.opt.sparse_step(&mut self.ps).expect("finite online gradients");
        self.step += 1;
    }

    fn push_history(&mut self, u: u32, item: u32) {
        let cap = self.cfg.resolved_history_capacity();
        let ring = &mut self.histories[u as usize];
        if ring.len() == cap {
            ring.pop_front();
        }
        ring.push_back(item);
    }

    /// Freezes the next monotone epoch and retires the rollback ring's
    /// oldest entry past `keep_epochs`.
    fn publish_snapshot(&mut self) -> Arc<FrozenParams> {
        let snap = self.ps.freeze_versioned();
        if self.ring.len() == self.cfg.keep_epochs.max(1) {
            self.ring.pop_front();
        }
        self.ring.push_back(Arc::clone(&snap));
        snap
    }

    /// Builds the servable frozen model for a published snapshot (the
    /// trainer's model config + the snapshot's parameters — the epoch stamp
    /// rides along).
    pub fn frozen_for(&self, snapshot: &Arc<FrozenParams>) -> FrozenSeqFm {
        FrozenSeqFm::from_params(Arc::clone(snapshot), *self.model.config())
    }

    /// The retained published epochs, oldest first.
    pub fn rollback_epochs(&self) -> Vec<ModelEpoch> {
        self.ring.iter().map(|s| s.epoch()).collect()
    }

    /// Re-materialises a previously published epoch for serving — the
    /// rollback path. The returned model carries the **original** epoch
    /// stamp, so epoch-keyed caches and indexes recognise it as exactly the
    /// model that was served before (old cached views become valid again
    /// verbatim). Rollback is a *serving* decision: the trainer's own
    /// optimizer state keeps advancing from where it is.
    ///
    /// Returns `None` if `epoch` has aged out of the ring (or was never
    /// published).
    pub fn rollback_to(&self, epoch: ModelEpoch) -> Option<FrozenSeqFm> {
        self.ring.iter().find(|s| s.epoch() == epoch).map(|s| self.frozen_for(s))
    }

    /// The most recently published snapshot, if any.
    pub fn latest_snapshot(&self) -> Option<&Arc<FrozenParams>> {
        self.ring.back()
    }

    /// One turn of the full online-learning crank against a serving engine:
    /// drain its [`EventLog`](seqfm_serve::EventLog), ingest the events,
    /// and atomically publish every snapshot that produced via
    /// [`Engine::publish_frozen`]. Returns the epochs published (empty when
    /// the drained events didn't complete a publish interval — they stay
    /// pending for the next pump).
    ///
    /// The engine must have been built
    /// [`with_event_log`](seqfm_serve::Engine::with_event_log); a pump
    /// against an engine without one is a no-op.
    pub fn pump(&mut self, engine: &Engine) -> Vec<ModelEpoch> {
        let Some(log) = engine.event_log() else {
            return Vec::new();
        };
        let mut buf = std::mem::take(&mut self.drain_buf);
        buf.clear();
        log.drain_into(&mut buf);
        let snapshots = self.ingest(&buf);
        self.drain_buf = buf;
        snapshots.into_iter().map(|snap| engine.publish_frozen(self.frozen_for(&snap))).collect()
    }

    /// Minibatches consumed so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Events ingested but not yet consumed by a full minibatch.
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }
}

/// Uniform negative over the catalog, rejecting the positive. A
/// single-item catalog has nothing to contrast against; the positive comes
/// back and BPR's σ(0) term contributes a constant gradient of zero-mean —
/// degenerate but well-defined.
fn sample_negative(rng: &mut StdRng, n_items: usize, positive: u32) -> u32 {
    if n_items <= 1 {
        return positive;
    }
    loop {
        let candidate = rng.gen_range(0..n_items as u32);
        if candidate != positive {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqfm_core::{Ablation, SeqFmConfig};

    fn layout() -> FeatureLayout {
        FeatureLayout { n_users: 5, n_items: 12 }
    }

    fn build(ab: Ablation) -> (SeqFm, ParamStore) {
        let cfg =
            SeqFmConfig { d: 8, max_seq: 6, dropout: 0.5, ablation: ab, ..Default::default() };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
        (model, ps)
    }

    fn online_cfg() -> OnlineConfig {
        OnlineConfig { batch_size: 4, publish_every: 2, max_seq: 6, ..Default::default() }
    }

    /// A deterministic synthetic event stream: users cycle, items walk.
    fn stream(n: usize) -> Vec<(u32, u32)> {
        (0..n).map(|i| ((i % 5) as u32, ((i * 7 + 3) % 12) as u32)).collect()
    }

    fn assert_snapshots_identical(a: &[Arc<FrozenParams>], b: &[Arc<FrozenParams>], name: &str) {
        assert_eq!(a.len(), b.len(), "{name}: published snapshot counts differ");
        for (sa, sb) in a.iter().zip(b) {
            assert_eq!(sa.epoch(), sb.epoch(), "{name}: epoch stamps differ");
            for ((na, va), (nb, vb)) in sa.iter().zip(sb.iter()) {
                assert_eq!(na, nb, "{name}: parameter order differs");
                let (da, db) = (va.data(), vb.data());
                assert_eq!(da.len(), db.len(), "{name}: {na} sizes differ");
                for (i, (x, y)) in da.iter().zip(db).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "{name}: {na}[{i}] diverges ({x} vs {y})");
                }
            }
        }
    }

    /// The Table-V replay-parity guarantee: for every model variant, the
    /// online trajectory is a pure function of the event stream — replaying
    /// it with any call granularity (event-by-event, odd chunks, one shot)
    /// reproduces every published snapshot bit for bit, epochs included.
    #[test]
    fn replay_reproduces_the_online_trajectory_bit_for_bit() {
        for (name, ab) in Ablation::table5_variants() {
            let events = stream(40);

            let run = |chunk: usize| {
                let (model, ps) = build(ab);
                let mut tr = OnlineTrainer::new(model, ps, layout(), online_cfg());
                let mut published = Vec::new();
                for c in events.chunks(chunk) {
                    published.extend(tr.ingest(c));
                }
                published
            };

            let one_by_one = run(1);
            let odd_chunks = run(7);
            let one_shot = run(events.len());
            assert!(!one_shot.is_empty(), "{name}: stream should publish at least once");
            assert_snapshots_identical(&one_by_one, &odd_chunks, name);
            assert_snapshots_identical(&one_by_one, &one_shot, name);
        }
    }

    #[test]
    fn partial_minibatches_stay_pending_until_the_stream_fills_them() {
        let (model, ps) = build(Ablation::default());
        let mut tr = OnlineTrainer::new(model, ps, layout(), online_cfg());
        // 3 events < batch_size 4: nothing trains, nothing publishes.
        assert!(tr.ingest(&stream(3)).is_empty());
        assert_eq!(tr.steps(), 0);
        assert_eq!(tr.pending_events(), 3);
        // One more completes the minibatch (step 1 of publish_every 2).
        assert!(tr.ingest(&stream(4)[3..]).is_empty());
        assert_eq!(tr.steps(), 1);
        assert_eq!(tr.pending_events(), 0);
    }

    #[test]
    fn rollback_ring_is_bounded_and_keeps_original_epoch_stamps() {
        let (model, ps) = build(Ablation::default());
        let cfg = OnlineConfig { keep_epochs: 2, ..online_cfg() };
        let mut tr = OnlineTrainer::new(model, ps, layout(), cfg);
        // batch 4 × publish_every 2 → one publish per 8 events.
        let published = tr.ingest(&stream(32));
        assert_eq!(published.len(), 4);
        let epochs: Vec<u64> = published.iter().map(|s| s.epoch().get()).collect();
        assert_eq!(epochs, vec![1, 2, 3, 4], "epochs are monotone from 1");
        // Only the last keep_epochs survive in the ring.
        assert_eq!(
            tr.rollback_epochs(),
            vec![ModelEpoch(3), ModelEpoch(4)],
            "ring retains the newest two"
        );
        assert!(tr.rollback_to(ModelEpoch(1)).is_none(), "aged out");
        let rolled = tr.rollback_to(ModelEpoch(3)).expect("retained");
        assert_eq!(rolled.epoch(), ModelEpoch(3), "rollback keeps the original stamp");
        assert_eq!(tr.latest_snapshot().map(|s| s.epoch()), Some(ModelEpoch(4)));
    }
}
