//! Minimal hand-rolled CLI parsing shared by all harness binaries
//! (no argument-parser crate is available offline).

use seqfm_data::Scale;

/// Options understood by every experiment binary.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Dataset scale (`--scale small|paper`).
    pub scale: Scale,
    /// Embedding width (`--d N`; default 32, paper uses 64).
    pub d: usize,
    /// Override training epochs for all tasks (`--epochs N`).
    pub epochs: Option<usize>,
    /// Adam learning rate (`--lr F`).
    pub lr: f32,
    /// Ranking-eval negatives J (`--negatives N`; paper uses 1000).
    pub negatives: usize,
    /// Maximum dynamic sequence length n˙ (`--seq N`).
    pub max_seq: usize,
    /// Quick mode: halve epochs, J=100 (`--quick`).
    pub quick: bool,
    /// Disable parallel model execution (`--serial`).
    pub serial: bool,
    /// Extended variant sets where applicable (`--extended`).
    pub extended: bool,
    /// TSV output path (`--out PATH`); defaults to `results/<binary>.tsv`.
    pub out: Option<String>,
    /// Master seed (`--seed N`).
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: Scale::Small,
            d: 32,
            epochs: None,
            lr: 5e-3,
            negatives: 200,
            max_seq: 20,
            quick: false,
            serial: false,
            extended: false,
            out: None,
            seed: 42,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`, exiting with usage text on error or
    /// `--help`.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("{USAGE}");
                std::process::exit(if msg == "help" { 0 } else { 2 });
            }
        }
    }

    /// Parses an explicit argument list (unit-testable).
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match arg.as_str() {
                "--scale" => {
                    out.scale = match value("--scale")?.as_str() {
                        "small" => Scale::Small,
                        "paper" => Scale::Paper,
                        other => return Err(format!("unknown scale `{other}`")),
                    }
                }
                "--d" => out.d = parse_num(&value("--d")?, "--d")?,
                "--epochs" => out.epochs = Some(parse_num(&value("--epochs")?, "--epochs")?),
                "--lr" => {
                    out.lr = value("--lr")?.parse().map_err(|_| "invalid --lr".to_string())?
                }
                "--negatives" => out.negatives = parse_num(&value("--negatives")?, "--negatives")?,
                "--seq" => out.max_seq = parse_num(&value("--seq")?, "--seq")?,
                "--seed" => out.seed = parse_num(&value("--seed")?, "--seed")? as u64,
                "--out" => out.out = Some(value("--out")?),
                "--quick" => out.quick = true,
                "--serial" => out.serial = true,
                "--extended" => out.extended = true,
                "--help" | "-h" => return Err("help".into()),
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        if out.quick {
            out.negatives = out.negatives.min(100);
        }
        Ok(out)
    }

    /// Effective epoch count for a task default.
    pub fn epochs_or(&self, default: usize) -> usize {
        let e = self.epochs.unwrap_or(default);
        if self.quick {
            (e / 2).max(2)
        } else {
            e
        }
    }
}

fn parse_num(s: &str, name: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("invalid number for {name}: `{s}`"))
}

const USAGE: &str = "\
usage: <binary> [options]
  --scale small|paper   dataset scale (default small)
  --d N                 embedding width (default 32)
  --epochs N            override training epochs
  --lr F                Adam learning rate (default 0.005)
  --negatives N         ranking-eval negatives J (default 200)
  --seq N               max dynamic sequence length (default 20)
  --seed N              master seed (default 42)
  --quick               halve epochs, cap J at 100
  --serial              disable parallel execution
  --extended            include extension variants (ablation binary)
  --out PATH            TSV output path (default results/<name>.tsv)";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_overrides() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.d, 32);
        assert_eq!(a.scale, Scale::Small);
        let a = parse(&["--scale", "paper", "--d", "64", "--epochs", "3", "--lr", "0.01"]).unwrap();
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.d, 64);
        assert_eq!(a.epochs, Some(3));
        assert!((a.lr - 0.01).abs() < 1e-9);
    }

    #[test]
    fn quick_mode_caps_negatives_and_halves_epochs() {
        let a = parse(&["--quick", "--negatives", "500"]).unwrap();
        assert_eq!(a.negatives, 100);
        assert_eq!(a.epochs_or(20), 10);
        let b = parse(&[]).unwrap();
        assert_eq!(b.epochs_or(20), 20);
    }

    #[test]
    fn rejects_unknown_arguments() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--d"]).is_err());
        assert!(parse(&["--scale", "huge"]).is_err());
    }
}
