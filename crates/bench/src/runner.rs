//! Experiment execution: train + evaluate one model on one dataset, with a
//! `seqfm-parallel` scoped pool so a full paper table (8 models × 2
//! datasets) uses the machine's cores.

use crate::args::HarnessArgs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_baselines::registry::{build, ModelKind};
use seqfm_core::{
    evaluate_ctr, evaluate_ctr_on, evaluate_ranking, evaluate_ranking_on, evaluate_rating,
    evaluate_rating_on, train_ctr_with_hook, train_ranking_with_hook, train_rating_with_hook,
    EvalSplit, RankingEvalConfig, SeqModel, TrainConfig,
};
use seqfm_data::{Dataset, FeatureLayout, LeaveOneOut, NegativeSampler};
use seqfm_parallel::ThreadPool;

/// One trained-and-evaluated model's result row.
#[derive(Clone, Debug)]
pub struct ResultRow {
    /// Model display name.
    pub model: String,
    /// Task metrics (ranking: HR@5/10/20 + NDCG@5/10/20; CTR: AUC, RMSE;
    /// rating: MAE, RRSE).
    pub metrics: Vec<f64>,
    /// Training wall-clock seconds.
    pub train_seconds: f64,
}

/// Which of the paper's three tasks to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// Next-POI recommendation (Table II).
    Ranking,
    /// CTR prediction (Table III).
    Ctr,
    /// Rating prediction (Table IV).
    Rating,
}

/// Prepared dataset bundle shared by all models.
pub struct Prepared {
    /// The dataset.
    pub ds: Dataset,
    /// Leave-one-out split.
    pub split: LeaveOneOut,
    /// Feature layout.
    pub layout: FeatureLayout,
    /// Negative sampler over unseen items.
    pub sampler: NegativeSampler,
}

impl Prepared {
    /// Splits a dataset and builds its sampler.
    pub fn new(ds: Dataset) -> Self {
        let split = LeaveOneOut::split(&ds);
        let layout = FeatureLayout::of(&ds);
        let seen = (0..ds.n_users).map(|u| split.seen_items(u)).collect();
        let sampler = NegativeSampler::new(ds.n_items, seen);
        Prepared { ds, split, layout, sampler }
    }
}

/// Default epochs per task at small scale (an upper bound — validation-based
/// selection picks the best epoch, mirroring the paper's train-to-
/// convergence protocol; override with `--epochs`).
pub fn default_epochs(task: Task) -> usize {
    match task {
        Task::Ranking => 200,
        Task::Ctr => 120,
        Task::Rating => 150,
    }
}

/// Validation-metric tracker implementing best-epoch selection: evaluates a
/// cheap validation metric every `every` epochs, checkpoints the best
/// parameters, and restores them when training ends. This mirrors the
/// paper's protocol (the validation event exists precisely for tuning,
/// §V-C) and keeps the fixed epoch budget fair across models of very
/// different capacity.
pub struct BestEpoch {
    every: usize,
    /// Consecutive non-improving evaluations tolerated before stopping —
    /// this realises the paper's "iterate until L converges" (§IV-D) with
    /// the validation metric as the convergence monitor.
    patience: usize,
    stale: usize,
    best_metric: f64,
    best_params: Option<bytes::Bytes>,
    /// Epoch index of the best checkpoint (for diagnostics).
    pub best_epoch: usize,
}

impl BestEpoch {
    /// Tracker evaluating every `every` epochs, stopping after 5
    /// non-improving evaluations.
    pub fn new(every: usize) -> Self {
        BestEpoch {
            every,
            patience: 5,
            stale: 0,
            best_metric: f64::NEG_INFINITY,
            best_params: None,
            best_epoch: 0,
        }
    }

    /// Records epoch `epoch` with validation `metric` (higher = better);
    /// returns `true` when training should stop (metric plateaued).
    pub fn observe(&mut self, epoch: usize, total: usize, metric: f64, ps: &ParamStore) -> bool {
        if !epoch.is_multiple_of(self.every) && epoch + 1 != total {
            return false;
        }
        if metric > self.best_metric {
            self.best_metric = metric;
            self.best_epoch = epoch;
            self.best_params = Some(seqfm_nn::checkpoint::save(ps));
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale >= self.patience
    }

    /// `true` when `epoch` is an evaluation epoch.
    pub fn due(&self, epoch: usize, total: usize) -> bool {
        epoch.is_multiple_of(self.every) || epoch + 1 == total
    }

    /// Restores the best checkpoint into `ps`.
    pub fn restore(&self, ps: &mut ParamStore) {
        if let Some(blob) = &self.best_params {
            seqfm_nn::checkpoint::load(ps, blob).expect("own checkpoint roundtrips");
        }
    }
}

/// Trains `kind` on `prep` with validation-based best-epoch selection and
/// returns its test-set result row.
pub fn run_one(kind: ModelKind, task: Task, prep: &Prepared, args: &HarnessArgs) -> ResultRow {
    let epochs = args.epochs_or(default_epochs(task));
    let tc = TrainConfig {
        epochs,
        batch_size: 128,
        lr: args.lr,
        max_seq: args.max_seq,
        ctr_negatives: 5,
        seed: args.seed,
        ..TrainConfig::default()
    };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xC0FFEE);
    let model = build(kind, &mut ps, &mut rng, &prep.layout, args.d, args.max_seq);
    let mut selector = BestEpoch::new(3);

    match task {
        Task::Ranking => {
            let valid_ec = RankingEvalConfig {
                negatives: 50,
                max_seq: args.max_seq,
                batch_size: 256,
                seed: args.seed ^ 0x5A11D,
            };
            let report = {
                let m: &dyn SeqModel = model.as_ref();
                let sel = &mut selector;
                train_ranking_with_hook(
                    m,
                    &mut ps,
                    &prep.split,
                    &prep.layout,
                    &prep.sampler,
                    &tc,
                    |epoch, ps| {
                        if sel.due(epoch, epochs) {
                            let acc = evaluate_ranking_on(
                                m,
                                ps,
                                &prep.split,
                                &prep.layout,
                                &prep.sampler,
                                &valid_ec,
                                EvalSplit::Validation,
                            );
                            sel.observe(epoch, epochs, acc.hr(10), ps)
                        } else {
                            false
                        }
                    },
                )
            };
            selector.restore(&mut ps);
            let ec = RankingEvalConfig {
                negatives: args.negatives,
                max_seq: args.max_seq,
                batch_size: 256,
                seed: args.seed ^ 0xE7A1,
            };
            let acc = evaluate_ranking(
                model.as_ref(),
                &ps,
                &prep.split,
                &prep.layout,
                &prep.sampler,
                &ec,
            );
            ResultRow {
                model: model.name().to_string(),
                metrics: vec![
                    acc.hr(5),
                    acc.hr(10),
                    acc.hr(20),
                    acc.ndcg(5),
                    acc.ndcg(10),
                    acc.ndcg(20),
                ],
                train_seconds: report.seconds,
            }
        }
        Task::Ctr => {
            let report = {
                let m: &dyn SeqModel = model.as_ref();
                let sel = &mut selector;
                train_ctr_with_hook(
                    m,
                    &mut ps,
                    &prep.split,
                    &prep.layout,
                    &prep.sampler,
                    &tc,
                    |epoch, ps| {
                        if sel.due(epoch, epochs) {
                            let ev = evaluate_ctr_on(
                                m,
                                ps,
                                &prep.split,
                                &prep.layout,
                                &prep.sampler,
                                args.max_seq,
                                args.seed ^ 0x5A12D,
                                EvalSplit::Validation,
                            );
                            sel.observe(epoch, epochs, ev.auc, ps)
                        } else {
                            false
                        }
                    },
                )
            };
            selector.restore(&mut ps);
            let ev = evaluate_ctr(
                model.as_ref(),
                &ps,
                &prep.split,
                &prep.layout,
                &prep.sampler,
                args.max_seq,
                args.seed ^ 0xE7A2,
            );
            ResultRow {
                model: model.name().to_string(),
                metrics: vec![ev.auc, ev.rmse],
                train_seconds: report.seconds,
            }
        }
        Task::Rating => {
            let report = {
                let m: &dyn SeqModel = model.as_ref();
                let sel = &mut selector;
                // target_offset is only known after training; the validation
                // hook uses MAE on *centred* predictions with a running
                // offset estimate — the training-set mean is constant, so we
                // compute it the same way the trainer does.
                let offset = {
                    let (sum, count) = prep
                        .split
                        .train
                        .iter()
                        .flatten()
                        .fold((0.0f64, 0usize), |(s, c), e| (s + e.rating as f64, c + 1));
                    (sum / count.max(1) as f64) as f32
                };
                train_rating_with_hook(m, &mut ps, &prep.split, &prep.layout, &tc, |epoch, ps| {
                    if sel.due(epoch, epochs) {
                        let ev = evaluate_rating_on(
                            m,
                            ps,
                            &prep.split,
                            &prep.layout,
                            args.max_seq,
                            offset,
                            EvalSplit::Validation,
                        );
                        sel.observe(epoch, epochs, -ev.mae, ps)
                    } else {
                        false
                    }
                })
            };
            selector.restore(&mut ps);
            let ev = evaluate_rating(
                model.as_ref(),
                &ps,
                &prep.split,
                &prep.layout,
                args.max_seq,
                report.target_offset,
            );
            ResultRow {
                model: model.name().to_string(),
                metrics: vec![ev.mae, ev.rrse],
                train_seconds: report.seconds,
            }
        }
    }
}

/// Runs a list of independent jobs, optionally in parallel over a
/// [`seqfm_parallel::ThreadPool`] scope (work-stealing, so long-running
/// models don't serialise behind each other), preserving job order in the
/// output. A job panic propagates to the caller after every sibling has
/// finished.
pub fn run_jobs<T, F>(n_jobs: usize, serial: bool, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if serial || n_jobs <= 1 {
        return (0..n_jobs).map(job).collect();
    }
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get()).min(n_jobs);
    let pool = ThreadPool::new(workers);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n_jobs, || None);
    pool.scope(|s| {
        for (i, slot) in slots.iter_mut().enumerate() {
            let job = &job;
            s.spawn(move || *slot = Some(job(i)));
        }
    });
    slots.into_iter().map(|t| t.expect("scope completed every job")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_jobs_preserves_order() {
        let out = run_jobs(16, false, |i| i * 3);
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
        let serial = run_jobs(4, true, |i| i + 1);
        assert_eq!(serial, vec![1, 2, 3, 4]);
    }

    #[test]
    fn best_epoch_selects_peak_and_stops_on_plateau() {
        let mut ps = seqfm_autograd::ParamStore::new();
        let w = ps.add_dense("w", seqfm_tensor::Tensor::vector(vec![0.0]));
        let mut sel = BestEpoch::new(1);
        // rising metric: no stop, checkpoints advance
        for (epoch, metric) in [(0usize, 0.1f64), (1, 0.2), (2, 0.5)] {
            ps.value_mut(w).data_mut()[0] = epoch as f32;
            assert!(!sel.observe(epoch, 100, metric, &ps), "should not stop while improving");
        }
        assert_eq!(sel.best_epoch, 2);
        // plateau: stops after `patience` stale evals
        let mut stopped = false;
        for epoch in 3..20 {
            ps.value_mut(w).data_mut()[0] = epoch as f32;
            if sel.observe(epoch, 100, 0.4, &ps) {
                stopped = true;
                assert_eq!(epoch, 7, "patience of 5 should stop at the 5th stale eval");
                break;
            }
        }
        assert!(stopped, "plateau never triggered early stopping");
        // restore brings back the epoch-2 parameters
        sel.restore(&mut ps);
        assert_eq!(ps.value(w).data(), &[2.0]);
    }

    #[test]
    fn best_epoch_skips_off_schedule_epochs() {
        let ps = seqfm_autograd::ParamStore::new();
        let mut sel = BestEpoch::new(3);
        assert!(sel.due(0, 10));
        assert!(!sel.due(1, 10));
        assert!(!sel.due(2, 10));
        assert!(sel.due(3, 10));
        assert!(sel.due(9, 10), "final epoch always evaluates");
        // observing an off-schedule epoch is a no-op
        assert!(!sel.observe(1, 10, 99.0, &ps));
        assert_eq!(sel.best_epoch, 0);
    }

    #[test]
    fn prepared_builds_consistent_bundle() {
        let cfg = seqfm_data::ranking::RankingConfig {
            name: "t".into(),
            n_users: 10,
            n_items: 30,
            n_clusters: 4,
            min_len: 5,
            max_len: 8,
            p_transition: 0.2,
            p_recent: 0.4,
            drift_every: 8,
            zipf_s: 1.0,
            pref_sharpness: 1.0,
            seed: 1,
        };
        let ds = seqfm_data::ranking::generate(&cfg).unwrap();
        let prep = Prepared::new(ds);
        assert_eq!(prep.split.test.len(), 10);
        assert_eq!(prep.layout.n_items, 30);
    }
}
