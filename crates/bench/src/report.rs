//! Table rendering and TSV persistence for the harness binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A rendered experiment table: header + rows of (label, cells).
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "cell count mismatch");
        self.rows.push((label.into(), cells));
    }

    /// Appends a row of numeric cells formatted to 3 decimals.
    pub fn row_f64(&mut self, label: impl Into<String>, values: &[f64]) {
        self.row(label, values.iter().map(|v| format!("{v:.3}")).collect());
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let label_w =
            self.rows.iter().map(|(l, _)| l.len()).chain(std::iter::once(5)).max().unwrap_or(5) + 2;
        let col_ws: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|(_, cells)| cells[i].len())
                    .chain(std::iter::once(c.len()))
                    .max()
                    .unwrap_or(c.len())
                    + 2
            })
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:<label_w$}", "model");
        for (c, w) in self.columns.iter().zip(&col_ws) {
            let _ = write!(out, "{c:>w$}");
        }
        let _ = writeln!(out);
        let total: usize = label_w + col_ws.iter().sum::<usize>();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label:<label_w$}");
            for (c, w) in cells.iter().zip(&col_ws) {
                let _ = write!(out, "{c:>w$}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialises as TSV (machine-readable companion output).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "model\t{}", self.columns.join("\t"));
        for (label, cells) in &self.rows {
            let _ = writeln!(out, "{label}\t{}", cells.join("\t"));
        }
        out
    }

    /// Writes the TSV next to a `results/` directory (created on demand).
    ///
    /// # Panics
    /// Panics on IO errors (harness binaries have no recovery path).
    pub fn write_tsv(&self, path: &str) {
        let p = Path::new(path);
        if let Some(dir) = p.parent() {
            fs::create_dir_all(dir).expect("create results dir");
        }
        fs::write(p, self.to_tsv()).expect("write tsv");
        println!("wrote {path}");
    }
}

/// Formats a measured-vs-paper cell as `measured (paper)`.
pub fn vs(measured: f64, paper: f64) -> String {
    format!("{measured:.3} ({paper:.3})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_tsv_roundtrips() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row_f64("model-x", &[0.12345, 1.0]);
        t.row("model-y", vec!["0.5 (0.4)".into(), "ok".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("0.123"));
        let tsv = t.to_tsv();
        let mut lines = tsv.lines();
        assert_eq!(lines.next().unwrap(), "model\ta\tb");
        assert_eq!(lines.next().unwrap(), "model-x\t0.123\t1.000");
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row("x", vec!["1".into()]);
    }

    #[test]
    fn vs_formats_pairs() {
        assert_eq!(vs(0.5, 0.25), "0.500 (0.250)");
    }
}
