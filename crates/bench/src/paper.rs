#![allow(clippy::approx_constant)] // table constants coincide with 1/π etc.

//! The paper's reported numbers (Tables II–V), embedded so every harness
//! binary can print paper-vs-measured side by side.
//!
//! Absolute values are not expected to match (our substrate is a synthetic
//! simulator at reduced scale); the *shape* — who wins, roughly by how much —
//! is the reproduction target. See EXPERIMENTS.md.

/// Table II: ranking results. Per model:
/// `(name, [gowalla HR@5,10,20, NDCG@5,10,20], [foursquare …])`.
pub const TABLE2: &[(&str, [f64; 6], [f64; 6])] = &[
    ("FM", [0.232, 0.318, 0.419, 0.158, 0.187, 0.211], [0.241, 0.303, 0.433, 0.169, 0.201, 0.217]),
    (
        "Wide&Deep",
        [0.288, 0.401, 0.532, 0.199, 0.238, 0.267],
        [0.233, 0.317, 0.422, 0.165, 0.192, 0.218],
    ),
    (
        "DeepCross",
        [0.273, 0.379, 0.505, 0.182, 0.204, 0.241],
        [0.282, 0.355, 0.492, 0.198, 0.210, 0.229],
    ),
    ("NFM", [0.286, 0.395, 0.525, 0.199, 0.236, 0.264], [0.239, 0.325, 0.435, 0.170, 0.198, 0.225]),
    ("AFM", [0.295, 0.407, 0.534, 0.204, 0.242, 0.270], [0.279, 0.379, 0.504, 0.199, 0.212, 0.233]),
    (
        "SASRec",
        [0.310, 0.424, 0.559, 0.209, 0.253, 0.285],
        [0.266, 0.350, 0.467, 0.175, 0.204, 0.216],
    ),
    ("TFM", [0.307, 0.430, 0.556, 0.216, 0.256, 0.283], [0.283, 0.390, 0.512, 0.203, 0.223, 0.248]),
    (
        "SeqFM",
        [0.345, 0.467, 0.603, 0.243, 0.283, 0.316],
        [0.324, 0.431, 0.554, 0.227, 0.262, 0.293],
    ),
];

/// Table III: CTR results. Per model:
/// `(name, [trivago AUC, RMSE], [taobao AUC, RMSE])`.
pub const TABLE3: &[(&str, [f64; 2], [f64; 2])] = &[
    ("FM", [0.729, 0.564], [0.602, 0.597]),
    ("Wide&Deep", [0.782, 0.529], [0.629, 0.590]),
    ("DeepCross", [0.845, 0.433], [0.735, 0.391]),
    ("NFM", [0.767, 0.537], [0.616, 0.583]),
    ("AFM", [0.811, 0.465], [0.656, 0.544]),
    ("DIN", [0.923, 0.338], [0.781, 0.375]),
    ("xDeepFM", [0.913, 0.350], [0.804, 0.363]),
    ("SeqFM", [0.957, 0.319], [0.826, 0.335]),
];

/// Table IV: regression results. Per model:
/// `(name, [beauty MAE, RRSE], [toys MAE, RRSE])`.
pub const TABLE4: &[(&str, [f64; 2], [f64; 2])] = &[
    ("FM", [1.067, 1.125], [0.778, 1.023]),
    ("Wide&Deep", [0.965, 1.090], [0.753, 0.989]),
    ("DeepCross", [0.949, 1.003], [0.761, 1.010]),
    ("NFM", [0.931, 0.986], [0.735, 0.981]),
    ("AFM", [0.945, 0.994], [0.741, 0.997]),
    ("RRN", [0.943, 0.989], [0.739, 0.983]),
    ("HOFM", [0.952, 1.054], [0.748, 1.001]),
    ("SeqFM", [0.890, 0.975], [0.704, 0.956]),
];

/// One Table-V row: `(name, [HR@10 gowalla, foursquare],
/// [AUC trivago, taobao], [MAE beauty, toys])`.
pub type AblationRow = (&'static str, [f64; 2], [f64; 2], [f64; 2]);

/// Table V: ablation study.
pub const TABLE5: &[AblationRow] = &[
    ("Default", [0.467, 0.431], [0.957, 0.826], [0.890, 0.704]),
    ("Remove SV", [0.455, 0.420], [0.892, 0.765], [0.959, 0.762]),
    ("Remove DV", [0.424, 0.396], [0.862, 0.731], [0.972, 0.772]),
    ("Remove CV", [0.430, 0.404], [0.963, 0.754], [0.935, 0.763]),
    ("Remove RC", [0.457, 0.431], [0.898, 0.761], [0.918, 0.719]),
    ("Remove LN", [0.461, 0.423], [0.933, 0.798], [0.922, 0.720]),
];

/// Fig. 4: training time (×10³ s) on Trivago at data proportions
/// {0.2, 0.4, 0.6, 0.8, 1.0} — the paper reads ≈0.51k s at 0.2 rising
/// linearly to ≈2.79k s at 1.0.
pub const FIG4_PROPORTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Paper training times in seconds for [`FIG4_PROPORTIONS`].
pub const FIG4_SECONDS: [f64; 5] = [510.0, 1080.0, 1650.0, 2220.0, 2790.0];

/// Fig. 3 sweep grids (paper §IV-D).
pub mod fig3 {
    /// Latent dimensions d.
    pub const D: [usize; 5] = [8, 16, 32, 64, 128];
    /// FFN depths l.
    pub const L: [usize; 5] = [1, 2, 3, 4, 5];
    /// Maximum sequence lengths n˙.
    pub const N_SEQ: [usize; 5] = [10, 20, 30, 40, 50];
    /// Dropout ratios ρ.
    pub const RHO: [f32; 5] = [0.5, 0.6, 0.7, 0.8, 0.9];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqfm_wins_every_paper_table() {
        // Table II: SeqFM has the best (highest) value in every column.
        let seqfm = TABLE2.last().unwrap();
        for row in &TABLE2[..TABLE2.len() - 1] {
            for i in 0..6 {
                assert!(seqfm.1[i] > row.1[i], "TABLE2 gowalla col {i} vs {}", row.0);
                assert!(seqfm.2[i] > row.2[i], "TABLE2 foursquare col {i} vs {}", row.0);
            }
        }
        // Table III: AUC higher, RMSE lower — except Trivago/Remove-CV-like
        // cases don't exist here; strict dominance holds in the paper.
        let seqfm = TABLE3.last().unwrap();
        for row in &TABLE3[..TABLE3.len() - 1] {
            assert!(seqfm.1[0] > row.1[0] && seqfm.1[1] < row.1[1], "{}", row.0);
            assert!(seqfm.2[0] > row.2[0] && seqfm.2[1] < row.2[1], "{}", row.0);
        }
        // Table IV: both errors lower.
        let seqfm = TABLE4.last().unwrap();
        for row in &TABLE4[..TABLE4.len() - 1] {
            assert!(seqfm.1[0] < row.1[0] && seqfm.1[1] < row.1[1], "{}", row.0);
            assert!(seqfm.2[0] < row.2[0] && seqfm.2[1] < row.2[1], "{}", row.0);
        }
    }

    #[test]
    fn paper_fig4_is_roughly_linear() {
        // least-squares slope residuals should be small relative to scale
        let xs = FIG4_PROPORTIONS;
        let ys = FIG4_SECONDS;
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let slope: f64 = xs.iter().zip(&ys).map(|(&x, &y)| (x - mx) * (y - my)).sum::<f64>()
            / xs.iter().map(|&x| (x - mx) * (x - mx)).sum::<f64>();
        for (&x, &y) in xs.iter().zip(&ys) {
            let fit = my + slope * (x - mx);
            assert!((fit - y).abs() / y < 0.05, "paper Fig.4 not linear at {x}");
        }
    }
}
