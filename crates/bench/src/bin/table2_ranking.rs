//! Regenerates **Table II** — the ranking task (next-POI recommendation):
//! HR@{5,10,20} and NDCG@{5,10,20} for all eight models on the Gowalla-like
//! and Foursquare-like datasets. Paper values are printed in parentheses.

use seqfm_baselines::registry::ranking_models;
use seqfm_bench::{paper, run_jobs, run_one, vs, HarnessArgs, Prepared, Table, Task};
use seqfm_data::ranking::{generate, RankingConfig};

fn main() {
    let args = HarnessArgs::parse();
    let models = ranking_models();
    let datasets = [
        Prepared::new(generate(&RankingConfig::gowalla(args.scale)).expect("preset valid")),
        Prepared::new(generate(&RankingConfig::foursquare(args.scale)).expect("preset valid")),
    ];
    eprintln!(
        "table2: {} models x {} datasets, d={}, J={}, epochs={}",
        models.len(),
        datasets.len(),
        args.d,
        args.negatives,
        args.epochs_or(seqfm_bench::default_epochs(Task::Ranking)),
    );

    // one job per (dataset, model)
    let jobs: Vec<(usize, usize)> =
        (0..datasets.len()).flat_map(|di| (0..models.len()).map(move |mi| (di, mi))).collect();
    let results = run_jobs(jobs.len(), args.serial, |j| {
        let (di, mi) = jobs[j];
        run_one(models[mi], Task::Ranking, &datasets[di], &args)
    });

    for (di, prep) in datasets.iter().enumerate() {
        let mut table = Table::new(
            format!("Table II — ranking on {} (measured (paper))", prep.ds.name),
            &["HR@5", "HR@10", "HR@20", "NDCG@5", "NDCG@10", "NDCG@20"],
        );
        for (mi, _) in models.iter().enumerate() {
            let row = &results[di * models.len() + mi];
            let paper_row = &paper::TABLE2[mi];
            let paper_vals = if di == 0 { &paper_row.1 } else { &paper_row.2 };
            table.row(
                row.model.clone(),
                (0..6).map(|k| vs(row.metrics[k], paper_vals[k])).collect(),
            );
        }
        print!("{}", table.render());
        let path =
            args.out.clone().unwrap_or_else(|| format!("results/table2_{}.tsv", prep.ds.name));
        table.write_tsv(&path);
    }
    let total: f64 = results.iter().map(|r| r.train_seconds).sum();
    println!("total training time: {total:.1}s across {} runs", results.len());
}
