//! Regenerates **Figure 4** — training efficiency and scalability (§VI-D):
//! SeqFM training wall-clock time on the CTR workload (the paper uses
//! Trivago, its largest dataset) at data proportions {0.2, 0.4, 0.6, 0.8,
//! 1.0}, plus a least-squares linearity check mirroring the paper's
//! "approximately linear" conclusion.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_bench::{paper, run_jobs, HarnessArgs, Prepared, Table, Task};
use seqfm_core::{train_ctr, SeqFm, SeqFmConfig, TrainConfig};
use seqfm_data::ctr::{generate, CtrConfig};

fn main() {
    let args = HarnessArgs::parse();
    let full = generate(&CtrConfig::trivago(args.scale)).expect("preset valid");
    eprintln!("fig4: trivago-sim with {} instances", full.n_instances());

    let proportions = paper::FIG4_PROPORTIONS;
    // Serial by default: wall-clock timing is the measurement, so parallel
    // execution would contaminate it unless explicitly requested.
    let results = run_jobs(proportions.len(), true, |i| {
        let ds = full.subset(proportions[i]);
        let prep = Prepared::new(ds);
        let tc = TrainConfig {
            epochs: args.epochs_or(seqfm_bench::default_epochs(Task::Ctr)),
            batch_size: 128,
            lr: args.lr,
            max_seq: args.max_seq,
            ctr_negatives: 5,
            seed: args.seed,
            ..TrainConfig::default()
        };
        let cfg = SeqFmConfig { d: args.d, max_seq: args.max_seq, ..Default::default() };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0xC0FFEE);
        let model = SeqFm::new(&mut ps, &mut rng, &prep.layout, cfg);
        let report = train_ctr(&model, &mut ps, &prep.split, &prep.layout, &prep.sampler, &tc);
        (prep.ds.n_instances(), report.seconds)
    });

    let mut table = Table::new(
        "Fig. 4 — SeqFM training time vs data proportion (trivago-sim)",
        &["instances", "seconds", "paper seconds"],
    );
    for (i, &p) in proportions.iter().enumerate() {
        let (instances, seconds) = results[i];
        table.row(
            format!("{p:.1}"),
            vec![
                instances.to_string(),
                format!("{seconds:.2}"),
                format!("{:.0}", paper::FIG4_SECONDS[i]),
            ],
        );
    }
    print!("{}", table.render());
    table.write_tsv(args.out.as_deref().unwrap_or("results/fig4_scalability.tsv"));

    // Linearity check: R² of seconds ~ proportion.
    let xs = proportions;
    let ys: Vec<f64> = results.iter().map(|&(_, s)| s).collect();
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let ss_res: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(&x, &y)| {
            let fit = my + slope * (x - mx);
            (y - fit) * (y - fit)
        })
        .sum();
    let ss_tot: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
    let r2 = 1.0 - ss_res / ss_tot.max(1e-12);
    println!(
        "linear fit: {slope:.3} s per unit proportion, R² = {r2:.4} \
         (paper: \"the dependency of training time on the data scale is approximately linear\")"
    );
}
