//! Regenerates **Table V** — the ablation study (§VI-C): SeqFM variants
//! with one component removed, across all six datasets. Columns follow the
//! paper: HR@10 (Gowalla, Foursquare), AUC (Trivago, Taobao), MAE (Beauty,
//! Toys). With `--extended`, the DESIGN.md extension variants
//! (padding-masked pooling, per-view FFN) are appended.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_bench::{paper, run_jobs, vs, HarnessArgs, Prepared, Table, Task};
use seqfm_core::{
    evaluate_ctr, evaluate_ranking, evaluate_rating, train_ctr, train_ranking, train_rating,
    Ablation, RankingEvalConfig, SeqFm, SeqFmConfig, TrainConfig,
};

/// Trains one SeqFM variant on one dataset and returns the paper's Table-V
/// metric for that dataset (HR@10 / AUC / MAE).
fn run_variant(ablation: Ablation, task: Task, prep: &Prepared, args: &HarnessArgs) -> f64 {
    let tc = TrainConfig {
        epochs: args.epochs_or(seqfm_bench::default_epochs(task)),
        batch_size: 128,
        lr: args.lr,
        max_seq: args.max_seq,
        ctr_negatives: 5,
        seed: args.seed,
        ..TrainConfig::default()
    };
    let cfg = SeqFmConfig { d: args.d, max_seq: args.max_seq, ablation, ..Default::default() };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xC0FFEE);
    let model = SeqFm::new(&mut ps, &mut rng, &prep.layout, cfg);
    match task {
        Task::Ranking => {
            train_ranking(&model, &mut ps, &prep.split, &prep.layout, &prep.sampler, &tc);
            let ec = RankingEvalConfig {
                negatives: args.negatives,
                max_seq: args.max_seq,
                batch_size: 256,
                seed: args.seed ^ 0xE7A1,
            };
            evaluate_ranking(&model, &ps, &prep.split, &prep.layout, &prep.sampler, &ec).hr(10)
        }
        Task::Ctr => {
            train_ctr(&model, &mut ps, &prep.split, &prep.layout, &prep.sampler, &tc);
            evaluate_ctr(
                &model,
                &ps,
                &prep.split,
                &prep.layout,
                &prep.sampler,
                args.max_seq,
                args.seed ^ 0xE7A2,
            )
            .auc
        }
        Task::Rating => {
            let report = train_rating(&model, &mut ps, &prep.split, &prep.layout, &tc);
            evaluate_rating(
                &model,
                &ps,
                &prep.split,
                &prep.layout,
                args.max_seq,
                report.target_offset,
            )
            .mae
        }
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let mut variants = Ablation::table5_variants();
    if args.extended {
        variants.extend(Ablation::extension_variants());
    }
    let datasets: Vec<(Task, Prepared)> = seqfm_data::all_presets(args.scale)
        .into_iter()
        .zip([Task::Ranking, Task::Ranking, Task::Ctr, Task::Ctr, Task::Rating, Task::Rating])
        .map(|(ds, task)| (task, Prepared::new(ds)))
        .collect();
    eprintln!("table5: {} variants x {} datasets", variants.len(), datasets.len());

    let jobs: Vec<(usize, usize)> =
        (0..variants.len()).flat_map(|vi| (0..datasets.len()).map(move |di| (vi, di))).collect();
    let results = run_jobs(jobs.len(), args.serial, |j| {
        let (vi, di) = jobs[j];
        let (task, prep) = &datasets[di];
        run_variant(variants[vi].1, *task, prep, &args)
    });

    let mut table = Table::new(
        "Table V — ablation study (measured (paper); HR@10 | AUC | MAE)",
        &["gowalla", "foursquare", "trivago", "taobao", "beauty", "toys"],
    );
    for (vi, (name, _)) in variants.iter().enumerate() {
        let cells: Vec<String> = (0..datasets.len())
            .map(|di| {
                let measured = results[vi * datasets.len() + di];
                match paper::TABLE5.iter().find(|(n, ..)| n == name) {
                    Some((_, hr, auc, mae)) => {
                        let p = match di {
                            0 | 1 => hr[di],
                            2 | 3 => auc[di - 2],
                            _ => mae[di - 4],
                        };
                        vs(measured, p)
                    }
                    None => format!("{measured:.3}"),
                }
            })
            .collect();
        table.row(*name, cells);
    }
    print!("{}", table.render());
    table.write_tsv(args.out.as_deref().unwrap_or("results/table5_ablation.tsv"));
}
