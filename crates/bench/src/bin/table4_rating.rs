//! Regenerates **Table IV** — the regression task (rating prediction):
//! MAE and RRSE for all eight models on the Beauty-like and Toys-like
//! datasets. Paper values are printed in parentheses.

use seqfm_baselines::registry::rating_models;
use seqfm_bench::{paper, run_jobs, run_one, vs, HarnessArgs, Prepared, Table, Task};
use seqfm_data::rating::{generate, RatingConfig};

fn main() {
    let args = HarnessArgs::parse();
    let models = rating_models();
    let datasets = [
        Prepared::new(generate(&RatingConfig::beauty(args.scale)).expect("preset valid")),
        Prepared::new(generate(&RatingConfig::toys(args.scale)).expect("preset valid")),
    ];
    eprintln!(
        "table4: {} models x {} datasets, d={}, epochs={}",
        models.len(),
        datasets.len(),
        args.d,
        args.epochs_or(seqfm_bench::default_epochs(Task::Rating)),
    );

    let jobs: Vec<(usize, usize)> =
        (0..datasets.len()).flat_map(|di| (0..models.len()).map(move |mi| (di, mi))).collect();
    let results = run_jobs(jobs.len(), args.serial, |j| {
        let (di, mi) = jobs[j];
        run_one(models[mi], Task::Rating, &datasets[di], &args)
    });

    for (di, prep) in datasets.iter().enumerate() {
        let mut table = Table::new(
            format!("Table IV — rating prediction on {} (measured (paper))", prep.ds.name),
            &["MAE", "RRSE"],
        );
        for (mi, _) in models.iter().enumerate() {
            let row = &results[di * models.len() + mi];
            let paper_row = &paper::TABLE4[mi];
            let paper_vals = if di == 0 { &paper_row.1 } else { &paper_row.2 };
            table.row(
                row.model.clone(),
                vec![vs(row.metrics[0], paper_vals[0]), vs(row.metrics[1], paper_vals[1])],
            );
        }
        print!("{}", table.render());
        let path =
            args.out.clone().unwrap_or_else(|| format!("results/table4_{}.tsv", prep.ds.name));
        table.write_tsv(&path);
    }
    let total: f64 = results.iter().map(|r| r.train_seconds).sum();
    println!("total training time: {total:.1}s across {} runs", results.len());
}
