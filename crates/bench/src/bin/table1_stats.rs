//! Regenerates **Table I** — statistics of the six datasets.
//!
//! Prints `#Instance / #User / #Object / #Feature(Sparse)` for every
//! synthetic preset next to the paper's values for the corresponding public
//! dataset, making the scale reduction explicit.

use seqfm_bench::{HarnessArgs, Table};
use seqfm_data::all_presets;

/// Paper Table I values: (dataset, instances, users, objects, features).
const PAPER: &[(&str, usize, usize, usize, usize)] = &[
    ("Gowalla", 1_865_119, 34_796, 57_445, 149_686),
    ("Foursquare", 1_196_248, 24_941, 28_593, 82_127),
    ("Trivago", 2_810_584, 12_790, 45_195, 103_180),
    ("Taobao", 1_970_133, 37_398, 65_474, 168_346),
    ("Beauty", 198_503, 22_363, 12_101, 46_565),
    ("Toys", 167_597, 19_412, 11_924, 50_748),
];

fn main() {
    let args = HarnessArgs::parse();
    let sets = all_presets(args.scale);
    let mut table = Table::new(
        format!(
            "Table I — dataset statistics (scale: {:?}; paper values in parentheses)",
            args.scale
        ),
        &["#Instance", "#User", "#Object", "#Feature(Sparse)"],
    );
    for (ds, paper) in sets.iter().zip(PAPER) {
        let s = ds.stats();
        table.row(
            s.name.clone(),
            vec![
                format!("{} ({})", s.instances, paper.1),
                format!("{} ({})", s.users, paper.2),
                format!("{} ({})", s.objects, paper.3),
                format!("{} ({})", s.sparse_features, paper.4),
            ],
        );
    }
    print!("{}", table.render());
    table.write_tsv(args.out.as_deref().unwrap_or("results/table1_stats.tsv"));
}
