//! Regenerates **Figure 3** — hyperparameter sensitivity of SeqFM: one-
//! factor-at-a-time sweeps of the latent dimension `d`, FFN depth `l`,
//! maximum sequence length `n˙`, and dropout ratio `ρ` around the standard
//! setting, reporting HR@10 (ranking), AUC (CTR), and MAE (regression) on
//! all six datasets — the same panels as the paper's Fig. 3.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_bench::{paper::fig3, run_jobs, HarnessArgs, Prepared, Table, Task};
use seqfm_core::{
    evaluate_ctr, evaluate_ranking, evaluate_rating, train_ctr, train_ranking, train_rating,
    RankingEvalConfig, SeqFm, SeqFmConfig, TrainConfig,
};

/// One swept hyperparameter point.
#[derive(Clone, Copy, Debug)]
struct Point {
    d: usize,
    l: usize,
    n_seq: usize,
    rho: f32,
}

fn run_point(p: Point, task: Task, prep: &Prepared, args: &HarnessArgs) -> f64 {
    let tc = TrainConfig {
        epochs: args.epochs_or(seqfm_bench::default_epochs(task)),
        batch_size: 128,
        lr: args.lr,
        max_seq: p.n_seq,
        ctr_negatives: 5,
        seed: args.seed,
        ..TrainConfig::default()
    };
    let cfg =
        SeqFmConfig { d: p.d, layers: p.l, max_seq: p.n_seq, dropout: p.rho, ..Default::default() };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xC0FFEE);
    let model = SeqFm::new(&mut ps, &mut rng, &prep.layout, cfg);
    match task {
        Task::Ranking => {
            train_ranking(&model, &mut ps, &prep.split, &prep.layout, &prep.sampler, &tc);
            let ec = RankingEvalConfig {
                negatives: args.negatives,
                max_seq: p.n_seq,
                batch_size: 256,
                seed: args.seed ^ 0xE7A1,
            };
            evaluate_ranking(&model, &ps, &prep.split, &prep.layout, &prep.sampler, &ec).hr(10)
        }
        Task::Ctr => {
            train_ctr(&model, &mut ps, &prep.split, &prep.layout, &prep.sampler, &tc);
            evaluate_ctr(
                &model,
                &ps,
                &prep.split,
                &prep.layout,
                &prep.sampler,
                p.n_seq,
                args.seed ^ 0xE7A2,
            )
            .auc
        }
        Task::Rating => {
            let report = train_rating(&model, &mut ps, &prep.split, &prep.layout, &tc);
            evaluate_rating(&model, &ps, &prep.split, &prep.layout, p.n_seq, report.target_offset)
                .mae
        }
    }
}

fn main() {
    let args = HarnessArgs::parse();
    // Standard setting (paper: {d=64, l=1, n˙=20, ρ=0.6}; d follows --d).
    let base = Point { d: args.d, l: 1, n_seq: args.max_seq, rho: 0.6 };
    let sweeps: Vec<(&str, Vec<Point>)> = vec![
        ("d", fig3::D.iter().map(|&d| Point { d, ..base }).collect()),
        ("l", fig3::L.iter().map(|&l| Point { l, ..base }).collect()),
        ("n_seq", fig3::N_SEQ.iter().map(|&n_seq| Point { n_seq, ..base }).collect()),
        ("rho", fig3::RHO.iter().map(|&rho| Point { rho, ..base }).collect()),
    ];
    let datasets: Vec<(Task, Prepared)> = seqfm_data::all_presets(args.scale)
        .into_iter()
        .zip([Task::Ranking, Task::Ranking, Task::Ctr, Task::Ctr, Task::Rating, Task::Rating])
        .map(|(ds, task)| (task, Prepared::new(ds)))
        .collect();

    // flatten all (sweep, point, dataset) jobs
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
    for (si, (_, points)) in sweeps.iter().enumerate() {
        for pi in 0..points.len() {
            for di in 0..datasets.len() {
                jobs.push((si, pi, di));
            }
        }
    }
    eprintln!("fig3: {} jobs ({} sweeps x 5 points x 6 datasets)", jobs.len(), sweeps.len());
    let results = run_jobs(jobs.len(), args.serial, |j| {
        let (si, pi, di) = jobs[j];
        let (task, prep) = &datasets[di];
        run_point(sweeps[si].1[pi], *task, prep, &args)
    });

    for (si, (param, points)) in sweeps.iter().enumerate() {
        let mut table = Table::new(
            format!("Fig. 3 — SeqFM sensitivity to {param} (HR@10 | AUC | MAE)"),
            &["gowalla", "foursquare", "trivago", "taobao", "beauty", "toys"],
        );
        for (pi, point) in points.iter().enumerate() {
            let label = match *param {
                "d" => format!("d={}", point.d),
                "l" => format!("l={}", point.l),
                "n_seq" => format!("n˙={}", point.n_seq),
                _ => format!("ρ={}", point.rho),
            };
            let vals: Vec<f64> = (0..datasets.len())
                .map(|di| {
                    let j = jobs
                        .iter()
                        .position(|&(s, p, d)| (s, p, d) == (si, pi, di))
                        .expect("job exists");
                    results[j]
                })
                .collect();
            table.row_f64(label, &vals);
        }
        print!("{}", table.render());
        table.write_tsv(&format!("results/fig3_{param}.tsv"));
    }
}
