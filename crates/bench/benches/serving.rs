//! Serving-path benchmarks: graph-free `FrozenSeqFm::score` vs. building an
//! autograd `Graph` per request, engine throughput at 1 and 4 worker
//! threads, and the batch-coalescing engine on a shared-history workload.
//!
//! Besides the criterion groups, this bench writes `BENCH_serving.json` at
//! the repository root (requests/sec single-/4-thread/coalesced, p50
//! latencies, frozen-vs-graph speedup) so the serving-performance
//! trajectory is recorded PR over PR:
//!
//! ```text
//! cargo bench -p seqfm-bench --bench serving
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{FrozenSeqFm, GraphScorer, Scorer, ScorerPrecision, Scratch, SeqFm, SeqFmConfig};
use seqfm_data::{Batch, FeatureLayout};
use seqfm_serve::{expand_request, Engine, EngineConfig, ScoreRequest};
use std::sync::Arc;
use std::time::{Duration, Instant};

const D: usize = 32;
const MAX_SEQ: usize = 20;
const CANDIDATES: usize = 100;

fn layout() -> FeatureLayout {
    FeatureLayout { n_users: 200, n_items: 500 }
}

fn build_model() -> (SeqFm, ParamStore) {
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = SeqFmConfig { d: D, max_seq: MAX_SEQ, ..Default::default() };
    let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
    (model, ps)
}

fn request(i: usize, l: &FeatureLayout) -> ScoreRequest {
    ScoreRequest::inline(
        (i % l.n_users) as u32,
        (0..MAX_SEQ).map(|j| ((i * 7 + j) % l.n_items) as u32).collect::<Vec<u32>>(),
        (0..CANDIDATES).map(|c| ((c * 3 + i) % l.n_items) as u32).collect::<Vec<u32>>(),
    )
}

/// Candidates per request in the coalescing workload. Deliberately
/// **small**: within one large request the frozen fast path already
/// amortises the history, so coalescing pays off exactly where ROADMAP
/// predicted — many small same-history requests (a hot user / trending
/// slate hammered by concurrent callers), where the per-request dynamic
/// view and dispatch round trip dominate the per-candidate work.
const COALESCE_CANDIDATES: usize = 8;

/// The coalescing workload: one hot user/history hit by a burst of small
/// candidate-set requests — the shape the engine's same-`(user, history)`
/// grouping turns into cross-request super-batches.
fn shared_history_request(i: usize, l: &FeatureLayout) -> ScoreRequest {
    ScoreRequest::inline(
        7,
        (0..MAX_SEQ).map(|j| ((j * 11) % l.n_items) as u32).collect::<Vec<u32>>(),
        (0..COALESCE_CANDIDATES).map(|c| ((c * 3 + i) % l.n_items) as u32).collect::<Vec<u32>>(),
    )
}

fn engine_cfg(threads: usize, coalesce_max: usize) -> EngineConfig {
    EngineConfig::builder()
        .threads(threads)
        .max_seq(MAX_SEQ)
        .top_k(10)
        .queue_capacity(1024)
        .coalesce_max(coalesce_max)
        .build()
        .expect("valid config")
}

/// Users in the stateful (stored-history) scenario. Small enough that the
/// round-robin re-visits every user several times per measurement — the
/// view-cache's steady state — and far under `cache_entries`.
const STORED_USERS: usize = 64;

/// The per-user history the stateful scenario stores (and the inline
/// baseline carries on every request).
fn user_history(u: usize, l: &FeatureLayout) -> Vec<u32> {
    (0..MAX_SEQ).map(|j| ((u * 7 + j) % l.n_items) as u32).collect()
}

/// Candidate slate for stateful-scenario request `i` (same shape as the
/// classic workload's slates).
fn stored_candidates(i: usize, l: &FeatureLayout) -> Vec<u32> {
    (0..CANDIDATES).map(|c| ((c * 3 + i) % l.n_items) as u32).collect()
}

fn request_batch(l: &FeatureLayout) -> Batch {
    expand_request(&request(0, l), l, MAX_SEQ).expect("valid request")
}

/// Criterion: single-request scoring latency, frozen vs. graph-per-request.
fn bench_single_request(c: &mut Criterion) {
    let l = layout();
    let batch = request_batch(&l);
    let (model, ps) = build_model();
    let frozen = FrozenSeqFm::freeze(&model, &ps);
    let frozen_fast = FrozenSeqFm::freeze(&model, &ps).with_precision(ScorerPrecision::Fast);
    let graph = GraphScorer::new(model, ps);

    let mut group = c.benchmark_group(format!("serve_1req_{CANDIDATES}cand_d{D}"));
    group.sample_size(20);
    let mut scratch = Scratch::new();
    group.bench_function("frozen", |b| {
        b.iter(|| std::hint::black_box(frozen.score(&batch, &mut scratch)[0]));
    });
    group.bench_function("frozen_fast", |b| {
        b.iter(|| std::hint::black_box(frozen_fast.score(&batch, &mut scratch)[0]));
    });
    group.bench_function("graph_per_request", |b| {
        b.iter(|| std::hint::black_box(graph.score(&batch, &mut scratch)[0]));
    });
    group.finish();
}

/// Criterion: engine round-trip throughput at 1 and 4 worker threads
/// (per-request dispatch: coalescing off).
fn bench_engine_throughput(c: &mut Criterion) {
    let l = layout();
    let (model, ps) = build_model();
    let frozen = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let requests: Vec<ScoreRequest> = (0..64).map(|i| request(i, &l)).collect();

    let mut group = c.benchmark_group("serve_engine_64req");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let engine =
            Engine::new(Arc::clone(&frozen), l, engine_cfg(threads, 1)).expect("valid config");
        group.bench_function(format!("{threads}thread"), |b| {
            b.iter(|| {
                let pending: Vec<_> = requests
                    .iter()
                    .map(|r| engine.submit(r.clone()).expect("under capacity"))
                    .collect();
                for p in pending {
                    p.wait().expect("valid request");
                }
            });
        });
    }
    group.finish();
}

/// Criterion: the coalescing scenario — a shared-history burst through one
/// worker, per-request dispatch vs. coalesced super-batches.
fn bench_engine_coalescing(c: &mut Criterion) {
    let l = layout();
    let (model, ps) = build_model();
    let frozen = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let requests: Vec<ScoreRequest> = (0..64).map(|i| shared_history_request(i, &l)).collect();

    let mut group = c.benchmark_group("serve_engine_coalesce_64req_shared_history");
    group.sample_size(10);
    for coalesce_max in [1usize, 16] {
        let engine =
            Engine::new(Arc::clone(&frozen), l, engine_cfg(1, coalesce_max)).expect("valid config");
        group.bench_function(format!("coalesce{coalesce_max}"), |b| {
            b.iter(|| {
                let pending: Vec<_> = requests
                    .iter()
                    .map(|r| engine.submit(r.clone()).expect("under capacity"))
                    .collect();
                for p in pending {
                    p.wait().expect("valid request");
                }
            });
        });
    }
    group.finish();
}

fn median(durations: &mut [Duration]) -> Duration {
    durations.sort_unstable();
    durations[durations.len() / 2]
}

/// Hand-timed measurements persisted to `BENCH_serving.json`.
///
/// Skipped when a benchmark filter is passed (`cargo bench --bench serving
/// -- frozen`): iterating on one criterion group should neither pay for the
/// full measurement sweep nor overwrite the recorded numbers with a partial
/// run.
fn emit_serving_json(_c: &mut Criterion) {
    if std::env::args().skip(1).any(|a| !a.starts_with('-')) {
        println!("benchmark filter given — skipping BENCH_serving.json emission");
        return;
    }
    let l = layout();
    let batch = request_batch(&l);
    let (model, ps) = build_model();
    let frozen_shared = Arc::new(FrozenSeqFm::freeze(&model, &ps));
    let frozen = Arc::clone(&frozen_shared);
    let frozen_fast = FrozenSeqFm::freeze(&model, &ps).with_precision(ScorerPrecision::Fast);
    let graph = GraphScorer::new(model, ps);
    let mut scratch = Scratch::new();

    let p50_of = |f: &mut dyn FnMut(), iters: usize| -> Duration {
        for _ in 0..10 {
            f(); // warm-up
        }
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            f();
            samples.push(t.elapsed());
        }
        median(&mut samples)
    };
    let frozen_p50 = p50_of(
        &mut || {
            std::hint::black_box(frozen.score(&batch, &mut scratch)[0]);
        },
        200,
    );
    let frozen_fast_p50 = p50_of(
        &mut || {
            std::hint::black_box(frozen_fast.score(&batch, &mut scratch)[0]);
        },
        200,
    );
    let graph_p50 = p50_of(
        &mut || {
            std::hint::black_box(graph.score(&batch, &mut scratch)[0]);
        },
        60,
    );
    let speedup = graph_p50.as_secs_f64() / frozen_p50.as_secs_f64();
    let fast_speedup = frozen_p50.as_secs_f64() / frozen_fast_p50.as_secs_f64();
    // Host-speed canary: a fixed, deterministic chunk of scalar FMA work,
    // timed the same way as the latencies above. Absolute latencies in this
    // file are only comparable between records taken on comparably fast
    // hosts; when two records disagree, compare their `calib_spin_us` first
    // — a 2× swing there means the host changed, not the code.
    let calib_spin = p50_of(
        &mut || {
            let mut acc = 0.0f32;
            let mut x = 1.000_000_1f32;
            for _ in 0..2_000_000u32 {
                acc = x.mul_add(1.000_000_1, acc);
                x = std::hint::black_box(x);
            }
            std::hint::black_box(acc);
        },
        30,
    );

    let n = 256usize;
    let run = |engine: &Engine, req_of: &dyn Fn(usize) -> ScoreRequest| -> f64 {
        // Warm the workers' scratches (and the slot free list) first.
        for i in 0..engine.threads() * 2 {
            engine.score(req_of(i)).expect("valid request");
        }
        let t = Instant::now();
        let pending: Vec<_> =
            (0..n).map(|i| engine.submit(req_of(i)).expect("under capacity")).collect();
        for p in pending {
            p.wait().expect("valid request");
        }
        n as f64 / t.elapsed().as_secs_f64()
    };
    // Distinct-history workload, per-request dispatch (the PR-over-PR
    // engine baseline).
    let rps_at = |threads: usize| -> f64 {
        let engine =
            Engine::new(Arc::clone(&frozen_shared), l, engine_cfg(threads, 1)).expect("valid");
        run(&engine, &|i| request(i, &l))
    };
    let rps1 = rps_at(1);
    let rps4 = rps_at(4);
    // The coalescing scenario: a shared-history burst of small requests
    // through ONE worker, coalescing off vs. on — the off number isolates
    // what batching at admission buys, independent of threads or workload
    // shape. (Same requests, same worker count; only `coalesce_max`
    // changes.)
    let rps_shared_at = |coalesce_max: usize| -> f64 {
        let engine =
            Engine::new(Arc::clone(&frozen_shared), l, engine_cfg(1, coalesce_max)).expect("valid");
        run(&engine, &|i| shared_history_request(i, &l))
    };
    let rps_coalesce_off = rps_shared_at(1);
    let rps_coalesced = rps_shared_at(32);
    // Deadline-aware coalescing: same burst, same single worker, but a
    // short-drain worker polls ≤ 20µs for stragglers before scoring —
    // measuring what the linger budget buys in batch depth on top of
    // opportunistic draining (and what its bounded latency tax costs).
    let rps_linger = {
        let cfg = EngineConfig::builder()
            .threads(1)
            .max_seq(MAX_SEQ)
            .top_k(10)
            .queue_capacity(1024)
            .coalesce_max(32)
            .linger_us(20)
            .build()
            .expect("valid config");
        let engine = Engine::new(Arc::clone(&frozen_shared), l, cfg).expect("valid");
        run(&engine, &|i| shared_history_request(i, &l))
    };
    // The stateful scenario: the same traffic twice — once as stored
    // `(user, candidates)` requests against a warmed store (view cache
    // hot after the first visit per user), once with the identical
    // histories inlined in every request. One worker, coalescing off, so
    // the delta isolates what the store + view cache buy per request.
    let stored_engine =
        Engine::new(Arc::clone(&frozen_shared), l, engine_cfg(1, 1)).expect("valid");
    let n_append = STORED_USERS * MAX_SEQ;
    let t = Instant::now();
    for u in 0..STORED_USERS {
        for item in user_history(u, &l) {
            stored_engine.append_event(u as u32, item).expect("valid ids");
        }
    }
    let store_append_rps = n_append as f64 / t.elapsed().as_secs_f64();
    let rps_stored_cached = run(&stored_engine, &|i| {
        ScoreRequest::stored((i % STORED_USERS) as u32, stored_candidates(i % 8, &l))
    });
    let cache_stats = stored_engine.cache_stats();
    let inline_engine =
        Engine::new(Arc::clone(&frozen_shared), l, engine_cfg(1, 1)).expect("valid");
    let rps_stored_inline = run(&inline_engine, &|i| {
        ScoreRequest::inline(
            (i % STORED_USERS) as u32,
            user_history(i % STORED_USERS, &l),
            stored_candidates(i % 8, &l),
        )
    });
    // Scaling numbers are only meaningful relative to the host: a 1-CPU
    // container physically cannot show multi-thread speedup.
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"config\": {{ \"d\": {D}, \"max_seq\": {MAX_SEQ}, \"candidates_per_request\": {CANDIDATES}, \"engine_requests\": 256, \"coalesce_max\": 32, \"coalesce_candidates_per_request\": {COALESCE_CANDIDATES}, \"stored_users\": {STORED_USERS} }},\n  \"host_cpus\": {host_cpus},\n  \"calib_spin_us\": {:.1},\n  \"frozen_p50_latency_us\": {:.1},\n  \"frozen_fast_p50_latency_us\": {:.1},\n  \"frozen_fast_vs_exact_speedup\": {:.2},\n  \"graph_p50_latency_us\": {:.1},\n  \"frozen_vs_graph_speedup\": {:.2},\n  \"engine_rps_1_thread\": {:.0},\n  \"engine_rps_4_threads\": {:.0},\n  \"engine_rps_coalesce_off\": {:.0},\n  \"engine_rps_coalesced\": {:.0},\n  \"engine_rps_coalesced_linger_20us\": {:.0},\n  \"engine_rps_stored_cached\": {:.0},\n  \"engine_rps_stored_inline_baseline\": {:.0},\n  \"view_cache_hit_rate\": {:.3},\n  \"store_append_rps\": {:.0}\n}}\n",
        calib_spin.as_secs_f64() * 1e6,
        frozen_p50.as_secs_f64() * 1e6,
        frozen_fast_p50.as_secs_f64() * 1e6,
        fast_speedup,
        graph_p50.as_secs_f64() * 1e6,
        speedup,
        rps1,
        rps4,
        rps_coalesce_off,
        rps_coalesced,
        rps_linger,
        rps_stored_cached,
        rps_stored_inline,
        cache_stats.hit_rate(),
        store_append_rps,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("== BENCH_serving.json ==\n{json}");
}

criterion_group!(
    benches,
    bench_single_request,
    bench_engine_throughput,
    bench_engine_coalescing,
    emit_serving_json
);
criterion_main!(benches);
