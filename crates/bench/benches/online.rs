//! Online-learning benchmarks: incremental-trainer ingest throughput, the
//! latency of an atomic model hot-swap (with and without a catalog-index
//! rebuild riding on it), the post-swap view-cache re-warm tax, and engine
//! throughput while models swap continuously underneath live traffic.
//!
//! Besides the criterion group, this bench writes `BENCH_online.json` at
//! the repository root so the online-serving trajectory is recorded PR
//! over PR:
//!
//! ```text
//! cargo bench -p seqfm-bench --bench online
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{FrozenSeqFm, SeqFm, SeqFmConfig};
use seqfm_data::FeatureLayout;
use seqfm_serve::{CatalogIndex, Engine, EngineConfig, ScoreRequest};
use seqfm_train::{OnlineConfig, OnlineTrainer};
use std::sync::Arc;
use std::time::{Duration, Instant};

const D: usize = 32;
const MAX_SEQ: usize = 20;
const CANDIDATES: usize = 50;

fn layout() -> FeatureLayout {
    FeatureLayout { n_users: 200, n_items: 2_000 }
}

fn build_model() -> (SeqFm, ParamStore) {
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = SeqFmConfig { d: D, max_seq: MAX_SEQ, ..Default::default() };
    let model = SeqFm::new(&mut ps, &mut rng, &layout(), cfg);
    (model, ps)
}

fn online_cfg() -> OnlineConfig {
    OnlineConfig { batch_size: 16, publish_every: 8, max_seq: MAX_SEQ, ..Default::default() }
}

fn stream(n: usize, l: &FeatureLayout) -> Vec<(u32, u32)> {
    (0..n).map(|i| ((i % l.n_users) as u32, ((i * 13 + 7) % l.n_items) as u32)).collect()
}

fn request(i: usize, l: &FeatureLayout) -> ScoreRequest {
    ScoreRequest::inline(
        (i % l.n_users) as u32,
        (0..MAX_SEQ).map(|j| ((i * 7 + j) % l.n_items) as u32).collect::<Vec<u32>>(),
        (0..CANDIDATES).map(|c| ((c * 3 + i) % l.n_items) as u32).collect::<Vec<u32>>(),
    )
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

/// Criterion group: the steady-state ingest step (one full minibatch's
/// worth of events through BPR + sparse Adam).
fn bench_ingest_step(c: &mut Criterion) {
    let l = layout();
    let (model, ps) = build_model();
    let mut trainer = OnlineTrainer::new(model, ps, l, online_cfg());
    let events = stream(16, &l);
    let mut group = c.benchmark_group("online_trainer");
    group.bench_function("ingest_minibatch_16", |b| {
        b.iter(|| std::hint::black_box(trainer.ingest(&events).len()))
    });
    group.finish();
}

/// Hand-timed measurements persisted to `BENCH_online.json`. Skipped when
/// a benchmark filter is passed (see the serving bench for the rationale).
fn emit_online_json(_c: &mut Criterion) {
    if std::env::args().skip(1).any(|a| !a.starts_with('-')) {
        println!("benchmark filter given — skipping BENCH_online.json emission");
        return;
    }
    let l = layout();

    // Host-speed canary: a fixed, deterministic chunk of scalar FMA work,
    // timed like the latencies below. When two records of this file
    // disagree, compare their `calib_spin_us` first — a 2× swing there
    // means the host changed, not the code.
    let calib_spin = {
        let mut samples = Vec::with_capacity(30);
        for it in 0..33 {
            let t = Instant::now();
            let mut acc = 0.0f32;
            let mut x = 1.000_000_1f32;
            for _ in 0..2_000_000u32 {
                acc = x.mul_add(1.000_000_1, acc);
                x = std::hint::black_box(x);
            }
            std::hint::black_box(acc);
            if it >= 3 {
                samples.push(t.elapsed());
            }
        }
        median(&mut samples)
    };

    // Ingest throughput: events/sec through minibatching + BPR +
    // per-row Adam (publishing included at the configured cadence).
    let (model, ps) = build_model();
    let mut trainer = OnlineTrainer::new(model, ps, l, online_cfg());
    let warm = stream(256, &l);
    trainer.ingest(&warm);
    let events = stream(2_048, &l);
    let t = Instant::now();
    let published = trainer.ingest(&events).len();
    let ingest_eps = events.len() as f64 / t.elapsed().as_secs_f64();
    assert!(published > 0, "the timed stream must cross a publish boundary");

    // Swap latency: publish_frozen on a quiet engine — scoring slot only,
    // then with a catalog-index rebuild riding on the publish.
    let (model, ps) = build_model();
    let frozen = || FrozenSeqFm::freeze(&model, &ps);
    let shared = Arc::new(frozen());
    let engine_cfg =
        EngineConfig::builder().threads(2).max_seq(MAX_SEQ).build().expect("valid config");
    // The timed window is `publish_frozen` alone: with an index attached,
    // the rebuild happens on the background builder thread, so the caller
    // pays slot-swap time, not rebuild time. Each iteration settles the
    // builder *outside* the timed window (`wait_for_index` is a no-op on
    // the index-less engine) so iterations don't queue behind each other.
    let p50_swap = |engine: &Engine, iters: usize| -> Duration {
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let m = frozen();
            let t = Instant::now();
            engine.publish_frozen(m);
            samples.push(t.elapsed());
            let _ = engine.wait_for_index();
        }
        median(&mut samples)
    };
    let plain_engine = Engine::new_frozen(frozen(), l, engine_cfg).expect("valid");
    let swap_p50 = p50_swap(&plain_engine, 30);
    let indexed_engine = Engine::new_frozen(frozen(), l, engine_cfg)
        .expect("valid")
        .with_catalog_index(Arc::new(CatalogIndex::build(Arc::clone(&shared), l, 512)));
    let swap_with_index_p50 = p50_swap(&indexed_engine, 30);

    // Cache re-warm tax: p50 stored-history request latency with the view
    // cache hot vs. the first post-swap visit per user (every view must be
    // rebuilt under the new epoch).
    let warm_engine = Engine::new_frozen(frozen(), l, engine_cfg).expect("valid");
    for (u, i) in stream(l.n_users * 4, &l) {
        warm_engine.append_event(u, i).expect("valid ids");
    }
    let users = 64usize;
    let p50_stored = |engine: &Engine| -> Duration {
        let mut samples = Vec::with_capacity(users);
        for u in 0..users {
            let cands: Vec<u32> =
                (0..CANDIDATES).map(|c| ((c * 3 + u) % l.n_items) as u32).collect();
            let t = Instant::now();
            engine.score_stored(u as u32, cands).expect("valid request");
            samples.push(t.elapsed());
        }
        median(&mut samples)
    };
    let _cold = p50_stored(&warm_engine); // populate the cache
    let hit_p50 = p50_stored(&warm_engine); // steady state: every view cached
    warm_engine.publish_frozen(frozen());
    let rewarm_p50 = p50_stored(&warm_engine); // every view stale by epoch

    // Continuous-swap throughput: scoring threads run flat out while the
    // main thread publishes as fast as it can; compare against the same
    // engine left alone. Non-disruptiveness shows up as a small ratio.
    let rps_under = |swaps: usize| -> (f64, usize) {
        let engine = Arc::new(Engine::new(Arc::clone(&shared), l, engine_cfg).expect("valid"));
        let n = 512usize;
        for i in 0..engine.threads() * 2 {
            engine.score(request(i, &l)).expect("valid request");
        }
        let scorer = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let t = Instant::now();
                for i in 0..n {
                    engine.score(request(i, &l)).expect("valid request");
                }
                n as f64 / t.elapsed().as_secs_f64()
            })
        };
        let mut done = 0usize;
        for _ in 0..swaps {
            engine.publish_frozen(frozen());
            done += 1;
        }
        (scorer.join().expect("scorer thread"), done)
    };
    let (rps_quiet, _) = rps_under(0);
    let (rps_swapping, swaps_done) = rps_under(64);

    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"online\",\n  \"config\": {{ \"d\": {D}, \"max_seq\": {MAX_SEQ}, \"n_items\": {}, \"batch_size\": 16, \"publish_every\": 8, \"index_block\": 512 }},\n  \"host_cpus\": {host_cpus},\n  \"calib_spin_us\": {:.1},\n  \"trainer_ingest_events_per_sec\": {:.0},\n  \"swap_p50_latency_us\": {:.1},\n  \"swap_with_index_rebuild_p50_latency_us\": {:.1},\n  \"stored_p50_cache_hot_us\": {:.1},\n  \"stored_p50_post_swap_rewarm_us\": {:.1},\n  \"engine_rps_quiet\": {:.0},\n  \"engine_rps_under_continuous_swaps\": {:.0},\n  \"swaps_during_measurement\": {}\n}}\n",
        l.n_items,
        calib_spin.as_secs_f64() * 1e6,
        ingest_eps,
        swap_p50.as_secs_f64() * 1e6,
        swap_with_index_p50.as_secs_f64() * 1e6,
        hit_p50.as_secs_f64() * 1e6,
        rewarm_p50.as_secs_f64() * 1e6,
        rps_quiet,
        rps_swapping,
        swaps_done,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_online.json");
    std::fs::write(path, &json).expect("write BENCH_online.json");
    println!("== BENCH_online.json ==\n{json}");
}

criterion_group!(benches, bench_ingest_step, emit_online_json);
criterion_main!(benches);
