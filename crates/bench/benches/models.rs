//! Criterion benchmarks of full model training steps (forward + backward +
//! Adam) for representative models of each family — the practical per-step
//! cost behind the paper's Fig. 4 efficiency discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::{Graph, ParamStore};
use seqfm_baselines::registry::{build, ModelKind};
use seqfm_data::{build_instance, Batch, FeatureLayout};
use seqfm_nn::{Adam, Optimizer};

fn demo_batch(layout: &FeatureLayout, batch: usize, max_seq: usize) -> Batch {
    let insts: Vec<_> = (0..batch)
        .map(|i| {
            let user = (i % layout.n_users) as u32;
            let cand = (i % layout.n_items) as u32;
            let hist: Vec<u32> = (0..max_seq).map(|j| ((i + j) % layout.n_items) as u32).collect();
            build_instance(layout, user, cand, &hist, max_seq, 1.0)
        })
        .collect();
    Batch::try_from_instances(&insts).expect("valid batch")
}

fn bench_train_step(c: &mut Criterion) {
    let layout = FeatureLayout { n_users: 200, n_items: 500 };
    let max_seq = 20;
    let batch = demo_batch(&layout, 128, max_seq);
    let kinds = [
        ModelKind::Fm,
        ModelKind::Nfm,
        ModelKind::SasRec,
        ModelKind::XDeepFm,
        ModelKind::Rrn,
        ModelKind::SeqFm,
    ];

    let mut group = c.benchmark_group("train_step_batch128_d32");
    group.sample_size(10);
    for kind in kinds {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let mut ps = ParamStore::new();
                let mut rng = StdRng::seed_from_u64(1);
                let model = build(kind, &mut ps, &mut rng, &layout, 32, max_seq);
                let mut opt = Adam::new(1e-3);
                b.iter(|| {
                    let mut g = Graph::new();
                    let y = model.forward(&mut g, &ps, &batch, true, &mut rng);
                    let sq = g.square(y);
                    let loss = g.mean_all(sq);
                    ps.zero_grads();
                    g.backward(loss, &mut ps);
                    opt.step(&mut ps).expect("finite");
                });
            },
        );
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let layout = FeatureLayout { n_users: 200, n_items: 500 };
    let max_seq = 20;
    let batch = demo_batch(&layout, 256, max_seq);
    let mut group = c.benchmark_group("inference_batch256_d32");
    group.sample_size(10);
    for kind in [ModelKind::Fm, ModelKind::SeqFm] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let mut ps = ParamStore::new();
                let mut rng = StdRng::seed_from_u64(1);
                let model = build(kind, &mut ps, &mut rng, &layout, 32, max_seq);
                b.iter(|| {
                    let mut g = Graph::new();
                    let y = model.forward(&mut g, &ps, &batch, false, &mut rng);
                    std::hint::black_box(g.value(y).sum());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_train_step, bench_inference);
criterion_main!(benches);
