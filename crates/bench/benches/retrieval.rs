//! Full-catalog retrieval benchmarks: the blocked, upper-bound-pruned
//! `CatalogIndex` scan at catalog sizes from 10k to 1M items.
//!
//! Besides the criterion group, this bench writes `BENCH_retrieval.json`
//! at the repository root (catalog items/sec at 10k/100k/1M, p50 latency
//! of a top-100-of-1M query, measured prune rate, and the blocked-scan
//! speedup over naive one-item-at-a-time scoring) so the retrieval
//! trajectory is recorded PR over PR:
//!
//! ```text
//! cargo bench -p seqfm-bench --bench retrieval
//! ```
//!
//! The item linear weights are reshaped into a popularity-like skew (hot
//! head, long negative tail) before freezing — the catalog regime where
//! the upper-bound prune actually fires. Pruned results stay bit-identical
//! to brute force by construction (asserted here on every measured run).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{FrozenSeqFm, HistoryView, ScorerPrecision, Scratch, SeqFm, SeqFmConfig};
use seqfm_data::{build_instance, FeatureLayout};
use seqfm_retrieval::CatalogIndex;
use std::sync::Arc;
use std::time::{Duration, Instant};

const D: usize = 32;
const MAX_SEQ: usize = 10;
/// Catalog block: measured optimum on this scan. Per-block q/k/v/score
/// workspaces grow with the block (`block × (n° + n˙) × d × 3` floats), so
/// blocks past ~100 items start spilling L2 and get *slower* — 64 keeps
/// the whole per-block working set cache-resident while still amortising
/// batch rebuild and dispatch, and the finer granularity raises the prune
/// rate for free.
const BLOCK: usize = 64;
const K: usize = 100;

/// A frozen model over `n_items`, with the item linear table reshaped into
/// a popularity skew (`2 − 24·√rank-fraction`): a hot head a long tail
/// never out-scores, so the lin-sorted blocked scan can prune the tail.
fn build_model(n_items: usize) -> (Arc<FrozenSeqFm>, FeatureLayout) {
    build_model_at(n_items, ScorerPrecision::Exact)
}

fn build_model_at(n_items: usize, precision: ScorerPrecision) -> (Arc<FrozenSeqFm>, FeatureLayout) {
    let layout = FeatureLayout { n_users: 100, n_items };
    let cfg = SeqFmConfig { d: D, max_seq: MAX_SEQ, dropout: 0.0, ..Default::default() };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(17);
    let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
    let id = ps.id_of("seqfm.w_static.table").expect("item linear table");
    let w = ps.value_mut(id).data_mut();
    for c in 0..n_items {
        let r = (c as f32 + 1.0) / n_items as f32;
        w[layout.n_users + c] = 2.0 - 24.0 * r.sqrt();
    }
    (Arc::new(FrozenSeqFm::freeze(&model, &ps).with_precision(precision)), layout)
}

fn query_view(model: &FrozenSeqFm, layout: &FeatureLayout, user: u32) -> HistoryView {
    let hist: Vec<u32> =
        (0..MAX_SEQ).map(|j| ((user as usize * 13 + j * 7) % layout.n_items) as u32).collect();
    let inst = build_instance(layout, user, 0, &hist, MAX_SEQ, 0.0);
    model.history_view(&inst.dyn_idx, &mut Scratch::new())
}

fn median(durations: &mut [Duration]) -> Duration {
    durations.sort_unstable();
    durations[durations.len() / 2]
}

/// p50 of `iters` timed runs of `f`, after `warm` warm-up runs.
fn p50_of(mut f: impl FnMut(), warm: usize, iters: usize) -> Duration {
    for _ in 0..warm {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed());
    }
    median(&mut samples)
}

/// Criterion: pruned vs. brute-force retrieval over a 10k-item catalog.
fn bench_retrieval_10k(c: &mut Criterion) {
    let (model, layout) = build_model(10_000);
    let index = CatalogIndex::build(Arc::clone(&model), layout, BLOCK);
    let view = query_view(&model, &layout, 7);

    let mut group = c.benchmark_group(format!("retrieval_top{K}_of_10k_d{D}"));
    group.sample_size(10);
    group.bench_function("pruned", |b| {
        b.iter(|| std::hint::black_box(index.retrieve(7, &view, K).expect("valid")));
    });
    group.bench_function("brute", |b| {
        b.iter(|| std::hint::black_box(index.retrieve_brute(7, &view, K).expect("valid")));
    });
    group.finish();
}

/// Hand-timed measurements persisted to `BENCH_retrieval.json`.
///
/// Skipped when a benchmark filter is passed (`cargo bench --bench
/// retrieval -- pruned`): iterating on one criterion group should neither
/// pay for the 1M-item sweep nor overwrite the recorded numbers with a
/// partial run.
fn emit_retrieval_json(_c: &mut Criterion) {
    if std::env::args().skip(1).any(|a| !a.starts_with('-')) {
        println!("benchmark filter given — skipping BENCH_retrieval.json emission");
        return;
    }

    // Host-speed canary: a fixed, deterministic chunk of scalar FMA work,
    // timed the same way as the latencies below. Absolute numbers in this
    // file are only comparable between records taken on comparably fast
    // hosts; when two records disagree, compare their `calib_spin_us` first
    // — a 2× swing there means the host changed, not the code.
    let calib_spin = p50_of(
        || {
            let mut acc = 0.0f32;
            let mut x = 1.000_000_1f32;
            for _ in 0..2_000_000u32 {
                acc = x.mul_add(1.000_000_1, acc);
                x = std::hint::black_box(x);
            }
            std::hint::black_box(acc);
        },
        3,
        30,
    );

    // items/sec of the pruned scan at each catalog size (the whole catalog
    // counts: skipped blocks are work *avoided*, not work unmeasured), plus
    // the measured prune/skip rates. Every timed run is checked against
    // brute force — a benchmark that quietly returned wrong ids would be
    // worse than useless. The steady state being measured is the *warm*
    // index: the first retrieval seeds the observed-max scan statistics,
    // the warm-up runs inside `p50_of` saturate them, so the timed runs see
    // the statistics-steered two-phase scan a serving process would.
    let mut items_per_sec = Vec::new();
    let mut p50_1m = Duration::ZERO;
    let mut prune_rate_1m = 0.0f64;
    let mut screen_rate_1m = 0.0f64;
    let mut blocks_scored_1m = 0usize;
    let mut repair_blocks_1m = 0usize;
    let mut n_blocks_1m = 0usize;
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let (model, layout) = build_model(n);
        let index = CatalogIndex::build(Arc::clone(&model), layout, BLOCK);
        let view = query_view(&model, &layout, 7);
        let brute = index.retrieve_brute(7, &view, K).expect("valid");
        let pruned = index.retrieve(7, &view, K).expect("valid");
        assert_eq!(
            brute.items.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>(),
            pruned.items.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>(),
            "pruned retrieval diverged from brute force at n = {n}"
        );
        let iters = if n >= 1_000_000 { 5 } else { 20 };
        let p50 = p50_of(
            || {
                std::hint::black_box(index.retrieve(7, &view, K).expect("valid"));
            },
            2,
            iters,
        );
        items_per_sec.push(n as f64 / p50.as_secs_f64());
        // The reported work accounting comes from one more fully warm run —
        // the same steady state the timed loop measured — and that run is
        // parity-checked too (warm statistics must not cost a single bit).
        let warm = index.retrieve(7, &view, K).expect("valid");
        assert_eq!(
            brute.items.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>(),
            warm.items.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>(),
            "warm pruned retrieval diverged from brute force at n = {n}"
        );
        if n == 1_000_000 {
            p50_1m = p50;
            prune_rate_1m = warm.prune_rate();
            screen_rate_1m = warm.screen_rate();
            blocks_scored_1m = warm.blocks_scored;
            repair_blocks_1m = warm.blocks_repaired;
            n_blocks_1m = index.n_blocks();
        }
        println!(
            "n = {n}: p50 {:.2} ms, warm prune rate {:.3}, screen rate {:.3}, \
             blocks scored {} (+{} repaired) of {}",
            p50.as_secs_f64() * 1e3,
            warm.prune_rate(),
            warm.screen_rate(),
            warm.blocks_scored,
            warm.blocks_repaired,
            index.n_blocks()
        );
    }

    // The fast profile over the same 1M catalog: same index shape, same
    // bit-identical pruned-vs-brute contract (quantized envelopes add zero
    // width — both sides read the effective weights θ′).
    let (fast_model, fast_layout) = build_model_at(1_000_000, ScorerPrecision::Fast);
    let fast_index = CatalogIndex::build(Arc::clone(&fast_model), fast_layout, BLOCK);
    let fast_view = query_view(&fast_model, &fast_layout, 7);
    let fast_brute = fast_index.retrieve_brute(7, &fast_view, K).expect("valid");
    let fast_pruned = fast_index.retrieve(7, &fast_view, K).expect("valid");
    assert_eq!(
        fast_brute.items.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>(),
        fast_pruned.items.iter().map(|s| (s.item, s.score.to_bits())).collect::<Vec<_>>(),
        "fast pruned retrieval diverged from fast brute force"
    );
    let fast_p50_1m = p50_of(
        || {
            std::hint::black_box(fast_index.retrieve(7, &fast_view, K).expect("valid"));
        },
        2,
        5,
    );
    let items_per_sec_1m_fast = 1_000_000f64 / fast_p50_1m.as_secs_f64();
    println!(
        "n = 1000000 [fast]: p50 {:.2} ms, prune rate {:.3}, screen rate {:.3}",
        fast_p50_1m.as_secs_f64() * 1e3,
        fast_pruned.prune_rate(),
        fast_pruned.screen_rate()
    );

    // Naive baseline: one item per block means one batch build, one matmul
    // dispatch, and one top-K push *per item* — the per-item scoring loop a
    // retrieval layer exists to avoid. Same model, same exact results.
    let (model, layout) = build_model(10_000);
    let naive_index = CatalogIndex::build(Arc::clone(&model), layout, 1);
    let blocked_index = CatalogIndex::build(Arc::clone(&model), layout, BLOCK);
    let view = query_view(&model, &layout, 7);
    let naive_p50 = p50_of(
        || {
            std::hint::black_box(naive_index.retrieve_brute(7, &view, K).expect("valid"));
        },
        1,
        5,
    );
    let blocked_p50 = p50_of(
        || {
            std::hint::black_box(blocked_index.retrieve_brute(7, &view, K).expect("valid"));
        },
        2,
        20,
    );
    let blocked_vs_naive = naive_p50.as_secs_f64() / blocked_p50.as_secs_f64();

    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // `parity_check` records that every timed configuration above asserted
    // bit-identity against brute force before its numbers were written —
    // the asserts panic on divergence, so reaching this line proves it.
    let effective_skip_rate_1m = 1.0 - (blocks_scored_1m as f64 / n_blocks_1m.max(1) as f64);
    let json = format!(
        "{{\n  \"bench\": \"retrieval\",\n  \"config\": {{ \"d\": {D}, \"max_seq\": {MAX_SEQ}, \"block\": {BLOCK}, \"k\": {K} }},\n  \"host_cpus\": {host_cpus},\n  \"calib_spin_us\": {:.1},\n  \"parity_check\": true,\n  \"items_per_sec_10k\": {:.0},\n  \"items_per_sec_100k\": {:.0},\n  \"items_per_sec_1m\": {:.0},\n  \"items_per_sec_1m_fast\": {:.0},\n  \"fast_vs_exact_speedup_1m\": {:.2},\n  \"p50_top100_of_1m_ms\": {:.2},\n  \"prune_rate_1m\": {:.3},\n  \"screen_rate_1m\": {:.3},\n  \"effective_skip_rate_1m\": {:.3},\n  \"blocks_scored_1m\": {blocks_scored_1m},\n  \"repair_blocks_1m\": {repair_blocks_1m},\n  \"n_blocks_1m\": {n_blocks_1m},\n  \"blocked_vs_naive_per_item_speedup_10k\": {:.2}\n}}\n",
        calib_spin.as_secs_f64() * 1e6,
        items_per_sec[0],
        items_per_sec[1],
        items_per_sec[2],
        items_per_sec_1m_fast,
        items_per_sec_1m_fast / items_per_sec[2],
        p50_1m.as_secs_f64() * 1e3,
        prune_rate_1m,
        screen_rate_1m,
        effective_skip_rate_1m,
        blocked_vs_naive,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_retrieval.json");
    std::fs::write(path, &json).expect("write BENCH_retrieval.json");
    println!("== BENCH_retrieval.json ==\n{json}");
}

criterion_group!(benches, bench_retrieval_10k, emit_retrieval_json);
criterion_main!(benches);
