//! Training-path benchmarks: data-parallel minibatch training at 1 and 4
//! workers.
//!
//! Besides the criterion group, this bench writes `BENCH_training.json` at
//! the repository root (training instances/sec at `workers = 1` and
//! `workers = 4`, plus the host's CPU count so the scaling number can be
//! interpreted) so the training-throughput trajectory is recorded PR over
//! PR:
//!
//! ```text
//! cargo bench -p seqfm-bench --bench training
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{train_ranking, SeqFm, SeqFmConfig, TrainConfig};
use seqfm_data::{ranking::RankingConfig, FeatureLayout, LeaveOneOut, NegativeSampler, Scale};

const D: usize = 16;
const MAX_SEQ: usize = 10;
const EPOCHS: usize = 2;

struct Setup {
    split: LeaveOneOut,
    layout: FeatureLayout,
    sampler: NegativeSampler,
    positions: usize,
}

fn setup() -> Setup {
    let mut cfg = RankingConfig::gowalla(Scale::Small);
    cfg.n_users = 64;
    cfg.n_items = 150;
    cfg.min_len = 8;
    cfg.max_len = 16;
    let ds = seqfm_data::ranking::generate(&cfg).expect("generate bench dataset");
    let split = LeaveOneOut::split(&ds);
    let layout = FeatureLayout::of(&ds);
    let seen = (0..ds.n_users).map(|u| split.seen_items(u)).collect();
    let sampler = NegativeSampler::new(ds.n_items, seen);
    let positions = split.train.iter().map(|s| s.len().saturating_sub(1)).sum();
    Setup { split, layout, sampler, positions }
}

fn train_cfg(workers: usize) -> TrainConfig {
    TrainConfig {
        epochs: EPOCHS,
        batch_size: 64,
        lr: 5e-3,
        max_seq: MAX_SEQ,
        seed: 13,
        workers,
        ..Default::default()
    }
}

/// Runs one full training job and returns (instances/sec, final loss).
fn run_once(s: &Setup, workers: usize) -> (f64, f64) {
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = SeqFmConfig { d: D, max_seq: MAX_SEQ, ..Default::default() };
    let model = SeqFm::new(&mut ps, &mut rng, &s.layout, cfg);
    let report =
        train_ranking(&model, &mut ps, &s.split, &s.layout, &s.sampler, &train_cfg(workers));
    let instances = (s.positions * report.epoch_losses.len()) as f64;
    (instances / report.seconds.max(1e-9), report.final_loss())
}

/// Criterion: wall-clock of one training job at 1 and 4 workers.
fn bench_training(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group(format!("train_ranking_d{D}_{}pos", s.positions));
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_function(format!("{workers}workers"), |b| {
            b.iter(|| std::hint::black_box(run_once(&s, workers)));
        });
    }
    group.finish();
}

/// Hand-timed measurements persisted to `BENCH_training.json`.
///
/// Skipped when a benchmark filter is passed, so iterating on one group
/// neither pays for the sweep nor overwrites the recorded numbers.
fn emit_training_json(_c: &mut Criterion) {
    if std::env::args().skip(1).any(|a| !a.starts_with('-')) {
        println!("benchmark filter given — skipping BENCH_training.json emission");
        return;
    }
    let s = setup();
    // Warm-up (pool spin-up, allocator), then measure.
    let _ = run_once(&s, 1);
    let (ips1, loss1) = run_once(&s, 1);
    let _ = run_once(&s, 4);
    let (ips4, loss4) = run_once(&s, 4);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let json = format!(
        "{{\n  \"bench\": \"training\",\n  \"config\": {{ \"d\": {D}, \"max_seq\": {MAX_SEQ}, \"epochs\": {EPOCHS}, \"positions_per_epoch\": {}, \"task\": \"ranking\" }},\n  \"host_cpus\": {host_cpus},\n  \"instances_per_sec_1_worker\": {:.0},\n  \"instances_per_sec_4_workers\": {:.0},\n  \"final_loss_1_worker\": {:.4},\n  \"final_loss_4_workers\": {:.4}\n}}\n",
        s.positions, ips1, ips4, loss1, loss4,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_training.json");
    std::fs::write(path, &json).expect("write BENCH_training.json");
    println!("== BENCH_training.json ==\n{json}");
}

criterion_group!(benches, bench_training, emit_training_json);
criterion_main!(benches);
