//! Criterion micro-benchmarks for the tensor kernels that dominate SeqFM's
//! runtime — now centred on the cache-blocked **tiled** matmul paths vs.
//! their naive references — plus a hand-timed sweep persisted to
//! `BENCH_kernels.json` at the repository root:
//!
//! * single-core naive vs. tiled matmul throughput (GFLOP/s) at the serving
//!   shapes `d = 32` and `d = 64` (candidate-expansion row counts);
//! * fused [`attention_into`] latency at serving geometry;
//! * steady-state heap **allocations per scored request** through
//!   `FrozenSeqFm::score_into`, counted by a global allocator wrapper
//!   (expected: 0 — the workspace-arena guarantee).
//!
//! ```text
//! cargo bench -p seqfm-bench --bench kernels
//! ```
//!
//! `SEQFM_WORKERS` is pinned to 1 before the first kernel dispatch so every
//! number is a **single-core** measurement (the tiled-vs-naive ratio is
//! exactly what each pool worker gains).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::ParamStore;
use seqfm_core::{FrozenSeqFm, Scorer, Scratch, SeqFm, SeqFmConfig};
use seqfm_data::{build_instance, Batch, FeatureLayout};
use seqfm_tensor::kernels::matmul::{fast, naive, tiled};
use seqfm_tensor::testutil::CountingAlloc;
use seqfm_tensor::{attention_into, AttnMask, Shape, Tensor};
use std::time::Instant;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Pins the kernel pool to one worker (read once per process, so this must
/// run before the first dispatch).
fn pin_single_core() {
    std::env::set_var("SEQFM_WORKERS", "1");
}

fn rand(shape: Shape, seed: &mut u64) -> Tensor {
    seqfm_tensor::testutil::rand_tensor(shape, seed)
}

/// Serving-shape matmuls: `m` candidate-expansion rows, `d × d` weights.
const SERVING_SHAPES: [(usize, usize); 2] = [(2048, 32), (2048, 64)];

fn bench_matmul_naive_vs_tiled(c: &mut Criterion) {
    pin_single_core();
    let mut group = c.benchmark_group("matmul_nn_serving");
    group.sample_size(20);
    for &(m, d) in &SERVING_SHAPES {
        let mut seed = 1;
        let a = rand(Shape::d2(m, d), &mut seed);
        let b = rand(Shape::d2(d, d), &mut seed);
        let mut out = vec![0.0f32; m * d];
        group.bench_with_input(BenchmarkId::new("naive", d), &d, |bench, _| {
            bench.iter(|| {
                out.fill(0.0);
                naive::matmul_nn_into(a.data(), b.data(), &mut out, m, d, d);
                std::hint::black_box(out[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("tiled", d), &d, |bench, _| {
            bench.iter(|| {
                out.fill(0.0);
                tiled::matmul_nn_into(a.data(), b.data(), &mut out, m, d, d);
                std::hint::black_box(out[0])
            });
        });
    }
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    pin_single_core();
    // Fused attention for a typical SeqFM batch: [batch, n° + n˙, d].
    let mut group = c.benchmark_group("attention_into");
    group.sample_size(20);
    for &(batch, n, d) in &[(128usize, 22usize, 32usize), (128, 22, 64)] {
        let mut seed = 2;
        let q = rand(Shape::d3(batch, n, d), &mut seed);
        let k = rand(Shape::d3(batch, n, d), &mut seed);
        let v = rand(Shape::d3(batch, n, d), &mut seed);
        let mask = AttnMask::causal(n);
        let scale = 1.0 / (d as f32).sqrt();
        let mut scores = vec![0.0f32; batch * n * n];
        let mut out = vec![0.0f32; batch * n * d];
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b{batch}_n{n}_d{d}")),
            &n,
            |bench, _| {
                bench.iter(|| {
                    attention_into(
                        q.data(),
                        k.data(),
                        v.data(),
                        Some(&mask),
                        scale,
                        batch,
                        n,
                        d,
                        &mut scores,
                        &mut out,
                    );
                    std::hint::black_box(out[0])
                });
            },
        );
    }
    group.finish();
}

/// Median wall-clock of `f` over `iters` runs (after warm-up).
fn p50_of(f: &mut dyn FnMut(), iters: usize) -> f64 {
    for _ in 0..10 {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed());
    }
    samples.sort_unstable();
    samples[samples.len() / 2].as_secs_f64()
}

/// GFLOP/s of one `m·k·n` matmul whose median call takes `secs`.
fn gflops(m: usize, k: usize, n: usize, secs: f64) -> f64 {
    (2.0 * m as f64 * k as f64 * n as f64) / secs / 1e9
}

/// Hand-timed measurements persisted to `BENCH_kernels.json`.
///
/// Skipped when a benchmark filter is passed (iterating on one criterion
/// group should not overwrite the recorded numbers with a partial run).
fn emit_kernels_json(_c: &mut Criterion) {
    if std::env::args().skip(1).any(|a| !a.starts_with('-')) {
        println!("benchmark filter given — skipping BENCH_kernels.json emission");
        return;
    }
    pin_single_core();

    // --- naive vs tiled matmul throughput at serving shapes ---------------
    let mut fields = String::new();
    for &(m, d) in &SERVING_SHAPES {
        let mut seed = 5;
        let a = rand(Shape::d2(m, d), &mut seed);
        let b = rand(Shape::d2(d, d), &mut seed);
        let bt = rand(Shape::d2(d, d), &mut seed);
        let mut out = vec![0.0f32; m * d];
        let mut time = |f: &mut dyn FnMut(&mut [f32])| {
            let mut o = std::mem::take(&mut out);
            let secs = {
                let mut run = || f(&mut o);
                p50_of(&mut run, 40)
            };
            out = o;
            secs
        };
        let nn_naive = time(&mut |o| {
            o.fill(0.0);
            naive::matmul_nn_into(a.data(), b.data(), o, m, d, d);
        });
        let nn_tiled = time(&mut |o| {
            o.fill(0.0);
            tiled::matmul_nn_into(a.data(), b.data(), o, m, d, d);
        });
        let nt_naive = time(&mut |o| {
            o.fill(0.0);
            naive::matmul_nt_into(a.data(), bt.data(), o, m, d, d);
        });
        let nt_tiled = time(&mut |o| {
            o.fill(0.0);
            tiled::matmul_nt_into(a.data(), bt.data(), o, m, d, d);
        });
        let nn_fast = time(&mut |o| {
            o.fill(0.0);
            fast::matmul_nn_fast_into(a.data(), b.data(), o, m, d, d);
        });
        let nt_fast = time(&mut |o| {
            o.fill(0.0);
            fast::matmul_nt_fast_into(a.data(), bt.data(), o, m, d, d);
        });
        fields.push_str(&format!(
            "  \"matmul_nn_d{d}_gflops_naive\": {:.2},\n  \"matmul_nn_d{d}_gflops_tiled\": {:.2},\n  \"matmul_nn_d{d}_gflops_fast\": {:.2},\n  \"matmul_nn_d{d}_speedup_tiled_vs_naive\": {:.2},\n  \"matmul_nn_d{d}_speedup_fast_vs_naive\": {:.2},\n  \"matmul_nt_d{d}_gflops_naive\": {:.2},\n  \"matmul_nt_d{d}_gflops_tiled\": {:.2},\n  \"matmul_nt_d{d}_gflops_fast\": {:.2},\n  \"matmul_nt_d{d}_speedup_tiled_vs_naive\": {:.2},\n  \"matmul_nt_d{d}_speedup_fast_vs_naive\": {:.2},\n",
            gflops(m, d, d, nn_naive),
            gflops(m, d, d, nn_tiled),
            gflops(m, d, d, nn_fast),
            nn_naive / nn_tiled,
            nn_naive / nn_fast,
            gflops(m, d, d, nt_naive),
            gflops(m, d, d, nt_tiled),
            gflops(m, d, d, nt_fast),
            nt_naive / nt_tiled,
            nt_naive / nt_fast,
        ));
    }

    // --- fused attention latency ------------------------------------------
    for &(batch, n, d) in &[(128usize, 22usize, 32usize), (128, 22, 64)] {
        let mut seed = 7;
        let q = rand(Shape::d3(batch, n, d), &mut seed);
        let k = rand(Shape::d3(batch, n, d), &mut seed);
        let v = rand(Shape::d3(batch, n, d), &mut seed);
        let mask = AttnMask::causal(n);
        let scale = 1.0 / (d as f32).sqrt();
        let mut scores = vec![0.0f32; batch * n * n];
        let mut out_buf = vec![0.0f32; batch * n * d];
        let secs = p50_of(
            &mut || {
                attention_into(
                    q.data(),
                    k.data(),
                    v.data(),
                    Some(&mask),
                    scale,
                    batch,
                    n,
                    d,
                    &mut scores,
                    &mut out_buf,
                );
                std::hint::black_box(out_buf[0]);
            },
            40,
        );
        fields.push_str(&format!("  \"attention_b{batch}_n{n}_d{d}_us\": {:.1},\n", secs * 1e6));
    }

    // --- steady-state allocations per scored request ----------------------
    let layout = FeatureLayout { n_users: 64, n_items: 300 };
    let cfg = SeqFmConfig { d: 32, max_seq: 20, dropout: 0.0, ..Default::default() };
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(9);
    let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
    let frozen = FrozenSeqFm::freeze(&model, &ps);
    let hist: Vec<u32> = (0..20).map(|j| (j * 7) % 300).collect();
    let insts: Vec<_> =
        (0..100).map(|c| build_instance(&layout, 3, (c * 5) % 300, &hist, 20, 0.0)).collect();
    let batch = Batch::try_from_instances(&insts).expect("valid batch");
    let mut scratch = Scratch::new();
    let mut scores_out = Vec::with_capacity(batch.len);
    for _ in 0..5 {
        scores_out.clear();
        frozen.score_into(&batch, &mut scratch, &mut scores_out);
    }
    let requests = 200u64;
    let before = CountingAlloc::allocations();
    for _ in 0..requests {
        scores_out.clear();
        frozen.score_into(&batch, &mut scratch, &mut scores_out);
    }
    let allocs = CountingAlloc::allocations() - before;
    let allocs_per_request = allocs as f64 / requests as f64;

    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"config\": {{ \"serving_rows\": 2048, \"widths\": [32, 64], \"workers\": 1 }},\n  \"host_cpus\": {host_cpus},\n{fields}  \"allocs_per_scored_request\": {allocs_per_request:.3}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("== BENCH_kernels.json ==\n{json}");
}

criterion_group!(benches, bench_matmul_naive_vs_tiled, bench_attention, emit_kernels_json);
criterion_main!(benches);
