//! Criterion micro-benchmarks for the tensor kernels that dominate SeqFM's
//! runtime: matrix multiplies, batched attention products, and masked
//! softmax.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqfm_tensor::{bmm_nt, matmul_nn, softmax_lastdim_masked, AttnMask, Shape, Tensor};

fn rand(shape: Shape, seed: &mut u64) -> Tensor {
    seqfm_tensor::testutil::rand_tensor(shape, seed)
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_nn");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let mut seed = 1;
        let a = rand(Shape::d2(n, n), &mut seed);
        let b = rand(Shape::d2(n, n), &mut seed);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul_nn(std::hint::black_box(&a), std::hint::black_box(&b)));
        });
    }
    group.finish();
}

fn bench_attention_scores(c: &mut Criterion) {
    // Q·Kᵀ for a typical SeqFM batch: [batch, n°+n˙, d]
    let mut group = c.benchmark_group("bmm_nt_attention_scores");
    group.sample_size(20);
    for &(batch, n, d) in &[(128usize, 22usize, 32usize), (128, 52, 32), (128, 22, 64)] {
        let mut seed = 2;
        let q = rand(Shape::d3(batch, n, d), &mut seed);
        let k = rand(Shape::d3(batch, n, d), &mut seed);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b{batch}_n{n}_d{d}")),
            &n,
            |bench, _| {
                bench.iter(|| bmm_nt(std::hint::black_box(&q), std::hint::black_box(&k)));
            },
        );
    }
    group.finish();
}

fn bench_masked_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_softmax");
    group.sample_size(20);
    for &n in &[22usize, 52] {
        let mut seed = 3;
        let scores = rand(Shape::d3(128, n, n), &mut seed);
        let mask = AttnMask::causal(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| softmax_lastdim_masked(std::hint::black_box(&scores), &mask));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_attention_scores, bench_masked_softmax);
criterion_main!(benches);
