//! Criterion benchmark validating the paper's §III-I complexity claim:
//! per-sample cost O((n° + n˙)²·d + l·d²). Forward latency should grow
//! ~quadratically in the sequence length n˙ and ~linearly in d (attention
//! term dominant), and linearly in the FFN depth l.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqfm_autograd::{Graph, ParamStore};
use seqfm_core::{SeqFm, SeqFmConfig, SeqModel};
use seqfm_data::{build_instance, Batch, FeatureLayout};

fn batch_for(layout: &FeatureLayout, max_seq: usize) -> Batch {
    let insts: Vec<_> = (0..64)
        .map(|i| {
            let hist: Vec<u32> = (0..max_seq).map(|j| ((i + j) % layout.n_items) as u32).collect();
            build_instance(
                layout,
                (i % layout.n_users) as u32,
                (i % layout.n_items) as u32,
                &hist,
                max_seq,
                1.0,
            )
        })
        .collect();
    Batch::try_from_instances(&insts).expect("valid batch")
}

fn bench_scaling_in_seq_len(c: &mut Criterion) {
    let layout = FeatureLayout { n_users: 100, n_items: 300 };
    let mut group = c.benchmark_group("seqfm_forward_vs_nseq_d32");
    group.sample_size(10);
    for &n in &[10usize, 20, 40, 80] {
        let cfg = SeqFmConfig { d: 32, max_seq: n, ..Default::default() };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        let batch = batch_for(&layout, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let y = model.forward(&mut g, &ps, &batch, false, &mut rng);
                std::hint::black_box(g.value(y).sum());
            });
        });
    }
    group.finish();
}

fn bench_scaling_in_d(c: &mut Criterion) {
    let layout = FeatureLayout { n_users: 100, n_items: 300 };
    let mut group = c.benchmark_group("seqfm_forward_vs_d_n20");
    group.sample_size(10);
    for &d in &[16usize, 32, 64, 128] {
        let cfg = SeqFmConfig { d, max_seq: 20, ..Default::default() };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        let batch = batch_for(&layout, 20);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let y = model.forward(&mut g, &ps, &batch, false, &mut rng);
                std::hint::black_box(g.value(y).sum());
            });
        });
    }
    group.finish();
}

fn bench_scaling_in_depth(c: &mut Criterion) {
    let layout = FeatureLayout { n_users: 100, n_items: 300 };
    let mut group = c.benchmark_group("seqfm_forward_vs_l_d32_n20");
    group.sample_size(10);
    for &l in &[1usize, 2, 4] {
        let cfg = SeqFmConfig { d: 32, layers: l, max_seq: 20, ..Default::default() };
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let model = SeqFm::new(&mut ps, &mut rng, &layout, cfg);
        let batch = batch_for(&layout, 20);
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            b.iter(|| {
                let mut g = Graph::new();
                let y = model.forward(&mut g, &ps, &batch, false, &mut rng);
                std::hint::black_box(g.value(y).sum());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_in_seq_len, bench_scaling_in_d, bench_scaling_in_depth);
criterion_main!(benches);
