//! Weight initializers.
//!
//! `rand_distr` is not available offline, so the normal sampler is a
//! hand-rolled Box–Muller transform; everything is seeded through the caller's
//! RNG so experiments stay fully deterministic.

use rand::Rng;
use seqfm_tensor::{Shape, Tensor};

/// Uniform initialisation in `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, shape: Shape, lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform: lo {lo} must be < hi {hi}");
    let data = (0..shape.numel()).map(|_| rng.gen::<f32>() * (hi - lo) + lo).collect();
    Tensor::from_vec(shape, data)
}

/// Zero-mean Gaussian initialisation with standard deviation `std`
/// (Box–Muller).
pub fn normal<R: Rng + ?Sized>(rng: &mut R, shape: Shape, std: f32) -> Tensor {
    assert!(std >= 0.0, "normal: std must be non-negative, got {std}");
    let n = shape.numel();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen::<f32>().max(1e-12);
        let u2: f32 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(shape, data)
}

/// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` weight
/// matrix: `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, Shape::d2(fan_in, fan_out), -limit, limit)
}

/// Embedding-table initialisation: `N(0, 1/√d)` over `[rows, d]` — small
/// enough that initial FM interaction terms start near zero, as is standard
/// for factorization models.
pub fn embedding<R: Rng + ?Sized>(rng: &mut R, rows: usize, d: usize) -> Tensor {
    normal(rng, Shape::d2(rows, d), 1.0 / (d as f32).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let a = uniform(&mut r1, Shape::d2(10, 10), -0.5, 0.5);
        let b = uniform(&mut r2, Shape::d2(10, 10), -0.5, 0.5);
        assert_eq!(a.data(), b.data());
        assert!(a.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(&mut rng, Shape::d2(100, 100), 2.0);
        let mean = t.mean();
        let var = t.data().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / t.numel() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {} too far from 2", var.sqrt());
    }

    #[test]
    fn xavier_limit_scales_with_fans() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform(&mut rng, 8, 8);
        let limit = (6.0f32 / 16.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= limit));
        assert_eq!(t.shape(), Shape::d2(8, 8));
    }

    #[test]
    #[should_panic(expected = "must be <")]
    fn uniform_validates_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = uniform(&mut rng, Shape::d1(2), 1.0, 1.0);
    }
}
