//! Optimizers: SGD and Adam (with lazy sparse-row updates for embeddings).
//!
//! The paper trains every task with mini-batch Adam (§IV-D). Embedding tables
//! receive gradients only on rows touched by the current batch
//! ([`seqfm_autograd::ParamStore`] tracks these), so Adam applies *lazy*
//! updates: moment decay and the parameter step are performed only on touched
//! rows, as in TensorFlow's `LazyAdamOptimizer`. This keeps a training step
//! O(batch · d) instead of O(vocabulary · d).

use seqfm_autograd::{ParamKind, ParamStore};
use seqfm_tensor::Tensor;
use std::fmt;

/// Error raised when a gradient contains NaN/±∞ — stepping on such a gradient
/// would silently poison every parameter it touches.
#[derive(Debug, Clone)]
pub struct NonFiniteGradError {
    /// Name of the offending parameter.
    pub param: String,
}

impl fmt::Display for NonFiniteGradError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "non-finite gradient in parameter `{}`", self.param)
    }
}

impl std::error::Error for NonFiniteGradError {}

/// Common interface: consume the store's accumulated gradients and update
/// parameter values in place. Implementations must **not** zero gradients —
/// the training loop owns that (`ParamStore::zero_grads`).
pub trait Optimizer {
    /// Applies one update step.
    ///
    /// # Errors
    /// Returns [`NonFiniteGradError`] (without updating anything else) if any
    /// gradient is NaN/±∞.
    fn step(&mut self, ps: &mut ParamStore) -> Result<(), NonFiniteGradError>;

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Clips the global gradient norm to `max_norm` (in place), returning the
/// pre-clip norm. Standard stabiliser for recurrent baselines (RRN) whose
/// unrolled gradients can spike on long sequences.
pub fn clip_grad_norm(ps: &mut ParamStore, max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "max_norm must be positive, got {max_norm}");
    let norm = ps.grad_sq_norm().sqrt();
    if norm > max_norm {
        let scale = (max_norm / norm) as f32;
        for id in ps.ids() {
            // scaling the gradient in place via the accumulation API keeps
            // sparse touched-row bookkeeping intact
            let (_, grad) = ps.value_grad_mut(id);
            let scaled: Vec<f32> = grad.data().iter().map(|&g| g * (scale - 1.0)).collect();
            let shape = grad.shape();
            ps.accumulate_dense(id, &seqfm_tensor::Tensor::from_vec(shape, scaled));
        }
    }
    norm
}

/// Learning-rate schedules, applied between epochs by the training loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative factor per decay (0 < gamma ≤ 1).
        gamma: f32,
    },
}

impl LrSchedule {
    /// Learning rate at `epoch` given the initial rate.
    pub fn at(&self, initial: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => initial,
            LrSchedule::StepDecay { every, gamma } => {
                assert!(every > 0, "decay interval must be positive");
                assert!((0.0..=1.0).contains(&gamma), "gamma must be in (0,1]");
                initial * gamma.powi((epoch / every) as i32)
            }
        }
    }

    /// Applies the schedule to an optimizer for the given epoch.
    pub fn apply(&self, opt: &mut dyn Optimizer, initial: f32, epoch: usize) {
        opt.set_learning_rate(self.at(initial, epoch));
    }
}

fn check_finite(ps: &ParamStore) -> Result<(), NonFiniteGradError> {
    for (_, p) in ps.iter() {
        if p.grad().has_non_finite() {
            return Err(NonFiniteGradError { param: p.name().to_string() });
        }
    }
    Ok(())
}

/// Finiteness check restricted to the gradient entries a lazy step will
/// actually consume: full dense tensors plus only the *touched rows* of
/// sparse tables. Untouched embedding rows hold stale zeros by invariant, so
/// skipping them keeps the check O(batch · d) instead of O(vocabulary · d) —
/// the cost that matters for high-rate online steps over large vocabularies.
fn check_finite_touched(ps: &ParamStore) -> Result<(), NonFiniteGradError> {
    for id in ps.ids() {
        let p = ps.param(id);
        match p.kind() {
            ParamKind::Dense => {
                if p.grad().has_non_finite() {
                    return Err(NonFiniteGradError { param: p.name().to_string() });
                }
            }
            ParamKind::SparseRows => {
                let cols = p.value().shape().dim(1);
                for r in ps.touched_rows(id) {
                    let g = &p.grad().data()[r * cols..(r + 1) * cols];
                    if g.iter().any(|x| !x.is_finite()) {
                        return Err(NonFiniteGradError { param: p.name().to_string() });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Plain stochastic gradient descent: `θ ← θ − lr·∇θ`.
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, ps: &mut ParamStore) -> Result<(), NonFiniteGradError> {
        check_finite(ps)?;
        for id in ps.ids() {
            let lr = self.lr;
            match ps.param(id).kind() {
                ParamKind::Dense => {
                    let (value, grad) = ps.value_grad_mut(id);
                    for (v, &g) in value.data_mut().iter_mut().zip(grad.data()) {
                        *v -= lr * g;
                    }
                }
                ParamKind::SparseRows => {
                    let rows = ps.touched_rows(id);
                    let cols = ps.value(id).shape().dim(1);
                    let (value, grad) = ps.value_grad_mut(id);
                    for r in rows {
                        let v = &mut value.data_mut()[r * cols..(r + 1) * cols];
                        let g = &grad.data()[r * cols..(r + 1) * cols];
                        for (vv, &gg) in v.iter_mut().zip(g) {
                            *vv -= lr * gg;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with lazy sparse-row updates for embedding
/// tables. Bias correction uses the global step count for all parameters
/// (the standard lazy-Adam approximation).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    /// First/second moment estimates, allocated on first step, aligned with
    /// the store's parameter order.
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with paper-standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> i32 {
        self.t
    }

    fn ensure_state(&mut self, ps: &ParamStore) {
        if self.m.len() == ps.len() {
            return;
        }
        assert!(
            self.m.is_empty(),
            "parameter count changed after optimization started ({} -> {})",
            self.m.len(),
            ps.len()
        );
        for (_, p) in ps.iter() {
            self.m.push(Tensor::zeros(p.value().shape()));
            self.v.push(Tensor::zeros(p.value().shape()));
        }
    }

    /// [`Optimizer::step`] with the finiteness check restricted to the
    /// gradient entries the lazy update reads (dense tensors + touched
    /// sparse rows), making the whole step O(batch · d) regardless of
    /// vocabulary size — the per-event cost budget of online training.
    ///
    /// The update itself is byte-for-byte the same code path as
    /// [`Optimizer::step`] (same global-`t` bias correction, same per-row
    /// math), so for finite gradients the two produce bit-identical
    /// trajectories.
    ///
    /// # Errors
    /// Returns [`NonFiniteGradError`] (without updating anything) if any
    /// consumed gradient entry is NaN/±∞.
    pub fn sparse_step(&mut self, ps: &mut ParamStore) -> Result<(), NonFiniteGradError> {
        check_finite_touched(ps)?;
        self.apply_update(ps);
        Ok(())
    }

    fn apply_update(&mut self, ps: &mut ParamStore) {
        self.ensure_state(ps);
        self.t += 1;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
        let bc1 = 1.0 - b1.powi(self.t);
        let bc2 = 1.0 - b2.powi(self.t);
        let alpha = self.lr * bc2.sqrt() / bc1;

        for (i, id) in ps.ids().into_iter().enumerate() {
            let kind = ps.param(id).kind();
            match kind {
                ParamKind::Dense => {
                    let (value, grad) = ps.value_grad_mut(id);
                    let (m, v) = (self.m[i].data_mut(), self.v[i].data_mut());
                    for (((p, &g), mm), vv) in
                        value.data_mut().iter_mut().zip(grad.data()).zip(m).zip(v)
                    {
                        *mm = b1 * *mm + (1.0 - b1) * g;
                        *vv = b2 * *vv + (1.0 - b2) * g * g;
                        *p -= alpha * *mm / (vv.sqrt() + eps);
                    }
                }
                ParamKind::SparseRows => {
                    let rows = ps.touched_rows(id);
                    let cols = ps.value(id).shape().dim(1);
                    let (value, grad) = ps.value_grad_mut(id);
                    for r in rows {
                        let range = r * cols..(r + 1) * cols;
                        let p = &mut value.data_mut()[range.clone()];
                        let gr = &grad.data()[range.clone()];
                        let m = &mut self.m[i].data_mut()[range.clone()];
                        let v = &mut self.v[i].data_mut()[range];
                        for (((pv, &g), mm), vv) in p.iter_mut().zip(gr).zip(m).zip(v) {
                            *mm = b1 * *mm + (1.0 - b1) * g;
                            *vv = b2 * *vv + (1.0 - b2) * g * g;
                            *pv -= alpha * *mm / (vv.sqrt() + eps);
                        }
                    }
                }
            }
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, ps: &mut ParamStore) -> Result<(), NonFiniteGradError> {
        check_finite(ps)?;
        self.apply_update(ps);
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqfm_tensor::{Shape, Tensor};

    /// Minimises f(θ) = Σ (θ − target)² with each optimizer.
    fn quadratic_descent(mut opt: impl Optimizer, iters: usize) -> f32 {
        let mut ps = ParamStore::new();
        let theta = ps.add_dense("theta", Tensor::vector(vec![5.0, -3.0]));
        let target = [1.0f32, 2.0];
        for _ in 0..iters {
            ps.zero_grads();
            let g: Vec<f32> = ps
                .value(theta)
                .data()
                .iter()
                .zip(&target)
                .map(|(&t, &tgt)| 2.0 * (t - tgt))
                .collect();
            ps.accumulate_dense(theta, &Tensor::vector(g));
            opt.step(&mut ps).expect("finite gradients");
        }
        ps.value(theta).data().iter().zip(&target).map(|(&t, &tgt)| (t - tgt) * (t - tgt)).sum()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let loss = quadratic_descent(Sgd::new(0.1), 100);
        assert!(loss < 1e-6, "SGD failed to converge, loss {loss}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let loss = quadratic_descent(Adam::new(0.2), 200);
        assert!(loss < 1e-4, "Adam failed to converge, loss {loss}");
    }

    #[test]
    fn adam_lazy_sparse_updates_only_touched_rows() {
        let mut ps = ParamStore::new();
        let e = ps.add_sparse("emb", Tensor::ones(Shape::d2(4, 2)));
        let mut adam = Adam::new(0.1);
        ps.accumulate_row(e, 1, &[1.0, 1.0]);
        adam.step(&mut ps).unwrap();
        let v = ps.value(e);
        // rows 0, 2, 3 untouched
        for r in [0usize, 2, 3] {
            assert_eq!(v.row(r), &[1.0, 1.0], "row {r} should be untouched");
        }
        assert!(v.row(1)[0] < 1.0, "touched row should move against the gradient");
    }

    #[test]
    fn sparse_step_matches_full_step_bitwise() {
        let build = || {
            let mut ps = ParamStore::new();
            ps.add_dense("w", Tensor::vector(vec![1.0, -2.0, 0.5]));
            ps.add_sparse("emb", Tensor::ones(Shape::d2(64, 4)));
            ps
        };
        let mut a = build();
        let mut b = build();
        let (mut full, mut lazy) = (Adam::new(0.05), Adam::new(0.05));
        for t in 0..5 {
            for ps in [&mut a, &mut b] {
                ps.zero_grads();
                let w = ps.id_of("w").unwrap();
                let e = ps.id_of("emb").unwrap();
                ps.accumulate_dense(w, &Tensor::vector(vec![0.3, -0.1, 0.7]));
                ps.accumulate_row(e, (t * 7) % 64, &[0.5, -0.5, 1.0, 0.25]);
                ps.accumulate_row(e, 3, &[1.0, 1.0, -1.0, 0.0]);
            }
            full.step(&mut a).unwrap();
            lazy.sparse_step(&mut b).unwrap();
        }
        for name in ["w", "emb"] {
            let (ia, ib) = (a.id_of(name).unwrap(), b.id_of(name).unwrap());
            assert_eq!(a.value(ia).data(), b.value(ib).data(), "`{name}` diverged");
        }
    }

    #[test]
    fn sparse_step_rejects_non_finite_touched_rows_only() {
        let mut ps = ParamStore::new();
        let e = ps.add_sparse("emb", Tensor::ones(Shape::d2(8, 2)));
        ps.accumulate_row(e, 2, &[f32::NAN, 0.0]);
        let mut adam = Adam::new(0.1);
        let err = adam.sparse_step(&mut ps).unwrap_err();
        assert_eq!(err.param, "emb");
        assert_eq!(ps.value(e).row(2), &[1.0, 1.0], "value must be untouched on error");
        // Dense gradients are still checked in full.
        let w = ps.add_dense("w", Tensor::vector(vec![0.0]));
        ps.zero_grads();
        ps.accumulate_dense(w, &Tensor::vector(vec![f32::INFINITY]));
        let mut fresh = Adam::new(0.1);
        assert_eq!(fresh.sparse_step(&mut ps).unwrap_err().param, "w");
    }

    #[test]
    fn non_finite_gradient_is_rejected() {
        let mut ps = ParamStore::new();
        let w = ps.add_dense("w", Tensor::vector(vec![1.0]));
        ps.accumulate_dense(w, &Tensor::vector(vec![f32::NAN]));
        let mut adam = Adam::new(0.1);
        let err = adam.step(&mut ps).unwrap_err();
        assert_eq!(err.param, "w");
        // parameter value must be untouched
        assert_eq!(ps.value(w).data(), &[1.0]);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.25);
        assert_eq!(opt.learning_rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lr_rejected() {
        let _ = Adam::new(0.0);
    }

    #[test]
    fn clip_grad_norm_rescales_large_gradients() {
        let mut ps = ParamStore::new();
        let w = ps.add_dense("w", Tensor::vector(vec![0.0, 0.0]));
        ps.accumulate_dense(w, &Tensor::vector(vec![3.0, 4.0])); // norm 5
        let pre = clip_grad_norm(&mut ps, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let g = ps.grad(w);
        let norm = (g.data()[0] * g.data()[0] + g.data()[1] * g.data()[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "clipped norm {norm}");
        // direction preserved
        assert!((g.data()[0] / g.data()[1] - 0.75).abs() < 1e-4);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients_alone() {
        let mut ps = ParamStore::new();
        let w = ps.add_dense("w", Tensor::vector(vec![0.0]));
        ps.accumulate_dense(w, &Tensor::vector(vec![0.5]));
        let pre = clip_grad_norm(&mut ps, 1.0);
        assert!((pre - 0.5).abs() < 1e-7);
        assert_eq!(ps.grad(w).data(), &[0.5]);
    }

    #[test]
    fn step_decay_schedule() {
        let s = LrSchedule::StepDecay { every: 10, gamma: 0.5 };
        assert_eq!(s.at(1.0, 0), 1.0);
        assert_eq!(s.at(1.0, 9), 1.0);
        assert_eq!(s.at(1.0, 10), 0.5);
        assert_eq!(s.at(1.0, 25), 0.25);
        assert_eq!(LrSchedule::Constant.at(0.1, 99), 0.1);
        let mut opt = Sgd::new(1.0);
        s.apply(&mut opt, 1.0, 20);
        assert_eq!(opt.learning_rate(), 0.25);
    }
}
