//! Reusable neural-network layers built on the autograd tape.
//!
//! Each layer owns [`ParamId`]s registered at construction time and is
//! stateless across forward passes: `forward` takes the graph and store
//! explicitly, so the same layer can be applied several times per graph
//! (e.g. the paper's *shared* residual FFN is applied to all three views with
//! the same parameters, §III-F).

use crate::init;
use rand::Rng;
use seqfm_autograd::{Graph, ParamId, ParamStore, Var};
use seqfm_tensor::{AttnMask, Shape, Tensor};
use std::sync::Arc;

/// Fully-connected layer `y = x·W (+ b)`.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a Xavier-initialised linear layer. Parameter names are
    /// `{name}.w` and `{name}.b`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = ps.add_dense(format!("{name}.w"), init::xavier_uniform(rng, in_dim, out_dim));
        let b = bias.then(|| ps.add_dense(format!("{name}.b"), Tensor::zeros(Shape::d1(out_dim))));
        Linear { w, b, in_dim, out_dim }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a rank-2 input `[b, in] → [b, out]`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: Var) -> Var {
        let w = g.param(ps, self.w);
        let mut y = g.matmul(x, w);
        if let Some(b) = self.b {
            let bv = g.param(ps, b);
            y = g.add_bias(y, bv);
        }
        y
    }

    /// Applies the layer along the last dim of a rank-3 input
    /// `[b, n, in] → [b, n, out]` (flatten–matmul–unflatten).
    pub fn forward_3d(&self, g: &mut Graph, ps: &ParamStore, x: Var) -> Var {
        let s = g.value(x).shape();
        assert_eq!(s.rank(), 3, "forward_3d expects rank 3, got {s}");
        let (b, n) = (s.dim(0), s.dim(1));
        let flat = g.reshape(x, Shape::d2(b * n, s.dim(2)));
        let y = self.forward(g, ps, flat);
        g.reshape(y, Shape::d3(b, n, self.out_dim))
    }
}

/// Embedding table with the paper's zero-vector padding semantics: index
/// `-1` produces an all-zero row that never receives gradient (§III,
/// padding of the dynamic feature matrix).
pub struct Embedding {
    table: ParamId,
    rows: usize,
    dim: usize,
}

impl Embedding {
    /// Creates an `N(0, 1/√d)`-initialised table named `{name}.table`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        name: &str,
        rows: usize,
        dim: usize,
    ) -> Self {
        let table = ps.add_sparse(format!("{name}.table"), init::embedding(rng, rows, dim));
        Embedding { table, rows, dim }
    }

    /// Creates a zero-initialised table — the correct start for *first-order*
    /// FM weights (w in Eq. 2/4), which otherwise inject large output noise
    /// at initialisation.
    pub fn zeros(ps: &mut ParamStore, name: &str, rows: usize, dim: usize) -> Self {
        let table = ps.add_sparse(format!("{name}.table"), Tensor::zeros(Shape::d2(rows, dim)));
        Embedding { table, rows, dim }
    }

    /// Number of rows (vocabulary size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Underlying sparse parameter id.
    pub fn table(&self) -> ParamId {
        self.table
    }

    /// Looks up `idx` (length `b·n`, `-1` = padding) into `[b, n, d]`.
    pub fn lookup(&self, g: &mut Graph, ps: &ParamStore, idx: &[i64], b: usize, n: usize) -> Var {
        g.gather(ps, self.table, idx, b, n)
    }
}

/// LayerNorm over the last dimension with learned scale/bias (paper Eq. 16).
pub struct LayerNorm {
    scale: ParamId,
    bias: ParamId,
    eps: f32,
}

impl LayerNorm {
    /// Scale initialised to 1, bias to 0; names `{name}.scale`, `{name}.bias`.
    pub fn new(ps: &mut ParamStore, name: &str, dim: usize) -> Self {
        let scale = ps.add_dense(format!("{name}.scale"), Tensor::ones(Shape::d1(dim)));
        let bias = ps.add_dense(format!("{name}.bias"), Tensor::zeros(Shape::d1(dim)));
        LayerNorm { scale, bias, eps: 1e-5 }
    }

    /// Normalises the last dimension of `x`.
    pub fn forward(&self, g: &mut Graph, ps: &ParamStore, x: Var) -> Var {
        let s = g.param(ps, self.scale);
        let b = g.param(ps, self.bias);
        g.layer_norm(x, s, b, self.eps)
    }
}

/// Single-head scaled-dot-product self-attention with per-view projection
/// matrices, exactly the unit used by all three SeqFM views:
/// `H = softmax(E·W_Q·(E·W_K)ᵀ/√d + M)·E·W_V` (paper Eq. 8/9/11).
///
/// No output projection and no multi-head split — the paper's formulation is
/// a single head with `d×d` projections.
pub struct SelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    d: usize,
}

impl SelfAttention {
    /// Creates the three projection matrices (`{name}.wq/wk/wv`, no biases).
    pub fn new<R: Rng + ?Sized>(ps: &mut ParamStore, rng: &mut R, name: &str, d: usize) -> Self {
        SelfAttention {
            wq: Linear::new(ps, rng, &format!("{name}.wq"), d, d, false),
            wk: Linear::new(ps, rng, &format!("{name}.wk"), d, d, false),
            wv: Linear::new(ps, rng, &format!("{name}.wv"), d, d, false),
            d,
        }
    }

    /// Applies attention to `e: [b, n, d]`; `mask` is shared across the batch.
    pub fn forward(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        e: Var,
        mask: Option<Arc<AttnMask>>,
    ) -> Var {
        let q = self.wq.forward_3d(g, ps, e);
        let k = self.wk.forward_3d(g, ps, e);
        let v = self.wv.forward_3d(g, ps, e);
        let scores = g.bmm_nt(q, k);
        let scaled = g.scale(scores, 1.0 / (self.d as f32).sqrt());
        let attn = match mask {
            Some(m) => g.softmax_masked(scaled, m),
            None => g.softmax(scaled),
        };
        g.bmm(attn, v)
    }
}

/// One layer of the paper's residual feed-forward network:
/// `h ← h + Dropout(ReLU(LN(h)·W + b))` (Eq. 15 with the layer-dropout of
/// §III-F). Ablation switches can disable the residual connection and/or the
/// LayerNorm (Table V: "Remove RC", "Remove LN").
pub struct ResidualFfnLayer {
    ln: LayerNorm,
    lin: Linear,
}

impl ResidualFfnLayer {
    /// Creates one `d → d` layer named `{name}.*`.
    pub fn new<R: Rng + ?Sized>(ps: &mut ParamStore, rng: &mut R, name: &str, d: usize) -> Self {
        ResidualFfnLayer {
            ln: LayerNorm::new(ps, &format!("{name}.ln"), d),
            lin: Linear::new(ps, rng, &format!("{name}.lin"), d, d, true),
        }
    }

    /// Applies the layer. `dropout` is the drop probability ρ (0 disables),
    /// active only when `training`. `residual`/`layer_norm` are the Table V
    /// ablation switches.
    #[allow(clippy::too_many_arguments)]
    pub fn forward<R: Rng + ?Sized>(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        h: Var,
        dropout: f32,
        training: bool,
        rng: &mut R,
        residual: bool,
        layer_norm: bool,
    ) -> Var {
        let normed = if layer_norm { self.ln.forward(g, ps, h) } else { h };
        let lin = self.lin.forward(g, ps, normed);
        let act = g.relu(lin);
        let reg = if training && dropout > 0.0 { g.dropout(act, dropout, rng) } else { act };
        if residual {
            g.add(h, reg)
        } else {
            reg
        }
    }
}

/// The `l`-layer shared residual FFN (paper Eq. 15). The same instance — and
/// therefore the same parameters — is applied to all three views.
pub struct ResidualFfn {
    layers: Vec<ResidualFfnLayer>,
}

impl ResidualFfn {
    /// `l` layers of width `d`, named `{name}.0 … {name}.{l-1}`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        name: &str,
        d: usize,
        l: usize,
    ) -> Self {
        let layers =
            (0..l).map(|i| ResidualFfnLayer::new(ps, rng, &format!("{name}.{i}"), d)).collect();
        ResidualFfn { layers }
    }

    /// Network depth `l`.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Applies all layers in sequence (see [`ResidualFfnLayer::forward`]).
    #[allow(clippy::too_many_arguments)]
    pub fn forward<R: Rng + ?Sized>(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        mut h: Var,
        dropout: f32,
        training: bool,
        rng: &mut R,
        residual: bool,
        layer_norm: bool,
    ) -> Var {
        for layer in &self.layers {
            h = layer.forward(g, ps, h, dropout, training, rng, residual, layer_norm);
        }
        h
    }
}

/// Plain multi-layer perceptron with ReLU activations between layers (used by
/// the Wide&Deep / NFM / DIN / xDeepFM baselines).
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// `dims = [in, h1, …, out]`; ReLU after every layer except the last.
    ///
    /// # Panics
    /// Panics if fewer than two dims are given.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        name: &str,
        dims: &[usize],
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out] dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(ps, rng, &format!("{name}.{i}"), w[0], w[1], true))
            .collect();
        Mlp { layers }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Forward over rank-2 input with optional dropout after each hidden
    /// activation.
    pub fn forward<R: Rng + ?Sized>(
        &self,
        g: &mut Graph,
        ps: &ParamStore,
        mut x: Var,
        dropout: f32,
        training: bool,
        rng: &mut R,
    ) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(g, ps, x);
            if i < last {
                x = g.relu(x);
                if training && dropout > 0.0 {
                    x = g.dropout(x, dropout, rng);
                }
            }
        }
        x
    }
}

/// Gated recurrent unit cell (used by the RRN baseline).
pub struct GruCell {
    wx: Linear, // input → 3·hidden (z, r, h̃ pre-activations from x)
    wh: Linear, // hidden → 3·hidden
    hidden: usize,
}

impl GruCell {
    /// Creates a GRU cell `{name}.wx`, `{name}.wh`.
    pub fn new<R: Rng + ?Sized>(
        ps: &mut ParamStore,
        rng: &mut R,
        name: &str,
        input: usize,
        hidden: usize,
    ) -> Self {
        GruCell {
            wx: Linear::new(ps, rng, &format!("{name}.wx"), input, 3 * hidden, true),
            wh: Linear::new(ps, rng, &format!("{name}.wh"), hidden, 3 * hidden, false),
            hidden,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// One step: `(x [b,in], h [b,hid]) → h' [b,hid]`.
    ///
    /// Standard GRU equations:
    /// `z = σ(a_z)`, `r = σ(a_r)`, `h̃ = tanh(a_h^x + r ⊙ a_h^h)`,
    /// `h' = (1−z) ⊙ h + z ⊙ h̃`.
    pub fn step(&self, g: &mut Graph, ps: &ParamStore, x: Var, h: Var) -> Var {
        let hd = self.hidden;
        let gx = self.wx.forward(g, ps, x); // [b, 3h]
        let gh = self.wh.forward(g, ps, h); // [b, 3h]
        let b = g.value(x).shape().dim(0);
        let split = |g: &mut Graph, t: Var, i: usize| -> Var {
            // columns [i*hd, (i+1)*hd) of a [b, 3h] tensor
            let t3 = g.reshape(t, Shape::d3(b, 3, hd));
            let s = g.slice_axis1(t3, i, 1);
            g.reshape(s, Shape::d2(b, hd))
        };
        let zx = split(g, gx, 0);
        let zh = split(g, gh, 0);
        let rx = split(g, gx, 1);
        let rh = split(g, gh, 1);
        let hx = split(g, gx, 2);
        let hh = split(g, gh, 2);

        let zsum = g.add(zx, zh);
        let z = g.sigmoid(zsum);
        let rsum = g.add(rx, rh);
        let r = g.sigmoid(rsum);
        let gated = g.mul(r, hh);
        let pre = g.add(hx, gated);
        let h_cand = g.tanh(pre);
        // h' = h + z ⊙ (h̃ − h)
        let diff = g.sub(h_cand, h);
        let upd = g.mul(z, diff);
        g.add(h, upd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seqfm_autograd::assert_grad_check;
    use seqfm_tensor::testutil::rand_tensor;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes_and_grad() {
        let mut ps = ParamStore::new();
        let mut r = rng();
        let lin = Linear::new(&mut ps, &mut r, "l", 4, 3, true);
        let mut seed = 5;
        let x = ps.add_dense("x", rand_tensor(Shape::d2(2, 4), &mut seed));
        let ids: Vec<_> = ps.iter().map(|(id, _)| id).collect();
        assert_grad_check(&mut ps, &ids, 1e-2, 2e-2, |g, ps| {
            let xv = g.param(ps, x);
            let y = lin.forward(g, ps, xv);
            assert_eq!(g.value(y).shape(), Shape::d2(2, 3));
            let sq = g.square(y);
            g.mean_all(sq)
        });
    }

    #[test]
    fn linear_3d_matches_rowwise_2d() {
        let mut ps = ParamStore::new();
        let mut r = rng();
        let lin = Linear::new(&mut ps, &mut r, "l", 3, 2, true);
        let mut seed = 9;
        let x3 = rand_tensor(Shape::d3(2, 4, 3), &mut seed);
        let mut g = Graph::new();
        let xv = g.input(x3.clone());
        let y3 = lin.forward_3d(&mut g, &ps, xv);
        let x2 = g.input(x3.reshaped(Shape::d2(8, 3)));
        let y2 = lin.forward(&mut g, &ps, x2);
        assert_eq!(g.value(y3).data(), g.value(y2).data());
        assert_eq!(g.value(y3).shape(), Shape::d3(2, 4, 2));
    }

    #[test]
    fn embedding_padding_row_is_zero_and_frozen() {
        let mut ps = ParamStore::new();
        let mut r = rng();
        let emb = Embedding::new(&mut ps, &mut r, "e", 6, 3);
        let mut g = Graph::new();
        let e = emb.lookup(&mut g, &ps, &[2, -1, 0, 5], 2, 2);
        for dim in 0..3 {
            assert_eq!(g.value(e).at3(0, 1, dim), 0.0);
        }
        let loss = g.sum_all(e);
        g.backward(loss, &mut ps);
        assert_eq!(ps.touched_rows(emb.table()), vec![0, 2, 5]);
    }

    #[test]
    fn layer_norm_normalises() {
        let mut ps = ParamStore::new();
        let ln = LayerNorm::new(&mut ps, "ln", 8);
        let mut seed = 3;
        let x = rand_tensor(Shape::d2(4, 8), &mut seed).map(|v| v * 10.0 + 3.0);
        let mut g = Graph::new();
        let xv = g.input(x);
        let y = ln.forward(&mut g, &ps, xv);
        for row in 0..4 {
            let r = g.value(y).row(row);
            let mean: f32 = r.iter().sum::<f32>() / 8.0;
            let var: f32 = r.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row {row} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {row} var {var}");
        }
    }

    #[test]
    fn self_attention_shapes_and_causality() {
        let mut ps = ParamStore::new();
        let mut r = rng();
        let attn = SelfAttention::new(&mut ps, &mut r, "attn", 4);
        let mut seed = 11;
        let e1 = rand_tensor(Shape::d3(1, 5, 4), &mut seed);
        // Perturb the last position; earlier outputs must not change under a
        // causal mask.
        let mut e2 = e1.clone();
        for d in 0..4 {
            let i = (4 * 4) + d; // position 4
            e2.data_mut()[i] += 1.0;
        }
        let mask = Arc::new(AttnMask::causal(5));
        let mut g = Graph::new();
        let a = g.input(e1);
        let b = g.input(e2);
        let ha = attn.forward(&mut g, &ps, a, Some(mask.clone()));
        let hb = attn.forward(&mut g, &ps, b, Some(mask));
        assert_eq!(g.value(ha).shape(), Shape::d3(1, 5, 4));
        for pos in 0..4 {
            for d in 0..4 {
                let va = g.value(ha).at3(0, pos, d);
                let vb = g.value(hb).at3(0, pos, d);
                assert!((va - vb).abs() < 1e-6, "pos {pos} changed: {va} vs {vb}");
            }
        }
        // position 4 must change
        let va = g.value(ha).at3(0, 4, 0);
        let vb = g.value(hb).at3(0, 4, 0);
        assert!((va - vb).abs() > 1e-6);
    }

    #[test]
    fn residual_ffn_grad_and_ablations() {
        let mut ps = ParamStore::new();
        let mut r = rng();
        let ffn = ResidualFfn::new(&mut ps, &mut r, "ffn", 4, 2);
        assert_eq!(ffn.depth(), 2);
        let mut seed = 13;
        let x = ps.add_dense("x", rand_tensor(Shape::d2(3, 4), &mut seed));
        let ids: Vec<_> = ps.iter().map(|(id, _)| id).collect();
        // gradients with everything enabled (dropout off for determinism)
        assert_grad_check(&mut ps, &ids, 1e-2, 3e-2, |g, ps| {
            let xv = g.param(ps, x);
            let mut tmp = StdRng::seed_from_u64(0);
            let y = ffn.forward(g, ps, xv, 0.0, false, &mut tmp, true, true);
            let sq = g.square(y);
            g.mean_all(sq)
        });
        // removing the residual changes the output
        let mut g = Graph::new();
        let xv = g.param(&ps, x);
        let mut tmp = StdRng::seed_from_u64(0);
        let with_rc = ffn.forward(&mut g, &ps, xv, 0.0, false, &mut tmp, true, true);
        let without_rc = ffn.forward(&mut g, &ps, xv, 0.0, false, &mut tmp, false, true);
        assert_ne!(g.value(with_rc).data(), g.value(without_rc).data());
        // removing LN changes the output
        let without_ln = ffn.forward(&mut g, &ps, xv, 0.0, false, &mut tmp, true, false);
        assert_ne!(g.value(with_rc).data(), g.value(without_ln).data());
    }

    #[test]
    fn mlp_forward_and_grad() {
        let mut ps = ParamStore::new();
        let mut r = rng();
        let mlp = Mlp::new(&mut ps, &mut r, "mlp", &[6, 5, 1]);
        assert_eq!(mlp.out_dim(), 1);
        let mut seed = 17;
        let x = ps.add_dense("x", rand_tensor(Shape::d2(4, 6), &mut seed));
        let ids: Vec<_> = ps.iter().map(|(id, _)| id).collect();
        assert_grad_check(&mut ps, &ids, 1e-2, 3e-2, |g, ps| {
            let xv = g.param(ps, x);
            let mut tmp = StdRng::seed_from_u64(0);
            let y = mlp.forward(g, ps, xv, 0.0, false, &mut tmp);
            let sq = g.square(y);
            g.mean_all(sq)
        });
    }

    #[test]
    fn gru_step_grad_and_gating() {
        let mut ps = ParamStore::new();
        let mut r = rng();
        let gru = GruCell::new(&mut ps, &mut r, "gru", 3, 4);
        assert_eq!(gru.hidden(), 4);
        let mut seed = 19;
        let x = ps.add_dense("x", rand_tensor(Shape::d2(2, 3), &mut seed));
        let h = ps.add_dense("h", rand_tensor(Shape::d2(2, 4), &mut seed));
        let ids: Vec<_> = ps.iter().map(|(id, _)| id).collect();
        assert_grad_check(&mut ps, &ids, 5e-3, 3e-2, |g, ps| {
            let xv = g.param(ps, x);
            let hv = g.param(ps, h);
            let h2 = gru.step(g, ps, xv, hv);
            assert_eq!(g.value(h2).shape(), Shape::d2(2, 4));
            let sq = g.square(h2);
            g.mean_all(sq)
        });
    }
}
