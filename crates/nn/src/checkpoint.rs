//! Binary model checkpoints.
//!
//! Serialises every parameter value of a [`ParamStore`] into a compact,
//! versioned binary blob (via the `bytes` crate) and restores it by parameter
//! name with shape verification. Optimizer state is deliberately not
//! persisted — checkpoints are for inference and experiment reproducibility,
//! matching what the paper's released code shipped.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use seqfm_autograd::ParamStore;
use std::fmt;

const MAGIC: &[u8; 4] = b"SQFM";
const VERSION: u16 = 1;

/// Errors produced while decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Blob does not start with the `SQFM` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Blob ended unexpectedly.
    Truncated,
    /// Checkpoint contains a parameter the store does not know.
    UnknownParam(String),
    /// Shape on disk disagrees with the registered parameter.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Element count in the blob.
        stored: usize,
        /// Element count registered in the store.
        expected: usize,
    },
    /// Store has parameters the checkpoint lacks.
    MissingParams(usize),
    /// Reading or writing a checkpoint file failed. Holds
    /// `"<io error kind>: <message>"` rather than the unclonable
    /// [`std::io::Error`] itself.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a SeqFM checkpoint (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            Self::Truncated => write!(f, "checkpoint truncated"),
            Self::UnknownParam(n) => write!(f, "checkpoint has unknown parameter `{n}`"),
            Self::ShapeMismatch { name, stored, expected } => {
                write!(f, "parameter `{name}`: {stored} elements stored, {expected} expected")
            }
            Self::MissingParams(n) => write!(f, "checkpoint is missing {n} parameter(s)"),
            Self::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Encodes all parameter values.
pub fn save(ps: &ParamStore) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + ps.total_elems() * 4);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(ps.len() as u32);
    for (_, p) in ps.iter() {
        let name = p.name().as_bytes();
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name);
        buf.put_u32_le(p.value().numel() as u32);
        for &v in p.value().data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Restores parameter values by name.
///
/// Every parameter present in the blob must exist in the store with a
/// matching element count, and every store parameter must appear in the blob.
///
/// # Errors
/// See [`CheckpointError`].
pub fn load(ps: &mut ParamStore, blob: &[u8]) -> Result<(), CheckpointError> {
    let mut buf = blob;
    if buf.remaining() < 10 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = buf.get_u32_le() as usize;
    let mut restored = 0usize;
    for _ in 0..count {
        if buf.remaining() < 2 {
            return Err(CheckpointError::Truncated);
        }
        let name_len = buf.get_u16_le() as usize;
        if buf.remaining() < name_len + 4 {
            return Err(CheckpointError::Truncated);
        }
        let name = String::from_utf8_lossy(&buf[..name_len]).into_owned();
        buf.advance(name_len);
        let numel = buf.get_u32_le() as usize;
        if buf.remaining() < numel * 4 {
            return Err(CheckpointError::Truncated);
        }
        let id = ps.id_of(&name).ok_or_else(|| CheckpointError::UnknownParam(name.clone()))?;
        let expected = ps.value(id).numel();
        if expected != numel {
            return Err(CheckpointError::ShapeMismatch { name, stored: numel, expected });
        }
        for v in ps.value_mut(id).data_mut() {
            *v = buf.get_f32_le();
        }
        restored += 1;
    }
    if restored < ps.len() {
        return Err(CheckpointError::MissingParams(ps.len() - restored));
    }
    Ok(())
}

/// Saves all parameter values to a file (see [`save`] for the format).
///
/// # Errors
/// [`CheckpointError::Io`] if the file cannot be written.
pub fn save_file(
    ps: &ParamStore,
    path: impl AsRef<std::path::Path>,
) -> Result<(), CheckpointError> {
    let blob = save(ps);
    std::fs::write(path, &blob).map_err(io_err)
}

/// Restores parameter values from a file written by [`save_file`].
///
/// # Errors
/// [`CheckpointError::Io`] if the file cannot be read, or any decoding error
/// of [`load`].
pub fn load_file(
    ps: &mut ParamStore,
    path: impl AsRef<std::path::Path>,
) -> Result<(), CheckpointError> {
    let blob = std::fs::read(path).map_err(io_err)?;
    load(ps, &blob)
}

fn io_err(e: std::io::Error) -> CheckpointError {
    CheckpointError::Io(format!("{}: {e}", e.kind()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqfm_tensor::{Shape, Tensor};

    fn sample_store() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.add_dense("w", Tensor::from_vec(Shape::d2(2, 2), vec![1.0, -2.0, 3.5, 0.25]));
        ps.add_sparse("emb", Tensor::from_vec(Shape::d2(3, 2), vec![0.1; 6]));
        ps
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let ps = sample_store();
        let blob = save(&ps);
        let mut fresh = sample_store();
        // scramble
        for id in fresh.ids() {
            for v in fresh.value_mut(id).data_mut() {
                *v = 99.0;
            }
        }
        load(&mut fresh, &blob).expect("roundtrip");
        for ((_, a), (_, b)) in ps.iter().zip(fresh.iter()) {
            assert_eq!(a.value().data(), b.value().data());
        }
    }

    #[test]
    fn rejects_garbage() {
        let mut ps = sample_store();
        assert_eq!(load(&mut ps, b"nope"), Err(CheckpointError::Truncated));
        assert_eq!(load(&mut ps, b"NOPE------"), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn rejects_truncated_blob() {
        let ps = sample_store();
        let blob = save(&ps);
        let mut fresh = sample_store();
        let cut = &blob[..blob.len() - 3];
        assert_eq!(load(&mut fresh, cut), Err(CheckpointError::Truncated));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let ps = sample_store();
        let blob = save(&ps);
        let mut other = ParamStore::new();
        other.add_dense("w", Tensor::zeros(Shape::d2(2, 3))); // 6 elems, not 4
        other.add_sparse("emb", Tensor::zeros(Shape::d2(3, 2)));
        match load(&mut other, &blob) {
            Err(CheckpointError::ShapeMismatch { name, stored, expected }) => {
                assert_eq!(name, "w");
                assert_eq!(stored, 4);
                assert_eq!(expected, 6);
            }
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip_and_io_errors() {
        let ps = sample_store();
        let dir = std::env::temp_dir().join("seqfm_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.sqfm");
        save_file(&ps, &path).expect("save_file");
        let mut fresh = sample_store();
        for id in fresh.ids() {
            for v in fresh.value_mut(id).data_mut() {
                *v = -7.0;
            }
        }
        load_file(&mut fresh, &path).expect("load_file");
        for ((_, a), (_, b)) in ps.iter().zip(fresh.iter()) {
            assert_eq!(a.value().data(), b.value().data());
        }
        std::fs::remove_file(&path).unwrap();
        // Missing file → Io variant, not a panic.
        match load_file(&mut fresh, dir.join("does_not_exist.sqfm")) {
            Err(CheckpointError::Io(msg)) => assert!(!msg.is_empty()),
            other => panic!("expected Io error, got {other:?}"),
        }
        // Unwritable destination (the directory itself) → Io variant.
        match save_file(&ps, &dir) {
            Err(CheckpointError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_and_missing_params() {
        let ps = sample_store();
        let blob = save(&ps);
        // Store without `emb`: first decoded param `w` works, `emb` unknown.
        let mut partial = ParamStore::new();
        partial.add_dense("w", Tensor::zeros(Shape::d2(2, 2)));
        assert_eq!(load(&mut partial, &blob), Err(CheckpointError::UnknownParam("emb".into())));
        // Store with an extra parameter: blob is missing it.
        let mut extra = sample_store();
        extra.add_dense("extra", Tensor::zeros(Shape::d1(1)));
        assert_eq!(load(&mut extra, &blob), Err(CheckpointError::MissingParams(1)));
    }
}
