#![warn(missing_docs)]

//! # seqfm-nn
//!
//! Neural-network building blocks shared by SeqFM and every baseline:
//!
//! * [`init`] — deterministic weight initializers (Xavier, Gaussian,
//!   embedding-scaled).
//! * [`layers`] — [`Linear`], [`Embedding`] (zero-padding semantics),
//!   [`LayerNorm`], single-head masked [`SelfAttention`] (paper Eq. 8/9/11),
//!   the shared [`ResidualFfn`] (Eq. 15), [`Mlp`], and a [`GruCell`] for the
//!   RRN baseline.
//! * [`optim`] — [`Sgd`] and [`Adam`] with lazy sparse-row embedding updates
//!   (paper §IV-D trains everything with Adam).
//! * [`checkpoint`] — versioned binary save/load of all parameters.

pub mod checkpoint;
pub mod init;
pub mod layers;
pub mod optim;

pub use layers::{Embedding, GruCell, LayerNorm, Linear, Mlp, ResidualFfn, SelfAttention};
pub use optim::{clip_grad_norm, Adam, LrSchedule, NonFiniteGradError, Optimizer, Sgd};
