//! Blocked full-catalog scans with an exact upper-bound prune and an
//! adaptive, statistics-driven speculative phase on top of it.

use crate::stats::ScanStats;
use crate::topk::{ScoredItem, TopK};
use seqfm_core::{FrozenSeqFm, HistoryView, ItemBlockStats, Scratch};
use seqfm_data::{Batch, FeatureLayout};
use seqfm_parallel::{global, par_units, partition, ThreadPool};
use std::fmt;
use std::sync::Arc;

/// Why a retrieval request could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RetrievalError {
    /// The request contradicts the index configuration (`k == 0`, unknown
    /// user, …).
    BadConfig {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for RetrievalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadConfig { reason } => write!(f, "bad retrieval config: {reason}"),
        }
    }
}

impl std::error::Error for RetrievalError {}

/// Default accumulated-widening budget (in logits) for delta rebuilds —
/// see [`CatalogIndex::rebuild_for_with`]. Small against the adversarial
/// bound's typical slack, so reused envelopes cost almost no prune quality,
/// yet large against the per-publish drift of an incremental training step,
/// so long publish chains keep reusing most blocks.
const DELTA_TOLERANCE: f32 = 0.05;

/// The outcome of one catalog retrieval.
#[derive(Clone, Debug, PartialEq)]
pub struct Retrieval {
    /// Retained candidates, best first (see [`crate::rank_cmp`]). Holds
    /// `min(k, catalog size)` entries.
    pub items: Vec<ScoredItem>,
    /// Catalog blocks whose items were actually scored.
    pub blocks_scored: usize,
    /// Catalog blocks skipped by the upper-bound prune.
    pub blocks_pruned: usize,
    /// Items that went through the forward pass.
    pub items_scored: usize,
    /// Items inside surviving blocks skipped by the per-item screen —
    /// speculatively at first, every skip later either repaired (moved into
    /// [`Retrieval::items_scored`]) or soundly confirmed, so the count is
    /// honest: exactly the surviving-block items that never went through
    /// the forward pass (always 0 for brute-force scans).
    pub items_screened: usize,
    /// Repair-pass units (speculatively skipped blocks or screened block
    /// suffixes) that were re-scored to restore exactness. `0` when the
    /// speculation never over-skipped — e.g. on a cold index with no
    /// observed statistics, where the scan degrades to the plain sound
    /// bound-ordered sweep.
    pub blocks_repaired: usize,
}

impl Retrieval {
    /// Fraction of catalog blocks the prune skipped, in `[0, 1]`.
    pub fn prune_rate(&self) -> f64 {
        let total = self.blocks_scored + self.blocks_pruned;
        if total == 0 {
            0.0
        } else {
            self.blocks_pruned as f64 / total as f64
        }
    }

    /// Fraction of *surviving-block* items the per-item linear screen
    /// skipped, in `[0, 1]` — pruning finer than the block bound alone.
    pub fn screen_rate(&self) -> f64 {
        let total = self.items_scored + self.items_screened;
        if total == 0 {
            0.0
        } else {
            self.items_screened as f64 / total as f64
        }
    }
}

/// Per-worker scan state: one scratch, one reusable expansion batch, one
/// logit buffer, one top-K shard.
struct Slot {
    scratch: Scratch,
    batch: Batch,
    out: Vec<f32>,
    top: TopK,
    items_scored: usize,
    /// Blocks this worker ran the forward pass over (≥ 1 item scored).
    blocks_scored: usize,
    /// Speculative skips awaiting the repair pass: `(block, suffix start)` —
    /// `start == 0` means the whole block was skipped.
    deferred: Vec<(usize, usize)>,
}

impl Slot {
    fn new(k: usize) -> Slot {
        Slot {
            scratch: Scratch::new(),
            batch: Batch::default(),
            out: Vec::new(),
            top: TopK::new(k),
            items_scored: 0,
            blocks_scored: 0,
            deferred: Vec::new(),
        }
    }
}

/// A frozen model plus its catalog, pre-blocked for full scans: per-item
/// linear partial scores and per-block candidate-side bound envelopes are
/// computed once at build, so a retrieval pays only the query-side work.
///
/// The index streams the catalog through the model in cache-sized blocks,
/// reusing one [`HistoryView`] (the history-side half of the forward pass)
/// across every block. Blocks are formed over the catalog **sorted by item
/// linear partial `lin°(c)`, descending** rather than by raw id: the linear
/// term is the one score component that is exact per block (`lin_max`), so
/// grouping similar linear weights makes block upper bounds spread apart —
/// on models with a skewed item-weight distribution (any trained
/// implicit-feedback FM) the low-weight tail blocks fall below the
/// threshold and prune.
///
/// [`CatalogIndex::retrieve`] skips any block whose
/// [sound upper bound](FrozenSeqFm::block_upper_bound) falls below the
/// current k-th best score — with *exact* results: a pruned block provably
/// contains no member of the final top-K, and block composition never
/// perturbs surviving logits (per-row arithmetic is batch-independent), so
/// pruned retrieval is bit-identical to [`CatalogIndex::retrieve_brute`].
pub struct CatalogIndex {
    model: Arc<FrozenSeqFm>,
    layout: FeatureLayout,
    block: usize,
    /// The catalog permutation blocks are cut from: item ids sorted by
    /// `lin°(c)` descending, ties by ascending id (deterministic build).
    order: Vec<u32>,
    stats: Vec<ItemBlockStats>,
    /// Per-item static linear weight `lin°(c)` — the candidate's entire
    /// attention-free partial score, precomputed at build. Indexed by item
    /// id, not by `order` position.
    lin_item: Vec<f32>,
    /// Observed per-block score maxima, fed back into the scan as the
    /// speculative skip threshold (advisory — see [`ScanStats`]).
    scan_stats: ScanStats,
    /// Accumulated per-block envelope widening from delta rebuilds (zero
    /// for freshly computed envelopes); once it would exceed the rebuild
    /// tolerance the block's envelope is recomputed exactly.
    slack: Vec<f32>,
}

impl CatalogIndex {
    /// Blocks `layout`'s item catalog for `model` and precomputes every
    /// candidate-side partial: item linear weights, the lin-sorted catalog
    /// permutation, and per-block V-envelope bound terms.
    ///
    /// `block` is the number of candidates scored per forward call; a few
    /// hundred keeps the expansion batch inside L2 at paper widths.
    ///
    /// # Panics
    /// Panics if `block == 0`.
    pub fn build(model: Arc<FrozenSeqFm>, layout: FeatureLayout, block: usize) -> CatalogIndex {
        assert!(block > 0, "catalog block size must be positive");
        let n = layout.n_items as u32;
        let lin_item: Vec<f32> = (0..n).map(|c| model.item_linear(&layout, c)).collect();
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by(|&a, &b| {
            lin_item[b as usize].total_cmp(&lin_item[a as usize]).then(a.cmp(&b))
        });
        let stats: Vec<ItemBlockStats> =
            order.chunks(block).map(|items| model.item_block_stats(&layout, items)).collect();
        let scan_stats = ScanStats::new(model.epoch(), stats.len());
        let slack = vec![0.0; stats.len()];
        CatalogIndex { model, layout, block, order, stats, lin_item, scan_stats, slack }
    }

    /// Re-anchors this index on a freshly published model revision,
    /// recomputing every model-dependent partial — per-item linear weights,
    /// per-block bound envelopes — while **reusing the existing block
    /// membership** instead of re-cutting the catalog from scratch.
    ///
    /// Correctness never depends on *which* items share a block: bounds and
    /// screens are recomputed for the new model over the blocks as they
    /// stand, so pruned retrieval on the rebuilt index stays bit-identical
    /// to brute force. Two ordering properties matter differently:
    ///
    /// * **Within a block**, the per-item screen cuts a suffix and is only
    ///   sound over lin-descending items — so each block *is* re-sorted by
    ///   the new `lin°(c)` (cheap: `block · log block` per block).
    /// * **Across blocks**, the grouping of similar linear weights is purely
    ///   a prune-*quality* lever; after an incremental training step the
    ///   weights moved little, so the stale grouping stays close to optimal.
    ///   It degrades gradually over many swaps — re-sort lazily by paying
    ///   for a full [`CatalogIndex::build`] off-peak when the observed
    ///   [`Retrieval::prune_rate`] drifts down.
    ///
    /// The layout and block size carry over; `model` must be trained for the
    /// same [`FeatureLayout`]. Observed scan statistics are carried onto the
    /// rebuilt index (block membership is preserved, so they keep meaning;
    /// they describe the previous epoch's scores, which the repair pass
    /// makes safe).
    ///
    /// This is a **delta** rebuild at the default tolerance — see
    /// [`CatalogIndex::rebuild_for_with`].
    pub fn rebuild_for(&self, model: Arc<FrozenSeqFm>) -> CatalogIndex {
        self.rebuild_for_with(model, DELTA_TOLERANCE)
    }

    /// [`CatalogIndex::rebuild_for`] with the exact envelopes recomputed for
    /// **every** block — the delta rebuild's reference semantics, and the
    /// off-peak answer to accumulated widening.
    pub fn rebuild_full(&self, model: Arc<FrozenSeqFm>) -> CatalogIndex {
        self.rebuild_for_with(model, 0.0)
    }

    /// Delta rebuild: like [`CatalogIndex::rebuild_for`], but a block whose
    /// envelope provably moved less than `tolerance` (accumulated across
    /// consecutive delta rebuilds) **keeps its existing envelope, widened**
    /// by a sound per-coordinate drift bound instead of re-running the
    /// V-projection over its items — an `O(block·d)` touch instead of
    /// `O(block·d²)` (see `FrozenSeqFm::block_envelope_drift`). Per-item
    /// linear partials are always recomputed exactly (cheap table reads),
    /// as is each block's `lin_max`.
    ///
    /// Soundness: the widened envelope contains every new-model V row by the
    /// drift bound, so block upper bounds stay sound and pruned retrieval on
    /// the rebuilt index stays bit-identical to brute force. Widening only
    /// ever *loosens* bounds — the tolerance caps how much prune quality a
    /// chain of delta rebuilds may give up before a block pays for an exact
    /// recompute (`tolerance == 0` disables reuse entirely). Blocks whose
    /// drift cannot be bounded (incompatible geometry or ablation between
    /// the models, non-finite drift) are recomputed exactly.
    pub fn rebuild_for_with(&self, model: Arc<FrozenSeqFm>, tolerance: f32) -> CatalogIndex {
        let n = self.layout.n_items as u32;
        let lin_item: Vec<f32> = (0..n).map(|c| model.item_linear(&self.layout, c)).collect();
        let mut order = self.order.clone();
        for chunk in order.chunks_mut(self.block) {
            chunk.sort_by(|&a, &b| {
                lin_item[b as usize].total_cmp(&lin_item[a as usize]).then(a.cmp(&b))
            });
        }
        let probe = if tolerance > 0.0 { model.envelope_drift(&self.model) } else { None };
        let mut slack = Vec::with_capacity(self.stats.len());
        let stats: Vec<ItemBlockStats> = order
            .chunks(self.block)
            .enumerate()
            .map(|(bi, items)| {
                let lin_max =
                    items.iter().map(|&c| lin_item[c as usize]).fold(f32::NEG_INFINITY, f32::max);
                if let Some(probe) = &probe {
                    let delta = model.block_envelope_drift(probe, &self.model, &self.layout, items);
                    let acc = self.slack[bi] + delta;
                    if delta.is_finite() && acc <= tolerance {
                        slack.push(acc);
                        return self.stats[bi].widened(delta, lin_max);
                    }
                }
                slack.push(0.0);
                model.item_block_stats(&self.layout, items)
            })
            .collect();
        let scan_stats = ScanStats::carry_from(&self.scan_stats, model.epoch());
        CatalogIndex {
            model,
            layout: self.layout,
            block: self.block,
            order,
            stats,
            lin_item,
            scan_stats,
            slack,
        }
    }

    /// How many blocks the last (delta) rebuild reused-and-widened instead
    /// of recomputing — `0` for a fresh [`CatalogIndex::build`] or a
    /// [`CatalogIndex::rebuild_full`].
    pub fn delta_reused_blocks(&self) -> usize {
        self.slack.iter().filter(|&&s| s > 0.0).count()
    }

    /// The item ids making up block `bi`, in scoring order.
    fn block_items(&self, bi: usize) -> &[u32] {
        let lo = bi * self.block;
        let hi = (lo + self.block).min(self.order.len());
        &self.order[lo..hi]
    }

    /// The model this index scores with.
    pub fn model(&self) -> &Arc<FrozenSeqFm> {
        &self.model
    }

    /// The feature layout the catalog was blocked under.
    pub fn layout(&self) -> &FeatureLayout {
        &self.layout
    }

    /// Catalog size.
    pub fn n_items(&self) -> usize {
        self.layout.n_items
    }

    /// Configured block size.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Number of catalog blocks.
    pub fn n_blocks(&self) -> usize {
        self.stats.len()
    }

    /// The precomputed static linear partial score of `item`.
    pub fn item_linear(&self, item: u32) -> f32 {
        self.lin_item[item as usize]
    }

    /// The index's observed scan statistics (shared, atomically updated by
    /// every retrieval). Exposed so callers can inspect, warm, or — in
    /// tests — adversarially poison the speculation.
    pub fn scan_stats(&self) -> &ScanStats {
        &self.scan_stats
    }

    fn validate(&self, user: u32, view: &HistoryView, k: usize) -> Result<usize, RetrievalError> {
        if k == 0 {
            return Err(RetrievalError::BadConfig {
                reason: "k == 0 retrieves nothing; request at least one item".into(),
            });
        }
        if user as usize >= self.layout.n_users {
            return Err(RetrievalError::BadConfig {
                reason: format!("user {user} outside layout ({} users)", self.layout.n_users),
            });
        }
        if view.nd() == 0 {
            return Err(RetrievalError::BadConfig {
                reason: "history view covers an empty window; build it over max_seq slots".into(),
            });
        }
        // k >= catalog size degrades to "return every item, sorted".
        Ok(k.min(self.layout.n_items))
    }

    /// The per-item screen's cut position over `items` (which must be
    /// lin-descending, as every block prefix/suffix is): the index of the
    /// first item whose bound `nonlin + lin°(c)` falls **strictly below**
    /// `thr` — everything from there on is skipped in one cut.
    ///
    /// The screen's decomposition: a block bound splits as
    /// `bound = N + lin_max` with `N` bounding everything except the
    /// candidate's own linear weight, so `nonlin = bound − lin_max` plus
    /// `lin°(c)` bounds item `c` alone and descends along the items. With
    /// the *sound* block bound for `nonlin` the cut is sound (none of the
    /// screened items can enter the final top-K — the block-prune argument,
    /// per item); with the *observed-max* statistic it is speculative and
    /// the cut suffix must go through the repair pass. The comparison runs
    /// in `f64`, whose rounding is dwarfed by the sound bound's built-in
    /// slack; a NaN `nonlin` or `thr` makes every comparison false and
    /// disables the screen, soundly.
    fn screen_cut(&self, items: &[u32], nonlin: f64, thr: f64) -> usize {
        items
            .iter()
            .position(|&c| (nonlin + self.lin_item[c as usize] as f64) < thr)
            .unwrap_or(items.len())
    }

    /// Scores `items` (any block prefix/suffix) with `model` into `slot`,
    /// offers every logit to the slot's top-K shard, and returns the best
    /// logit seen (`-inf` when `items` is empty). Per-row arithmetic is
    /// batch-composition independent, so a suffix scored here is
    /// bit-identical to the same rows scored as part of the whole block.
    fn score_items(
        &self,
        model: &FrozenSeqFm,
        user: u32,
        view: &HistoryView,
        items: &[u32],
        slot: &mut Slot,
    ) -> f32 {
        slot.items_scored += items.len();
        if items.is_empty() {
            return f32::NEG_INFINITY;
        }
        slot.out.clear();
        model.score_catalog_into(
            &self.layout,
            user,
            items,
            view,
            &mut slot.batch,
            &mut slot.scratch,
            &mut slot.out,
        );
        let mut best = f32::NEG_INFINITY;
        for (&item, &score) in items.iter().zip(&slot.out) {
            slot.top.push(ScoredItem { item, score });
            if score > best {
                best = score;
            }
        }
        best
    }

    /// Full catalog scan on the global thread pool. See
    /// [`CatalogIndex::retrieve_brute_in`].
    ///
    /// # Errors
    /// [`RetrievalError::BadConfig`] for `k == 0`, an unknown user, or an
    /// empty history view.
    pub fn retrieve_brute(
        &self,
        user: u32,
        view: &HistoryView,
        k: usize,
    ) -> Result<Retrieval, RetrievalError> {
        self.retrieve_brute_in(user, view, k, global())
    }

    /// Scores **every** catalog block (no pruning): contiguous block spans
    /// are scanned by per-worker shards, each keeping a bounded top-K, and
    /// the shard heaps are merged deterministically — the reference the
    /// pruned path must match bit-for-bit.
    ///
    /// # Errors
    /// [`RetrievalError::BadConfig`] for `k == 0`, an unknown user, or an
    /// empty history view.
    pub fn retrieve_brute_in(
        &self,
        user: u32,
        view: &HistoryView,
        k: usize,
        pool: &ThreadPool,
    ) -> Result<Retrieval, RetrievalError> {
        self.brute_impl(&self.model, user, view, k, pool)
    }

    /// Brute-force scan scored with a **foreign** model instead of the
    /// index's own — the hot-swap fallback: while a fresh model revision is
    /// published but this index's candidate-side partials still describe the
    /// retired one, the engine serves retrieval through this path (no bound,
    /// no screen, nothing model-stale consulted), so swaps never block and
    /// never serve old-model logits. `view` must have been built by `model`.
    ///
    /// # Errors
    /// [`RetrievalError::BadConfig`] for `k == 0`, an unknown user, or an
    /// empty history view.
    pub fn retrieve_brute_with(
        &self,
        model: &Arc<FrozenSeqFm>,
        user: u32,
        view: &HistoryView,
        k: usize,
    ) -> Result<Retrieval, RetrievalError> {
        self.brute_impl(model, user, view, k, global())
    }

    fn brute_impl(
        &self,
        model: &Arc<FrozenSeqFm>,
        user: u32,
        view: &HistoryView,
        k: usize,
        pool: &ThreadPool,
    ) -> Result<Retrieval, RetrievalError> {
        let k_eff = self.validate(user, view, k)?;
        let n_blocks = self.stats.len();
        let workers = pool.workers().min(n_blocks).max(1);
        let mut slots: Vec<Slot> = (0..workers).map(|_| Slot::new(k_eff)).collect();
        let spans = partition(n_blocks, workers);
        // A brute scan sees every true block maximum — feed them into the
        // scan statistics for free, but only when scoring with the index's
        // own model (the hot-swap fallback scores a foreign epoch whose
        // maxima describe a different model).
        let record = Arc::ptr_eq(model, &self.model);
        par_units(pool, &mut slots, 1, |first, chunk| {
            for (s, slot) in chunk.iter_mut().enumerate() {
                for bi in spans[first + s].clone() {
                    let best = self.score_items(model, user, view, self.block_items(bi), slot);
                    if record {
                        self.scan_stats.record(bi, best);
                    }
                }
            }
        });
        let mut top = TopK::new(k_eff);
        let mut items_scored = 0;
        for slot in slots {
            items_scored += slot.items_scored;
            top.absorb(slot.top);
        }
        Ok(Retrieval {
            items: top.into_sorted(),
            blocks_scored: n_blocks,
            blocks_pruned: 0,
            items_scored,
            items_screened: 0,
            blocks_repaired: 0,
        })
    }

    /// Pruned retrieval on the global thread pool. See
    /// [`CatalogIndex::retrieve_in`].
    ///
    /// # Errors
    /// [`RetrievalError::BadConfig`] for `k == 0`, an unknown user, or an
    /// empty history view.
    pub fn retrieve(
        &self,
        user: u32,
        view: &HistoryView,
        k: usize,
    ) -> Result<Retrieval, RetrievalError> {
        self.retrieve_in(user, view, k, global())
    }

    /// Top-K retrieval: a best-first **speculative** scan over observed
    /// score statistics, made exact by a **sound repair pass**.
    ///
    /// **Phase one** visits blocks best-first by a per-block key — the best
    /// score ever *observed* in the block ([`ScanStats`]) where one exists,
    /// the sound upper bound otherwise — so the running k-th threshold
    /// tightens as fast as the statistics can steer it. Once the top-K is
    /// full, three skips apply at each visit, keys descending throughout:
    ///
    /// * `sound bound < threshold` — the classic exact prune: provably out,
    ///   never revisited;
    /// * `key < threshold` — every remaining block's key is also below the
    ///   threshold, so the whole tail is skipped *speculatively* (an
    ///   observed maximum is not a bound — a block may hide a better item
    ///   it never showed) and handed to the repair pass;
    /// * inside a scored block with a statistic, the per-item screen runs
    ///   with the **speculative** decomposition `stat − lin_max + lin°(c)`
    ///   (`screen_cut`), cutting a suffix that is likewise
    ///   handed to the repair pass. Without a statistic the screen is
    ///   skipped entirely — the sound variant's fire rate was measured at
    ///   ~0% (the adversarial bound sits far above typical scores), so it
    ///   only burned comparisons.
    ///
    /// **Repair** restores exactness: every speculatively skipped unit — a
    /// whole tail block or a screened suffix — carries a *sound* upper
    /// bound (the block bound, or its per-item decomposition at the
    /// suffix's first, lin-largest item). Units are re-examined in
    /// descending sound-bound order against the current threshold, scoring
    /// survivors serially (each result immediately tightens the threshold)
    /// until the first unit whose sound bound falls strictly below it —
    /// at which point every remaining unit is provably out, because unit
    /// bounds only descend and the threshold only rises. On exit, every
    /// block either was scored, or has a sound certificate that it cannot
    /// contribute — so the result is **exactly** the brute-force top-K,
    /// bit-identical ids and logits, at any worker count and under
    /// arbitrarily wrong statistics (wrong stats only shift work between
    /// the phases). A cold index (no statistics) degrades to PR 7's sound
    /// bound-ordered scan: keys equal bounds, nothing is speculative, the
    /// repair pass is empty.
    ///
    /// # Errors
    /// [`RetrievalError::BadConfig`] for `k == 0`, an unknown user, or an
    /// empty history view.
    pub fn retrieve_in(
        &self,
        user: u32,
        view: &HistoryView,
        k: usize,
        pool: &ThreadPool,
    ) -> Result<Retrieval, RetrievalError> {
        let k_eff = self.validate(user, view, k)?;
        let q = self.model.query_bounds(&self.layout, user, view);
        // Sound per-block bounds, NaN (degenerate parameters) mapped to
        // +inf: an unbounded block can never be pruned, speculatively
        // skipped without repair, or dropped by the repair cutoff — NaN
        // disables pruning, soundly, and keeps every ordering total.
        let sound: Vec<f32> = self
            .stats
            .iter()
            .map(|st| {
                let b = self.model.block_upper_bound(&q, st);
                if b.is_nan() {
                    f32::INFINITY
                } else {
                    b
                }
            })
            .collect();
        // (block, key, statistic): best key first, index tiebreak for a
        // deterministic visit order. Statistics are never NaN (ScanStats
        // rejects them), so keys are NaN-free.
        let mut order: Vec<(usize, f32, Option<f32>)> = (0..self.stats.len())
            .map(|bi| {
                let stat = self.scan_stats.observed_max(bi);
                (bi, stat.unwrap_or(sound[bi]), stat)
            })
            .collect();
        order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

        let n_blocks = order.len();
        let workers = pool.workers().min(n_blocks).max(1);
        let mut slots: Vec<Slot> = (0..workers).map(|_| Slot::new(k_eff)).collect();
        let mut top = TopK::new(k_eff);
        let mut pos = 0usize;
        let mut wave: Vec<(usize, Option<f32>)> = Vec::with_capacity(workers);
        let mut reached_tail = false;
        while pos < n_blocks && !reached_tail {
            // The threshold is frozen per wave (it only ever rises, so a
            // skip decided against this snapshot stays valid forever).
            let thr = top.threshold();
            wave.clear();
            while pos < n_blocks && wave.len() < workers {
                let (bi, key, stat) = order[pos];
                if let Some(t) = thr {
                    if key < t {
                        // Keys only descend: the whole tail is skipped —
                        // speculatively where the key was a statistic — and
                        // goes to the repair pass. (Dispatch the wave built
                        // so far first.)
                        reached_tail = true;
                        break;
                    }
                    if sound[bi] < t {
                        // Sound prune at visit time: provably out, no
                        // repair needed. (Possible despite `key >= t` when
                        // a carried or poisoned statistic exceeds the sound
                        // bound.)
                        pos += 1;
                        continue;
                    }
                }
                wave.push((bi, stat));
                pos += 1;
            }
            if wave.is_empty() {
                continue;
            }
            let wave = &wave[..];
            par_units(pool, &mut slots[..wave.len()], 1, |first, chunk| {
                for (s, slot) in chunk.iter_mut().enumerate() {
                    let (bi, stat) = wave[first + s];
                    let items = self.block_items(bi);
                    // The speculative per-item screen needs a statistic and
                    // a threshold; with either missing the block is scored
                    // whole.
                    let keep = match (stat, thr) {
                        (Some(stat), Some(t)) => {
                            let nonlin = stat as f64 - self.stats[bi].lin_max as f64;
                            self.screen_cut(items, nonlin, t as f64)
                        }
                        _ => items.len(),
                    };
                    if keep < items.len() {
                        slot.deferred.push((bi, keep));
                    }
                    if keep > 0 {
                        slot.blocks_scored += 1;
                        let best = self.score_items(&self.model, user, view, &items[..keep], slot);
                        self.scan_stats.record(bi, best);
                    }
                }
            });
            for slot in &mut slots[..wave.len()] {
                top.absorb(std::mem::replace(&mut slot.top, TopK::new(k_eff)));
            }
        }

        // Repair units: the unvisited tail (whole blocks, bounded by their
        // sound block bound) plus every speculatively screened suffix
        // (bounded by the sound per-item decomposition at its first —
        // lin-largest — item). Bounds in f64, like the screen comparisons.
        let mut units: Vec<(usize, usize, f64)> =
            order[pos..].iter().map(|&(bi, _, _)| (bi, 0, sound[bi] as f64)).collect();
        for slot in &mut slots {
            for (bi, start) in slot.deferred.drain(..) {
                let first = self.block_items(bi)[start];
                let ub = sound[bi] as f64 - self.stats[bi].lin_max as f64
                    + self.lin_item[first as usize] as f64;
                units.push((bi, start, ub));
            }
        }
        units.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));

        // The repair pass runs serially: each repaired unit immediately
        // tightens the threshold for the next, and serial order keeps the
        // amount of repair work deterministic for a given statistics state
        // (results are bit-exact regardless).
        let mut items_screened = 0usize;
        let mut blocks_repaired = 0usize;
        for i in 0..units.len() {
            let (bi, start, ub) = units[i];
            let thr = top.threshold();
            if let Some(t) = thr {
                if ub < t as f64 {
                    // Unit bounds only descend and the threshold only
                    // rises: every remaining unit is provably below the
                    // final threshold. Their screened suffixes stay
                    // skipped; wholly unvisited blocks count as pruned.
                    for &(bj, sj, _) in &units[i..] {
                        if sj > 0 {
                            items_screened += self.block_items(bj).len() - sj;
                        }
                    }
                    break;
                }
            }
            let items = &self.block_items(bi)[start..];
            // Within a repaired unit the *sound* per-item screen applies —
            // its cut is a certificate, not a speculation, so the screened
            // sub-suffix needs no further repair.
            let keep = match thr {
                Some(t) => {
                    let nonlin = sound[bi] as f64 - self.stats[bi].lin_max as f64;
                    self.screen_cut(items, nonlin, t as f64)
                }
                None => items.len(),
            };
            if keep > 0 {
                blocks_repaired += 1;
                let s0 = &mut slots[0];
                if start == 0 {
                    // First forward pass this block sees — a suffix unit's
                    // block was already counted when its prefix was scored
                    // in phase one.
                    s0.blocks_scored += 1;
                }
                let best = self.score_items(&self.model, user, view, &items[..keep], s0);
                self.scan_stats.record(bi, best);
                top.absorb(std::mem::replace(&mut slots[0].top, TopK::new(k_eff)));
            }
            if start > 0 || keep > 0 {
                // The block survives (some of it was scored); the rest of
                // the unit is screened for good. A wholly unscored block
                // (`start == 0 && keep == 0`) is pruned instead — its items
                // count nowhere, exactly like a bound-pruned block's.
                items_screened += items.len() - keep;
            }
        }

        let mut items_scored = 0usize;
        let mut blocks_scored = 0usize;
        for slot in &slots {
            items_scored += slot.items_scored;
            blocks_scored += slot.blocks_scored;
        }
        Ok(Retrieval {
            items: top.into_sorted(),
            blocks_scored,
            blocks_pruned: n_blocks - blocks_scored,
            items_scored,
            items_screened,
            blocks_repaired,
        })
    }
}
