//! Blocked full-catalog scans with an exact upper-bound prune.

use crate::topk::{ScoredItem, TopK};
use seqfm_core::{FrozenSeqFm, HistoryView, ItemBlockStats, Scratch};
use seqfm_data::{Batch, FeatureLayout};
use seqfm_parallel::{global, par_units, partition, ThreadPool};
use std::fmt;
use std::sync::Arc;

/// Why a retrieval request could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RetrievalError {
    /// The request contradicts the index configuration (`k == 0`, unknown
    /// user, …).
    BadConfig {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for RetrievalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadConfig { reason } => write!(f, "bad retrieval config: {reason}"),
        }
    }
}

impl std::error::Error for RetrievalError {}

/// The outcome of one catalog retrieval.
#[derive(Clone, Debug, PartialEq)]
pub struct Retrieval {
    /// Retained candidates, best first (see [`crate::rank_cmp`]). Holds
    /// `min(k, catalog size)` entries.
    pub items: Vec<ScoredItem>,
    /// Catalog blocks whose items were actually scored.
    pub blocks_scored: usize,
    /// Catalog blocks skipped by the upper-bound prune.
    pub blocks_pruned: usize,
    /// Items that went through the forward pass.
    pub items_scored: usize,
    /// Items inside surviving blocks skipped by the per-item linear screen
    /// (always 0 for brute-force scans).
    pub items_screened: usize,
}

impl Retrieval {
    /// Fraction of catalog blocks the prune skipped, in `[0, 1]`.
    pub fn prune_rate(&self) -> f64 {
        let total = self.blocks_scored + self.blocks_pruned;
        if total == 0 {
            0.0
        } else {
            self.blocks_pruned as f64 / total as f64
        }
    }

    /// Fraction of *surviving-block* items the per-item linear screen
    /// skipped, in `[0, 1]` — pruning finer than the block bound alone.
    pub fn screen_rate(&self) -> f64 {
        let total = self.items_scored + self.items_screened;
        if total == 0 {
            0.0
        } else {
            self.items_screened as f64 / total as f64
        }
    }
}

/// Per-worker scan state: one scratch, one reusable expansion batch, one
/// logit buffer, one top-K shard.
struct Slot {
    scratch: Scratch,
    batch: Batch,
    out: Vec<f32>,
    top: TopK,
    items_scored: usize,
    items_screened: usize,
}

impl Slot {
    fn new(k: usize) -> Slot {
        Slot {
            scratch: Scratch::new(),
            batch: Batch::default(),
            out: Vec::new(),
            top: TopK::new(k),
            items_scored: 0,
            items_screened: 0,
        }
    }
}

/// A frozen model plus its catalog, pre-blocked for full scans: per-item
/// linear partial scores and per-block candidate-side bound envelopes are
/// computed once at build, so a retrieval pays only the query-side work.
///
/// The index streams the catalog through the model in cache-sized blocks,
/// reusing one [`HistoryView`] (the history-side half of the forward pass)
/// across every block. Blocks are formed over the catalog **sorted by item
/// linear partial `lin°(c)`, descending** rather than by raw id: the linear
/// term is the one score component that is exact per block (`lin_max`), so
/// grouping similar linear weights makes block upper bounds spread apart —
/// on models with a skewed item-weight distribution (any trained
/// implicit-feedback FM) the low-weight tail blocks fall below the
/// threshold and prune.
///
/// [`CatalogIndex::retrieve`] skips any block whose
/// [sound upper bound](FrozenSeqFm::block_upper_bound) falls below the
/// current k-th best score — with *exact* results: a pruned block provably
/// contains no member of the final top-K, and block composition never
/// perturbs surviving logits (per-row arithmetic is batch-independent), so
/// pruned retrieval is bit-identical to [`CatalogIndex::retrieve_brute`].
pub struct CatalogIndex {
    model: Arc<FrozenSeqFm>,
    layout: FeatureLayout,
    block: usize,
    /// The catalog permutation blocks are cut from: item ids sorted by
    /// `lin°(c)` descending, ties by ascending id (deterministic build).
    order: Vec<u32>,
    stats: Vec<ItemBlockStats>,
    /// Per-item static linear weight `lin°(c)` — the candidate's entire
    /// attention-free partial score, precomputed at build. Indexed by item
    /// id, not by `order` position.
    lin_item: Vec<f32>,
}

impl CatalogIndex {
    /// Blocks `layout`'s item catalog for `model` and precomputes every
    /// candidate-side partial: item linear weights, the lin-sorted catalog
    /// permutation, and per-block V-envelope bound terms.
    ///
    /// `block` is the number of candidates scored per forward call; a few
    /// hundred keeps the expansion batch inside L2 at paper widths.
    ///
    /// # Panics
    /// Panics if `block == 0`.
    pub fn build(model: Arc<FrozenSeqFm>, layout: FeatureLayout, block: usize) -> CatalogIndex {
        assert!(block > 0, "catalog block size must be positive");
        let n = layout.n_items as u32;
        let lin_item: Vec<f32> = (0..n).map(|c| model.item_linear(&layout, c)).collect();
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by(|&a, &b| {
            lin_item[b as usize].total_cmp(&lin_item[a as usize]).then(a.cmp(&b))
        });
        let stats: Vec<ItemBlockStats> =
            order.chunks(block).map(|items| model.item_block_stats(&layout, items)).collect();
        CatalogIndex { model, layout, block, order, stats, lin_item }
    }

    /// Re-anchors this index on a freshly published model revision,
    /// recomputing every model-dependent partial — per-item linear weights,
    /// per-block bound envelopes — while **reusing the existing block
    /// membership** instead of re-cutting the catalog from scratch.
    ///
    /// Correctness never depends on *which* items share a block: bounds and
    /// screens are recomputed for the new model over the blocks as they
    /// stand, so pruned retrieval on the rebuilt index stays bit-identical
    /// to brute force. Two ordering properties matter differently:
    ///
    /// * **Within a block**, the per-item screen cuts a suffix and is only
    ///   sound over lin-descending items — so each block *is* re-sorted by
    ///   the new `lin°(c)` (cheap: `block · log block` per block).
    /// * **Across blocks**, the grouping of similar linear weights is purely
    ///   a prune-*quality* lever; after an incremental training step the
    ///   weights moved little, so the stale grouping stays close to optimal.
    ///   It degrades gradually over many swaps — re-sort lazily by paying
    ///   for a full [`CatalogIndex::build`] off-peak when the observed
    ///   [`Retrieval::prune_rate`] drifts down.
    ///
    /// The layout and block size carry over; `model` must be trained for the
    /// same [`FeatureLayout`].
    pub fn rebuild_for(&self, model: Arc<FrozenSeqFm>) -> CatalogIndex {
        let n = self.layout.n_items as u32;
        let lin_item: Vec<f32> = (0..n).map(|c| model.item_linear(&self.layout, c)).collect();
        let mut order = self.order.clone();
        for chunk in order.chunks_mut(self.block) {
            chunk.sort_by(|&a, &b| {
                lin_item[b as usize].total_cmp(&lin_item[a as usize]).then(a.cmp(&b))
            });
        }
        let stats: Vec<ItemBlockStats> = order
            .chunks(self.block)
            .map(|items| model.item_block_stats(&self.layout, items))
            .collect();
        CatalogIndex { model, layout: self.layout, block: self.block, order, stats, lin_item }
    }

    /// The item ids making up block `bi`, in scoring order.
    fn block_items(&self, bi: usize) -> &[u32] {
        let lo = bi * self.block;
        let hi = (lo + self.block).min(self.order.len());
        &self.order[lo..hi]
    }

    /// The model this index scores with.
    pub fn model(&self) -> &Arc<FrozenSeqFm> {
        &self.model
    }

    /// The feature layout the catalog was blocked under.
    pub fn layout(&self) -> &FeatureLayout {
        &self.layout
    }

    /// Catalog size.
    pub fn n_items(&self) -> usize {
        self.layout.n_items
    }

    /// Configured block size.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Number of catalog blocks.
    pub fn n_blocks(&self) -> usize {
        self.stats.len()
    }

    /// The precomputed static linear partial score of `item`.
    pub fn item_linear(&self, item: u32) -> f32 {
        self.lin_item[item as usize]
    }

    fn validate(&self, user: u32, view: &HistoryView, k: usize) -> Result<usize, RetrievalError> {
        if k == 0 {
            return Err(RetrievalError::BadConfig {
                reason: "k == 0 retrieves nothing; request at least one item".into(),
            });
        }
        if user as usize >= self.layout.n_users {
            return Err(RetrievalError::BadConfig {
                reason: format!("user {user} outside layout ({} users)", self.layout.n_users),
            });
        }
        if view.nd() == 0 {
            return Err(RetrievalError::BadConfig {
                reason: "history view covers an empty window; build it over max_seq slots".into(),
            });
        }
        // k >= catalog size degrades to "return every item, sorted".
        Ok(k.min(self.layout.n_items))
    }

    /// Scores one block with `model` into `slot` and offers every logit to
    /// the slot's top-K shard.
    ///
    /// When a block bound and a prune threshold are given, the per-item
    /// linear screen runs first: inside a block items are already sorted by
    /// `lin°(c)` descending (blocks are cut from the lin-sorted
    /// permutation), and the block bound decomposes as
    /// `bound = N + lin_max` with `N` a sound bound on everything except
    /// the candidate's own linear weight. So
    /// `N + lin°(c) = (bound − lin_max) + lin°(c)` bounds item `c` alone,
    /// descends along the block, and the first item falling **strictly
    /// below** the threshold cuts off the whole suffix — by the same
    /// argument as the block prune, none of the screened items can enter
    /// the final top-K, and the surviving items' logits are bit-identical
    /// (per-row arithmetic is batch-composition independent). The
    /// comparison runs in `f64`, whose rounding is dwarfed by the bound's
    /// built-in slack; a NaN bound disables the screen, soundly.
    fn score_block(
        &self,
        model: &FrozenSeqFm,
        user: u32,
        view: &HistoryView,
        bi: usize,
        screen: Option<(f32, f32)>,
        slot: &mut Slot,
    ) {
        let mut items = self.block_items(bi);
        if let Some((bound, thr)) = screen {
            let nonlin = bound as f64 - self.stats[bi].lin_max as f64;
            let keep = items
                .iter()
                .position(|&c| (nonlin + self.lin_item[c as usize] as f64) < thr as f64)
                .unwrap_or(items.len());
            slot.items_screened += items.len() - keep;
            items = &items[..keep];
        }
        slot.items_scored += items.len();
        if items.is_empty() {
            return;
        }
        slot.out.clear();
        model.score_catalog_into(
            &self.layout,
            user,
            items,
            view,
            &mut slot.batch,
            &mut slot.scratch,
            &mut slot.out,
        );
        for (&item, &score) in items.iter().zip(&slot.out) {
            slot.top.push(ScoredItem { item, score });
        }
    }

    /// Full catalog scan on the global thread pool. See
    /// [`CatalogIndex::retrieve_brute_in`].
    ///
    /// # Errors
    /// [`RetrievalError::BadConfig`] for `k == 0`, an unknown user, or an
    /// empty history view.
    pub fn retrieve_brute(
        &self,
        user: u32,
        view: &HistoryView,
        k: usize,
    ) -> Result<Retrieval, RetrievalError> {
        self.retrieve_brute_in(user, view, k, global())
    }

    /// Scores **every** catalog block (no pruning): contiguous block spans
    /// are scanned by per-worker shards, each keeping a bounded top-K, and
    /// the shard heaps are merged deterministically — the reference the
    /// pruned path must match bit-for-bit.
    ///
    /// # Errors
    /// [`RetrievalError::BadConfig`] for `k == 0`, an unknown user, or an
    /// empty history view.
    pub fn retrieve_brute_in(
        &self,
        user: u32,
        view: &HistoryView,
        k: usize,
        pool: &ThreadPool,
    ) -> Result<Retrieval, RetrievalError> {
        self.brute_impl(&self.model, user, view, k, pool)
    }

    /// Brute-force scan scored with a **foreign** model instead of the
    /// index's own — the hot-swap fallback: while a fresh model revision is
    /// published but this index's candidate-side partials still describe the
    /// retired one, the engine serves retrieval through this path (no bound,
    /// no screen, nothing model-stale consulted), so swaps never block and
    /// never serve old-model logits. `view` must have been built by `model`.
    ///
    /// # Errors
    /// [`RetrievalError::BadConfig`] for `k == 0`, an unknown user, or an
    /// empty history view.
    pub fn retrieve_brute_with(
        &self,
        model: &Arc<FrozenSeqFm>,
        user: u32,
        view: &HistoryView,
        k: usize,
    ) -> Result<Retrieval, RetrievalError> {
        self.brute_impl(model, user, view, k, global())
    }

    fn brute_impl(
        &self,
        model: &Arc<FrozenSeqFm>,
        user: u32,
        view: &HistoryView,
        k: usize,
        pool: &ThreadPool,
    ) -> Result<Retrieval, RetrievalError> {
        let k_eff = self.validate(user, view, k)?;
        let n_blocks = self.stats.len();
        let workers = pool.workers().min(n_blocks).max(1);
        let mut slots: Vec<Slot> = (0..workers).map(|_| Slot::new(k_eff)).collect();
        let spans = partition(n_blocks, workers);
        par_units(pool, &mut slots, 1, |first, chunk| {
            for (s, slot) in chunk.iter_mut().enumerate() {
                for bi in spans[first + s].clone() {
                    self.score_block(model, user, view, bi, None, slot);
                }
            }
        });
        let mut top = TopK::new(k_eff);
        let mut items_scored = 0;
        for slot in slots {
            items_scored += slot.items_scored;
            top.absorb(slot.top);
        }
        Ok(Retrieval {
            items: top.into_sorted(),
            blocks_scored: n_blocks,
            blocks_pruned: 0,
            items_scored,
            items_screened: 0,
        })
    }

    /// Pruned retrieval on the global thread pool. See
    /// [`CatalogIndex::retrieve_in`].
    ///
    /// # Errors
    /// [`RetrievalError::BadConfig`] for `k == 0`, an unknown user, or an
    /// empty history view.
    pub fn retrieve(
        &self,
        user: u32,
        view: &HistoryView,
        k: usize,
    ) -> Result<Retrieval, RetrievalError> {
        self.retrieve_in(user, view, k, global())
    }

    /// Top-K retrieval with the exact upper-bound prune.
    ///
    /// Blocks are visited in descending upper-bound order in waves of one
    /// block per worker; after each wave the k-th best score so far becomes
    /// the prune threshold. Once the next block's bound falls **strictly
    /// below** the threshold, every remaining block is skipped: each of its
    /// items scores at most the bound, hence strictly below the current
    /// k-th best, hence strictly below the *final* k-th best — it cannot
    /// enter the top-K even via the item-id tiebreak. The retained set is
    /// therefore exactly the brute-force top-K (bit-identical ids and
    /// logits) at any worker count, even though *how many* blocks get
    /// scored may vary.
    ///
    /// # Errors
    /// [`RetrievalError::BadConfig`] for `k == 0`, an unknown user, or an
    /// empty history view.
    pub fn retrieve_in(
        &self,
        user: u32,
        view: &HistoryView,
        k: usize,
        pool: &ThreadPool,
    ) -> Result<Retrieval, RetrievalError> {
        let k_eff = self.validate(user, view, k)?;
        let q = self.model.query_bounds(&self.layout, user, view);
        // (block, bound), best bound first; index breaks bound ties so the
        // visit order is deterministic. A NaN bound (degenerate parameters)
        // sorts first under total_cmp and can never satisfy the strict
        // `bound < threshold` prune test — NaN disables pruning, soundly.
        let mut order: Vec<(usize, f32)> = self
            .stats
            .iter()
            .enumerate()
            .map(|(bi, st)| (bi, self.model.block_upper_bound(&q, st)))
            .collect();
        order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

        let n_blocks = order.len();
        let workers = pool.workers().min(n_blocks).max(1);
        let mut slots: Vec<Slot> = (0..workers).map(|_| Slot::new(k_eff)).collect();
        let mut top = TopK::new(k_eff);
        let mut pos = 0usize;
        let mut items_scored = 0usize;
        let mut items_screened = 0usize;
        while pos < n_blocks {
            let thr = top.threshold();
            if let Some(thr) = thr {
                // Bounds only descend from here: one strict miss prunes the
                // whole tail.
                if order[pos].1 < thr {
                    break;
                }
            }
            let wave = &order[pos..(pos + workers).min(n_blocks)];
            par_units(pool, &mut slots[..wave.len()], 1, |first, chunk| {
                for (s, slot) in chunk.iter_mut().enumerate() {
                    let (bi, bound) = wave[first + s];
                    // The per-item screen needs both this block's bound and
                    // a threshold; before the first wave there is none.
                    self.score_block(&self.model, user, view, bi, thr.map(|t| (bound, t)), slot);
                }
            });
            for slot in &mut slots[..wave.len()] {
                top.absorb(std::mem::replace(&mut slot.top, TopK::new(k_eff)));
            }
            pos += wave.len();
        }
        for slot in &slots {
            items_scored += slot.items_scored;
            items_screened += slot.items_screened;
        }
        Ok(Retrieval {
            items: top.into_sorted(),
            blocks_scored: pos,
            blocks_pruned: n_blocks - pos,
            items_scored,
            items_screened,
        })
    }
}
