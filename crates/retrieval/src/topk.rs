//! Deterministic bounded top-K selection.
//!
//! Retrieval shards the catalog across workers; each shard keeps its own
//! [`TopK`] and the shard heaps are merged at the end. The result is
//! deterministic for *any* sharding because ranking is a **total order**:
//! higher score first ([`f32::total_cmp`], so results are reproducible down
//! to the bit), exact score ties broken by ascending item id, and NaN
//! scores pinned after every real score (ids ordering NaNs among
//! themselves). Under a total order the top-K set and its order are unique,
//! so how candidates were partitioned can never show in the output.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One candidate with its logit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredItem {
    /// Catalog item id.
    pub item: u32,
    /// The model's logit for this item.
    pub score: f32,
}

/// The retrieval ranking: `Less` means `a` ranks strictly before `b`.
///
/// Total order: descending score by [`f32::total_cmp`] (`+0.0` before
/// `-0.0`, reproducible bits), ascending item id on exact score ties, every
/// NaN after every non-NaN (NaNs ordered among themselves by id).
pub fn rank_cmp(a: &ScoredItem, b: &ScoredItem) -> Ordering {
    match (a.score.is_nan(), b.score.is_nan()) {
        (false, true) => Ordering::Less,
        (true, false) => Ordering::Greater,
        (true, true) => a.item.cmp(&b.item),
        (false, false) => b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)),
    }
}

/// Heap entry ordered so the [`BinaryHeap`] max is the *worst-ranked*
/// retained candidate — the one the next better candidate evicts.
#[derive(Clone, Copy, Debug)]
struct Entry(ScoredItem);

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        rank_cmp(&self.0, &other.0) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        rank_cmp(&self.0, &other.0)
    }
}

/// A bounded best-`k` accumulator under [`rank_cmp`].
///
/// `push` is O(log k) against the worst retained candidate; `k == 0` keeps
/// nothing (callers surface that as a typed error before scoring anything).
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl TopK {
    /// An empty accumulator retaining the best `k` candidates.
    pub fn new(k: usize) -> TopK {
        TopK { k, heap: BinaryHeap::with_capacity(k.saturating_add(1)) }
    }

    /// The bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers one candidate, evicting the worst-ranked retained candidate
    /// if the accumulator is full and `cand` ranks strictly before it.
    pub fn push(&mut self, cand: ScoredItem) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Entry(cand));
        } else if let Some(worst) = self.heap.peek() {
            if rank_cmp(&cand, &worst.0) == Ordering::Less {
                self.heap.pop();
                self.heap.push(Entry(cand));
            }
        }
    }

    /// The k-th best **score** once full: no candidate scoring strictly
    /// below it can enter the top-K, which is exactly the block-prune test.
    /// `None` while not yet full. May be NaN (comparisons against a NaN
    /// threshold are false, so a NaN root simply disables pruning).
    pub fn threshold(&self) -> Option<f32> {
        (self.k > 0 && self.heap.len() == self.k)
            .then(|| self.heap.peek().expect("full heap").0.score)
    }

    /// Merges another shard's retained candidates into this accumulator.
    /// Associativity and the total order make the merged result independent
    /// of shard count and merge order.
    pub fn absorb(&mut self, other: TopK) {
        for e in other.heap {
            self.push(e.0);
        }
    }

    /// Consumes the accumulator into best-first order.
    pub fn into_sorted(self) -> Vec<ScoredItem> {
        let mut v: Vec<ScoredItem> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_by(rank_cmp);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(pairs: &[(u32, f32)]) -> Vec<ScoredItem> {
        pairs.iter().map(|&(item, score)| ScoredItem { item, score }).collect()
    }

    #[test]
    fn nan_scores_rank_after_every_real_score() {
        let mut top = TopK::new(4);
        for c in items(&[(0, f32::NAN), (1, -5.0), (2, f32::NAN), (3, 2.0)]) {
            top.push(c);
        }
        let got: Vec<u32> = top.into_sorted().iter().map(|c| c.item).collect();
        // Real scores first (descending), then NaNs in id order.
        assert_eq!(got, vec![3, 1, 0, 2]);
    }

    #[test]
    fn exact_bit_ties_break_by_ascending_item_id() {
        let s = 1.25f32;
        let mut top = TopK::new(3);
        for c in items(&[(9, s), (4, s), (7, s), (2, 0.5)]) {
            top.push(c);
        }
        let got: Vec<u32> = top.into_sorted().iter().map(|c| c.item).collect();
        assert_eq!(got, vec![4, 7, 9], "tied logits must rank by ascending id");
        // The tie-losing low-score item never entered.
    }

    #[test]
    fn shard_merge_is_independent_of_partitioning() {
        let all = items(&[
            (0, 1.0),
            (1, f32::NAN),
            (2, 3.5),
            (3, 3.5),
            (4, -2.0),
            (5, 0.0),
            (6, -0.0),
            (7, 9.1),
        ]);
        let reference = {
            let mut top = TopK::new(5);
            for &c in &all {
                top.push(c);
            }
            top.into_sorted()
        };
        // Every contiguous 2-way split, merged in both orders.
        for cut in 0..=all.len() {
            for flip in [false, true] {
                let (a, b) = all.split_at(cut);
                let (first, second) = if flip { (b, a) } else { (a, b) };
                let mut s1 = TopK::new(5);
                let mut s2 = TopK::new(5);
                for &c in first {
                    s1.push(c);
                }
                for &c in second {
                    s2.push(c);
                }
                s1.absorb(s2);
                let got = s1.into_sorted();
                assert_eq!(got.len(), reference.len());
                for (r, g) in reference.iter().zip(&got) {
                    assert_eq!(r.item, g.item);
                    assert_eq!(r.score.to_bits(), g.score.to_bits());
                }
            }
        }
        // +0.0 ranks before -0.0 under total_cmp — pinned so the order stays
        // reproducible bit-for-bit.
        let ids: Vec<u32> = reference.iter().map(|c| c.item).collect();
        assert_eq!(ids, vec![7, 2, 3, 0, 5]);
    }

    #[test]
    fn k_zero_retains_nothing_and_never_panics() {
        let mut top = TopK::new(0);
        top.push(ScoredItem { item: 1, score: 4.0 });
        assert!(top.is_empty());
        assert_eq!(top.threshold(), None);
        assert!(top.into_sorted().is_empty());
    }

    #[test]
    fn threshold_is_kth_best_score_once_full() {
        let mut top = TopK::new(2);
        top.push(ScoredItem { item: 0, score: 1.0 });
        assert_eq!(top.threshold(), None, "not full yet");
        top.push(ScoredItem { item: 1, score: 3.0 });
        assert_eq!(top.threshold(), Some(1.0));
        top.push(ScoredItem { item: 2, score: 2.0 });
        assert_eq!(top.threshold(), Some(2.0), "worse of {{3, 2}}");
    }
}
