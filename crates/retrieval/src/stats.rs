//! Per-block observed-score statistics driving the speculative scan.
//!
//! Every time retrieval scores a block it records the best logit it saw
//! there. The recorded maxima are **advisory**: the two-phase scan in
//! [`CatalogIndex::retrieve`](crate::CatalogIndex::retrieve) uses them to
//! *order* blocks and to *speculatively* skip work in phase one, and the
//! sound repair pass re-examines everything the speculation skipped against
//! the sound envelope bound. Exactness therefore never depends on these
//! values — they may be stale (carried across a
//! [`rebuild_for`](crate::CatalogIndex::rebuild_for)), racy (concurrent
//! retrievals update them without coordination), or outright wrong — the
//! result is still the bit-exact brute-force top-K; only *how much* work
//! phase one skips varies.
//!
//! Storage is one `AtomicU32` per block holding an order-preserving
//! encoding of the observed `f32` maximum, so concurrent recording is a
//! plain `fetch_max` with `Relaxed` ordering: the statistic is monotone
//! under races and never torn.

use seqfm_core::ModelEpoch;
use std::sync::atomic::{AtomicU32, Ordering};

/// `f32 → u32` map that preserves order under unsigned integer compare
/// (the classic sign-flip transform). `0` is reserved as the "nothing
/// observed yet" sentinel — no non-NaN float encodes to it (the smallest
/// real encoding, `key(-inf)`, is `0x007F_FFFF`) and NaNs are never
/// recorded.
fn key_of(score: f32) -> u32 {
    let bits = score.to_bits();
    if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    }
}

/// Inverse of [`key_of`] for non-sentinel keys.
fn score_of(key: u32) -> f32 {
    if key & 0x8000_0000 != 0 {
        f32::from_bits(key & 0x7FFF_FFFF)
    } else {
        f32::from_bits(!key)
    }
}

/// Per-block observed-maximum score statistics, stamped with the
/// [`ModelEpoch`] whose scores they were (first) observed under.
///
/// Owned by a [`CatalogIndex`](crate::CatalogIndex) and updated through
/// `&self` during retrieval — interior mutability via relaxed atomics, see
/// the module docs for why races are benign.
#[derive(Debug)]
pub struct ScanStats {
    epoch: ModelEpoch,
    observed: Vec<AtomicU32>,
}

impl ScanStats {
    /// Empty statistics (nothing observed) for `n_blocks` blocks, stamped
    /// with the index model's `epoch`.
    pub fn new(epoch: ModelEpoch, n_blocks: usize) -> ScanStats {
        ScanStats { epoch, observed: (0..n_blocks).map(|_| AtomicU32::new(0)).collect() }
    }

    /// Carries the observed maxima of `prior` forward onto a rebuilt index
    /// (block membership is preserved by
    /// [`rebuild_for`](crate::CatalogIndex::rebuild_for), so block `bi`
    /// still describes the same items), restamped with the new model's
    /// `epoch`. The carried values describe the *previous* epoch's scores —
    /// close after one incremental training step, and safe regardless: the
    /// repair pass owns correctness.
    pub fn carry_from(prior: &ScanStats, epoch: ModelEpoch) -> ScanStats {
        ScanStats {
            epoch,
            observed: prior
                .observed
                .iter()
                .map(|a| AtomicU32::new(a.load(Ordering::Relaxed)))
                .collect(),
        }
    }

    /// The [`ModelEpoch`] the statistics are stamped with.
    pub fn epoch(&self) -> ModelEpoch {
        self.epoch
    }

    /// Number of blocks tracked.
    pub fn n_blocks(&self) -> usize {
        self.observed.len()
    }

    /// Folds one observed block maximum into the statistic (monotone:
    /// keeps the larger of the stored and offered values). NaN is ignored —
    /// NaN logits rank below everything and carry no skip information.
    pub fn record(&self, bi: usize, score: f32) {
        if score.is_nan() {
            return;
        }
        self.observed[bi].fetch_max(key_of(score), Ordering::Relaxed);
    }

    /// The best score ever observed in block `bi`, or `None` if the block
    /// has never been scored.
    pub fn observed_max(&self, bi: usize) -> Option<f32> {
        match self.observed[bi].load(Ordering::Relaxed) {
            0 => None,
            key => Some(score_of(key)),
        }
    }

    /// Overwrites block `bi`'s statistic with `score` (tests use this to
    /// poison the speculation adversarially; `None` clears the block back
    /// to "never observed").
    pub fn force(&self, bi: usize, score: Option<f32>) {
        let key = match score {
            Some(s) if !s.is_nan() => key_of(s),
            _ => 0,
        };
        self.observed[bi].store(key, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_preserves_order_and_round_trips() {
        let vals =
            [f32::NEG_INFINITY, -1.0e30, -2.5, -0.0, 0.0, 1.0e-30, 3.25, 1.0e30, f32::INFINITY];
        for w in vals.windows(2) {
            assert!(key_of(w[0]) < key_of(w[1]), "{} vs {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(score_of(key_of(v)).to_bits(), v.to_bits());
        }
        // The sentinel is unreachable: even -inf encodes above 0.
        assert!(key_of(f32::NEG_INFINITY) > 0);
    }

    #[test]
    fn record_keeps_the_maximum_and_ignores_nan() {
        let st = ScanStats::new(ModelEpoch::ZERO, 2);
        assert_eq!(st.observed_max(0), None);
        st.record(0, -3.0);
        st.record(0, f32::NAN);
        st.record(0, 1.5);
        st.record(0, -7.0);
        assert_eq!(st.observed_max(0), Some(1.5));
        assert_eq!(st.observed_max(1), None, "blocks are independent");
    }

    #[test]
    fn carry_preserves_values_and_restamps_the_epoch() {
        let st = ScanStats::new(ModelEpoch(3), 3);
        st.record(1, 0.25);
        let carried = ScanStats::carry_from(&st, ModelEpoch(4));
        assert_eq!(carried.epoch(), ModelEpoch(4));
        assert_eq!(carried.observed_max(0), None);
        assert_eq!(carried.observed_max(1), Some(0.25));
        assert_eq!(carried.n_blocks(), 3);
    }

    #[test]
    fn force_overwrites_in_both_directions() {
        let st = ScanStats::new(ModelEpoch::ZERO, 1);
        st.record(0, 9.0);
        st.force(0, Some(-4.0));
        assert_eq!(st.observed_max(0), Some(-4.0), "force may lower the statistic");
        st.force(0, None);
        assert_eq!(st.observed_max(0), None);
    }
}
